//! Real-time collaborative text editing with the RGA sequence CRDT,
//! checkpointed to a FabricCRDT ledger.
//!
//! §6: collaborative editing platforms are a major use case; Kleppmann &
//! Beresford discuss representing text documents as CRDTs. The paper's
//! future work (§9) lists list CRDTs — implemented here as RGA
//! (`fabriccrdt_jsoncrdt::crdts::Rga` / `text::TextDoc`).
//!
//! Two editors type concurrently — including at the same position —
//! exchange operations out of order, converge to the same text, and
//! then checkpoint the document to a FabricCRDT network where even the
//! concurrent checkpoints of both users commit (merged, no failures).
//!
//! Run with: `cargo run --release --example text_editing`

use std::sync::Arc;

use fabriccrdt_repro::fabric::chaincode::ChaincodeRegistry;
use fabriccrdt_repro::fabric::config::PipelineConfig;
use fabriccrdt_repro::fabric::simulation::TxRequest;
use fabriccrdt_repro::fabriccrdt::fabriccrdt_simulation;
use fabriccrdt_repro::jsoncrdt::text::TextDoc;
use fabriccrdt_repro::jsoncrdt::ReplicaId;
use fabriccrdt_repro::sim::time::SimTime;
use fabriccrdt_repro::workload::iot::IotChaincode;

fn main() {
    // --- Live editing session: two replicas, concurrent edits.
    let mut alice = TextDoc::new(ReplicaId(1));
    let mut bob = TextDoc::new(ReplicaId(2));

    // Alice drafts a sentence; Bob receives it.
    let draft = alice.insert(0, "CRDTs merge concurrent edits.");
    for op in &draft {
        bob.apply(op.clone());
    }

    // Concurrently: Alice prepends a heading while Bob fixes the tail.
    let heading = alice.insert(0, "FabricCRDT: ");
    let fix = bob.delete(28, 1); // drop the period…
    let tail = bob.insert(28, " without failures!"); // …and extend

    // Ship operations across, deliberately out of order.
    for op in fix.into_iter().chain(tail).rev() {
        alice.apply(op);
    }
    for op in heading {
        bob.apply(op);
    }

    println!("alice sees: {:?}", alice.text());
    println!("bob sees  : {:?}", bob.text());
    assert_eq!(alice.text(), bob.text(), "replicas converge");
    assert_eq!(
        alice.text(),
        "FabricCRDT: CRDTs merge concurrent edits without failures!"
    );

    // --- Checkpoint to the ledger: both users save concurrently; the
    // conflicting checkpoint transactions merge instead of failing.
    let mut registry = ChaincodeRegistry::new();
    registry.deploy(Arc::new(IotChaincode::crdt()));
    let mut sim = fabriccrdt_simulation(PipelineConfig::paper(25, 19), registry);
    sim.seed_state("doc-42", br#"{"checkpoints":[]}"#.to_vec());

    let checkpoint = |user: &str, text: &str| format!(r#"{{"checkpoints":["{user}: {text}"]}}"#);
    let schedule = vec![
        (
            SimTime::ZERO,
            TxRequest::new(
                "iot-crdt",
                IotChaincode::args(
                    &["doc-42".into()],
                    &["doc-42".into()],
                    &checkpoint("alice", &alice.text()),
                ),
            ),
        ),
        (
            SimTime::from_millis(2),
            TxRequest::new(
                "iot-crdt",
                IotChaincode::args(
                    &["doc-42".into()],
                    &["doc-42".into()],
                    &checkpoint("bob", &bob.text()),
                ),
            ),
        ),
    ];
    let metrics = sim.run(schedule);
    println!(
        "\ncheckpoints: {} submitted, {} committed, {} failed",
        metrics.submitted(),
        metrics.successful(),
        metrics.failed()
    );
    assert_eq!(metrics.successful(), 2, "both concurrent checkpoints merge");

    let stored = fabriccrdt_repro::jsoncrdt::json::Value::from_bytes(
        sim.peer().state().value("doc-42").unwrap(),
    )
    .unwrap();
    let count = stored.get("checkpoints").unwrap().as_list().unwrap().len();
    println!("ledger holds {count} merged checkpoints — no update lost");
    assert_eq!(count, 2);
}
