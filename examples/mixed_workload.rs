//! CRDT and non-CRDT transactions coexisting (paper Figure 2, §4.3).
//!
//! "Figure 2 displays the transaction flow in FabricCRDT, where CRDT and
//! non-CRDT transactions coexist ... Non-CRDT transactions go through
//! the same validation steps as on Fabric, but CRDT transactions only go
//! through the endorsement validation check."
//!
//! An inventory application runs two chaincodes on one FabricCRDT
//! network: sensor readings as CRDT transactions (all merge, none fail)
//! and stock transfers as classic transactions (MVCC-protected, losers
//! rejected) — backward compatibility in action.
//!
//! Run with: `cargo run --release --example mixed_workload`

use std::sync::Arc;

use fabriccrdt_repro::fabric::chaincode::{
    Chaincode, ChaincodeError, ChaincodeRegistry, ChaincodeStub,
};
use fabriccrdt_repro::fabric::config::PipelineConfig;
use fabriccrdt_repro::fabric::simulation::TxRequest;
use fabriccrdt_repro::fabriccrdt::fabriccrdt_simulation;
use fabriccrdt_repro::jsoncrdt::json::Value;
use fabriccrdt_repro::ledger::block::ValidationCode;
use fabriccrdt_repro::sim::time::SimTime;
use fabriccrdt_repro::workload::iot::IotChaincode;

/// Classic (non-CRDT) stock counter. Args: [item key, delta].
struct StockChaincode;

impl Chaincode for StockChaincode {
    fn name(&self) -> &str {
        "stock"
    }

    fn invoke(&self, stub: &mut ChaincodeStub<'_>, args: &[String]) -> Result<(), ChaincodeError> {
        let [key, delta] = args else {
            return Err(ChaincodeError::new("expected [item, delta]"));
        };
        let current: i64 = stub
            .get_state(key)
            .and_then(|b| String::from_utf8(b).ok())
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let delta: i64 = delta
            .parse()
            .map_err(|_| ChaincodeError::new("delta must be an integer"))?;
        stub.put_state(key, (current + delta).to_string().into_bytes());
        Ok(())
    }
}

fn main() {
    let mut registry = ChaincodeRegistry::new();
    registry.deploy(Arc::new(IotChaincode::crdt()));
    registry.deploy(Arc::new(StockChaincode));

    let mut sim = fabriccrdt_simulation(PipelineConfig::paper(25, 13), registry);
    sim.seed_state("warehouse-temp", br#"{"readings":[]}"#.to_vec());
    sim.seed_state("item-100", b"500".to_vec());

    // Interleave 60 CRDT sensor readings (all on one hot key) with 60
    // classic stock updates (all on one hot key) at 250 tx/s total.
    let mut schedule = Vec::new();
    for i in 0u64..120 {
        let at = SimTime::from_millis(i * 4);
        let request = if i % 2 == 0 {
            let json = format!(r#"{{"readings":["{}.5C"]}}"#, 3 + i % 4);
            TxRequest::new(
                "iot-crdt",
                IotChaincode::args(
                    &["warehouse-temp".into()],
                    &["warehouse-temp".into()],
                    &json,
                ),
            )
        } else {
            TxRequest::new("stock", vec!["item-100".into(), "-5".into()])
        };
        schedule.push((at, request));
    }

    let metrics = sim.run(schedule);
    let merged = metrics
        .records
        .iter()
        .filter(|r| r.code == Some(ValidationCode::ValidMerged))
        .count();
    let classic_ok = metrics
        .records
        .iter()
        .filter(|r| r.code == Some(ValidationCode::Valid))
        .count();
    let conflicts = metrics.failures_with(ValidationCode::MvccConflict);

    println!("120 transactions: 60 CRDT sensor readings + 60 classic stock updates\n");
    println!("CRDT sensor readings merged & committed : {merged:3}");
    println!("classic stock updates committed (MVCC)  : {classic_ok:3}");
    println!("classic stock updates rejected (MVCC)   : {conflicts:3}");

    assert_eq!(merged, 60, "every CRDT transaction commits");
    assert!(conflicts > 0, "classic hot-key updates still MVCC-fail");
    assert_eq!(merged + classic_ok + conflicts, 120);

    let temp = Value::from_bytes(sim.peer().state().value("warehouse-temp").unwrap()).unwrap();
    println!(
        "\nmerged sensor document holds {} readings (none lost)",
        temp.get("readings").unwrap().as_list().unwrap().len()
    );
    let stock = String::from_utf8(sim.peer().state().value("item-100").unwrap().to_vec()).unwrap();
    println!(
        "stock level: {} (500 - 5 x {} committed transfers; rejected ones had no effect)",
        stock, classic_ok
    );
    assert_eq!(stock.parse::<i64>().unwrap(), 500 - 5 * classic_ok as i64);
}
