//! Running the FabricCRDT pipeline over the gossip dissemination layer
//! with fault injection.
//!
//! The default simulation hands every orderer-cut block to the
//! committing peer over an ideal FIFO channel. This example swaps in
//! the `fabriccrdt-gossip` delivery layer — leader pull from the
//! orderer, push gossip among peers, pull-based anti-entropy (Fabric
//! §4.4) — and injects faults: lossy links, a peer crash with restart,
//! and a network partition that heals mid-run.
//!
//! The punchline is the paper's determinism argument carried to the
//! dissemination layer: every replica re-seals every block identically
//! (Algorithm 1 is deterministic), so no matter how blocks reach a peer
//! — pushed raw, re-requested from the orderer, or state-transferred as
//! committed blocks after a heal — all replicas end on **byte-identical
//! ledgers**, and every transaction still commits.
//!
//! This demo is a thin wrapper around the integration test
//! `crates/gossip/tests/partition_pipeline.rs`, which asserts the same
//! scenario (all 250 commits, faults observed and repaired,
//! determinism) on every CI run.
//!
//! Run with: `cargo run --release --example gossip_partition`

use std::sync::Arc;

use fabriccrdt_repro::fabric::chaincode::ChaincodeRegistry;
use fabriccrdt_repro::fabric::config::{
    CrashSpec, FaultConfig, LinkFaults, PartitionSpec, PipelineConfig,
};
use fabriccrdt_repro::fabric::simulation::TxRequest;
use fabriccrdt_repro::fabriccrdt_gossip_simulation;
use fabriccrdt_repro::sim::latency::LatencyModel;
use fabriccrdt_repro::sim::time::SimTime;
use fabriccrdt_repro::workload::iot::IotChaincode;

fn main() {
    // Fault schedule: every peer-to-peer push has a 20 % drop and 5 %
    // duplication chance; peer 2 crashes at 250 ms and restarts at
    // 700 ms (its ledger survives, its in-flight buffer does not);
    // peers 4 and 5 are cut off from the majority *and* the orderer
    // between 400 ms and 1 s.
    let faults = FaultConfig {
        link: LinkFaults {
            drop: 0.20,
            duplicate: 0.05,
            extra_delay: LatencyModel::Constant(SimTime::ZERO),
        },
        crashes: vec![CrashSpec {
            peer: 2,
            at: SimTime::from_millis(250),
            restart_at: SimTime::from_millis(700),
        }],
        partitions: vec![PartitionSpec {
            at: SimTime::from_millis(400),
            heal_at: SimTime::from_millis(1_000),
            minority: vec![4, 5],
        }],
    };

    let config = PipelineConfig::paper(25, 7)
        .with_gossip()
        .with_faults(faults);

    let mut registry = ChaincodeRegistry::new();
    registry.deploy(Arc::new(IotChaincode::crdt()));
    let mut sim = fabriccrdt_gossip_simulation(config, registry);
    sim.seed_state("device1", br#"{"readings":[]}"#.to_vec());

    // 250 all-conflicting CRDT transactions on one hot key at 300 tx/s.
    let schedule: Vec<(SimTime, TxRequest)> = (0..250)
        .map(|i| {
            let json = format!(r#"{{"deviceID":"device1","readings":["r{i}"]}}"#);
            (
                SimTime::from_secs_f64(i as f64 / 300.0),
                TxRequest::new(
                    "iot-crdt",
                    IotChaincode::args(&["device1".into()], &["device1".into()], &json),
                ),
            )
        })
        .collect();

    let metrics = sim.run(schedule);
    println!(
        "pipeline: {}/{} committed over {} blocks (every CRDT tx merges — \
         faults cost latency, not correctness)",
        metrics.successful(),
        metrics.submitted(),
        metrics.blocks_committed,
    );
    assert_eq!(metrics.successful(), 250);

    let dissemination = metrics
        .dissemination
        .expect("the gossip layer reports dissemination metrics");
    let propagation = dissemination.propagation_summary();
    println!(
        "dissemination: p50 {:.2} ms, p99 {:.2} ms to reach a peer; \
         {} pushes sent, {} dropped, {} duplicated (redundancy {:.2})",
        propagation.percentile(50.0).unwrap_or(0.0) * 1e3,
        propagation.percentile(99.0).unwrap_or(0.0) * 1e3,
        dissemination.messages_sent,
        dissemination.messages_dropped,
        dissemination.messages_duplicated,
        dissemination.redundancy_ratio(),
    );
    println!(
        "anti-entropy repaired the faults: {} transfers carrying {} blocks",
        dissemination.anti_entropy_transfers, dissemination.anti_entropy_blocks,
    );
    for episode in &dissemination.catch_up {
        println!(
            "  peer {} fell behind at {:.0} ms, caught up {:.1} ms later",
            episode.peer,
            episode.from.as_millis_f64(),
            episode.duration().as_millis_f64(),
        );
    }
}
