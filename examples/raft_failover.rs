//! Running the FabricCRDT pipeline over a Raft-replicated ordering
//! service and killing the leader mid-run.
//!
//! The default simulation orders transactions through a single,
//! always-up orderer. This example swaps in the `fabriccrdt-ordering`
//! backend — a five-node Raft cluster where only the leader embeds the
//! block cutter — and crashes the pre-elected leader while transactions
//! are in flight. The cluster re-elects (seeded randomized timeouts,
//! 150–300 ms), the new leader resumes cutting from the replicated log,
//! and clients re-route their held transactions.
//!
//! The punchline: consensus failover costs *latency*, never
//! correctness — every transaction still commits exactly once, and the
//! committed chain verifies end to end.
//!
//! A stricter version of this scenario (plus 100-seed safety sweeps)
//! runs in CI as `crates/ordering/tests/pipeline_equivalence.rs` and
//! `crates/ordering/tests/raft_safety.rs`.
//!
//! Run with: `cargo run --release --example raft_failover`

use std::sync::Arc;

use fabriccrdt_repro::fabric::chaincode::ChaincodeRegistry;
use fabriccrdt_repro::fabric::config::{CrashSpec, PipelineConfig, RaftConfig};
use fabriccrdt_repro::fabric::simulation::TxRequest;
use fabriccrdt_repro::fabriccrdt_raft_simulation;
use fabriccrdt_repro::sim::time::SimTime;
use fabriccrdt_repro::workload::iot::IotChaincode;

fn main() {
    // Five Raft nodes with the paper-calibrated timeouts; node 0 starts
    // as the pre-elected leader, gets killed at 500 ms, and rejoins as
    // a follower at 1.5 s.
    let mut raft = RaftConfig::calibrated(5);
    raft.faults.crashes.push(CrashSpec {
        peer: 0,
        at: SimTime::from_millis(500),
        restart_at: SimTime::from_millis(1_500),
    });
    let mut config = PipelineConfig::paper(25, 11);
    config.ordering = Some(raft);

    let mut registry = ChaincodeRegistry::new();
    registry.deploy(Arc::new(IotChaincode::crdt()));
    let mut sim = fabriccrdt_raft_simulation(config, registry);
    sim.seed_state("device1", br#"{"readings":[]}"#.to_vec());

    // 400 all-conflicting CRDT transactions on one hot key at 300 tx/s
    // — the kill lands mid-stream.
    let schedule: Vec<(SimTime, TxRequest)> = (0..400)
        .map(|i| {
            let json = format!(r#"{{"deviceID":"device1","readings":["r{i}"]}}"#);
            (
                SimTime::from_secs_f64(i as f64 / 300.0),
                TxRequest::new(
                    "iot-crdt",
                    IotChaincode::args(&["device1".into()], &["device1".into()], &json),
                ),
            )
        })
        .collect();

    let metrics = sim.run(schedule);
    println!(
        "pipeline: {}/{} committed over {} blocks, end at {:.1} ms",
        metrics.successful(),
        metrics.submitted(),
        metrics.blocks_committed,
        metrics.end_time.as_millis_f64(),
    );
    assert_eq!(metrics.successful(), 400, "failover must not lose txs");

    let ordering = metrics
        .ordering
        .expect("the raft backend reports ordering metrics");
    let commit = ordering.commit_latency_summary();
    println!(
        "raft: {} election(s), {} leader change(s), final term {}, \
         {} client retries while leaderless",
        ordering.elections_started,
        ordering.leader_changes,
        ordering.final_term,
        ordering.submission_retries,
    );
    println!(
        "raft: {} consensus messages ({} dropped); replication adds \
         p50 {:.2} ms, p99 {:.2} ms before a block ships",
        ordering.messages_sent,
        ordering.messages_dropped,
        commit.percentile(50.0).unwrap_or(0.0) * 1e3,
        commit.percentile(99.0).unwrap_or(0.0) * 1e3,
    );
    assert!(
        ordering.elections_started >= 1,
        "the kill forces a re-election"
    );
}
