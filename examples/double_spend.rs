//! The double-spending limitation (paper §6).
//!
//! "Use cases that require transactional isolation of repeatable reads
//! are not a good fit ... an attacker creates several transactions to
//! transfer a single asset to multiple owners. On Fabric, only one of
//! the attacker's transactions is successfully committed ... However,
//! FabricCRDT skips the MVCC validation, merges the transactions'
//! values, and successfully commits all of the attacker's transactions."
//!
//! This example demonstrates the documented vulnerability: asset
//! transfers modelled as CRDT transactions let both concurrent spends
//! commit, while vanilla Fabric correctly rejects the second. It is the
//! reason FabricCRDT targets merge-friendly workloads (sensor logs,
//! collaborative documents) and not asset transfers.
//!
//! Run with: `cargo run --release --example double_spend`

use std::sync::Arc;

use fabriccrdt_repro::fabric::chaincode::{
    Chaincode, ChaincodeError, ChaincodeRegistry, ChaincodeStub,
};
use fabriccrdt_repro::fabric::config::PipelineConfig;
use fabriccrdt_repro::fabric::simulation::TxRequest;
use fabriccrdt_repro::fabriccrdt::{fabric_simulation, fabriccrdt_simulation};
use fabriccrdt_repro::jsoncrdt::json::Value;
use fabriccrdt_repro::sim::time::SimTime;

/// Asset-transfer chaincode. Args: [asset key, new owner].
/// `crdt = true` models the (misguided) CRDT port of the asset app.
struct AssetTransfer {
    crdt: bool,
}

impl Chaincode for AssetTransfer {
    fn name(&self) -> &str {
        if self.crdt {
            "asset-crdt"
        } else {
            "asset"
        }
    }

    fn invoke(&self, stub: &mut ChaincodeStub<'_>, args: &[String]) -> Result<(), ChaincodeError> {
        let [key, new_owner] = args else {
            return Err(ChaincodeError::new("expected [asset, new owner]"));
        };
        let stored = stub
            .get_state(key)
            .ok_or_else(|| ChaincodeError::new("asset does not exist"))?;
        let mut asset = Value::from_bytes(&stored)
            .map_err(|e| ChaincodeError::new(format!("corrupt asset: {e}")))?;
        let owner = asset.get("owner").and_then(Value::as_str).unwrap_or("");
        if owner != "attacker" {
            return Err(ChaincodeError::new("only the owner can transfer"));
        }
        asset.insert("owner", Value::string(new_owner.clone()));
        asset
            .as_map_mut()
            .unwrap()
            .entry("transfer-log".to_owned())
            .or_insert_with(|| Value::list([]))
            .as_list_mut()
            .unwrap()
            .push(Value::string(format!("-> {new_owner}")));
        if self.crdt {
            stub.put_crdt(key, asset.to_bytes());
        } else {
            stub.put_state(key, asset.to_bytes());
        }
        Ok(())
    }
}

fn schedule(chaincode: &str) -> Vec<(SimTime, TxRequest)> {
    // The attacker "sells" the same asset to two victims concurrently.
    vec![
        (
            SimTime::ZERO,
            TxRequest::new(chaincode, vec!["asset-42".into(), "victim-A".into()]),
        ),
        (
            SimTime::from_millis(2),
            TxRequest::new(chaincode, vec!["asset-42".into(), "victim-B".into()]),
        ),
    ]
}

fn seed() -> Vec<u8> {
    br#"{"owner":"attacker","transfer-log":[]}"#.to_vec()
}

fn main() {
    // --- Vanilla Fabric: MVCC catches the double spend.
    let mut registry = ChaincodeRegistry::new();
    registry.deploy(Arc::new(AssetTransfer { crdt: false }));
    let mut fabric = fabric_simulation(PipelineConfig::paper(25, 5), registry);
    fabric.seed_state("asset-42", seed());
    let metrics = fabric.run(schedule("asset"));
    println!("== Fabric ==");
    println!(
        "double-spend attempts: 2, committed: {}, rejected: {}",
        metrics.successful(),
        metrics.failed()
    );
    let final_owner = Value::from_bytes(fabric.peer().state().value("asset-42").unwrap()).unwrap();
    println!("final owner: {}", final_owner.get("owner").unwrap());
    assert_eq!(metrics.successful(), 1, "exactly one transfer wins");

    // --- FabricCRDT: both spends commit — the documented vulnerability.
    let mut registry = ChaincodeRegistry::new();
    registry.deploy(Arc::new(AssetTransfer { crdt: true }));
    let mut crdt = fabriccrdt_simulation(PipelineConfig::paper(25, 5), registry);
    crdt.seed_state("asset-42", seed());
    let metrics = crdt.run(schedule("asset-crdt"));
    println!("\n== FabricCRDT ==");
    println!(
        "double-spend attempts: 2, committed: {}, rejected: {}",
        metrics.successful(),
        metrics.failed()
    );
    let merged = Value::from_bytes(crdt.peer().state().value("asset-42").unwrap()).unwrap();
    println!("merged asset state:\n{}", merged.to_pretty_string());
    assert_eq!(metrics.successful(), 2, "both attacker transactions commit");
    assert_eq!(
        merged.get("transfer-log").unwrap().as_list().unwrap().len(),
        2,
        "both transfers recorded — the asset was 'sold' twice"
    );

    println!("\nConclusion (§6): asset transfers need repeatable-read isolation;");
    println!("model them as plain Fabric transactions, not CRDTs.");
}
