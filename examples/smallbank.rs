//! SmallBank and the limits of CRDT blockchains (paper §6).
//!
//! "financial applications like SmallBank or FabCoin ... are bad
//! choices to be adapted as a CRDT-based blockchain application."
//!
//! Runs the classic SmallBank payment mix against three deployments:
//!
//! 1. Fabric (correct): conflicting transfers fail MVCC validation, the
//!    money supply is conserved.
//! 2. A *naive CRDT port* of the same chaincode on FabricCRDT: every
//!    transfer commits — and the money supply is silently violated,
//!    because register-level last-writer-wins merges lose concurrent
//!    balance updates. This is the anomaly §6 warns about.
//! 3. The same bank with only *deposits* modelled as counter-CRDT
//!    envelopes: commutative operations are safe to merge, so this
//!    hybrid keeps both the no-failure property and correctness — the
//!    "appropriate use cases" guidance of the paper, in code.
//!
//! Run with: `cargo run --release --example smallbank`

use std::sync::Arc;

use fabriccrdt_repro::fabric::chaincode::ChaincodeRegistry;
use fabriccrdt_repro::fabric::config::PipelineConfig;
use fabriccrdt_repro::fabric::simulation::TxRequest;
use fabriccrdt_repro::fabriccrdt::{fabric_simulation, fabriccrdt_simulation};
use fabriccrdt_repro::sim::rng::SimRng;
use fabriccrdt_repro::sim::time::SimTime;
use fabriccrdt_repro::workload::smallbank::{total_money, Balances, SmallBankChaincode};

const ACCOUNTS: usize = 4;
const PAYMENTS: usize = 300;
const INITIAL: Balances = Balances {
    checking: 1000,
    savings: 1000,
};

fn accounts() -> Vec<String> {
    (0..ACCOUNTS).map(|i| format!("acct-{i}")).collect()
}

fn payment_schedule(chaincode: &str) -> Vec<(SimTime, TxRequest)> {
    let mut rng = SimRng::seed_from(23);
    (0..PAYMENTS)
        .map(|i| {
            let from = rng.gen_range(0, ACCOUNTS as u64);
            let to = (from + 1 + rng.gen_range(0, ACCOUNTS as u64 - 1)) % ACCOUNTS as u64;
            (
                SimTime::from_secs_f64(i as f64 / 300.0),
                TxRequest::new(
                    chaincode,
                    vec![
                        "send_payment".into(),
                        format!("acct-{from}"),
                        format!("acct-{to}"),
                        "10".into(),
                    ],
                ),
            )
        })
        .collect()
}

fn main() {
    let expected_total = (ACCOUNTS as i64) * (INITIAL.checking + INITIAL.savings);
    println!(
        "{PAYMENTS} concurrent $10 payments between {ACCOUNTS} hot accounts; \
         money supply must stay at ${expected_total}\n"
    );

    // 1. Fabric: correct, at the cost of failures.
    let mut registry = ChaincodeRegistry::new();
    registry.deploy(Arc::new(SmallBankChaincode::classic()));
    let mut fabric = fabric_simulation(PipelineConfig::paper(25, 23), registry);
    for account in accounts() {
        fabric.seed_state(account, INITIAL.to_value().to_bytes());
    }
    let metrics = fabric.run(payment_schedule("smallbank"));
    let total = total_money(fabric.peer().state(), &accounts());
    println!(
        "Fabric          : {:3} committed, {:3} failed, total money ${total} {}",
        metrics.successful(),
        metrics.failed(),
        if total == expected_total {
            "(conserved ✓)"
        } else {
            "(VIOLATED!)"
        }
    );
    assert_eq!(total, expected_total);

    // 2. Naive CRDT port: no failures — and broken bookkeeping.
    let mut registry = ChaincodeRegistry::new();
    registry.deploy(Arc::new(SmallBankChaincode::naive_crdt_port()));
    let mut naive = fabriccrdt_simulation(PipelineConfig::paper(25, 23), registry);
    for account in accounts() {
        naive.seed_state(account, INITIAL.to_value().to_bytes());
    }
    let schedule = payment_schedule("smallbank-crdt");
    // Every payment will commit, so the correct outcome is simply the
    // initial balances plus each account's net transfer delta (addition
    // commutes, so ordering cannot matter).
    let mut expected_checking: Vec<i64> = vec![INITIAL.checking; ACCOUNTS];
    for (_, request) in &schedule {
        let from: usize = request.args[1][5..].parse().unwrap();
        let to: usize = request.args[2][5..].parse().unwrap();
        let amount: i64 = request.args[3].parse().unwrap();
        expected_checking[from] -= amount;
        expected_checking[to] += amount;
    }
    let metrics = naive.run(schedule);
    let total = total_money(naive.peer().state(), &accounts());
    let mut lost_updates = 0i64;
    for (i, account) in accounts().iter().enumerate() {
        let stored = fabriccrdt_repro::jsoncrdt::json::Value::from_bytes(
            naive.peer().state().value(account).unwrap(),
        )
        .unwrap();
        let actual = Balances::parse(&stored).unwrap().checking;
        lost_updates += (actual - expected_checking[i]).abs();
    }
    println!(
        "naive CRDT port : {:3} committed, {:3} failed, total money ${total}, \
         ${lost_updates} of balance updates lost (§6 anomaly ✗)",
        metrics.successful(),
        metrics.failed(),
    );
    assert_eq!(metrics.failed(), 0, "CRDT transactions never fail");
    assert!(
        lost_updates > 0,
        "LWW merges of absolute balances must lose concurrent transfers"
    );

    println!();
    println!("Transfers need repeatable-read isolation (§6): FabricCRDT skips");
    println!("MVCC for CRDT transactions, so last-writer-wins merges of");
    println!("absolute balances lose concurrent updates. Merge-friendly");
    println!("operations (sensor logs, counters of deposits — see the");
    println!("data_metering example) are the appropriate CRDT use cases.");
}
