//! A new peer joins the network and catches up.
//!
//! Fabric peers bootstrap either by replaying the channel's blocks from
//! the ordering service or (since v2) from a ledger snapshot. The
//! reproduction supports both, and because FabricCRDT's merge path is
//! deterministic (§4.2's convergence requirement), a late-joining peer
//! lands on byte-identical state however it catches up:
//!
//! 1. run a FabricCRDT network for a while,
//! 2. bootstrap replica B by **snapshot** (`Peer::snapshot`/`restore`),
//! 3. bootstrap replica C by **block replay** from the serialized chain,
//! 4. verify all three agree, then process one more block on each.
//!
//! Run with: `cargo run --release --example peer_catchup`

use std::sync::Arc;

use fabriccrdt_repro::fabric::chaincode::ChaincodeRegistry;
use fabriccrdt_repro::fabric::config::{PipelineConfig, Topology};
use fabriccrdt_repro::fabric::peer::Peer;
use fabriccrdt_repro::fabric::simulation::TxRequest;
use fabriccrdt_repro::fabriccrdt::{fabriccrdt_simulation, CrdtValidator};
use fabriccrdt_repro::ledger::codec;
use fabriccrdt_repro::sim::time::SimTime;
use fabriccrdt_repro::workload::iot::IotChaincode;

fn main() {
    // --- 1. A FabricCRDT network processes 200 conflicting transactions.
    let mut registry = ChaincodeRegistry::new();
    registry.deploy(Arc::new(IotChaincode::crdt()));
    let mut sim = fabriccrdt_simulation(PipelineConfig::paper(25, 29), registry);
    sim.seed_state("device1", br#"{"readings":[]}"#.to_vec());
    let schedule: Vec<(SimTime, TxRequest)> = (0..200)
        .map(|i| {
            let json = format!(r#"{{"deviceID":"device1","readings":["r{i}"]}}"#);
            (
                SimTime::from_secs_f64(i as f64 / 300.0),
                TxRequest::new(
                    "iot-crdt",
                    IotChaincode::args(&["device1".into()], &["device1".into()], &json),
                ),
            )
        })
        .collect();
    let metrics = sim.run(schedule);
    println!(
        "running network: {} committed over {} blocks",
        metrics.successful(),
        metrics.blocks_committed
    );
    let veteran = sim.peer();

    // --- 2. Replica B bootstraps from a snapshot.
    let snapshot = veteran.snapshot();
    println!(
        "snapshot: {} state bytes + {} chain bytes",
        snapshot.state.len(),
        snapshot.chain.len()
    );
    let replica_b = Peer::restore(
        CrdtValidator::new(),
        Topology::paper().default_policy(),
        &snapshot,
    )
    .expect("snapshot restores");

    // --- 3. Replica C replays the serialized chain block by block.
    let chain = codec::decode_chain(&snapshot.chain).expect("chain decodes");
    let mut replica_c: Peer<CrdtValidator> =
        Peer::new(CrdtValidator::new(), Topology::paper().default_policy());
    replica_c.seed_state("device1", br#"{"readings":[]}"#.to_vec());
    for block in chain.iter().skip(1) {
        // Replay exactly what was committed: blocks carry the already
        // merged write sets and the recorded validation codes.
        replica_c
            .replay_block(block.clone())
            .expect("replay extends the chain");
    }

    // --- 4. All three replicas agree, byte for byte.
    assert_eq!(replica_b.state(), veteran.state(), "snapshot catch-up");
    assert_eq!(replica_c.state(), veteran.state(), "replay catch-up");
    assert_eq!(replica_b.chain().tip_hash(), veteran.chain().tip_hash());
    assert_eq!(replica_c.chain().tip_hash(), veteran.chain().tip_hash());
    println!("replica B (snapshot) and replica C (replay) match the veteran ✓");

    let stored = fabriccrdt_repro::jsoncrdt::json::Value::from_bytes(
        veteran.state().value("device1").unwrap(),
    )
    .unwrap();
    println!(
        "device1 document carries {} merged readings across the run",
        stored.get("readings").unwrap().as_list().unwrap().len()
    );
}
