//! Data metering with counter CRDTs (paper §6 + future work §9).
//!
//! The paper names data metering among the use cases that benefit from
//! CRDT-enabled databases and lists counter CRDTs as planned future
//! work. This reproduction implements them: a CRDT-flagged write whose
//! JSON carries a `"_crdt":"g-counter"` envelope merges with grow-only
//! counter semantics at commit time.
//!
//! Four API gateways concurrently meter requests against one shared
//! usage counter. Every increment commits (no failures), none is lost
//! (per-actor counts join by max), and the committed value is exact.
//!
//! Run with: `cargo run --release --example data_metering`

use std::sync::Arc;

use fabriccrdt_repro::fabric::chaincode::{
    Chaincode, ChaincodeError, ChaincodeRegistry, ChaincodeStub,
};
use fabriccrdt_repro::fabric::config::PipelineConfig;
use fabriccrdt_repro::fabric::simulation::TxRequest;
use fabriccrdt_repro::fabriccrdt::fabriccrdt_simulation;
use fabriccrdt_repro::jsoncrdt::json::Value;
use fabriccrdt_repro::sim::time::SimTime;

/// Metering chaincode. Args: [counter key, actor, cumulative count].
///
/// State-based G-counter discipline: each actor *owns* its component and
/// tracks it monotonically on its side (a gateway always knows how many
/// requests it has served), submitting the new cumulative value. The
/// commit-time merge joins components by per-actor max, so concurrent
/// submissions from *different* actors never interfere, and a lagging
/// duplicate from the same actor is harmlessly idempotent. Reading the
/// key through the shim still records the MVCC dependency, which
/// FabricCRDT then merges over instead of failing.
struct Meter;

impl Chaincode for Meter {
    fn name(&self) -> &str {
        "meter"
    }

    fn invoke(&self, stub: &mut ChaincodeStub<'_>, args: &[String]) -> Result<(), ChaincodeError> {
        let [key, actor, cumulative] = args else {
            return Err(ChaincodeError::new("expected [key, actor, cumulative]"));
        };
        let cumulative: u64 = cumulative
            .parse()
            .map_err(|_| ChaincodeError::new("cumulative must be a non-negative integer"))?;

        // Full-state gossip: carry the committed components of every
        // actor forward (Algorithm 1 merges each block from empty, so a
        // submission must include the state it has observed) and join
        // our own component by max — stale copies of other actors are
        // always ≤ their current value, so the per-actor max at commit
        // time keeps every owner's latest count.
        let committed = stub
            .get_state(key)
            .and_then(|bytes| Value::from_bytes(&bytes).ok());
        let mut counts = committed
            .as_ref()
            .and_then(|v| v.get("counts"))
            .cloned()
            .unwrap_or_else(Value::empty_map);
        let observed_own: u64 = counts
            .get(actor)
            .and_then(Value::as_str)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        counts.insert(
            actor.clone(),
            Value::string(observed_own.max(cumulative).to_string()),
        );
        let mut envelope = Value::empty_map();
        envelope.insert("_crdt", Value::string("g-counter"));
        envelope.insert("counts", counts);
        stub.put_crdt(key, envelope.to_bytes());
        Ok(())
    }
}

fn main() {
    let mut registry = ChaincodeRegistry::new();
    registry.deploy(Arc::new(Meter));
    let mut sim = fabriccrdt_simulation(PipelineConfig::paper(25, 21), registry);

    // Four gateways, 50 metering events each, all hammering one counter.
    let gateways = ["gw-eu", "gw-us", "gw-ap", "gw-sa"];
    let mut schedule = Vec::new();
    let mut i = 0u64;
    for round in 1..=50u64 {
        for gw in gateways {
            schedule.push((
                SimTime::from_millis(i * 4),
                TxRequest::new(
                    "meter",
                    // Each gateway submits its own cumulative count.
                    vec!["api-usage".into(), gw.into(), round.to_string()],
                ),
            ));
            i += 1;
        }
    }
    let total = schedule.len();

    let metrics = sim.run(schedule);
    println!(
        "{} metering increments submitted, {} committed, {} failed",
        total,
        metrics.successful(),
        metrics.failed()
    );
    assert_eq!(metrics.failed(), 0);

    let committed = Value::from_bytes(sim.peer().state().value("api-usage").unwrap()).unwrap();
    println!(
        "\ncommitted counter state:\n{}",
        committed.to_pretty_string()
    );

    let value: u64 = committed
        .get("value")
        .unwrap()
        .as_str()
        .unwrap()
        .parse()
        .unwrap();
    println!("\ntotal metered requests: {value} (expected {total})");
    assert_eq!(value as usize, total, "every increment accounted for");

    println!("\nOn Fabric this workload would lose most increments to MVCC");
    println!("conflicts; with read-modify-write retries it would need many");
    println!("round trips. The g-counter envelope commits all of them in one.");
}
