//! Collaborative document editing (paper §6).
//!
//! "On FabricCRDT, documents are stored as JSON objects, and edit
//! updates are committed as CRDT transactions. Now, updates are merged
//! without the loss of user's data (no update loss requirement);
//! further, no updates will fail, so that users do not need to redo and
//! resubmit their edits (no failure requirement)."
//!
//! Three authors concurrently edit a shared document: each reads the
//! committed document, adds their own paragraph to their section, and
//! writes the whole document back (read-modify-write, the paper's
//! chaincode pattern). Sections are map keys, paragraphs are list
//! items; concurrent edits to different sections merge key-wise and
//! concurrent paragraph appends union.
//!
//! Run with: `cargo run --release --example collaborative_editing`

use std::sync::Arc;

use fabriccrdt_repro::fabric::chaincode::{
    Chaincode, ChaincodeError, ChaincodeRegistry, ChaincodeStub,
};
use fabriccrdt_repro::fabric::config::PipelineConfig;
use fabriccrdt_repro::fabric::simulation::TxRequest;
use fabriccrdt_repro::fabriccrdt::fabriccrdt_simulation;
use fabriccrdt_repro::jsoncrdt::json::Value;
use fabriccrdt_repro::sim::time::SimTime;

/// Chaincode: read the document, append a paragraph to the caller's
/// section, write the whole document back as a CRDT.
/// Args: [doc key, section, paragraph text].
struct DocEditor;

impl Chaincode for DocEditor {
    fn name(&self) -> &str {
        "doc-editor"
    }

    fn invoke(&self, stub: &mut ChaincodeStub<'_>, args: &[String]) -> Result<(), ChaincodeError> {
        let [key, section, paragraph] = args else {
            return Err(ChaincodeError::new("expected [key, section, paragraph]"));
        };
        let mut doc = match stub.get_state(key) {
            Some(bytes) => Value::from_bytes(&bytes)
                .map_err(|e| ChaincodeError::new(format!("stored doc corrupt: {e}")))?,
            None => Value::empty_map(),
        };
        let map = doc
            .as_map_mut()
            .ok_or_else(|| ChaincodeError::new("document must be a JSON map"))?;
        let entry = map
            .entry(section.clone())
            .or_insert_with(|| Value::list([]));
        entry
            .as_list_mut()
            .ok_or_else(|| ChaincodeError::new("section must be a list"))?
            .push(Value::string(paragraph.clone()));
        stub.put_crdt(key, doc.to_bytes());
        Ok(())
    }
}

fn main() {
    let mut registry = ChaincodeRegistry::new();
    registry.deploy(Arc::new(DocEditor));
    let mut sim = fabriccrdt_simulation(PipelineConfig::paper(25, 3), registry);
    sim.seed_state("design-doc", Value::empty_map().to_bytes());

    // Three authors, five edits each, all submitted close together so
    // most edits of a round conflict.
    let authors = [
        ("alice", "introduction"),
        ("bob", "evaluation"),
        ("carol", "introduction"), // carol edits the same section as alice
    ];
    let mut schedule = Vec::new();
    let mut i = 0u64;
    for round in 0..5 {
        for (author, section) in authors {
            schedule.push((
                SimTime::from_millis(i * 4),
                TxRequest::new(
                    "doc-editor",
                    vec![
                        "design-doc".into(),
                        section.into(),
                        format!("[{author} v{round}] …paragraph text…"),
                    ],
                ),
            ));
            i += 1;
        }
    }
    let total = schedule.len();

    let metrics = sim.run(schedule);
    println!(
        "{} edits submitted, {} committed, {} failed",
        total,
        metrics.successful(),
        metrics.failed()
    );
    assert_eq!(metrics.failed(), 0, "no failure requirement");

    // Read the final document straight from the committed world state.
    let stored = sim
        .peer()
        .state()
        .value("design-doc")
        .expect("document committed");
    let doc = Value::from_bytes(stored).expect("valid JSON");
    println!("\nFinal committed document:\n{}", doc.to_pretty_string());

    // Every author's every edit is present — no update loss.
    for (author, section) in authors {
        let list = doc.get(section).unwrap().as_list().unwrap();
        for round in 0..5 {
            let needle = format!("[{author} v{round}]");
            assert!(
                list.iter()
                    .any(|p| p.as_str().unwrap().starts_with(&needle)),
                "missing edit {needle}"
            );
        }
    }
    println!("Every edit by every author is present in the merged document.");
    println!("On Fabric, concurrent edits to the same key would have failed");
    println!("MVCC validation and users would resubmit — FabricCRDT merges them (§6).");
}
