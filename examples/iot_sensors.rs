//! Supply-chain IoT monitoring (paper §6).
//!
//! "Sensitive goods like drugs and fresh fruits and vegetables should be
//! kept within specific conditions ... different readings from different
//! IoT devices may collide, for example, when a temperature sensor and a
//! humidity sensor concurrently submit records to update a shared list
//! of the sensor readings of the same good."
//!
//! Two sensor fleets (temperature and humidity) concurrently update the
//! shared records of a set of goods. On FabricCRDT every reading lands in
//! the world state; on Fabric a large share of the sensors would have to
//! detect failure and resubmit — prohibitive for energy-constrained
//! devices.
//!
//! Run with: `cargo run --release --example iot_sensors`

use std::sync::Arc;

use fabriccrdt_repro::fabric::chaincode::ChaincodeRegistry;
use fabriccrdt_repro::fabric::config::PipelineConfig;
use fabriccrdt_repro::fabric::simulation::TxRequest;
use fabriccrdt_repro::fabriccrdt::{fabric_simulation, fabriccrdt_simulation};
use fabriccrdt_repro::jsoncrdt::json::Value;
use fabriccrdt_repro::sim::time::SimTime;
use fabriccrdt_repro::workload::iot::IotChaincode;

const GOODS: usize = 5;
const READINGS_PER_SENSOR: usize = 40;

/// Builds the submission schedule: temperature and humidity sensors
/// alternate readings for each good, at 200 readings/s total.
fn schedule(chaincode: &str) -> Vec<(SimTime, TxRequest)> {
    let mut requests = Vec::new();
    let mut i = 0u64;
    for round in 0..READINGS_PER_SENSOR {
        for good in 0..GOODS {
            for sensor in ["temp", "humidity"] {
                let key = format!("good-{good}");
                let reading = match sensor {
                    "temp" => format!("{}C", 4 + (round * 3 + good) % 6),
                    _ => format!("{}%", 60 + (round * 7 + good) % 20),
                };
                let json =
                    format!(r#"{{"goodID":"{key}","sensor-log":["{sensor}@{round}: {reading}"]}}"#);
                requests.push((
                    SimTime::from_millis(i * 5),
                    TxRequest::new(
                        chaincode,
                        IotChaincode::args(
                            std::slice::from_ref(&key),
                            std::slice::from_ref(&key),
                            &json,
                        ),
                    ),
                ));
                i += 1;
            }
        }
    }
    requests
}

fn run(crdt: bool) -> (usize, usize) {
    let mut registry = ChaincodeRegistry::new();
    let chaincode_name = if crdt {
        registry.deploy(Arc::new(IotChaincode::crdt()));
        "iot-crdt"
    } else {
        registry.deploy(Arc::new(IotChaincode::plain()));
        "iot"
    };
    let config = PipelineConfig::paper(25, 11);
    let seed = br#"{"sensor-log":[]}"#.to_vec();
    if crdt {
        let mut sim = fabriccrdt_simulation(config, registry);
        for good in 0..GOODS {
            sim.seed_state(format!("good-{good}"), seed.clone());
        }
        let metrics = sim.run(schedule(chaincode_name));
        (metrics.successful(), metrics.failed())
    } else {
        let mut sim = fabric_simulation(config, registry);
        for good in 0..GOODS {
            sim.seed_state(format!("good-{good}"), seed.clone());
        }
        let metrics = sim.run(schedule(chaincode_name));
        (metrics.successful(), metrics.failed())
    }
}

fn main() {
    let total = GOODS * READINGS_PER_SENSOR * 2;
    println!("{total} sensor readings for {GOODS} goods (temperature + humidity fleets)\n");

    let (ok, failed) = run(true);
    println!("FabricCRDT : {ok:4} committed, {failed:4} failed");
    assert_eq!(failed, 0, "no failure requirement (§4.2)");

    let (ok_fabric, failed_fabric) = run(false);
    println!(
        "Fabric     : {ok_fabric:4} committed, {failed_fabric:4} failed (sensors must resubmit)"
    );
    assert!(failed_fabric > 0);

    // Show one good's merged record on FabricCRDT via the merge path
    // directly: every reading of both sensors must be present.
    let mut doc =
        fabriccrdt_repro::jsoncrdt::JsonCrdt::new(fabriccrdt_repro::jsoncrdt::ReplicaId(1));
    for (_, request) in schedule("iot-crdt") {
        if request.args[1] == "good-0" {
            doc.merge_value(&Value::parse(&request.args[2]).unwrap())
                .unwrap();
        }
    }
    let merged = doc.to_value();
    let log = merged.get("sensor-log").unwrap().as_list().unwrap();
    println!(
        "\ngood-0 merged sensor log holds {} entries (expected {} = 2 sensors x {} rounds)",
        log.len(),
        2 * READINGS_PER_SENSOR,
        READINGS_PER_SENSOR
    );
    assert_eq!(log.len(), 2 * READINGS_PER_SENSOR, "no update loss (§4.2)");
    println!("first entries: {}, {}", log[0], log[1]);
}
