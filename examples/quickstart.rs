//! Quickstart: the paper's Listing 1 → Listing 2 merge, end to end.
//!
//! Builds a simulated FabricCRDT network (3 orgs × 2 peers, 1 orderer),
//! deploys the IoT chaincode, submits two transactions that concurrently
//! update the same device document, and shows that — unlike Fabric —
//! both commit and their readings merge.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use fabriccrdt_repro::fabric::chaincode::ChaincodeRegistry;
use fabriccrdt_repro::fabric::config::PipelineConfig;
use fabriccrdt_repro::fabric::simulation::TxRequest;
use fabriccrdt_repro::fabriccrdt::{fabric_simulation, fabriccrdt_simulation};
use fabriccrdt_repro::jsoncrdt::json::Value;
use fabriccrdt_repro::sim::time::SimTime;
use fabriccrdt_repro::workload::iot::IotChaincode;

fn schedule(chaincode: &str) -> Vec<(SimTime, TxRequest)> {
    // Two clients submit concurrent readings for the same device within
    // one block window — guaranteed MVCC conflict on Fabric.
    let payloads = [
        r#"{"deviceID":"Device1","readings":["51.0","49.5"]}"#,
        r#"{"deviceID":"Device1","readings":["50.0"]}"#,
    ];
    payloads
        .iter()
        .enumerate()
        .map(|(i, json)| {
            (
                SimTime::from_millis(i as u64 * 3),
                TxRequest::new(
                    chaincode,
                    IotChaincode::args(&["Device1".into()], &["Device1".into()], json),
                ),
            )
        })
        .collect()
}

fn main() {
    let seed_doc = br#"{"deviceID":"Device1","readings":[]}"#.to_vec();

    // --- FabricCRDT: conflicting updates merge.
    let mut registry = ChaincodeRegistry::new();
    registry.deploy(Arc::new(IotChaincode::crdt()));
    let mut sim = fabriccrdt_simulation(PipelineConfig::paper(25, 7), registry);
    sim.seed_state("Device1", seed_doc.clone());
    let metrics = sim.run(schedule("iot-crdt"));

    println!("== FabricCRDT ==");
    println!(
        "submitted: {}, successful: {}, failed: {}",
        metrics.submitted(),
        metrics.successful(),
        metrics.failed()
    );
    assert_eq!(metrics.successful(), 2, "FabricCRDT commits both");

    // --- Vanilla Fabric: the same workload loses a transaction.
    let mut registry = ChaincodeRegistry::new();
    registry.deploy(Arc::new(IotChaincode::plain()));
    let mut fabric = fabric_simulation(PipelineConfig::paper(25, 7), registry);
    fabric.seed_state("Device1", seed_doc);
    let fabric_metrics = fabric.run(schedule("iot"));

    println!("\n== Fabric ==");
    println!(
        "submitted: {}, successful: {}, failed: {} (MVCC conflict)",
        fabric_metrics.submitted(),
        fabric_metrics.successful(),
        fabric_metrics.failed()
    );
    assert!(fabric_metrics.failed() >= 1, "Fabric rejects the conflict");

    println!("\nPaper Listing 2 — the merged document on FabricCRDT preserves");
    println!("every reading from both conflicting transactions (no update loss):");
    // Demonstrate the merged value through the core validator directly.
    let mut doc =
        fabriccrdt_repro::jsoncrdt::JsonCrdt::new(fabriccrdt_repro::jsoncrdt::ReplicaId(1));
    doc.merge_value(&Value::parse(r#"{"deviceID":"Device1","readings":["51.0","49.5"]}"#).unwrap())
        .unwrap();
    doc.merge_value(&Value::parse(r#"{"deviceID":"Device1","readings":["50.0"]}"#).unwrap())
        .unwrap();
    println!("{}", doc.to_value().to_pretty_string());
}
