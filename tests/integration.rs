//! Cross-crate integration tests: full pipeline runs exercising the
//! crypto, jsoncrdt, ledger, sim, fabric, core and workload crates
//! together.

use std::sync::Arc;

use fabriccrdt_repro::fabric::chaincode::{
    Chaincode, ChaincodeError, ChaincodeRegistry, ChaincodeStub,
};
use fabriccrdt_repro::fabric::config::PipelineConfig;
use fabriccrdt_repro::fabric::simulation::TxRequest;
use fabriccrdt_repro::fabriccrdt::{fabric_simulation, fabriccrdt_simulation};
use fabriccrdt_repro::jsoncrdt::json::Value;
use fabriccrdt_repro::ledger::block::ValidationCode;
use fabriccrdt_repro::sim::time::SimTime;
use fabriccrdt_repro::workload::experiment::{ExperimentConfig, SystemKind};
use fabriccrdt_repro::workload::iot::IotChaincode;

fn iot_registry(crdt: bool) -> (ChaincodeRegistry, &'static str) {
    let mut registry = ChaincodeRegistry::new();
    if crdt {
        registry.deploy(Arc::new(IotChaincode::crdt()));
        (registry, "iot-crdt")
    } else {
        registry.deploy(Arc::new(IotChaincode::plain()));
        (registry, "iot")
    }
}

fn hot_key_schedule(chaincode: &str, n: usize, rate: f64) -> Vec<(SimTime, TxRequest)> {
    (0..n)
        .map(|i| {
            let json = format!(r#"{{"deviceID":"d1","readings":["r{i}"]}}"#);
            (
                SimTime::from_secs_f64(i as f64 / rate),
                TxRequest::new(
                    chaincode,
                    IotChaincode::args(&["d1".into()], &["d1".into()], &json),
                ),
            )
        })
        .collect()
}

/// The headline claim, end to end: same all-conflicting workload,
/// FabricCRDT commits everything with every update preserved, Fabric
/// rejects most.
#[test]
fn headline_no_failures_no_update_loss() {
    let n = 400;

    let (registry, name) = iot_registry(true);
    let mut crdt = fabriccrdt_simulation(PipelineConfig::paper(25, 42), registry);
    crdt.seed_state("d1", br#"{"deviceID":"d1","readings":[]}"#.to_vec());
    let crdt_metrics = crdt.run(hot_key_schedule(name, n, 300.0));

    assert_eq!(crdt_metrics.successful(), n, "no failure requirement");
    // No update loss: the committed document holds every divergent
    // reading that was concurrent in some block. The committed doc after
    // the run must contain the last block's merged readings; stronger:
    // every reading committed in the block it was merged in. We check
    // the global stronger property via the blockchain below.
    let chain = crdt.peer().chain();
    chain.verify_integrity().expect("chain integrity");
    // Every submitted reading appears in some committed block's write
    // set (merged values accumulate per block).
    let mut seen = std::collections::HashSet::new();
    for block in chain.iter() {
        for tx in &block.transactions {
            if let Some(entry) = tx.rwset.writes.get("d1") {
                if let Ok(doc) = Value::from_bytes(&entry.value) {
                    if let Some(readings) = doc.get("readings").and_then(Value::as_list) {
                        for r in readings {
                            seen.insert(r.as_str().unwrap().to_owned());
                        }
                    }
                }
            }
        }
    }
    for i in 0..n {
        assert!(seen.contains(&format!("r{i}")), "reading r{i} lost");
    }

    let (registry, name) = iot_registry(false);
    let mut fabric = fabric_simulation(PipelineConfig::paper(400, 42), registry);
    fabric.seed_state("d1", br#"{"deviceID":"d1","readings":[]}"#.to_vec());
    let fabric_metrics = fabric.run(hot_key_schedule(name, n, 300.0));
    assert!(
        fabric_metrics.successful() < n / 5,
        "Fabric rejects most: {}",
        fabric_metrics.successful()
    );
}

/// The blockchain hash chain stays verifiable even though FabricCRDT
/// re-seals merged blocks.
#[test]
fn merged_chain_integrity() {
    let (registry, name) = iot_registry(true);
    let mut sim = fabriccrdt_simulation(PipelineConfig::paper(10, 1), registry);
    sim.seed_state("d1", br#"{"readings":[]}"#.to_vec());
    sim.run(hot_key_schedule(name, 100, 500.0));
    let chain = sim.peer().chain();
    assert!(chain.height() > 5);
    chain.verify_integrity().expect("hash chain verifies");
    // Every non-genesis block carries filled validation codes.
    for block in chain.iter().skip(1) {
        assert_eq!(block.validation_codes.len(), block.transactions.len());
    }
}

/// Within one block, all conflicting CRDT transactions end up with the
/// identical converged write value (paper Listing 2: "The write-set of
/// Transaction 2 is identical to the write-set of Transaction 1").
#[test]
fn converged_write_sets_identical_within_block() {
    let (registry, name) = iot_registry(true);
    let mut sim = fabriccrdt_simulation(PipelineConfig::paper(50, 2), registry);
    sim.seed_state("d1", br#"{"readings":[]}"#.to_vec());
    sim.run(hot_key_schedule(name, 50, 2000.0));
    let chain = sim.peer().chain();
    for block in chain.iter().skip(1) {
        let values: Vec<&Vec<u8>> = block
            .transactions
            .iter()
            .filter_map(|tx| tx.rwset.writes.get("d1").map(|e| &e.value))
            .collect();
        for pair in values.windows(2) {
            assert_eq!(pair[0], pair[1], "block {}", block.header.number);
        }
    }
}

/// Multi-phase runs on the same network: state persists, ids stay
/// unique, later phases read earlier phases' commits.
#[test]
fn multi_phase_runs_share_ledger_state() {
    let (registry, name) = iot_registry(true);
    let mut sim = fabriccrdt_simulation(PipelineConfig::paper(25, 3), registry);
    sim.seed_state("d1", br#"{"readings":[]}"#.to_vec());
    let phase1 = sim.run(hot_key_schedule(name, 30, 300.0));
    assert_eq!(phase1.successful(), 30);
    let after_phase1 = sim.peer().chain().height();

    let phase2 = sim.run(hot_key_schedule(name, 30, 300.0));
    assert_eq!(phase2.successful(), 30, "fresh nonces, no duplicate ids");
    assert!(sim.peer().chain().height() > after_phase1);
    sim.peer().chain().verify_integrity().unwrap();
}

/// A chaincode that rejects the proposal produces a failed request that
/// never reaches the orderer.
#[test]
fn failing_proposals_never_reach_ordering() {
    struct AlwaysFails;
    impl Chaincode for AlwaysFails {
        fn name(&self) -> &str {
            "fails"
        }
        fn invoke(
            &self,
            _stub: &mut ChaincodeStub<'_>,
            _args: &[String],
        ) -> Result<(), ChaincodeError> {
            Err(ChaincodeError::new("business rule violated"))
        }
    }
    let mut registry = ChaincodeRegistry::new();
    registry.deploy(Arc::new(AlwaysFails));
    let mut sim = fabriccrdt_simulation(PipelineConfig::paper(25, 4), registry);
    let metrics = sim.run(vec![
        (SimTime::ZERO, TxRequest::new("fails", vec![])),
        (SimTime::from_millis(1), TxRequest::new("fails", vec![])),
    ]);
    assert_eq!(metrics.successful(), 0);
    assert_eq!(metrics.failed(), 2);
    assert_eq!(metrics.blocks_committed, 0);
}

/// The experiment runner agrees with a hand-built simulation for the
/// same parameters (same seed, same workload family).
#[test]
fn experiment_runner_end_to_end() {
    let result = ExperimentConfig {
        total_txs: 200,
        ..ExperimentConfig::paper_defaults()
    }
    .run();
    assert_eq!(result.successful, 200);
    assert_eq!(result.failed, 0);
    assert!(result.throughput_tps > 50.0);
    assert!(result.avg_latency_secs.unwrap() > 0.0);

    let fabric = ExperimentConfig {
        total_txs: 200,
        ..ExperimentConfig::paper_defaults().for_system(SystemKind::Fabric)
    }
    .run();
    assert!(fabric.successful < 40);
}

/// Mixed CRDT / non-CRDT blocks: merges and MVCC coexist (Figure 2).
#[test]
fn mixed_blocks_validate_both_paths() {
    struct Plain;
    impl Chaincode for Plain {
        fn name(&self) -> &str {
            "plain"
        }
        fn invoke(
            &self,
            stub: &mut ChaincodeStub<'_>,
            args: &[String],
        ) -> Result<(), ChaincodeError> {
            stub.get_state(&args[0]);
            stub.put_state(&args[0], b"x".to_vec());
            Ok(())
        }
    }
    let mut registry = ChaincodeRegistry::new();
    registry.deploy(Arc::new(IotChaincode::crdt()));
    registry.deploy(Arc::new(Plain));

    let mut sim = fabriccrdt_simulation(PipelineConfig::paper(25, 5), registry);
    sim.seed_state("doc", br#"{"readings":[]}"#.to_vec());
    sim.seed_state("counter", b"0".to_vec());

    let mut schedule = Vec::new();
    for i in 0u64..100 {
        let at = SimTime::from_millis(i * 3);
        if i % 2 == 0 {
            let json = format!(r#"{{"readings":["r{i}"]}}"#);
            schedule.push((
                at,
                TxRequest::new(
                    "iot-crdt",
                    IotChaincode::args(&["doc".into()], &["doc".into()], &json),
                ),
            ));
        } else {
            schedule.push((at, TxRequest::new("plain", vec!["counter".into()])));
        }
    }
    let metrics = sim.run(schedule);
    let merged = metrics
        .records
        .iter()
        .filter(|r| r.code == Some(ValidationCode::ValidMerged))
        .count();
    let mvcc_failed = metrics.failures_with(ValidationCode::MvccConflict);
    assert_eq!(merged, 50, "all CRDT transactions merge");
    assert!(mvcc_failed > 0, "hot-key plain transactions still fail");
}

/// Determinism across identical full runs, including the committed
/// world state, not just the metrics.
#[test]
fn full_runs_are_bit_identical() {
    let run = || {
        let (registry, name) = iot_registry(true);
        let mut sim = fabriccrdt_simulation(PipelineConfig::paper(25, 77), registry);
        sim.seed_state("d1", br#"{"readings":[]}"#.to_vec());
        let metrics = sim.run(hot_key_schedule(name, 150, 300.0));
        let state: Vec<(String, Vec<u8>)> = sim
            .peer()
            .state()
            .iter()
            .map(|(k, v)| (k.clone(), v.value.clone()))
            .collect();
        (metrics.end_time, metrics.successful(), state)
    };
    assert_eq!(run(), run());
}
