//! Regression guards for the paper-shape properties the reproduction is
//! calibrated to (EXPERIMENTS.md). If a code or calibration change
//! breaks the *shape* of any figure — who wins, which direction a curve
//! bends — these tests fail long before anyone re-reads the plots.
//!
//! Scaled-down cells (hundreds of transactions) keep the suite fast; the
//! shapes under test are scale-invariant.

use fabriccrdt_repro::workload::experiment::{ExperimentConfig, SystemKind};
use fabriccrdt_repro::workload::generator::JsonShape;

fn base(txs: usize) -> ExperimentConfig {
    ExperimentConfig {
        total_txs: txs,
        ..ExperimentConfig::paper_defaults()
    }
}

/// Figure 3 shape: FabricCRDT throughput declines with block size and
/// never fails; Fabric commits only a handful under full conflict.
#[test]
fn fig3_shape_block_size_penalty() {
    let mut previous = f64::INFINITY;
    for block_size in [25, 100, 400] {
        let result = ExperimentConfig {
            block_size,
            ..base(800)
        }
        .run();
        assert_eq!(
            result.failed, 0,
            "FabricCRDT never fails (block {block_size})"
        );
        assert!(
            result.throughput_tps < previous + 5.0,
            "throughput must not rise with block size: {} at {block_size} after {previous}",
            result.throughput_tps
        );
        previous = result.throughput_tps;
    }

    let fabric = base(800).for_system(SystemKind::Fabric).run();
    assert!(
        fabric.successful < 80,
        "Fabric commits only a few under full conflict: {}",
        fabric.successful
    );
}

/// Figure 4 shape: more write keys cost FabricCRDT throughput; more
/// read keys cost some too; never any failures.
#[test]
fn fig4_shape_rw_key_costs() {
    let one = base(600).run();
    let more_writes = ExperimentConfig {
        write_keys: 3,
        ..base(600)
    }
    .run();
    let more_reads = ExperimentConfig {
        read_keys: 5,
        ..base(600)
    }
    .run();
    assert!(more_writes.throughput_tps < one.throughput_tps * 0.8);
    assert!(more_reads.throughput_tps < one.throughput_tps);
    assert_eq!(more_writes.failed + more_reads.failed, 0);
}

/// Figure 5 shape: JSON complexity costs FabricCRDT throughput
/// monotonically; Fabric is flat in complexity.
#[test]
fn fig5_shape_complexity_penalty() {
    let flat = ExperimentConfig {
        shape: JsonShape::complexity(1, 1),
        ..base(600)
    }
    .run();
    let deep = ExperimentConfig {
        shape: JsonShape::complexity(4, 4),
        ..base(600)
    }
    .run();
    assert!(deep.throughput_tps < flat.throughput_tps * 0.5);
    assert_eq!(deep.failed, 0);

    let fabric_flat = ExperimentConfig {
        shape: JsonShape::complexity(1, 1),
        ..base(600).for_system(SystemKind::Fabric)
    }
    .run();
    let fabric_deep = ExperimentConfig {
        shape: JsonShape::complexity(4, 4),
        ..base(600).for_system(SystemKind::Fabric)
    }
    .run();
    assert_eq!(
        fabric_flat.successful, fabric_deep.successful,
        "Fabric never inspects values"
    );
}

/// Figure 6 shape: throughput tracks offered load until saturation,
/// then latency blows up.
#[test]
fn fig6_shape_saturation() {
    let low = ExperimentConfig {
        rate_tps: 100.0,
        ..base(600)
    }
    .run();
    let high = ExperimentConfig {
        rate_tps: 500.0,
        ..base(600)
    }
    .run();
    assert!(
        (low.throughput_tps - 100.0).abs() < 10.0,
        "{}",
        low.throughput_tps
    );
    assert!(high.throughput_tps < 320.0, "saturation cap");
    assert!(
        high.avg_latency_secs.unwrap() > low.avg_latency_secs.unwrap() * 2.0,
        "queueing latency"
    );
    assert_eq!(high.failed, 0);
}

/// Figure 7 shape: comparable systems at zero conflicts; Fabric's
/// failures grow roughly linearly with the conflicting share;
/// FabricCRDT never fails.
#[test]
fn fig7_shape_conflict_gradient() {
    let crdt_zero = ExperimentConfig {
        conflict_pct: 0,
        ..base(600)
    }
    .run();
    let fabric_zero = ExperimentConfig {
        conflict_pct: 0,
        ..base(600).for_system(SystemKind::Fabric)
    }
    .run();
    assert_eq!(crdt_zero.failed, 0);
    assert_eq!(fabric_zero.failed, 0, "no conflicts, no failures");

    let mut last_failed = 0;
    for pct in [25u8, 50, 75] {
        let fabric = ExperimentConfig {
            conflict_pct: pct,
            ..base(600).for_system(SystemKind::Fabric)
        }
        .run();
        assert!(
            fabric.failed > last_failed,
            "failures grow with conflict share"
        );
        last_failed = fabric.failed;

        let crdt = ExperimentConfig {
            conflict_pct: pct,
            ..base(600)
        }
        .run();
        assert_eq!(crdt.failed, 0, "FabricCRDT never fails at {pct}%");
    }
}

/// Headline calibration: FabricCRDT saturates in the paper's operating
/// band (paper: 267 tx/s; accept 230–320 to allow recalibration slack).
#[test]
fn headline_saturation_band() {
    let result = base(2000).run();
    assert!(
        (230.0..320.0).contains(&result.throughput_tps),
        "saturated throughput {} outside the paper band",
        result.throughput_tps
    );
    assert_eq!(result.successful, 2000);
}
