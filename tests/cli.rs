//! Integration tests for the `fabriccrdt-repro` CLI binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fabriccrdt-repro"))
}

fn run(args: &[&str]) -> (bool, String, String) {
    let output = cli().args(args).output().expect("binary runs");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn help_lists_commands() {
    let (ok, stdout, _) = run(&["--help"]);
    assert!(ok);
    for command in ["experiment", "compare", "export-chain", "verify-chain"] {
        assert!(stdout.contains(command), "missing {command} in {stdout}");
    }
}

#[test]
fn no_args_prints_usage() {
    let (ok, stdout, _) = run(&[]);
    assert!(ok);
    assert!(stdout.contains("reproduction CLI"));
}

#[test]
fn unknown_command_fails() {
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn experiment_runs_and_reports() {
    let (ok, stdout, _) = run(&[
        "experiment",
        "--system",
        "fabriccrdt",
        "--txs",
        "200",
        "--conflicts",
        "100",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("system      : FabricCRDT"));
    assert!(stdout.contains("successful  : 200"));
    assert!(stdout.contains("failed      : 0"));
}

#[test]
fn experiment_rejects_bad_system() {
    let (ok, _, stderr) = run(&["experiment", "--system", "bitcoin"]);
    assert!(!ok);
    assert!(stderr.contains("unknown system"));
}

#[test]
fn experiment_rejects_bad_number() {
    let (ok, _, stderr) = run(&["experiment", "--txs", "many"]);
    assert!(!ok);
    assert!(stderr.contains("expects a number"));
}

#[test]
fn compare_prints_all_three_systems() {
    let (ok, stdout, _) = run(&["compare", "--txs", "300"]);
    assert!(ok, "{stdout}");
    for system in ["Fabric", "Fabric++", "FabricCRDT"] {
        assert!(stdout.contains(system), "missing {system}");
    }
}

#[test]
fn export_then_verify_chain() {
    let dir = std::env::temp_dir().join(format!("fabriccrdt-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("chain.bin");
    let path_str = path.to_str().unwrap();

    let (ok, stdout, stderr) = run(&["export-chain", path_str, "--txs", "120"]);
    assert!(ok, "export failed: {stderr}");
    assert!(stdout.contains("wrote"));

    let (ok, stdout, stderr) = run(&["verify-chain", path_str]);
    assert!(ok, "verify failed: {stderr}");
    assert!(stdout.contains("chain OK"));
    assert!(stdout.contains("120 transactions"));

    // Corrupt the file; verification must fail.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&path, &bytes).unwrap();
    let (ok, _, stderr) = run(&["verify-chain", path_str]);
    assert!(!ok);
    assert!(
        stderr.contains("decoding") || stderr.contains("integrity"),
        "{stderr}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn verify_chain_missing_file_fails_cleanly() {
    let (ok, _, stderr) = run(&["verify-chain", "/nonexistent/chain.bin"]);
    assert!(!ok);
    assert!(stderr.contains("reading"));
}
