//! Micro-benchmarks for the hot paths behind the figures: SHA-256 and
//! Merkle hashing (block sealing), JSON parse/serialize (chaincode
//! payloads), JSON-CRDT merging at several block sizes (the mechanism
//! behind Figure 3's block-size penalty), MVCC validation, the
//! FabricCRDT merge-validate path, and orderer block cutting.
//!
//! The harness is self-contained (no criterion) so the workspace builds
//! offline: each benchmark is warmed up, then timed over enough
//! iterations to fill a fixed measurement window, reporting ns/iter and
//! derived throughput.
//!
//! Run with: `cargo bench` (or `cargo bench -- <filter>`), and
//! `BENCH_QUICK=1 cargo bench` for a fast smoke pass.

use std::hint::black_box;
use std::time::{Duration, Instant};

use fabriccrdt::validator::CrdtValidator;
use fabriccrdt_crypto::{sha256, Identity, MerkleTree};
use fabriccrdt_fabric::config::BlockCutConfig;
use fabriccrdt_fabric::orderer::Orderer;
use fabriccrdt_fabric::validator::{BlockValidator, FabricValidator};
use fabriccrdt_jsoncrdt::json::Value;
use fabriccrdt_jsoncrdt::{JsonCrdt, ReplicaId};
use fabriccrdt_ledger::block::Block;
use fabriccrdt_ledger::rwset::ReadWriteSet;
use fabriccrdt_ledger::transaction::{Transaction, TxId};
use fabriccrdt_ledger::version::Height;
use fabriccrdt_ledger::worldstate::WorldState;
use fabriccrdt_sim::time::SimTime;

/// Times `f` and prints one report line. `elements`/`bytes` drive the
/// optional throughput columns.
struct Bench {
    filter: Option<String>,
    warmup: Duration,
    window: Duration,
}

impl Bench {
    fn from_env() -> Self {
        let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0");
        // `cargo bench -- <filter>` passes the filter as an argument;
        // ignore harness flags like `--bench`.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with("--"));
        Bench {
            filter,
            warmup: if quick {
                Duration::from_millis(5)
            } else {
                Duration::from_millis(150)
            },
            window: if quick {
                Duration::from_millis(20)
            } else {
                Duration::from_millis(500)
            },
        }
    }

    fn run<T>(
        &self,
        name: &str,
        elements: Option<u64>,
        bytes: Option<u64>,
        mut f: impl FnMut() -> T,
    ) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
        let iters =
            (self.window.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 5_000_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        let ns = elapsed.as_nanos() as f64 / iters as f64;
        let mut line = format!("{name:<40} {ns:>14.1} ns/iter  ({iters} iters)");
        let secs = ns / 1e9;
        if let Some(n) = elements {
            line.push_str(&format!("  {:>10.0} elem/s", n as f64 / secs));
        }
        if let Some(b) = bytes {
            line.push_str(&format!(
                "  {:>8.1} MiB/s",
                b as f64 / secs / (1024.0 * 1024.0)
            ));
        }
        println!("{line}");
    }
}

fn payload(i: usize) -> String {
    format!(
        r#"{{"deviceID":"Device1","readings":["{}.0"]}}"#,
        40 + i % 30
    )
}

fn crdt_tx(n: u64, stale: bool) -> Transaction {
    let client = Identity::new("client", "org1");
    let mut rwset = ReadWriteSet::new();
    let version = if stale {
        Some(Height::new(0, 0))
    } else {
        Some(Height::new(1, 0))
    };
    rwset.reads.record("hot", version);
    rwset
        .writes
        .put_crdt("hot", payload(n as usize).into_bytes());
    Transaction {
        id: TxId::derive(&client, n, "iot"),
        client,
        chaincode: "iot".into(),
        rwset,
        endorsements: Vec::new(),
    }
}

fn plain_tx(n: u64) -> Transaction {
    let client = Identity::new("client", "org1");
    let mut rwset = ReadWriteSet::new();
    rwset.reads.record("hot", Some(Height::new(1, 0)));
    rwset.writes.put("hot", payload(n as usize).into_bytes());
    Transaction {
        id: TxId::derive(&client, n, "iot"),
        client,
        chaincode: "iot".into(),
        rwset,
        endorsements: Vec::new(),
    }
}

fn seeded_state() -> WorldState {
    let mut state = WorldState::new();
    state.put("hot".into(), payload(0).into_bytes(), Height::new(1, 0));
    state
}

fn main() {
    let bench = Bench::from_env();

    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        bench.run(&format!("sha256/{size}"), None, Some(size as u64), || {
            sha256::digest(&data)
        });
    }

    let leaves: Vec<Vec<u8>> = (0..256).map(|i| format!("tx-{i}").into_bytes()).collect();
    bench.run("merkle/build-256-leaves", Some(256), None, || {
        MerkleTree::from_leaves(&leaves).root()
    });

    let text = payload(7);
    bench.run(
        "json/parse-iot-payload",
        None,
        Some(text.len() as u64),
        || Value::parse(&text).unwrap(),
    );
    let value = Value::parse(&text).unwrap();
    bench.run("json/serialize-iot-payload", None, None, || {
        value.to_compact_string()
    });

    for n in [10usize, 25, 100, 400] {
        let values: Vec<Value> = (0..n).map(|i| Value::parse(&payload(i)).unwrap()).collect();
        bench.run(
            &format!("jsoncrdt/merge-n-transactions/{n}"),
            Some(n as u64),
            None,
            || {
                let mut doc = JsonCrdt::new(ReplicaId(1));
                for v in &values {
                    doc.merge_value(v).unwrap();
                }
                doc.to_value()
            },
        );
    }

    for n in [25usize, 400] {
        let txs: Vec<Transaction> = (0..n as u64).map(plain_tx).collect();
        bench.run(
            &format!("validator/fabric-mvcc/{n}"),
            Some(n as u64),
            None,
            || {
                let mut state = seeded_state();
                let mut block = Block::assemble(2, [0; 32], txs.clone());
                FabricValidator::new().validate_and_commit(&mut block, &mut state, &[])
            },
        );
    }

    for n in [25usize, 100, 400] {
        let txs: Vec<Transaction> = (0..n as u64).map(|i| crdt_tx(i, true)).collect();
        bench.run(
            &format!("validator/fabriccrdt-merge/{n}"),
            Some(n as u64),
            None,
            || {
                let mut state = seeded_state();
                let mut block = Block::assemble(2, [0; 32], txs.clone());
                CrdtValidator::new().validate_and_commit(&mut block, &mut state, &[])
            },
        );
    }

    {
        use fabriccrdt_jsoncrdt::text::TextDoc;
        bench.run("rga/type-500-chars", Some(500), None, || {
            let mut doc = TextDoc::new(ReplicaId(1));
            for i in 0..500 {
                doc.insert(i, "x");
            }
            doc.text()
        });
        let mut source = TextDoc::new(ReplicaId(1));
        let mut ops = Vec::new();
        for i in 0..500 {
            ops.extend(source.insert(i, "x"));
        }
        bench.run("rga/replicate-500-ops", Some(500), None, || {
            let mut replica = TextDoc::new(ReplicaId(2));
            for op in &ops {
                replica.apply(op.clone());
            }
            replica.len()
        });
    }

    {
        use fabriccrdt_jsoncrdt::Editor;
        bench.run("editor/100-assigns", Some(100), None, || {
            let mut ed = Editor::new(ReplicaId(1));
            for i in 0..100 {
                ed.assign(&["section", "field"], format!("v{i}")).unwrap();
            }
            ed.document().applied_len()
        });
    }

    for n in [25usize, 400] {
        // A mixed batch: writers on a hot key plus readers of it — the
        // workload the Fabric++ baseline reorders profitably.
        let client = Identity::new("client", "org1");
        let batch: Vec<Transaction> = (0..n as u64)
            .map(|i| {
                let mut rwset = ReadWriteSet::new();
                if i % 2 == 0 {
                    rwset.writes.put("hot", vec![i as u8]);
                } else {
                    rwset.reads.record("hot", Some(Height::new(1, 0)));
                    rwset.writes.put(format!("priv-{i}"), vec![i as u8]);
                }
                Transaction {
                    id: TxId::derive(&client, i, "cc"),
                    client: client.clone(),
                    chaincode: "cc".into(),
                    rwset,
                    endorsements: Vec::new(),
                }
            })
            .collect();
        bench.run(&format!("reorder/batch/{n}"), Some(n as u64), None, || {
            fabriccrdt_fabric::reorder::reorder_batch(batch.clone())
        });
    }

    {
        let txs: Vec<Transaction> = (0..400).map(plain_tx).collect();
        bench.run("orderer/cut-400-tx-blocks", Some(400), None, || {
            let mut orderer = Orderer::new(BlockCutConfig::with_max_tx(400));
            let mut cut = 0;
            for tx in txs.clone() {
                if orderer.receive(tx, SimTime::ZERO).0.is_some() {
                    cut += 1;
                }
            }
            cut
        });
    }
}
