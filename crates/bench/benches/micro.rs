//! Criterion micro-benchmarks for the hot paths behind the figures:
//! SHA-256 and Merkle hashing (block sealing), JSON parse/serialize
//! (chaincode payloads), JSON-CRDT merging at several block sizes (the
//! mechanism behind Figure 3's block-size penalty), MVCC validation, the
//! FabricCRDT merge-validate path, and orderer block cutting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use fabriccrdt::validator::CrdtValidator;
use fabriccrdt_crypto::{sha256, Identity, MerkleTree};
use fabriccrdt_fabric::config::BlockCutConfig;
use fabriccrdt_fabric::orderer::Orderer;
use fabriccrdt_fabric::validator::{BlockValidator, FabricValidator};
use fabriccrdt_jsoncrdt::json::Value;
use fabriccrdt_jsoncrdt::{JsonCrdt, ReplicaId};
use fabriccrdt_ledger::block::Block;
use fabriccrdt_ledger::rwset::ReadWriteSet;
use fabriccrdt_ledger::transaction::{Transaction, TxId};
use fabriccrdt_ledger::version::Height;
use fabriccrdt_ledger::worldstate::WorldState;
use fabriccrdt_sim::time::SimTime;

fn payload(i: usize) -> String {
    format!(r#"{{"deviceID":"Device1","readings":["{}.0"]}}"#, 40 + i % 30)
}

fn crdt_tx(n: u64, stale: bool) -> Transaction {
    let client = Identity::new("client", "org1");
    let mut rwset = ReadWriteSet::new();
    let version = if stale {
        Some(Height::new(0, 0))
    } else {
        Some(Height::new(1, 0))
    };
    rwset.reads.record("hot", version);
    rwset.writes.put_crdt("hot", payload(n as usize).into_bytes());
    Transaction {
        id: TxId::derive(&client, n, "iot"),
        client,
        chaincode: "iot".into(),
        rwset,
        endorsements: Vec::new(),
    }
}

fn plain_tx(n: u64) -> Transaction {
    let client = Identity::new("client", "org1");
    let mut rwset = ReadWriteSet::new();
    rwset.reads.record("hot", Some(Height::new(1, 0)));
    rwset.writes.put("hot", payload(n as usize).into_bytes());
    Transaction {
        id: TxId::derive(&client, n, "iot"),
        client,
        chaincode: "iot".into(),
        rwset,
        endorsements: Vec::new(),
    }
}

fn seeded_state() -> WorldState {
    let mut state = WorldState::new();
    state.put("hot".into(), payload(0).into_bytes(), Height::new(1, 0));
    state
}

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| sha256::digest(data));
        });
    }
    group.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let leaves: Vec<Vec<u8>> = (0..256).map(|i| format!("tx-{i}").into_bytes()).collect();
    c.bench_function("merkle/build-256-leaves", |b| {
        b.iter(|| MerkleTree::from_leaves(&leaves).root());
    });
}

fn bench_json(c: &mut Criterion) {
    let text = payload(7);
    c.bench_function("json/parse-iot-payload", |b| {
        b.iter(|| Value::parse(&text).unwrap());
    });
    let value = Value::parse(&text).unwrap();
    c.bench_function("json/serialize-iot-payload", |b| {
        b.iter(|| value.to_compact_string());
    });
}

fn bench_jsoncrdt_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("jsoncrdt/merge-n-transactions");
    for n in [10usize, 25, 100, 400] {
        let values: Vec<Value> = (0..n).map(|i| Value::parse(&payload(i)).unwrap()).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &values, |b, values| {
            b.iter(|| {
                let mut doc = JsonCrdt::new(ReplicaId(1));
                for v in values {
                    doc.merge_value(v).unwrap();
                }
                doc.to_value()
            });
        });
    }
    group.finish();
}

fn bench_mvcc(c: &mut Criterion) {
    let mut group = c.benchmark_group("validator/fabric-mvcc");
    for n in [25usize, 400] {
        let txs: Vec<Transaction> = (0..n as u64).map(plain_tx).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &txs, |b, txs| {
            b.iter(|| {
                let mut state = seeded_state();
                let mut block = Block::assemble(2, [0; 32], txs.clone());
                FabricValidator::new().validate_and_commit(&mut block, &mut state, &[])
            });
        });
    }
    group.finish();
}

fn bench_crdt_validator(c: &mut Criterion) {
    let mut group = c.benchmark_group("validator/fabriccrdt-merge");
    for n in [25usize, 100, 400] {
        let txs: Vec<Transaction> = (0..n as u64).map(|i| crdt_tx(i, true)).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &txs, |b, txs| {
            b.iter(|| {
                let mut state = seeded_state();
                let mut block = Block::assemble(2, [0; 32], txs.clone());
                CrdtValidator::new().validate_and_commit(&mut block, &mut state, &[])
            });
        });
    }
    group.finish();
}

fn bench_rga_text(c: &mut Criterion) {
    use fabriccrdt_jsoncrdt::text::TextDoc;
    c.bench_function("rga/type-500-chars", |b| {
        b.iter(|| {
            let mut doc = TextDoc::new(ReplicaId(1));
            for i in 0..500 {
                doc.insert(i, "x");
            }
            doc.text()
        });
    });
    c.bench_function("rga/replicate-500-ops", |b| {
        let mut source = TextDoc::new(ReplicaId(1));
        let mut ops = Vec::new();
        for i in 0..500 {
            ops.extend(source.insert(i, "x"));
        }
        b.iter(|| {
            let mut replica = TextDoc::new(ReplicaId(2));
            for op in &ops {
                replica.apply(op.clone());
            }
            replica.len()
        });
    });
}

fn bench_editor(c: &mut Criterion) {
    use fabriccrdt_jsoncrdt::Editor;
    c.bench_function("editor/100-assigns", |b| {
        b.iter(|| {
            let mut ed = Editor::new(ReplicaId(1));
            for i in 0..100 {
                ed.assign(&["section", "field"], format!("v{i}")).unwrap();
            }
            ed.document().applied_len()
        });
    });
}

fn bench_reorder(c: &mut Criterion) {
    // A mixed batch: writers on a hot key plus readers of it — the
    // workload the Fabric++ baseline reorders profitably.
    let mut group = c.benchmark_group("reorder/batch");
    for n in [25usize, 400] {
        let client = Identity::new("client", "org1");
        let batch: Vec<Transaction> = (0..n as u64)
            .map(|i| {
                let mut rwset = ReadWriteSet::new();
                if i % 2 == 0 {
                    rwset.writes.put("hot", vec![i as u8]);
                } else {
                    rwset.reads.record("hot", Some(Height::new(1, 0)));
                    rwset.writes.put(format!("priv-{i}"), vec![i as u8]);
                }
                Transaction {
                    id: TxId::derive(&client, i, "cc"),
                    client: client.clone(),
                    chaincode: "cc".into(),
                    rwset,
                    endorsements: Vec::new(),
                }
            })
            .collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &batch, |b, batch| {
            b.iter(|| fabriccrdt_fabric::reorder::reorder_batch(batch.clone()));
        });
    }
    group.finish();
}

fn bench_orderer(c: &mut Criterion) {
    c.bench_function("orderer/cut-400-tx-blocks", |b| {
        let txs: Vec<Transaction> = (0..400).map(plain_tx).collect();
        b.iter(|| {
            let mut orderer = Orderer::new(BlockCutConfig::with_max_tx(400));
            let mut cut = 0;
            for tx in txs.clone() {
                if orderer.receive(tx, SimTime::ZERO).0.is_some() {
                    cut += 1;
                }
            }
            cut
        });
    });
}

criterion_group!(
    benches,
    bench_sha256,
    bench_merkle,
    bench_json,
    bench_jsoncrdt_merge,
    bench_mvcc,
    bench_crdt_validator,
    bench_rga_text,
    bench_editor,
    bench_reorder,
    bench_orderer,
);
criterion_main!(benches);
