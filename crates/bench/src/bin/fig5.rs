//! Figure 5 + Table 3: impact of JSON object complexity.
//!
//! Sweep the "k-d complexity" of the written JSON object (k top-level
//! keys, each value d levels deep — Listing 4 shows "3-3") over
//! {1-1, 2-2, 3-3, 4-4, 5-5} with the Table 3 workload: 300 tx/s, one
//! read and one write key, all transactions conflicting, each system at
//! its best block size.
//!
//! Paper shape: FabricCRDT throughput decreases and latency increases
//! with complexity (merging more complex JSON CRDTs costs more); Fabric
//! never inspects the values, so its metrics are flat in complexity.

use fabriccrdt_bench::{run_figure, HarnessOptions};
use fabriccrdt_workload::experiment::{ExperimentConfig, SystemKind};
use fabriccrdt_workload::generator::JsonShape;

const COMPLEXITIES: [usize; 5] = [1, 2, 3, 4, 5];

fn main() {
    let options = HarnessOptions::from_args();
    run_figure(
        "Figure 5 / Table 3: impact of JSON complexity (k-d objects)",
        &options,
        &[SystemKind::FabricCrdt, SystemKind::Fabric],
        |system| {
            COMPLEXITIES
                .iter()
                .map(|&k| {
                    let config = ExperimentConfig {
                        shape: JsonShape::complexity(k, k),
                        ..options.base_config().for_system(system)
                    };
                    (format!("{k}-{k}"), config)
                })
                .collect()
        },
    );
}
