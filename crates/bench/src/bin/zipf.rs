//! Extension experiment: Zipf-distributed key popularity.
//!
//! The paper's Figure 7 controls contention with a fixed percentage of
//! transactions on one shared key. Real workloads skew smoothly: key
//! popularity follows a Zipf law. This extension sweeps the Zipf skew
//! `s` over a 100-key space (s = 0 is uniform; s = 1.2 concentrates
//! most traffic on a handful of keys) and shows the same qualitative
//! picture as Figure 7 under a realistic contention model: Fabric's
//! failures grow with skew while FabricCRDT commits everything.
//!
//! Not a paper figure — clearly an extension; reported separately in
//! EXPERIMENTS.md.

use std::sync::Arc;

use fabriccrdt::{fabric_simulation, fabriccrdt_simulation};
use fabriccrdt_bench::HarnessOptions;
use fabriccrdt_fabric::chaincode::{Chaincode, ChaincodeRegistry};
use fabriccrdt_fabric::config::PipelineConfig;
use fabriccrdt_fabric::simulation::TxRequest;
use fabriccrdt_sim::rng::{SimRng, ZipfSampler};
use fabriccrdt_sim::time::SimTime;
use fabriccrdt_workload::iot::IotChaincode;
use fabriccrdt_workload::report::render_table;

const KEYS: usize = 100;
const SKEWS: [f64; 4] = [0.0, 0.6, 0.9, 1.2];

fn schedule(chaincode: &str, n: usize, skew: f64, seed: u64) -> Vec<(SimTime, TxRequest)> {
    let zipf = ZipfSampler::new(KEYS, skew);
    let mut rng = SimRng::seed_from(seed ^ 0xabcd);
    (0..n)
        .map(|i| {
            let key = format!("device-{}", zipf.sample(&mut rng));
            let json = format!(r#"{{"deviceID":"{key}","readings":["r{i}"]}}"#);
            (
                SimTime::from_secs_f64(i as f64 / 300.0),
                TxRequest::new(
                    chaincode,
                    IotChaincode::args(
                        std::slice::from_ref(&key),
                        std::slice::from_ref(&key),
                        &json,
                    ),
                ),
            )
        })
        .collect()
}

fn main() {
    let options = HarnessOptions::from_args();
    let n = options.total_txs;
    println!("=== Extension: Zipf key popularity over {KEYS} keys (not a paper figure) ===\n");

    let mut rows = Vec::new();
    for crdt in [false, true] {
        for &skew in &SKEWS {
            let mut registry = ChaincodeRegistry::new();
            let chaincode: Arc<dyn Chaincode> = if crdt {
                Arc::new(IotChaincode::crdt())
            } else {
                Arc::new(IotChaincode::plain())
            };
            let name = chaincode.name().to_owned();
            registry.deploy(chaincode);
            let seed_doc = br#"{"readings":[]}"#.to_vec();

            let metrics = if crdt {
                let mut sim =
                    fabriccrdt_simulation(PipelineConfig::paper(25, options.seed), registry);
                for k in 0..KEYS {
                    sim.seed_state(format!("device-{k}"), seed_doc.clone());
                }
                sim.run(schedule(&name, n, skew, options.seed))
            } else {
                let mut sim = fabric_simulation(PipelineConfig::paper(400, options.seed), registry);
                for k in 0..KEYS {
                    sim.seed_state(format!("device-{k}"), seed_doc.clone());
                }
                sim.run(schedule(&name, n, skew, options.seed))
            };
            eprintln!(
                "  done: {} s={skew} -> {} ok",
                if crdt { "FabricCRDT" } else { "Fabric" },
                metrics.successful()
            );
            rows.push(vec![
                if crdt { "FabricCRDT" } else { "Fabric" }.to_owned(),
                format!("{skew:.1}"),
                format!("{:.1}", metrics.successful_throughput_tps()),
                metrics
                    .avg_latency_secs()
                    .map_or_else(|| "n/a".to_owned(), |s| format!("{s:.3}")),
                metrics.successful().to_string(),
                metrics.failed().to_string(),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "system",
                "zipf-s",
                "tput(tps)",
                "avg-lat(s)",
                "ok",
                "failed"
            ],
            &rows,
        )
    );
}
