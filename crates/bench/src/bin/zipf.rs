//! Extension experiment: conflict-resolution strategies under Zipf skew.
//!
//! The paper's Figure 7 controls contention with a fixed percentage of
//! transactions on one shared key; real workloads skew smoothly — key
//! popularity follows a Zipf law. This bench sweeps the Zipf skew `s`
//! over a configurable key space and compares four ways of surviving
//! the resulting MVCC conflicts:
//!
//! 1. **fabriccrdt** — merge-commit (the paper's contribution): every
//!    CRDT-flagged conflict merges and commits; nothing fails.
//! 2. **fabric-retry** — vanilla Fabric with the client-side
//!    abort-and-retry loop ([`fabriccrdt_fabric::config::RetryPolicy`]):
//!    failed transactions re-submit with seeded exponential backoff.
//! 3. **fabric-reorder** — Fabric++-style dependency-graph reordering
//!    with early abort at the orderer.
//! 4. **fabric-adaptive** — the conflict-aware adaptive policy: the
//!    orderer's decayed per-key heat tracker gates reordering on batch
//!    conflict density, so cold traffic skips the Tarjan/Kahn cost.
//!
//! Each Fabric arm runs at every retry budget in [`RETRY_BUDGETS`], so
//! the artifact separates what ordering wins from what retrying wins.
//! Results land in `BENCH_zipf_conflict.json` (goodput, wasted
//! validation work, retry counters, latency percentiles per cell) and
//! the table below; EXPERIMENTS.md discusses the crossover.
//!
//! Options beyond the standard harness flags: `--rate TPS` (arrival
//! rate, default 300), `--block-cut N` (overrides both the CRDT 25-tx
//! and Fabric 400-tx paper cuts), `--keys N` (key-space size, default
//! 100).
//!
//! Not a paper figure — clearly an extension; reported separately in
//! EXPERIMENTS.md.

use std::fmt::Write as _;
use std::sync::Arc;

use fabriccrdt::{
    fabric_adaptive_simulation, fabric_reordering_simulation, fabric_simulation,
    fabriccrdt_simulation,
};
use fabriccrdt_bench::HarnessOptions;
use fabriccrdt_fabric::chaincode::{Chaincode, ChaincodeRegistry};
use fabriccrdt_fabric::config::{PipelineConfig, RetryPolicy};
use fabriccrdt_fabric::metrics::RunMetrics;
use fabriccrdt_fabric::simulation::Simulation;
use fabriccrdt_fabric::validator::BlockValidator;
use fabriccrdt_jsoncrdt::json::Value;
use fabriccrdt_workload::iot::IotChaincode;
use fabriccrdt_workload::report::render_table;
use fabriccrdt_workload::zipf::ZipfWorkload;

/// Default key-space size (`--keys` overrides).
const KEYS: usize = 100;
/// Default open-loop arrival rate in tps (`--rate` overrides).
const RATE_TPS: f64 = 300.0;
/// The swept Zipf skews: uniform through heavily concentrated.
const SKEWS: [f64; 4] = [0.0, 0.6, 0.9, 1.2];
/// Retry budgets each Fabric arm runs at (0 = no client retries).
const RETRY_BUDGETS: [usize; 2] = [0, 2];

/// One conflict-resolution strategy under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Strategy {
    MergeCommit,
    AbortRetry,
    ReorderAbort,
    Adaptive,
}

impl Strategy {
    const ALL: [Strategy; 4] = [
        Strategy::MergeCommit,
        Strategy::AbortRetry,
        Strategy::ReorderAbort,
        Strategy::Adaptive,
    ];

    fn label(self) -> &'static str {
        match self {
            Strategy::MergeCommit => "fabriccrdt",
            Strategy::AbortRetry => "fabric-retry",
            Strategy::ReorderAbort => "fabric-reorder",
            Strategy::Adaptive => "fabric-adaptive",
        }
    }

    /// CRDT merge-commit never fails, so retry budgets are moot there.
    fn budgets(self) -> &'static [usize] {
        match self {
            Strategy::MergeCommit => &[0],
            _ => &RETRY_BUDGETS,
        }
    }

    /// The paper block cut for this arm: 25 for FabricCRDT, 400 for
    /// vanilla Fabric (§7.2 calibration).
    fn default_block_cut(self) -> usize {
        match self {
            Strategy::MergeCommit => 25,
            _ => 400,
        }
    }
}

/// One measured cell of the sweep.
struct Cell {
    strategy: Strategy,
    skew: f64,
    retry_budget: usize,
    metrics: RunMetrics,
}

fn run_cell(strategy: Strategy, skew: f64, budget: usize, options: &HarnessOptions) -> RunMetrics {
    let keys = options.keys.unwrap_or(KEYS);
    let rate_tps = options.rate_tps.unwrap_or(RATE_TPS);
    let block_cut = options.block_cut.unwrap_or(strategy.default_block_cut());

    let mut registry = ChaincodeRegistry::new();
    let chaincode: Arc<dyn Chaincode> = match strategy {
        Strategy::MergeCommit => Arc::new(IotChaincode::crdt()),
        _ => Arc::new(IotChaincode::plain()),
    };
    let name = chaincode.name().to_owned();
    registry.deploy(chaincode);

    let mut config = PipelineConfig::paper(block_cut, options.seed);
    if budget > 0 {
        config = config.with_retry_policy(RetryPolicy::calibrated(budget));
    }
    let workload = ZipfWorkload {
        chaincode: name,
        total_txs: options.total_txs,
        keys,
        skew,
        rate_tps,
        seed: options.seed,
    };
    // The two validator types give the match arms different `Simulation`
    // types; the generic driver reunifies them.
    fn drive<V: BlockValidator>(
        mut sim: Simulation<V>,
        keys: usize,
        workload: &ZipfWorkload,
    ) -> RunMetrics {
        for k in 0..keys {
            sim.seed_state(ZipfWorkload::key(k), ZipfWorkload::seed_doc());
        }
        sim.run(workload.schedule())
    }
    match strategy {
        Strategy::MergeCommit => drive(fabriccrdt_simulation(config, registry), keys, &workload),
        Strategy::AbortRetry => drive(fabric_simulation(config, registry), keys, &workload),
        Strategy::ReorderAbort => drive(
            fabric_reordering_simulation(config, registry),
            keys,
            &workload,
        ),
        Strategy::Adaptive => drive(
            fabric_adaptive_simulation(config, registry),
            keys,
            &workload,
        ),
    }
}

fn main() {
    let options = HarnessOptions::from_args();
    let keys = options.keys.unwrap_or(KEYS);
    let rate_tps = options.rate_tps.unwrap_or(RATE_TPS);
    println!(
        "=== Extension: conflict strategies under Zipf skew \
         ({keys} keys, {rate_tps:.0} tps; not a paper figure) ===\n"
    );

    let mut cells: Vec<Cell> = Vec::new();
    for strategy in Strategy::ALL {
        for &budget in strategy.budgets() {
            for &skew in &SKEWS {
                let metrics = run_cell(strategy, skew, budget, &options);
                eprintln!(
                    "  done: {} s={skew} budget={budget} -> {:.1} tps goodput, \
                     {} ok, {} retries",
                    strategy.label(),
                    metrics.successful_throughput_tps(),
                    metrics.successful(),
                    metrics.retry.retries
                );
                cells.push(Cell {
                    strategy,
                    skew,
                    retry_budget: budget,
                    metrics,
                });
            }
        }
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            let m = &c.metrics;
            let policy = m.conflict_policy.as_ref();
            vec![
                c.strategy.label().to_owned(),
                format!("{:.1}", c.skew),
                c.retry_budget.to_string(),
                format!("{:.1}", m.successful_throughput_tps()),
                m.successful().to_string(),
                m.failed().to_string(),
                m.retry.retries.to_string(),
                m.retry.retry_success.to_string(),
                m.retry.wasted_validation_work.to_string(),
                policy.map_or_else(|| "-".to_owned(), |p| p.early_aborts().to_string()),
                policy.map_or_else(|| "-".to_owned(), |p| p.batches_reordered.to_string()),
                m.latency_summary()
                    .percentile(95.0)
                    .map_or_else(|| "n/a".to_owned(), |s| format!("{s:.3}")),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "strategy",
                "zipf-s",
                "budget",
                "goodput(tps)",
                "ok",
                "failed",
                "retries",
                "retry-ok",
                "wasted-work",
                "early-aborts",
                "reordered",
                "p95-lat(s)",
            ],
            &rows,
        )
    );

    // ---- BENCH_zipf_conflict.json ---------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"zipf_conflict\",");
    let _ = writeln!(json, "  \"txs\": {},", options.total_txs);
    let _ = writeln!(json, "  \"seed\": {},", options.seed);
    let _ = writeln!(json, "  \"keys\": {keys},");
    let _ = writeln!(json, "  \"rate_tps\": {rate_tps:.1},");
    let _ = writeln!(json, "  \"skews\": [0.0, 0.6, 0.9, 1.2],");
    let _ = writeln!(json, "  \"retry_budgets\": [0, 2],");
    let _ = writeln!(
        json,
        "  \"crdt_block_cut\": {},",
        options
            .block_cut
            .unwrap_or(Strategy::MergeCommit.default_block_cut())
    );
    let _ = writeln!(
        json,
        "  \"fabric_block_cut\": {},",
        options
            .block_cut
            .unwrap_or(Strategy::AbortRetry.default_block_cut())
    );
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let m = &c.metrics;
        let latency = m.latency_summary();
        let policy = c.metrics.conflict_policy.as_ref();
        let _ = writeln!(
            json,
            "    {{\"strategy\": \"{}\", \"skew\": {:.1}, \"retry_budget\": {}, \
             \"goodput_tps\": {:.1}, \"committed\": {}, \"failed\": {}, \
             \"retries\": {}, \"retry_success\": {}, \
             \"wasted_validation_work\": {}, \
             \"early_aborts\": {}, \"batches_reordered\": {}, \
             \"latency_p50_secs\": {}, \"latency_p95_secs\": {}, \
             \"latency_max_secs\": {}}}{}",
            c.strategy.label(),
            c.skew,
            c.retry_budget,
            m.successful_throughput_tps(),
            m.successful(),
            m.failed(),
            m.retry.retries,
            m.retry.retry_success,
            m.retry.wasted_validation_work,
            policy.map_or(0, |p| p.early_aborts()),
            policy.map_or(0, |p| p.batches_reordered),
            latency
                .percentile(50.0)
                .map_or_else(|| "null".to_owned(), |s| format!("{s:.6}")),
            latency
                .percentile(95.0)
                .map_or_else(|| "null".to_owned(), |s| format!("{s:.6}")),
            latency
                .max()
                .map_or_else(|| "null".to_owned(), |s| format!("{s:.6}")),
            if i + 1 < cells.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_zipf_conflict.json", &json).expect("write BENCH_zipf_conflict.json");

    // Self-validate: the emitted file must parse with the repo's own
    // JSON parser and carry the expected shape.
    let parsed = Value::from_bytes(json.as_bytes()).expect("emitted JSON is well-formed");
    let cell_count = parsed
        .get("cells")
        .and_then(|c| c.as_list().map(<[Value]>::len))
        .expect("cells array present");
    assert_eq!(cell_count, cells.len());
    let first_cell = parsed
        .get("cells")
        .and_then(|c| c.as_list())
        .and_then(<[Value]>::first)
        .expect("at least one cell");
    assert!(first_cell.get("goodput_tps").is_some());
    assert!(first_cell.get("retries").is_some());
    assert!(first_cell.get("wasted_validation_work").is_some());
    println!("wrote BENCH_zipf_conflict.json ({cell_count} cells)");

    // ---- Acceptance self-checks -----------------------------------
    let goodput = |strategy: Strategy, skew: f64, budget: usize| {
        cells
            .iter()
            .find(|c| {
                c.strategy == strategy && (c.skew - skew).abs() < 1e-9 && c.retry_budget == budget
            })
            .map(|c| c.metrics.successful_throughput_tps())
            .expect("cell present")
    };
    // Merge-commit dominates every conflict-avoidance arm at heavy skew.
    let crdt_hot = goodput(Strategy::MergeCommit, 1.2, 0);
    for strategy in [
        Strategy::AbortRetry,
        Strategy::ReorderAbort,
        Strategy::Adaptive,
    ] {
        for &budget in strategy.budgets() {
            let other = goodput(strategy, 1.2, budget);
            assert!(
                crdt_hot >= other,
                "FabricCRDT goodput {crdt_hot:.1} tps fell below {} (budget {budget}) \
                 {other:.1} tps at s=1.2",
                strategy.label()
            );
        }
    }
    // Adaptive's density gate must never cost goodput on uniform traffic
    // relative to always-reordering.
    for &budget in &RETRY_BUDGETS {
        let adaptive = goodput(Strategy::Adaptive, 0.0, budget);
        let reorder = goodput(Strategy::ReorderAbort, 0.0, budget);
        assert!(
            adaptive >= reorder,
            "adaptive goodput {adaptive:.1} tps below always-reorder \
             {reorder:.1} tps at s=0.0 (budget {budget})"
        );
    }
    println!("acceptance self-checks passed (crdt>=all at s=1.2; adaptive>=reorder at s=0.0)");
}
