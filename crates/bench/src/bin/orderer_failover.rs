//! Leader-kill failover experiment for the Raft ordering service.
//!
//! The paper's pipeline assumes an always-up single orderer. This
//! experiment swaps in the `fabriccrdt-ordering` Raft cluster (five
//! nodes, pre-elected leader) and kills the leader mid-run: the cluster
//! must re-elect, the embedded block cutter must resume on the new
//! leader without losing or duplicating a single transaction, and the
//! throughput dip must be bounded by the election timeout.
//!
//! Protocol:
//!
//! 1. Baseline: the same workload through the default single orderer.
//! 2. Failover run: Raft ordering with the leader crashed at 40 % of
//!    the nominal run and restarted at 70 %.
//! 3. Report: throughput buckets around the kill, the commit stall
//!    (the longest gap between consecutive commits starting at or after
//!    the kill), commit-latency percentiles, and the Raft counters
//!    (elections, leader changes, client retries, message loss).
//! 4. Assert: every transaction still commits exactly once, and at
//!    least one re-election happened.
//!
//! Run with: `cargo run --release --bin orderer_failover -- [--txs N] [--seed S] [--csv PATH]`

use std::sync::Arc;

use fabriccrdt::CrdtValidator;
use fabriccrdt_bench::HarnessOptions;
use fabriccrdt_fabric::chaincode::ChaincodeRegistry;
use fabriccrdt_fabric::config::{CrashSpec, PipelineConfig, RaftConfig};
use fabriccrdt_fabric::metrics::RunMetrics;
use fabriccrdt_fabric::simulation::{Simulation, TxRequest};
use fabriccrdt_ordering::RaftOrderingBackend;
use fabriccrdt_sim::time::SimTime;
use fabriccrdt_workload::iot::IotChaincode;

const NODES: usize = 5;
const RATE_TPS: f64 = 300.0;
const BUCKET_MS: u64 = 100;

fn schedule(txs: usize) -> Vec<(SimTime, TxRequest)> {
    (0..txs)
        .map(|i| {
            let json = format!(r#"{{"deviceID":"device1","readings":["r{i}"]}}"#);
            (
                SimTime::from_secs_f64(i as f64 / RATE_TPS),
                TxRequest::new(
                    "iot-crdt",
                    IotChaincode::args(&["device1".into()], &["device1".into()], &json),
                ),
            )
        })
        .collect()
}

fn run(config: PipelineConfig, txs: usize) -> RunMetrics {
    let mut registry = ChaincodeRegistry::new();
    registry.deploy(Arc::new(IotChaincode::crdt()));
    let mut sim = match config.ordering.clone() {
        Some(_) => {
            let backend = Box::new(RaftOrderingBackend::new(&config));
            Simulation::with_ordering(config, CrdtValidator::new(), registry, backend)
        }
        None => Simulation::new(config, CrdtValidator::new(), registry),
    };
    sim.seed_state("device1", br#"{"readings":[]}"#.to_vec());
    sim.run(schedule(txs))
}

/// Sorted commit times of every successful transaction.
fn commit_times(metrics: &RunMetrics) -> Vec<SimTime> {
    let mut times: Vec<SimTime> = metrics
        .records
        .iter()
        .filter_map(|r| r.committed_at)
        .collect();
    times.sort();
    times
}

/// The longest gap between consecutive commits that starts inside
/// `[from, until]`: the commit stall the leader kill caused (bounding
/// the search keeps the end-of-run batch-timeout flush out of it).
/// Returns `(stall_start, stall_duration)`.
fn commit_stall(times: &[SimTime], from: SimTime, until: SimTime) -> Option<(SimTime, SimTime)> {
    times
        .windows(2)
        .filter(|w| w[0] >= from && w[0] <= until)
        .map(|w| (w[0], w[1] - w[0]))
        .max_by_key(|&(_, gap)| gap)
}

fn report_run(label: &str, metrics: &RunMetrics) {
    println!("--- {label} ---");
    println!(
        "  {}/{} committed over {} blocks, end at {:.1} ms, {:.1} tps",
        metrics.successful(),
        metrics.submitted(),
        metrics.blocks_committed,
        metrics.end_time.as_millis_f64(),
        metrics.successful_throughput_tps(),
    );
    let latency = metrics.latency_summary();
    println!(
        "  end-to-end latency: p50 {:.1} ms, p99 {:.1} ms, max {:.1} ms",
        latency.percentile(50.0).unwrap_or(0.0) * 1e3,
        latency.percentile(99.0).unwrap_or(0.0) * 1e3,
        latency.max().unwrap_or(0.0) * 1e3,
    );
}

fn main() {
    let options = HarnessOptions::from_args();
    let txs = options.total_txs.min(10_000);
    let nominal = SimTime::from_secs_f64(txs as f64 / RATE_TPS);
    let crash_at = SimTime::from_micros(nominal.as_micros() * 2 / 5);
    let restart_at = SimTime::from_micros(nominal.as_micros() * 7 / 10);

    println!("Orderer failover: Raft ordering service under a leader kill");
    println!(
        "workload: {txs} CRDT txs at {RATE_TPS} tx/s; {NODES}-node Raft cluster; \
         leader killed at {:.0} ms, restarted at {:.0} ms\n",
        crash_at.as_millis_f64(),
        restart_at.as_millis_f64(),
    );

    // 1. Baseline: the default single orderer.
    let baseline = run(PipelineConfig::paper(25, options.seed), txs);
    report_run("single orderer (baseline)", &baseline);
    println!();

    // 2. Failover run: kill the pre-elected leader (node 0) mid-run.
    let mut raft = RaftConfig::calibrated(NODES);
    raft.faults.crashes.push(CrashSpec {
        peer: 0,
        at: crash_at,
        restart_at,
    });
    let mut config = PipelineConfig::paper(25, options.seed);
    config.ordering = Some(raft);
    let failover = run(config, txs);
    report_run("raft ordering, leader killed", &failover);

    let ordering = failover
        .ordering
        .as_ref()
        .expect("the raft backend reports ordering metrics");
    let commit = ordering.commit_latency_summary();
    println!(
        "  raft: {} election(s), {} leader change(s), final term {}, \
         {} client retries",
        ordering.elections_started,
        ordering.leader_changes,
        ordering.final_term,
        ordering.submission_retries,
    );
    println!(
        "  raft: {} consensus messages sent, {} dropped; \
         block commit latency p50 {:.2} ms, p99 {:.2} ms",
        ordering.messages_sent,
        ordering.messages_dropped,
        commit.percentile(50.0).unwrap_or(0.0) * 1e3,
        commit.percentile(99.0).unwrap_or(0.0) * 1e3,
    );

    // 3. Throughput dip and recovery around the kill.
    let bucket = SimTime::from_millis(BUCKET_MS);
    let series = failover.throughput_series(bucket);
    let times = commit_times(&failover);
    let window_end = crash_at + SimTime::from_secs(2);
    let (stall_start, stall) = commit_stall(&times, crash_at, window_end)
        .expect("the run commits on both sides of the kill");
    println!(
        "  largest commit gap in the 2 s after the kill: {:.1} ms \
         (commits paused {:.1}-{:.1} ms); note the pipeline's own \
         delivery latency hides part of the election — blocks emitted \
         before the kill keep committing during it",
        stall.as_millis_f64(),
        stall_start.as_millis_f64(),
        (stall_start + stall).as_millis_f64(),
    );

    let window_from =
        crash_at.as_micros().saturating_sub(3 * bucket.as_micros()) / bucket.as_micros();
    let window_to = ((crash_at + SimTime::from_millis(1_200)).as_micros() / bucket.as_micros())
        .min(series.counts().len() as u64);
    println!("  commits per {BUCKET_MS} ms bucket around the kill:");
    for i in window_from..window_to {
        let count = series.counts()[i as usize];
        let marker = if SimTime::from_millis(i * BUCKET_MS) <= crash_at
            && crash_at < SimTime::from_millis((i + 1) * BUCKET_MS)
        {
            "  <- leader killed"
        } else {
            ""
        };
        println!(
            "    [{:>5} ms] {:>3} {}{marker}",
            i * BUCKET_MS,
            count,
            "#".repeat(count as usize),
        );
    }

    if let Some(path) = &options.csv {
        let mut csv = String::from("bucket_ms,commits\n");
        for (i, count) in series.counts().iter().enumerate() {
            csv.push_str(&format!("{},{count}\n", i as u64 * BUCKET_MS));
        }
        match std::fs::write(path, csv) {
            Ok(()) => eprintln!("wrote CSV to {path}"),
            Err(e) => eprintln!("could not write CSV to {path}: {e}"),
        }
    }

    // 4. The failover invariants.
    assert_eq!(
        failover.successful(),
        txs,
        "failover lost or failed transactions"
    );
    assert_eq!(baseline.successful(), txs);
    assert!(
        ordering.elections_started >= 1,
        "the leader kill must force a re-election"
    );
    assert!(ordering.leader_changes >= 1);
    println!(
        "\nfailover invariants hold: all {txs} txs committed exactly once, \
         {} re-election(s) ✓",
        ordering.elections_started,
    );
}
