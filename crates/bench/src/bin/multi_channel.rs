//! Multi-channel scaling: aggregate throughput of a sharded deployment.
//!
//! Fabric's horizontal-scaling story is channels — independent ledgers
//! with their own orderer and world state over one shared peer network
//! (Androulaki et al. §3.3). This bench sweeps channel count ×
//! clients-per-channel over the `fabriccrdt-channel` driver: every
//! channel runs the paper's all-conflicting CRDT hot-key workload
//! (§7.2) at `clients × 75 tx/s` on its own key space, multiplexed over
//! one shared gossip network, and the sweep reports *aggregate* TPS —
//! total committed transactions over the slowest channel's span.
//!
//! Invariants asserted every run:
//!
//! 1. The 1-channel deployment reproduces the seed single-channel
//!    gossip pipeline bit-for-bit (`RunMetrics` and ledger bytes).
//! 2. Every channel's gossip replicas reconverge to ledgers
//!    byte-identical to their channel's pipeline peer.
//! 3. Simulated-time aggregate TPS scales with channel count (each
//!    channel adds its own offered load and commits it).
//! 4. The cross-channel transfer primitive commits clean handoffs and
//!    aborts an injected endorsement failure.
//!
//! Wall-clock overhead asserts are hardware-gated (`hardware_limited`
//! is recorded in the JSON): the driver interleaves channels on one
//! thread, so we only bound per-transaction overhead growth, and only
//! on machines with ≥4 hardware threads.
//!
//! Emits `BENCH_multi_channel.json`.
//!
//! Run with: `cargo run --release --bin multi_channel -- [--txs N] [--seed S]`

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use fabriccrdt::CrdtValidator;
use fabriccrdt_bench::HarnessOptions;
use fabriccrdt_channel::fabriccrdt_multi_channel;
use fabriccrdt_fabric::chaincode::ChaincodeRegistry;
use fabriccrdt_fabric::channel::{ChannelId, MultiChannelConfig, TransferOutcome, TransferSpec};
use fabriccrdt_fabric::config::PipelineConfig;
use fabriccrdt_gossip::GossipDelivery;
use fabriccrdt_jsoncrdt::json::Value;
use fabriccrdt_workload::generator::shaped_payload;
use fabriccrdt_workload::{ChannelWorkload, IotChaincode, JsonShape};

const CHANNEL_COUNTS: [usize; 3] = [1, 2, 4];
const CLIENT_COUNTS: [usize; 2] = [2, 4];
const BLOCK_SIZE: usize = 25; // FabricCRDT's best (§7.3)

fn registry() -> ChaincodeRegistry {
    let mut registry = ChaincodeRegistry::new();
    registry.deploy(Arc::new(IotChaincode::crdt()));
    registry
}

fn workload(channels: usize, clients: usize, txs_per_client: usize, seed: u64) -> ChannelWorkload {
    ChannelWorkload {
        clients_per_channel: clients,
        txs_per_client,
        seed,
        ..ChannelWorkload::paper_defaults(channels)
    }
}

struct Cell {
    channels: usize,
    clients: usize,
    total_txs: usize,
    successful: usize,
    aggregate_tps: f64,
    min_channel_tps: f64,
    max_channel_tps: f64,
    end_time_secs: f64,
    wall_ms: f64,
}

/// Runs one sweep cell and checks convergence of every channel's
/// replica set.
fn run_cell(workload: &ChannelWorkload, seed: u64) -> Cell {
    let base = PipelineConfig::paper(BLOCK_SIZE, seed).with_gossip();
    let config = MultiChannelConfig::uniform(base, workload.channels);
    let mut net = fabriccrdt_multi_channel(config, registry());
    let seed_value = shaped_payload(JsonShape::paper_default(), "seed", usize::MAX)
        .to_compact_string()
        .into_bytes();
    let generated = workload.generate();
    for channel_schedule in &generated {
        for key in &channel_schedule.seed_keys {
            net.seed_state(channel_schedule.channel, key.clone(), seed_value.clone());
        }
    }
    let started = Instant::now();
    let rollup = net.run(generated.into_iter().map(|s| s.schedule).collect());
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    net.verify_converged();

    assert_eq!(
        rollup.total_successful(),
        workload.total_txs(),
        "FabricCRDT merges every conflict: all submissions commit"
    );
    let per_channel: Vec<f64> = rollup
        .channels
        .iter()
        .map(|c| c.metrics.successful_throughput_tps())
        .collect();
    Cell {
        channels: workload.channels,
        clients: workload.clients_per_channel,
        total_txs: workload.total_txs(),
        successful: rollup.total_successful(),
        aggregate_tps: rollup.aggregate_tps(),
        min_channel_tps: per_channel.iter().copied().fold(f64::INFINITY, f64::min),
        max_channel_tps: per_channel.iter().copied().fold(0.0, f64::max),
        end_time_secs: rollup.end_time().as_secs_f64(),
        wall_ms,
    }
}

/// Invariant 1: a 1-channel deployment is the seed pipeline,
/// bit-for-bit — same `RunMetrics`, same ledger bytes.
fn assert_single_channel_identity(clients: usize, txs_per_client: usize, seed: u64) {
    let workload = workload(1, clients, txs_per_client, seed);
    let generated = workload.generate();
    let seed_value = shaped_payload(JsonShape::paper_default(), "seed", usize::MAX)
        .to_compact_string()
        .into_bytes();

    let base = PipelineConfig::paper(BLOCK_SIZE, seed).with_gossip();
    let mut single = fabriccrdt::fabriccrdt_simulation_with_delivery(
        base.clone(),
        registry(),
        Box::new(GossipDelivery::new(&base, CrdtValidator::new)),
    );
    for key in &generated[0].seed_keys {
        single.seed_state(key.clone(), seed_value.clone());
    }
    let expected = single.run(generated[0].schedule.clone());

    let mut multi = fabriccrdt_multi_channel(MultiChannelConfig::uniform(base, 1), registry());
    for key in &generated[0].seed_keys {
        multi.seed_state(0, key.clone(), seed_value.clone());
    }
    let rollup = multi.run(vec![generated[0].schedule.clone()]);
    assert_eq!(
        rollup.channels[0].metrics, expected,
        "1-channel metrics must equal the seed pipeline's"
    );
    assert_eq!(
        multi.simulation(0).peer().snapshot(),
        single.peer().snapshot(),
        "1-channel ledger must be byte-identical to the seed pipeline's"
    );
}

/// Invariant 4: the cross-channel handoff commits clean transfers and
/// aborts the injected endorsement failure. Returns (committed,
/// aborted).
fn run_transfers(
    channels: usize,
    clients: usize,
    txs_per_client: usize,
    seed: u64,
) -> (usize, usize) {
    let workload = workload(channels, clients, txs_per_client, seed);
    let base = PipelineConfig::paper(BLOCK_SIZE, seed).with_gossip();
    let config = MultiChannelConfig::uniform(base, channels);
    let mut net = fabriccrdt_multi_channel(config, registry());
    let generated = workload.generate();
    let seed_value = shaped_payload(JsonShape::paper_default(), "seed", usize::MAX)
        .to_compact_string()
        .into_bytes();
    for channel_schedule in &generated {
        for key in &channel_schedule.seed_keys {
            net.seed_state(channel_schedule.channel, key.clone(), seed_value.clone());
        }
    }
    for c in 0..channels {
        net.seed_state(c, format!("asset-ch{c}"), br#"{"owner":"orig"}"#.to_vec());
    }
    net.run(generated.into_iter().map(|s| s.schedule).collect());

    // One handoff per adjacent channel pair; the last one is corrupted.
    let specs: Vec<TransferSpec> = (0..channels - 1)
        .map(|c| TransferSpec {
            key: format!("asset-ch{c}"),
            from: ChannelId(c as u32),
            to: ChannelId(c as u32 + 1),
            inject_failure: c == channels - 2,
            destination_down: false,
        })
        .collect();
    let reports = net.execute_transfers(&specs);
    net.verify_converged();
    let committed = reports
        .iter()
        .filter(|r| r.outcome == TransferOutcome::Committed)
        .count();
    let aborted = reports.len() - committed;
    assert_eq!(aborted, 1, "exactly the injected failure aborts");
    assert_eq!(committed, channels - 2, "every clean handoff commits");
    (committed, aborted)
}

fn main() {
    let options = HarnessOptions::from_args();
    let txs_per_client = (options.total_txs / 100).clamp(10, 100);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let hardware_limited = cores < 4;

    println!("Multi-channel scaling: aggregate TPS over a shared gossip network");
    println!(
        "workload: per-channel all-conflicting CRDT hot key, {txs_per_client} txs/client \
         at 75 tx/s each, block size {BLOCK_SIZE}, seed {} ({cores} hardware threads)",
        options.seed
    );

    print!("checking 1-channel identity against the seed gossip pipeline... ");
    assert_single_channel_identity(*CLIENT_COUNTS.last().unwrap(), txs_per_client, options.seed);
    println!("ok");

    println!(
        "{:>9} {:>8} {:>7} {:>10} {:>13} {:>10} {:>9}",
        "channels", "clients", "txs", "sim secs", "aggregate tps", "ch tps", "wall ms"
    );
    let mut cells: Vec<Cell> = Vec::new();
    for &channels in &CHANNEL_COUNTS {
        for &clients in &CLIENT_COUNTS {
            let cell = run_cell(
                &workload(channels, clients, txs_per_client, options.seed),
                options.seed,
            );
            println!(
                "{:>9} {:>8} {:>7} {:>10.2} {:>13.1} {:>10.1} {:>9.1}",
                cell.channels,
                cell.clients,
                cell.total_txs,
                cell.end_time_secs,
                cell.aggregate_tps,
                cell.max_channel_tps,
                cell.wall_ms,
            );
            cells.push(cell);
        }
    }

    // Invariant 3: simulated-time aggregate TPS scales with channel
    // count — N channels each commit their own offered load over the
    // same span, so the 4-channel deployment must clear well over twice
    // the 1-channel rate at equal clients.
    let clients = *CLIENT_COUNTS.last().unwrap();
    let tps_at = |n: usize| {
        cells
            .iter()
            .find(|c| c.channels == n && c.clients == clients)
            .expect("sweep cell ran")
            .aggregate_tps
    };
    let speedup = tps_at(4) / tps_at(1);
    assert!(
        speedup > 2.5,
        "4-channel aggregate TPS must scale: got {speedup:.2}x"
    );
    println!("aggregate TPS scaling at {clients} clients/channel: {speedup:.2}x (4 channels vs 1)");

    // Hardware-gated wall-clock bound: interleaving 4 channels on one
    // thread must not blow up per-transaction cost.
    let wall_per_tx = |n: usize| {
        let c = cells
            .iter()
            .find(|c| c.channels == n && c.clients == clients)
            .expect("sweep cell ran");
        c.wall_ms / c.total_txs as f64
    };
    if !hardware_limited && txs_per_client >= 50 {
        let overhead = wall_per_tx(4) / wall_per_tx(1);
        assert!(
            overhead < 3.0,
            "per-tx wall cost grew {overhead:.2}x from 1 to 4 channels"
        );
    } else {
        println!("hardware-limited ({cores} threads) or short run: skipping wall-clock bound");
    }

    let (committed, aborted) = run_transfers(
        *CHANNEL_COUNTS.last().unwrap(),
        2,
        txs_per_client.min(20),
        options.seed,
    );
    println!("cross-channel transfers after the workload: {committed} committed, {aborted} aborted (injected)");

    // ---- BENCH_multi_channel.json ----------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"multi_channel\",");
    let _ = writeln!(json, "  \"seed\": {},", options.seed);
    let _ = writeln!(json, "  \"txs_per_client\": {txs_per_client},");
    let _ = writeln!(json, "  \"rate_tps_per_client\": 75.0,");
    let _ = writeln!(json, "  \"block_size\": {BLOCK_SIZE},");
    let _ = writeln!(json, "  \"available_parallelism\": {cores},");
    let _ = writeln!(json, "  \"hardware_limited\": {hardware_limited},");
    let _ = writeln!(json, "  \"single_channel_identity\": true,");
    let _ = writeln!(json, "  \"aggregate_tps_speedup_4ch\": {speedup:.3},");
    let _ = writeln!(json, "  \"transfers_committed\": {committed},");
    let _ = writeln!(json, "  \"transfers_aborted\": {aborted},");
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"channels\": {}, \"clients_per_channel\": {}, \"total_txs\": {}, \
             \"successful\": {}, \"aggregate_tps\": {:.3}, \"min_channel_tps\": {:.3}, \
             \"max_channel_tps\": {:.3}, \"sim_secs\": {:.3}, \"wall_ms\": {:.3}}}{}",
            c.channels,
            c.clients,
            c.total_txs,
            c.successful,
            c.aggregate_tps,
            c.min_channel_tps,
            c.max_channel_tps,
            c.end_time_secs,
            c.wall_ms,
            if i + 1 < cells.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_multi_channel.json", &json).expect("write BENCH_multi_channel.json");

    // Self-validate with the repo's own JSON parser.
    let parsed = Value::from_bytes(json.as_bytes()).expect("emitted JSON is well-formed");
    assert!(parsed.get("aggregate_tps_speedup_4ch").is_some());
    let cell_list = parsed
        .get("cells")
        .and_then(|c| c.as_list())
        .expect("cells array present");
    assert_eq!(cell_list.len(), cells.len());
    let first = cell_list.first().expect("at least one cell");
    assert!(first.get("channels").is_some());
    assert!(first.get("aggregate_tps").is_some());
    println!("wrote BENCH_multi_channel.json ({} cells)", cell_list.len());
}
