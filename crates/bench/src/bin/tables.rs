//! Tables 1–5: the per-experiment configurations of the paper's
//! evaluation, each run once per system at the paper's base point.
//!
//! This binary documents the configuration tables verbatim and prints
//! headline numbers for the base cell of each experiment (the full
//! sweeps are the `fig3` … `fig7` binaries).

use fabriccrdt_bench::HarnessOptions;
use fabriccrdt_workload::experiment::{ExperimentConfig, SystemKind};
use fabriccrdt_workload::generator::JsonShape;
use fabriccrdt_workload::report::{latency_cell, render_table};

fn main() {
    let options = HarnessOptions::from_args();

    println!("=== Configuration tables (paper §7) ===\n");
    let config_rows = vec![
        vec![
            "Table 1 (block size, Fig 3)".to_owned(),
            "rate=300/s, reads=1, writes=1, JSON keys=2, conflicts=100%".to_owned(),
            "block size in {25..1000}".to_owned(),
        ],
        vec![
            "Table 2 (read/write keys, Fig 4)".to_owned(),
            "rate=300/s, JSON keys=2, conflicts=100%".to_owned(),
            "reads, writes in {1,3,5}".to_owned(),
        ],
        vec![
            "Table 3 (JSON complexity, Fig 5)".to_owned(),
            "rate=300/s, reads=1, writes=1, conflicts=100%".to_owned(),
            "k-d in {1-1..5-5}".to_owned(),
        ],
        vec![
            "Table 4 (arrival rate, Fig 6)".to_owned(),
            "reads=1, writes=1, JSON keys=2, conflicts=100%".to_owned(),
            "rate in {100..500}/s".to_owned(),
        ],
        vec![
            "Table 5 (conflict %, Fig 7)".to_owned(),
            "rate=300/s, reads=1, writes=1, JSON keys=2".to_owned(),
            "conflicts in {0..100}%".to_owned(),
        ],
    ];
    println!(
        "{}",
        render_table(&["experiment", "fixed parameters", "sweep"], &config_rows)
    );

    println!("=== Base-cell results (both systems at their best block size) ===\n");
    let mut rows = Vec::new();
    for system in [SystemKind::FabricCrdt, SystemKind::Fabric] {
        let config = ExperimentConfig {
            shape: JsonShape::paper_default(),
            ..options.base_config().for_system(system)
        };
        let result = config.run();
        rows.push(vec![
            system.label().to_owned(),
            config.block_size.to_string(),
            format!("{:.1}", result.throughput_tps),
            latency_cell(result.avg_latency_secs),
            result.successful.to_string(),
            result.failed.to_string(),
            result.blocks.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "system",
                "block size",
                "throughput(tps)",
                "avg-latency(s)",
                "successful",
                "failed",
                "blocks",
            ],
            &rows,
        )
    );
}
