//! Adversarial resilience: byzantine faults, hostile fuzzing, and
//! offline-first merge storms.
//!
//! The paper's evaluation (§7) measures honest networks; this bench
//! measures what the reproduction *survives*, via the
//! `fabriccrdt-adversary` harness:
//!
//! 1. **Byzantine orderer/network** — a fixed attack schedule
//!    (equivocating sealed payloads, flipped bytes, duplicated and
//!    reordered transactions, forged tip hashes) injected into the
//!    gossip layer while the paper's all-conflicting CRDT workload
//!    runs. Asserts: every honest commit lands, every replica ends
//!    byte-identical, equivocation evidence is recorded.
//! 2. **Hostile op fuzzing** — seeded hostile operation streams
//!    (dependency cycles, dangling deps, counter gaps, bogus cursors,
//!    oversized payloads) fed to replica pairs: reject-without-panic,
//!    byte-identical outcomes.
//! 3. **Offline-first merge storm** — a client accumulates offline
//!    edits and rejoins: the incremental `delta_since` path must ship
//!    fewer operations than full history replay and reconverge to the
//!    same bytes. At network scale, a peer crash window during traffic
//!    measures gossip catch-up (the storm's reconvergence time).
//!
//! Emits `BENCH_adversarial.json`.
//!
//! Run with: `cargo run --release --bin adversarial -- [--txs N] [--seed S]`

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use fabriccrdt_adversary::{
    apply_identically, hostile_ops, merge_storm_report, offline_rejoin, run_adversarial_pipeline,
    AdversarialRun,
};
use fabriccrdt_bench::HarnessOptions;
use fabriccrdt_fabric::chaincode::ChaincodeRegistry;
use fabriccrdt_fabric::config::{
    AdversaryConfig, AttackSpec, CrashSpec, FaultConfig, PipelineConfig, TamperMode,
};
use fabriccrdt_fabric::metrics::AdversaryMetrics;
use fabriccrdt_fabric::simulation::TxRequest;
use fabriccrdt_jsoncrdt::json::Value;
use fabriccrdt_sim::gen;
use fabriccrdt_sim::time::SimTime;
use fabriccrdt_workload::offline::{offline_payloads, rejoin_schedule};
use fabriccrdt_workload::IotChaincode;

const BLOCK_SIZE: usize = 25; // FabricCRDT's best (§7.3)
const TX_GAP: SimTime = SimTime::from_millis(15);

fn registry() -> ChaincodeRegistry {
    let mut registry = ChaincodeRegistry::new();
    registry.deploy(Arc::new(IotChaincode::crdt()));
    registry
}

fn seeds() -> Vec<(String, Vec<u8>)> {
    vec![("hot".to_owned(), br#"{"readings":[]}"#.to_vec())]
}

/// The paper's all-conflicting CRDT hot-key workload.
fn schedule(txs: usize) -> Vec<(SimTime, TxRequest)> {
    let key = "hot".to_owned();
    (0..txs)
        .map(|i| {
            let payload = format!(r#"{{"readings":["r{i}"]}}"#);
            (
                TX_GAP.scale(i as u64 + 1),
                TxRequest::new(
                    "iot-crdt",
                    IotChaincode::args(
                        std::slice::from_ref(&key),
                        std::slice::from_ref(&key),
                        &payload,
                    ),
                ),
            )
        })
        .collect()
}

/// A schedule hitting every tamper mode across the first blocks, with
/// victims spread over the topology and one spoofed relay.
fn attack_schedule() -> AdversaryConfig {
    let modes = [
        TamperMode::EquivocateValue,
        TamperMode::FlipPayloadByte,
        TamperMode::DuplicateTx,
        TamperMode::ReorderTxs,
        TamperMode::ForgeTipHash,
    ];
    AdversaryConfig {
        attacks: modes
            .iter()
            .enumerate()
            .map(|(i, &mode)| AttackSpec {
                height: i as u64 + 1,
                mode,
                victims: vec![(i + 1) % 6, (i + 3) % 6],
                via: (i % 2 == 0).then_some(i % 6),
                delay: SimTime::from_millis(2 + i as u64),
            })
            .collect(),
        ..AdversaryConfig::none()
    }
}

fn run_byzantine(txs: usize, seed: u64) -> (AdversarialRun, f64) {
    let config = PipelineConfig::paper(BLOCK_SIZE, seed)
        .with_gossip()
        .with_adversary(attack_schedule());
    let started = Instant::now();
    let run = run_adversarial_pipeline(config, registry(), &seeds(), schedule(txs));
    (run, started.elapsed().as_secs_f64() * 1e3)
}

/// Network-scale merge storm: peer 3 is offline (crashed) for the
/// middle half of the run while traffic keeps committing, then rejoins
/// and catches up; after the traffic, the client's own offline backlog
/// is submitted as a rejoin burst.
fn run_merge_storm(txs: usize, seed: u64) -> (AdversarialRun, usize) {
    let traffic_end = TX_GAP.scale(txs as u64 + 1);
    let faults = FaultConfig {
        crashes: vec![CrashSpec {
            peer: 3,
            at: TX_GAP.scale(txs as u64 / 4),
            restart_at: TX_GAP.scale(3 * txs as u64 / 4),
        }],
        ..FaultConfig::none()
    };
    let backlog = offline_payloads("d3", 16);
    let mut full = schedule(txs);
    full.extend(rejoin_schedule(
        "hot",
        &backlog,
        traffic_end,
        SimTime::from_millis(2),
    ));
    let total = full.len();
    let config = PipelineConfig::paper(BLOCK_SIZE, seed)
        .with_gossip()
        .with_faults(faults);
    (
        run_adversarial_pipeline(config, registry(), &seeds(), full),
        total,
    )
}

fn main() {
    let options = HarnessOptions::from_args();
    let txs = (options.total_txs / 25).clamp(40, 400);
    let seed = options.seed;

    println!("Adversarial resilience: byzantine faults, fuzzing, merge storms");
    println!(
        "workload: all-conflicting CRDT hot key, {txs} txs, block size {BLOCK_SIZE}, seed {seed}"
    );

    // ---- 1. byzantine attack schedule ------------------------------
    print!("byzantine schedule (5 tamper modes)... ");
    let (byz, byz_wall_ms) = run_byzantine(txs, seed);
    let adv: AdversaryMetrics = byz.adversary();
    let converged = byz.honest_replicas_identical();
    assert_eq!(
        byz.metrics.successful(),
        txs,
        "forgery injection must not cost honest commits"
    );
    assert!(converged, "honest replicas diverged under attack");
    assert!(adv.forged_blocks_injected >= 5, "every attack fires");
    assert!(
        adv.equivocations_detected > 0,
        "equivocation evidence must be recorded: {adv:?}"
    );
    assert!(
        adv.rejected_blocks() + adv.quarantine_drops >= adv.forged_blocks_injected,
        "forgeries unaccounted for: {adv:?}"
    );
    println!(
        "ok — injected {}, tampered rejected {}, forged rejected {}, \
         equivocations {}, quarantined peers {}, wall {:.0} ms",
        adv.forged_blocks_injected,
        adv.tampered_rejected,
        adv.forged_rejected,
        adv.equivocations_detected,
        adv.quarantined_peers,
        byz_wall_ms,
    );

    // ---- 2. hostile op fuzzing -------------------------------------
    print!("hostile op fuzzing (100 seeded streams)... ");
    let mut fuzz_applied = 0usize;
    let mut fuzz_buffered = 0usize;
    let mut fuzz_rejected = 0usize;
    gen::cases(100, |g| {
        let count = g.size(10, 60);
        let report = apply_identically(&hostile_ops(g, count));
        fuzz_applied += report.applied;
        fuzz_buffered += report.buffered;
        fuzz_rejected += report.rejected;
    });
    assert!(fuzz_buffered > 0, "cycles and dangling deps must buffer");
    assert!(fuzz_rejected > 0, "head-targeting mutations must reject");
    println!("ok — {fuzz_applied} applied, {fuzz_buffered} buffered, {fuzz_rejected} rejected");

    // ---- 3a. document-level merge storm ----------------------------
    print!("offline rejoin (doc level, 200 offline edits)... ");
    let storm = offline_rejoin(
        r#"{"device":"d3","readings":["r0","r1","r2","r3"]}"#,
        &offline_payloads("d3", 200),
    );
    assert!(storm.reconverged, "both sync paths must reconverge");
    assert!(
        storm.incremental_ops < storm.full_replay_ops,
        "incremental delta ({}) must undercut full replay ({})",
        storm.incremental_ops,
        storm.full_replay_ops
    );
    println!(
        "ok — delta ships {} ops vs {} full replay",
        storm.incremental_ops, storm.full_replay_ops
    );

    // ---- 3b. network-level merge storm -----------------------------
    print!("merge storm (peer offline for half the run + rejoin burst)... ");
    let (storm_run, storm_txs) = run_merge_storm(txs, seed);
    assert_eq!(storm_run.metrics.successful(), storm_txs);
    assert!(
        storm_run.honest_replicas_identical(),
        "offline peer failed to reconverge"
    );
    let episode = merge_storm_report(&storm_run, 3)
        .expect("the crashed peer records a completed catch-up episode");
    println!(
        "ok — caught up in {:.3} sim secs, {} bytes shipped, snapshot: {}",
        episode.catch_up_secs, episode.bytes_shipped, episode.used_snapshot
    );

    // ---- BENCH_adversarial.json ------------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"adversarial\",");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"total_txs\": {txs},");
    let _ = writeln!(json, "  \"block_size\": {BLOCK_SIZE},");
    let _ = writeln!(
        json,
        "  \"forged_blocks_injected\": {},",
        adv.forged_blocks_injected
    );
    let _ = writeln!(json, "  \"tampered_rejected\": {},", adv.tampered_rejected);
    let _ = writeln!(json, "  \"forged_rejected\": {},", adv.forged_rejected);
    let _ = writeln!(
        json,
        "  \"equivocations_detected\": {},",
        adv.equivocations_detected
    );
    let _ = writeln!(json, "  \"quarantined_peers\": {},", adv.quarantined_peers);
    let _ = writeln!(json, "  \"quarantine_drops\": {},", adv.quarantine_drops);
    let _ = writeln!(json, "  \"honest_replicas_converged\": {converged},");
    let _ = writeln!(json, "  \"byzantine_wall_ms\": {byz_wall_ms:.3},");
    let _ = writeln!(json, "  \"fuzz_streams\": 100,");
    let _ = writeln!(json, "  \"fuzz_applied\": {fuzz_applied},");
    let _ = writeln!(json, "  \"fuzz_buffered\": {fuzz_buffered},");
    let _ = writeln!(json, "  \"fuzz_rejected\": {fuzz_rejected},");
    let _ = writeln!(json, "  \"offline_edits\": {},", storm.offline_edits);
    let _ = writeln!(
        json,
        "  \"incremental_merge_ops\": {},",
        storm.incremental_ops
    );
    let _ = writeln!(json, "  \"full_replay_ops\": {},", storm.full_replay_ops);
    let _ = writeln!(
        json,
        "  \"offline_rejoin_reconverged\": {},",
        storm.reconverged
    );
    let _ = writeln!(
        json,
        "  \"merge_storm_catch_up_secs\": {:.6},",
        episode.catch_up_secs
    );
    let _ = writeln!(
        json,
        "  \"merge_storm_bytes_shipped\": {},",
        episode.bytes_shipped
    );
    let _ = writeln!(
        json,
        "  \"merge_storm_used_snapshot\": {}",
        episode.used_snapshot
    );
    json.push_str("}\n");
    std::fs::write("BENCH_adversarial.json", &json).expect("write BENCH_adversarial.json");

    // Self-validate with the repo's own JSON parser.
    let parsed = Value::from_bytes(json.as_bytes()).expect("emitted JSON is well-formed");
    assert_eq!(
        parsed.get("bench").and_then(Value::as_str),
        Some("adversarial")
    );
    println!("wrote BENCH_adversarial.json");
}
