//! Figure 7 + Table 5: impact of the percentage of conflicting
//! transactions.
//!
//! Sweep the conflicting share of the workload over
//! {0, 25, 50, 75, 100} % with the Table 5 workload: 300 tx/s, one read
//! and one write key, 2-key JSON objects, each system at its best block
//! size. Conflicting transactions all touch one shared key; the rest
//! use per-transaction private keys.
//!
//! Paper shape: at low conflict percentages the two systems have similar
//! throughput and latency; as the share grows, Fabric's failures grow
//! toward rejecting nearly everything while FabricCRDT never fails.

use fabriccrdt_bench::{run_figure, HarnessOptions};
use fabriccrdt_workload::experiment::{ExperimentConfig, SystemKind};

const CONFLICT_PCTS: [u8; 5] = [0, 25, 50, 75, 100];

fn main() {
    let options = HarnessOptions::from_args();
    run_figure(
        "Figure 7 / Table 5: impact of conflicting-transaction percentage",
        &options,
        &[SystemKind::FabricCrdt, SystemKind::Fabric],
        |system| {
            CONFLICT_PCTS
                .iter()
                .map(|&pct| {
                    let config = ExperimentConfig {
                        conflict_pct: pct,
                        ..options.base_config().for_system(system)
                    };
                    (format!("{pct}%"), config)
                })
                .collect()
        },
    );
}
