//! Snapshot-based catch-up vs full block replay: the wire-byte cost of
//! repairing a peer that missed most of the chain.
//!
//! A peer crashes right after the first block and restarts after the
//! whole stream is published. Without durable storage the anti-entropy
//! layer can only replay the missing block suffix — cost linear in
//! chain length *and* transaction size. With durable storage, helpers
//! hold periodic [`LedgerSnapshot`]s, and the catch-up negotiation
//! ships `(snapshot, frontier delta, post-snapshot suffix)` whenever
//! that is strictly cheaper in bytes. For a CRDT workload the merged
//! document grows far slower than the endorsed transaction log, so the
//! saving widens with chain length; the bench asserts the snapshot
//! path wins from 100 blocks on.
//!
//! Protocol, per chain length:
//!
//! 1. Build an orderer-style block stream of all-conflicting CRDT
//!    transactions on one hot key.
//! 2. Replay it through two gossip networks with an identical crash
//!    schedule — one storage-free (replay catch-up), one with
//!    in-memory durable storage snapshotting every 10 blocks — and
//!    compare the restarted peer's catch-up episode byte accounting.
//! 3. Verify both networks converge every replica's world state to the
//!    ideal-FIFO reference, byte for byte.
//! 4. At the longest chain, run the same schedule against the
//!    append-only-file backend and assert it lands on exactly the
//!    same per-peer ledgers as the in-memory backend.
//!
//! Emits `BENCH_catchup_storage.json`.
//!
//! Run with: `cargo run --release --bin catchup_storage -- [--txs N] [--seed S]`

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

use fabriccrdt::CrdtValidator;
use fabriccrdt_bench::HarnessOptions;
use fabriccrdt_crypto::{Identity, KeyPair};
use fabriccrdt_fabric::config::{CrashSpec, FaultConfig, PipelineConfig, Topology};
use fabriccrdt_fabric::metrics::CatchUpEpisode;
use fabriccrdt_fabric::peer::Peer;
use fabriccrdt_fabric::storage::StorageConfig;
use fabriccrdt_gossip::GossipNetwork;
use fabriccrdt_jsoncrdt::json::Value;
use fabriccrdt_ledger::block::Block;
use fabriccrdt_ledger::rwset::ReadWriteSet;
use fabriccrdt_ledger::transaction::{Endorsement, Transaction, TxId};
use fabriccrdt_ledger::version::Height;
use fabriccrdt_sim::time::SimTime;

const SEED_DOC: &[u8] = br#"{"readings":[]}"#;
const CHAIN_LENGTHS: [usize; 3] = [25, 50, 100];
const SNAPSHOT_INTERVAL: u64 = 10;
const CRASHED_PEER: usize = 3;

/// A fully endorsed CRDT transaction on the shared hot key.
fn endorsed_tx(nonce: u64) -> Transaction {
    let client = Identity::new("client", "org1");
    let mut rwset = ReadWriteSet::new();
    rwset.reads.record("hot", Some(Height::new(0, 0))); // stale on purpose
    rwset.writes.put_crdt(
        "hot".to_string(),
        format!(r#"{{"readings":["r{nonce}"]}}"#).into_bytes(),
    );
    let mut tx = Transaction {
        id: TxId::derive(&client, nonce, "cc"),
        client,
        chaincode: "cc".into(),
        rwset,
        endorsements: Vec::new(),
    };
    let payload = tx.response_payload();
    for org in ["org1", "org2", "org3"] {
        let kp = KeyPair::derive(Identity::new("peer0", org));
        tx.endorsements.push(Endorsement {
            endorser: kp.identity().clone(),
            signature: kp.sign(&payload),
        });
    }
    tx
}

fn block_stream(blocks: usize, per_block: usize) -> Vec<Block> {
    let mut nonce = 0u64;
    (1..=blocks as u64)
        .map(|number| {
            let txs = (0..per_block)
                .map(|_| {
                    nonce += 1;
                    endorsed_tx(nonce)
                })
                .collect();
            Block::assemble(number, [0; 32], txs)
        })
        .collect()
}

/// The ideal-FIFO reference: one peer committing the stream in order.
fn reference_state(blocks: &[Block]) -> Vec<u8> {
    let mut peer = Peer::new(CrdtValidator::new(), Topology::paper().default_policy());
    peer.seed_state("hot", SEED_DOC.to_vec());
    for block in blocks {
        let staged = peer.process_block(block.clone());
        peer.commit(staged).unwrap();
    }
    peer.snapshot().state
}

/// The fault schedule: the observed peer misses all but the first
/// block and restarts 50 ms after the last publish.
fn faults(chain: usize) -> FaultConfig {
    FaultConfig {
        crashes: vec![CrashSpec {
            peer: CRASHED_PEER,
            at: SimTime::from_millis(150),
            restart_at: SimTime::from_millis(100 * chain as u64 + 50),
        }],
        ..FaultConfig::none()
    }
}

/// Runs the stream through a network built from `config` and returns
/// the restarted peer's completed catch-up episode plus the network.
fn run(
    config: &PipelineConfig,
    blocks: &[Block],
) -> (GossipNetwork<CrdtValidator>, CatchUpEpisode) {
    let mut network = GossipNetwork::new(config, CrdtValidator::new);
    network.seed_state("hot", SEED_DOC);
    for (i, block) in blocks.iter().enumerate() {
        network.publish(SimTime::from_millis(100 * (i as u64 + 1)), block.clone());
    }
    network.drain();
    assert!(
        network.fully_converged(),
        "heights: {:?}",
        network.committed_heights()
    );
    let episode = network
        .metrics()
        .catch_up
        .iter()
        .find(|e| e.peer == CRASHED_PEER && e.completed_at().is_some())
        .copied()
        .expect("the restarted peer completes a catch-up episode");
    (network, episode)
}

/// A fresh scratch directory for the append-only-file backend.
fn temp_dir() -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "fabriccrdt-bench-catchup-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed),
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

struct Cell {
    blocks: usize,
    txs: usize,
    replay_bytes: u64,
    replay_ms: f64,
    snapshot_bytes: u64,
    snapshot_ms: f64,
    used_snapshot: bool,
    saving_ratio: f64,
}

fn main() {
    let options = HarnessOptions::from_args();
    let per_block = (options.total_txs / 100).clamp(2, 10);

    println!("Catch-up cost: full block replay vs durable snapshot transfer");
    println!(
        "workload: all-conflicting CRDT txs on one hot key, {per_block} txs/block, \
         snapshot every {SNAPSHOT_INTERVAL} blocks, peer {CRASHED_PEER} crashes \
         after block 1 and restarts after the stream (seed {})",
        options.seed
    );
    println!(
        "{:>7} {:>6} {:>14} {:>16} {:>9} {:>10}",
        "blocks", "txs", "replay bytes", "snapshot bytes", "saving", "mode"
    );

    let mut cells: Vec<Cell> = Vec::new();
    for &chain in &CHAIN_LENGTHS {
        let blocks = block_stream(chain, per_block);
        let reference = reference_state(&blocks);
        let base = PipelineConfig::paper(25, options.seed)
            .with_gossip()
            .with_faults(faults(chain));

        let (replay_network, replay_episode) = run(&base, &blocks);
        let stored_config = base
            .clone()
            .with_storage(StorageConfig::memory().with_snapshot_interval(SNAPSHOT_INTERVAL));
        let (stored_network, stored_episode) = run(&stored_config, &blocks);

        for network in [&replay_network, &stored_network] {
            for i in 0..network.peer_count() {
                let snap = network.snapshot(i).expect("peer up after drain");
                assert_eq!(snap.state, reference, "peer {i} state diverged");
            }
        }

        let saving_ratio =
            stored_episode.bytes_shipped as f64 / replay_episode.bytes_shipped as f64;
        println!(
            "{:>7} {:>6} {:>14} {:>16} {:>8.1}% {:>10}",
            chain,
            chain * per_block,
            replay_episode.bytes_shipped,
            stored_episode.bytes_shipped,
            (1.0 - saving_ratio) * 100.0,
            if stored_episode.used_snapshot() {
                "snapshot"
            } else {
                "replay"
            },
        );
        cells.push(Cell {
            blocks: chain,
            txs: chain * per_block,
            replay_bytes: replay_episode.bytes_shipped,
            replay_ms: replay_episode.duration().as_millis_f64(),
            snapshot_bytes: stored_episode.bytes_shipped,
            snapshot_ms: stored_episode.duration().as_millis_f64(),
            used_snapshot: stored_episode.used_snapshot(),
            saving_ratio,
        });
    }

    // The headline claim: at a 100-block chain the snapshot path is
    // chosen and strictly cheaper than replaying the suffix.
    let at_100 = cells
        .iter()
        .find(|c| c.blocks >= 100)
        .expect("the 100-block cell ran");
    assert!(
        at_100.used_snapshot,
        "at {} blocks the negotiation must pick the snapshot",
        at_100.blocks
    );
    assert!(
        at_100.snapshot_bytes < at_100.replay_bytes,
        "snapshot catch-up shipped {} bytes, replay {}",
        at_100.snapshot_bytes,
        at_100.replay_bytes
    );

    // Backend equivalence at the longest chain: the append-only file
    // store must land on exactly the ledgers the memory store does.
    let longest = *CHAIN_LENGTHS.last().expect("chain lengths nonempty");
    let blocks = block_stream(longest, per_block);
    let base = PipelineConfig::paper(25, options.seed)
        .with_gossip()
        .with_faults(faults(longest));
    let dir = temp_dir();
    let aof_config = base
        .clone()
        .with_storage(StorageConfig::append_only(&dir).with_snapshot_interval(SNAPSHOT_INTERVAL));
    let (aof_network, _) = run(&aof_config, &blocks);
    let mem_config =
        base.with_storage(StorageConfig::memory().with_snapshot_interval(SNAPSHOT_INTERVAL));
    let (mem_network, _) = run(&mem_config, &blocks);
    for i in 0..aof_network.peer_count() {
        assert_eq!(
            aof_network.snapshot(i).expect("aof peer up"),
            mem_network.snapshot(i).expect("mem peer up"),
            "peer {i}: AOF and memory backends diverged"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
    println!("append-only-file backend byte-identical to memory at {longest} blocks");

    // ---- BENCH_catchup_storage.json --------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"catchup_storage\",");
    let _ = writeln!(json, "  \"seed\": {},", options.seed);
    let _ = writeln!(json, "  \"txs_per_block\": {per_block},");
    let _ = writeln!(json, "  \"snapshot_interval\": {SNAPSHOT_INTERVAL},");
    let _ = writeln!(json, "  \"crashed_peer\": {CRASHED_PEER},");
    let _ = writeln!(
        json,
        "  \"snapshot_saving_at_100_blocks\": {:.3},",
        1.0 - at_100.saving_ratio
    );
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"blocks\": {}, \"txs\": {}, \"replay_bytes\": {}, \
             \"replay_ms\": {:.3}, \"snapshot_bytes\": {}, \"snapshot_ms\": {:.3}, \
             \"used_snapshot\": {}, \"bytes_ratio\": {:.3}}}{}",
            c.blocks,
            c.txs,
            c.replay_bytes,
            c.replay_ms,
            c.snapshot_bytes,
            c.snapshot_ms,
            c.used_snapshot,
            c.saving_ratio,
            if i + 1 < cells.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_catchup_storage.json", &json).expect("write BENCH_catchup_storage.json");

    // Self-validate with the repo's own JSON parser.
    let parsed = Value::from_bytes(json.as_bytes()).expect("emitted JSON is well-formed");
    let cell_count = parsed
        .get("cells")
        .and_then(|c| c.as_list().map(<[Value]>::len))
        .expect("cells array present");
    assert_eq!(cell_count, cells.len());
    assert!(parsed.get("snapshot_saving_at_100_blocks").is_some());
    let first_cell = parsed
        .get("cells")
        .and_then(|c| c.as_list())
        .and_then(<[Value]>::first)
        .expect("at least one cell");
    assert!(first_cell.get("replay_bytes").is_some());
    assert!(first_cell.get("snapshot_bytes").is_some());
    println!("wrote BENCH_catchup_storage.json ({cell_count} cells)");
}
