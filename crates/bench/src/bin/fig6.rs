//! Figure 6 + Table 4: impact of the transaction arrival rate.
//!
//! Sweep the aggregate submission rate of the four clients over
//! {100, 200, 300, 400, 500} tx/s with the Table 4 workload: one read
//! and one write key, 2-key JSON objects, all transactions conflicting,
//! each system at its best block size.
//!
//! Paper shape: FabricCRDT throughput rises with offered load until it
//! saturates (~250 tx/s in the paper), after which latency explodes —
//! the effect of queueing once arrivals outpace commit capacity. All
//! transactions still commit.

use fabriccrdt_bench::{run_figure, HarnessOptions};
use fabriccrdt_workload::experiment::{ExperimentConfig, SystemKind};

const RATES: [f64; 5] = [100.0, 200.0, 300.0, 400.0, 500.0];

fn main() {
    let options = HarnessOptions::from_args();
    run_figure(
        "Figure 6 / Table 4: impact of transaction arrival rate",
        &options,
        &[SystemKind::FabricCrdt, SystemKind::Fabric],
        |system| {
            RATES
                .iter()
                .map(|&rate| {
                    let config = ExperimentConfig {
                        rate_tps: rate,
                        ..options.base_config().for_system(system)
                    };
                    (format!("{rate:.0}"), config)
                })
                .collect()
        },
    );
}
