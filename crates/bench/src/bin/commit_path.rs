//! Wall-clock benchmark of the committer validation pipeline.
//!
//! Every other experiment in this crate reports *simulated* time
//! derived from work counters; this one measures real elapsed time
//! (`std::time::Instant`) of the commit path itself — the
//! [`Peer::process_block`] + [`Peer::commit`] loop — because the
//! parallel pre-validation stage is value-neutral by construction and
//! therefore invisible to simulated time. Protocol:
//!
//! 1. Build an endorsed CRDT block stream once per document size
//!    (readings per MergeTx payload scale the signature, decode and
//!    merge costs together).
//! 2. Replay it through a fresh `Peer<CrdtValidator>` under
//!    `Sequential`, under `Parallel {{ 1, 2, 4, 8 }}` workers, and
//!    under `Pipelined {{ 1, 2, 4, 8 }}` (cross-block: block N+1
//!    pre-validates on the pool while block N finalizes, reading the
//!    lockless state snapshot), best-of-`REPEATS` timing, decode cache
//!    cleared before every timed run so each variant pays the same
//!    parse bill.
//! 3. Assert every parallel and pipelined replay's ledger snapshot is
//!    byte-identical to the sequential baseline (the correctness half
//!    runs on every machine, every time).
//! 4. Emit `BENCH_commit_path.json` — sequential baseline, per-cell
//!    wall seconds/throughput/speedup plus per-stage timings
//!    (pre-validate vs finalize vs their measured overlap window, from
//!    [`StagedBlock::timings`] stage spans), the
//!    `finalize_speedup_at_4_workers` and
//!    `pipelined_speedup_at_4_workers` headlines, the pipelined run's
//!    overlap counters (`blocks_overlapped`, speculative read-check
//!    tallies), and the machine's available parallelism — then
//!    re-parse the file with the repo's own JSON parser to prove it is
//!    well-formed.
//!
//! The ≥2× speedup targets at 4 workers (overall, and finalize-stage
//! on this disjoint-key workload) are asserted only when the machine
//! actually has ≥4 hardware threads (`hardware_limited` is recorded in
//! the JSON otherwise — a single-core container cannot exhibit
//! wall-clock parallel speedup, only equivalence, so there the bench
//! instead asserts parallel and pipelined cells stay within 10% of
//! sequential: neither the persistent pool nor the cross-block overlap
//! machinery may regress single-thread throughput).
//!
//! Run with: `cargo run --release --bin commit_path -- [--txs N] [--seed S]`

use std::collections::{HashSet, VecDeque};
use std::fmt::Write as _;
use std::time::Instant;

use fabriccrdt::CrdtValidator;
use fabriccrdt_bench::HarnessOptions;
use fabriccrdt_crypto::{Identity, KeyPair};
use fabriccrdt_fabric::metrics::PipelineMetrics;
use fabriccrdt_fabric::peer::PreparedBlock;
use fabriccrdt_fabric::peer::{Peer, PeerSnapshot, StageTimings};
use fabriccrdt_fabric::pipeline::ValidationPipeline;
use fabriccrdt_fabric::policy::EndorsementPolicy;
use fabriccrdt_jsoncrdt::cache;
use fabriccrdt_jsoncrdt::json::Value;
use fabriccrdt_ledger::block::Block;
use fabriccrdt_ledger::rwset::ReadWriteSet;
use fabriccrdt_ledger::transaction::{Endorsement, Transaction, TxId};
use fabriccrdt_workload::report::render_table;

const BLOCK_SIZE: usize = 25;
const ENDORSING_ORGS: [&str; 4] = ["org1", "org2", "org3", "org4"];
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Run-ahead depths for the deep-pipelined driver (depth 1 is the
/// chained `finish_block_with_next` driver above).
const AHEAD_DEPTHS: [usize; 2] = [2, 4];
const REPEATS: usize = 3;
/// Padding appended to every reading so payload bytes scale linearly
/// with the reading count (≈40 B per reading).
const READING_PAD: &str = "0123456789abcdef0123456789abcdef";

fn policy() -> EndorsementPolicy {
    EndorsementPolicy::all_of(ENDORSING_ORGS)
}

/// A fully endorsed CRDT merge transaction whose payload carries
/// `readings` list entries (the document-size knob).
fn endorsed_tx(nonce: u64, readings: usize) -> Transaction {
    let client = Identity::new("client", "org1");
    let mut doc = String::from(r#"{"readings":["#);
    for j in 0..readings {
        if j > 0 {
            doc.push(',');
        }
        let _ = write!(doc, r#""r{nonce}-{j}-{READING_PAD}""#);
    }
    doc.push_str("]}");
    let mut rwset = ReadWriteSet::new();
    rwset.writes.put_crdt(format!("k{nonce}"), doc.into_bytes());
    let mut tx = Transaction {
        id: TxId::derive(&client, nonce, "cc"),
        client,
        chaincode: "cc".into(),
        rwset,
        endorsements: Vec::new(),
    };
    let payload = tx.response_payload();
    for org in ENDORSING_ORGS {
        let kp = KeyPair::derive(Identity::new("peer0", org));
        tx.endorsements.push(Endorsement {
            endorser: kp.identity().clone(),
            signature: kp.sign(&payload),
        });
    }
    tx
}

fn block_stream(blocks: usize, per_block: usize, readings: usize) -> Vec<Block> {
    let mut nonce = 0u64;
    (1..=blocks as u64)
        .map(|number| {
            let txs = (0..per_block)
                .map(|_| {
                    nonce += 1;
                    endorsed_tx(nonce, readings)
                })
                .collect();
            Block::assemble(number, [0; 32], txs)
        })
        .collect()
}

/// Per-stage wall-clock totals accumulated over one replay.
#[derive(Clone, Copy, Default)]
struct StageTotals {
    pre_validate_secs: f64,
    finalize_secs: f64,
    /// Wall seconds where a block's pre-validation span intersected
    /// the previous block's finalize span — nonzero only under
    /// `Pipelined`, where busy time is
    /// `pre_validate + finalize - overlap`.
    overlap_secs: f64,
}

impl StageTotals {
    fn accumulate(&mut self, timings: &StageTimings) {
        self.pre_validate_secs += timings.pre_validate_secs;
        self.finalize_secs += timings.finalize_secs;
        self.overlap_secs += timings.overlap_secs;
    }
}

/// One timed replay of the whole stream through a fresh peer. Under a
/// pipelined pipeline the driver chains [`Peer::prevalidate`] /
/// [`Peer::finish_block_with_next`] so block N+1's signature checking
/// runs on the pool while block N finalizes; otherwise it is the plain
/// [`Peer::process_block`] loop.
fn replay_once(
    pipeline: ValidationPipeline,
    blocks: &[Block],
) -> (PeerSnapshot, f64, StageTotals, PipelineMetrics) {
    cache::clear();
    let mut peer = Peer::new(CrdtValidator::new(), policy()).with_pipeline(pipeline);
    let mut stages = StageTotals::default();
    let start = Instant::now();
    if pipeline.is_pipelined() {
        let mut stream = blocks.iter();
        let first = stream.next().expect("stream has at least one block");
        let mut prep = peer.prevalidate(first.clone());
        for block in stream {
            let (staged, next) = peer.finish_block_with_next(prep, block.clone());
            stages.accumulate(&staged.timings);
            peer.commit(staged).expect("blocks arrive in chain order");
            prep = next;
        }
        let staged = peer.finish_block(prep);
        stages.accumulate(&staged.timings);
        peer.commit(staged).expect("blocks arrive in chain order");
    } else {
        for block in blocks {
            let staged = peer.process_block(block.clone());
            stages.accumulate(&staged.timings);
            peer.commit(staged).expect("blocks arrive in chain order");
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let counters = peer.take_pipeline_metrics();
    (peer.snapshot(), wall, stages, counters)
}

/// One timed replay with run-ahead depth `depth` > 1: a window of up
/// to `depth` blocks pre-validates ahead (each against the union of
/// every in-flight predecessor's transaction ids, exactly like the
/// simulation's pipelined event driver) while the window's head
/// finalizes and commits. Returns the deepest window observed.
fn replay_depth_once(
    workers: usize,
    depth: usize,
    blocks: &[Block],
) -> (PeerSnapshot, f64, StageTotals, u64) {
    cache::clear();
    let mut peer = Peer::new(CrdtValidator::new(), policy())
        .with_pipeline(ValidationPipeline::pipelined(workers));
    let mut stages = StageTotals::default();
    let mut window: VecDeque<PreparedBlock> = VecDeque::new();
    let mut max_ahead = 0u64;
    let start = Instant::now();
    let mut stream = blocks.iter();
    loop {
        while window.len() < depth {
            let Some(block) = stream.next() else { break };
            let extra: HashSet<TxId> = window.iter().flat_map(PreparedBlock::tx_ids).collect();
            window.push_back(peer.prevalidate_ahead(block.clone(), &extra));
            max_ahead = max_ahead.max(window.len() as u64);
        }
        let Some(prep) = window.pop_front() else {
            break;
        };
        let staged = peer.finish_block(prep);
        stages.accumulate(&staged.timings);
        peer.commit(staged).expect("blocks arrive in chain order");
    }
    let wall = start.elapsed().as_secs_f64();
    let _ = peer.take_pipeline_metrics();
    (peer.snapshot(), wall, stages, max_ahead)
}

/// Best-of-`REPEATS` depth replay; snapshots of every repeat must
/// agree.
fn replay_depth(
    workers: usize,
    depth: usize,
    blocks: &[Block],
) -> (PeerSnapshot, f64, StageTotals, u64) {
    let (snapshot, mut best, mut stages, max_ahead) = replay_depth_once(workers, depth, blocks);
    for _ in 1..REPEATS {
        let (again, wall, repeat_stages, repeat_ahead) = replay_depth_once(workers, depth, blocks);
        assert_eq!(again, snapshot, "depth-{depth} replay not deterministic");
        assert_eq!(repeat_ahead, max_ahead);
        if wall < best {
            best = wall;
            stages = repeat_stages;
        }
    }
    (snapshot, best, stages, max_ahead)
}

/// Best-of-`REPEATS` replay; snapshots of every repeat must agree.
/// Stage timings are taken from the best run so the per-stage split is
/// consistent with the reported wall time. Overlap counters are
/// deterministic across repeats, so any run's copy serves.
fn replay(
    pipeline: ValidationPipeline,
    blocks: &[Block],
) -> (PeerSnapshot, f64, StageTotals, PipelineMetrics) {
    let (snapshot, mut best, mut stages, counters) = replay_once(pipeline, blocks);
    for _ in 1..REPEATS {
        let (again, wall, repeat_stages, _) = replay_once(pipeline, blocks);
        assert_eq!(
            again,
            snapshot,
            "{}: replay not deterministic",
            pipeline.label()
        );
        if wall < best {
            best = wall;
            stages = repeat_stages;
        }
    }
    (snapshot, best, stages, counters)
}

struct Cell {
    doc_readings: usize,
    label: String,
    workers: usize,
    wall_secs: f64,
    pre_validate_secs: f64,
    finalize_secs: f64,
    overlap_secs: f64,
    tps: f64,
    speedup: f64,
    finalize_speedup: f64,
    /// Deepest pre-validated run-ahead window the driver reached: 0
    /// for non-pipelined drivers, 1 for the chained pipelined driver,
    /// up to the configured depth for the deep drivers.
    max_ahead_depth: u64,
}

fn main() {
    let options = HarnessOptions::from_args();
    let txs = options.total_txs.clamp(BLOCK_SIZE, 2_000);
    let blocks = txs / BLOCK_SIZE;
    let txs = blocks * BLOCK_SIZE;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let doc_sizes: &[usize] = if txs < 500 { &[4, 32] } else { &[4, 32, 128] };
    let default_doc = doc_sizes[doc_sizes.len() - 1];

    println!("Commit-path wall-clock: sequential vs parallel vs pipelined validation");
    println!(
        "workload: {txs} CRDT txs in {blocks} blocks of {BLOCK_SIZE}, \
         {} endorsements/tx, doc sizes {doc_sizes:?} readings, \
         best of {REPEATS} runs, {cores} hardware threads",
        ENDORSING_ORGS.len()
    );

    let mut cells: Vec<Cell> = Vec::new();
    let mut baseline_at_default = 0.0f64;
    let mut counters_at_4 = PipelineMetrics::default();
    for &readings in doc_sizes {
        let stream = block_stream(blocks, BLOCK_SIZE, readings);
        let (seq_snapshot, seq_wall, seq_stages, _) =
            replay(ValidationPipeline::Sequential, &stream);
        if readings == default_doc {
            baseline_at_default = seq_wall;
        }
        cells.push(Cell {
            doc_readings: readings,
            label: ValidationPipeline::Sequential.label(),
            workers: 1,
            wall_secs: seq_wall,
            pre_validate_secs: seq_stages.pre_validate_secs,
            finalize_secs: seq_stages.finalize_secs,
            overlap_secs: seq_stages.overlap_secs,
            tps: txs as f64 / seq_wall,
            speedup: 1.0,
            finalize_speedup: 1.0,
            max_ahead_depth: 0,
        });
        let variants = WORKER_COUNTS
            .iter()
            .map(|&w| ValidationPipeline::parallel(w))
            .chain(
                WORKER_COUNTS
                    .iter()
                    .map(|&w| ValidationPipeline::pipelined(w)),
            );
        for pipeline in variants {
            let workers = pipeline.workers();
            let (snapshot, wall, stages, counters) = replay(pipeline, &stream);
            assert_eq!(
                snapshot.state,
                seq_snapshot.state,
                "{readings} readings, {}: world state diverged",
                pipeline.label()
            );
            assert_eq!(
                snapshot.chain,
                seq_snapshot.chain,
                "{readings} readings, {}: chain diverged",
                pipeline.label()
            );
            if pipeline.is_pipelined() && readings == default_doc && workers == 4 {
                counters_at_4 = counters;
            }
            cells.push(Cell {
                doc_readings: readings,
                label: pipeline.label(),
                workers,
                wall_secs: wall,
                pre_validate_secs: stages.pre_validate_secs,
                finalize_secs: stages.finalize_secs,
                overlap_secs: stages.overlap_secs,
                tps: txs as f64 / wall,
                speedup: seq_wall / wall,
                finalize_speedup: if stages.finalize_secs > 0.0 {
                    seq_stages.finalize_secs / stages.finalize_secs
                } else {
                    1.0
                },
                max_ahead_depth: u64::from(pipeline.is_pipelined()),
            });
        }
        if readings == default_doc {
            // Deep run-ahead cells (ROADMAP item 3 residual): the
            // window driver pre-validates up to D blocks ahead at 4
            // workers; outcomes must stay byte-identical regardless of
            // depth.
            for &depth in &AHEAD_DEPTHS {
                let (snapshot, wall, stages, max_ahead) = replay_depth(4, depth, &stream);
                assert_eq!(
                    snapshot.state, seq_snapshot.state,
                    "{readings} readings, ahead-depth {depth}: world state diverged"
                );
                assert_eq!(
                    snapshot.chain, seq_snapshot.chain,
                    "{readings} readings, ahead-depth {depth}: chain diverged"
                );
                assert_eq!(
                    max_ahead,
                    depth.min(blocks) as u64,
                    "window driver never filled its run-ahead depth"
                );
                cells.push(Cell {
                    doc_readings: readings,
                    label: format!("pipelined-ahead{depth}(4w)"),
                    workers: 4,
                    wall_secs: wall,
                    pre_validate_secs: stages.pre_validate_secs,
                    finalize_secs: stages.finalize_secs,
                    overlap_secs: stages.overlap_secs,
                    tps: txs as f64 / wall,
                    speedup: seq_wall / wall,
                    finalize_speedup: if stages.finalize_secs > 0.0 {
                        seq_stages.finalize_secs / stages.finalize_secs
                    } else {
                        1.0
                    },
                    max_ahead_depth: max_ahead,
                });
            }
        }
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.doc_readings.to_string(),
                c.label.clone(),
                format!("{:.1}", c.wall_secs * 1e3),
                format!("{:.1}", c.pre_validate_secs * 1e3),
                format!("{:.1}", c.finalize_secs * 1e3),
                format!("{:.1}", c.overlap_secs * 1e3),
                format!("{:.0}", c.tps),
                format!("{:.2}x", c.speedup),
                format!("{:.2}x", c.finalize_speedup),
                c.max_ahead_depth.to_string(),
            ]
        })
        .collect();
    println!();
    println!(
        "{}",
        render_table(
            &[
                "readings/doc",
                "pipeline",
                "wall(ms)",
                "pre-val(ms)",
                "finalize(ms)",
                "overlap(ms)",
                "tps",
                "speedup",
                "fin-speedup",
                "ahead",
            ],
            &rows
        )
    );

    let cell_at_4 = cells.iter().find(|c| {
        c.doc_readings == default_doc && c.workers == 4 && c.label.starts_with("parallel")
    });
    let speedup_at_4 = cell_at_4.map_or(0.0, |c| c.speedup);
    let finalize_speedup_at_4 = cell_at_4.map_or(0.0, |c| c.finalize_speedup);
    let pipelined_at_4 = cells.iter().find(|c| {
        c.doc_readings == default_doc && c.workers == 4 && c.label.starts_with("pipelined")
    });
    let pipelined_speedup_at_4 = pipelined_at_4.map_or(0.0, |c| c.speedup);
    let overlap_at_4 = pipelined_at_4.map_or(0.0, |c| c.overlap_secs);
    let hardware_limited = cores < 4;
    println!(
        "default workload ({default_doc} readings/doc): sequential baseline {:.1} ms, \
         speedup at 4 workers {speedup_at_4:.2}x \
         (finalize stage {finalize_speedup_at_4:.2}x, \
         pipelined {pipelined_speedup_at_4:.2}x with {:.1} ms overlapped){}",
        baseline_at_default * 1e3,
        overlap_at_4 * 1e3,
        if hardware_limited {
            " (hardware-limited: <4 threads, equivalence only)"
        } else {
            ""
        }
    );

    // ---- BENCH_commit_path.json -----------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"commit_path\",");
    let _ = writeln!(json, "  \"seed\": {},", options.seed);
    let _ = writeln!(json, "  \"txs\": {txs},");
    let _ = writeln!(json, "  \"blocks\": {blocks},");
    let _ = writeln!(json, "  \"block_size\": {BLOCK_SIZE},");
    let _ = writeln!(json, "  \"endorsements_per_tx\": {},", ENDORSING_ORGS.len());
    let _ = writeln!(json, "  \"repeats\": {REPEATS},");
    let _ = writeln!(json, "  \"available_parallelism\": {cores},");
    let _ = writeln!(json, "  \"hardware_limited\": {hardware_limited},");
    let _ = writeln!(json, "  \"default_doc_readings\": {default_doc},");
    let _ = writeln!(
        json,
        "  \"sequential_baseline_wall_secs\": {:.6},",
        baseline_at_default
    );
    let _ = writeln!(
        json,
        "  \"sequential_baseline_tps\": {:.1},",
        txs as f64 / baseline_at_default
    );
    let _ = writeln!(json, "  \"speedup_at_4_workers\": {speedup_at_4:.3},");
    let _ = writeln!(
        json,
        "  \"finalize_speedup_at_4_workers\": {finalize_speedup_at_4:.3},"
    );
    let _ = writeln!(
        json,
        "  \"pipelined_speedup_at_4_workers\": {pipelined_speedup_at_4:.3},"
    );
    let _ = writeln!(
        json,
        "  \"blocks_overlapped\": {},",
        counters_at_4.blocks_overlapped
    );
    let _ = writeln!(
        json,
        "  \"speculative_reads_checked\": {},",
        counters_at_4.speculative_reads_checked
    );
    let _ = writeln!(
        json,
        "  \"speculation_confirmed\": {},",
        counters_at_4.speculation_confirmed
    );
    let _ = writeln!(
        json,
        "  \"speculation_overturned\": {},",
        counters_at_4.speculation_overturned
    );
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"doc_readings\": {}, \"pipeline\": \"{}\", \"workers\": {}, \
             \"wall_secs\": {:.6}, \"pre_validate_secs\": {:.6}, \
             \"finalize_secs\": {:.6}, \"overlap_secs\": {:.6}, \
             \"tps\": {:.1}, \"speedup\": {:.3}, \
             \"finalize_speedup\": {:.3}, \"max_ahead_depth\": {}}}{}",
            c.doc_readings,
            c.label,
            c.workers,
            c.wall_secs,
            c.pre_validate_secs,
            c.finalize_secs,
            c.overlap_secs,
            c.tps,
            c.speedup,
            c.finalize_speedup,
            c.max_ahead_depth,
            if i + 1 < cells.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_commit_path.json", &json).expect("write BENCH_commit_path.json");

    // Self-validate: the emitted file must parse with the repo's own
    // JSON parser and carry the expected shape.
    let parsed = Value::from_bytes(json.as_bytes()).expect("emitted JSON is well-formed");
    let cell_count = parsed
        .get("cells")
        .and_then(|c| c.as_list().map(<[Value]>::len))
        .expect("cells array present");
    assert_eq!(cell_count, cells.len());
    assert!(parsed.get("sequential_baseline_tps").is_some());
    assert!(parsed.get("finalize_speedup_at_4_workers").is_some());
    assert!(parsed.get("pipelined_speedup_at_4_workers").is_some());
    assert!(parsed.get("blocks_overlapped").is_some());
    let first_cell = parsed
        .get("cells")
        .and_then(|c| c.as_list())
        .and_then(<[Value]>::first)
        .expect("at least one cell");
    assert!(first_cell.get("pre_validate_secs").is_some());
    assert!(first_cell.get("finalize_secs").is_some());
    assert!(first_cell.get("overlap_secs").is_some());
    assert!(first_cell.get("max_ahead_depth").is_some());
    println!("wrote BENCH_commit_path.json ({cell_count} cells)");

    // The pipelined driver overlapped every block after the first with
    // its predecessor's finalize — the counter proves the overlap
    // machinery actually engaged, on every machine.
    assert_eq!(
        counters_at_4.blocks_overlapped,
        blocks as u64 - 1,
        "pipelined(4) replay did not overlap every chained block"
    );

    if !hardware_limited && txs >= 2_000 {
        assert!(
            speedup_at_4 >= 2.0,
            "expected >= 2x wall-clock speedup at 4 workers on the default \
             workload, measured {speedup_at_4:.2}x"
        );
        assert!(
            finalize_speedup_at_4 >= 2.0,
            "expected >= 2x finalize-stage speedup at 4 workers on this \
             disjoint-key workload, measured {finalize_speedup_at_4:.2}x"
        );
        // Pipelining adds cross-block overlap on top of the parallel
        // pre-validation stage, so at minimum it must hold the
        // parallel speedup floor.
        assert!(
            pipelined_speedup_at_4 >= 2.0,
            "expected >= 2x wall-clock speedup from pipelined(4) on the \
             default workload, measured {pipelined_speedup_at_4:.2}x"
        );
    }
    if hardware_limited && txs >= 500 {
        // Single-thread machines cannot speed up (the pool clamps to
        // the calling thread and overlapped pre-validation degrades to
        // a deferred join), but neither the conflict-graph finalize
        // path nor the cross-block overlap machinery may slow the
        // commit path down. Structural overhead measures 1–2%; the
        // gate sits at 0.90 because best-of-3 wall clocks on shared
        // runners carry a few percent of scheduler noise on top.
        for c in cells
            .iter()
            .filter(|c| c.label.starts_with("parallel") || c.label.starts_with("pipelined"))
        {
            assert!(
                c.speedup >= 0.90,
                "{} readings, {}: replay regressed to \
                 {:.2}x of sequential on a hardware-limited machine",
                c.doc_readings,
                c.label,
                c.speedup
            );
        }
    }
}
