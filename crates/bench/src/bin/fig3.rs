//! Figure 3 + Table 1: effect of block size.
//!
//! Sweep the maximum number of transactions per block over
//! {25, 50, 100, 200, 400, 1000} for FabricCRDT and Fabric, with the
//! Table 1 workload: 300 tx/s submission rate, 1 read key and 1 write
//! key per transaction, 2-key JSON objects, all transactions
//! conflicting.
//!
//! Paper shape: FabricCRDT peaks at the smallest block size (267 tx/s at
//! 25 in the paper) and degrades with block size as per-block merge
//! overhead grows; its latency rises with block size; it commits all
//! 10 000 transactions at every size. Fabric commits only a handful of
//! the all-conflicting transactions.

use fabriccrdt_bench::{run_figure, HarnessOptions};
use fabriccrdt_workload::experiment::{ExperimentConfig, SystemKind};

const BLOCK_SIZES: [usize; 6] = [25, 50, 100, 200, 400, 1000];

fn main() {
    let options = HarnessOptions::from_args();
    run_figure(
        "Figure 3 / Table 1: effect of block size (all transactions conflicting)",
        &options,
        &[SystemKind::FabricCrdt, SystemKind::Fabric],
        |system| {
            BLOCK_SIZES
                .iter()
                .map(|&block_size| {
                    let config = ExperimentConfig {
                        system,
                        block_size,
                        ..options.base_config()
                    };
                    (block_size.to_string(), config)
                })
                .collect()
        },
    );
}
