//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! **A. The reordering baseline (paper §8).** Sharma et al. reorder
//! transactions at the orderer by their conflict dependency graph and
//! early-abort unsalvageable cycles. Two workloads separate the
//! approaches:
//!
//! - *reader/writer mix*: writers blindly update a hot key, readers
//!   read it (and write private keys). Reordering rescues every reader
//!   by scheduling it before the writers — a large win over vanilla
//!   Fabric without any CRDTs.
//! - *all-conflicting read-modify-write* (the paper's Table 1
//!   workload): every transaction reads and writes the hot key, so the
//!   dependency graph is one big cycle per block — reordering can only
//!   early-abort, and only FabricCRDT eliminates failures.
//!
//! **B. The superlinear merge term.** FabricCRDT's Figure 3 result
//! (small blocks win) is driven by the apply-cost growth of
//! operation-log JSON-CRDT implementations, modelled by the
//! `per_merge_quad_us` cost term. Setting it to zero flattens the
//! block-size curve — showing the term, not the pipeline, produces the
//! paper's shape.
//!
//! **C. StreamChain-style stream processing (paper §8, István et al.,
//! "Do Blockchains Need Blocks?").** Replacing block batching with
//! per-transaction streaming trades throughput overhead for end-to-end
//! latency. Modelled as 1-tx blocks with the per-block fixed cost
//! reduced to a per-transaction pipeline cost: commit latency collapses
//! from block-fill-dominated seconds to milliseconds, at a throughput
//! cost — the trade-off that paper reports.
//!
//! **D. The price of client-side resubmission (paper §1).** "Once a
//! transaction fails, the only option for clients is to create a new
//! transaction and resubmit." Giving Fabric's clients a retry budget
//! eventually commits the all-conflicting workload — but every success
//! costs many full execute/endorse/order round trips and orders of
//! magnitude more latency than FabricCRDT's single-shot commits.

use std::sync::Arc;

use fabriccrdt::{fabric_reordering_simulation, fabric_simulation, fabriccrdt_simulation};
use fabriccrdt_bench::HarnessOptions;
use fabriccrdt_fabric::chaincode::{Chaincode, ChaincodeRegistry};
use fabriccrdt_fabric::config::PipelineConfig;
use fabriccrdt_fabric::metrics::RunMetrics;
use fabriccrdt_fabric::simulation::TxRequest;
use fabriccrdt_sim::time::SimTime;
use fabriccrdt_workload::iot::IotChaincode;
use fabriccrdt_workload::report::render_table;

fn registry(crdt: bool) -> (ChaincodeRegistry, String) {
    let mut registry = ChaincodeRegistry::new();
    let chaincode: Arc<dyn Chaincode> = if crdt {
        Arc::new(IotChaincode::crdt())
    } else {
        Arc::new(IotChaincode::plain())
    };
    let name = chaincode.name().to_owned();
    registry.deploy(chaincode);
    (registry, name)
}

/// Reader/writer mix: even transactions write the hot key blindly,
/// odd transactions read it and write a private key.
fn reader_writer_schedule(chaincode: &str, n: usize, rate: f64) -> Vec<(SimTime, TxRequest)> {
    (0..n)
        .map(|i| {
            let json = format!(r#"{{"readings":["r{i}"]}}"#);
            let args = if i % 2 == 0 {
                IotChaincode::args(&[], &["hot".into()], &json) // writer
            } else {
                IotChaincode::args(&["hot".into()], &[format!("priv-{i}")], &json)
                // reader
            };
            (
                SimTime::from_secs_f64(i as f64 / rate),
                TxRequest::new(chaincode, args),
            )
        })
        .collect()
}

/// The paper's all-conflicting read-modify-write workload.
fn rmw_schedule(chaincode: &str, n: usize, rate: f64) -> Vec<(SimTime, TxRequest)> {
    (0..n)
        .map(|i| {
            let json = format!(r#"{{"readings":["r{i}"]}}"#);
            (
                SimTime::from_secs_f64(i as f64 / rate),
                TxRequest::new(
                    chaincode,
                    IotChaincode::args(&["hot".into()], &["hot".into()], &json),
                ),
            )
        })
        .collect()
}

fn row(system: &str, workload: &str, metrics: &RunMetrics) -> Vec<String> {
    vec![
        system.to_owned(),
        workload.to_owned(),
        format!("{:.1}", metrics.successful_throughput_tps()),
        metrics
            .avg_latency_secs()
            .map_or_else(|| "n/a".to_owned(), |s| format!("{s:.3}")),
        metrics.successful().to_string(),
        metrics.failed().to_string(),
    ]
}

fn main() {
    let options = HarnessOptions::from_args();
    let n = options.total_txs.min(4000); // ablations need no 10k cells
    let seed = options.seed;

    println!("=== Ablation A: reordering baseline (Fabric++) vs FabricCRDT ===\n");
    let mut rows = Vec::new();
    for workload in ["reader/writer", "all-rmw"] {
        let schedule_for = |name: &str| {
            if workload == "reader/writer" {
                reader_writer_schedule(name, n, 300.0)
            } else {
                rmw_schedule(name, n, 300.0)
            }
        };
        // Vanilla Fabric (block size 400).
        let (reg, name) = registry(false);
        let mut sim = fabric_simulation(PipelineConfig::paper(400, seed), reg);
        sim.seed_state("hot", br#"{"readings":[]}"#.to_vec());
        rows.push(row("Fabric", workload, &sim.run(schedule_for(&name))));
        // Fabric++ reordering (block size 400).
        let (reg, name) = registry(false);
        let mut sim = fabric_reordering_simulation(PipelineConfig::paper(400, seed), reg);
        sim.seed_state("hot", br#"{"readings":[]}"#.to_vec());
        rows.push(row("Fabric++", workload, &sim.run(schedule_for(&name))));
        // FabricCRDT (block size 25).
        let (reg, name) = registry(true);
        let mut sim = fabriccrdt_simulation(PipelineConfig::paper(25, seed), reg);
        sim.seed_state("hot", br#"{"readings":[]}"#.to_vec());
        rows.push(row("FabricCRDT", workload, &sim.run(schedule_for(&name))));
    }
    println!(
        "{}",
        render_table(
            &[
                "system",
                "workload",
                "tput(tps)",
                "avg-lat(s)",
                "ok",
                "failed"
            ],
            &rows,
        )
    );

    println!("=== Ablation B: superlinear merge term and the Figure 3 shape ===\n");
    let mut rows = Vec::new();
    for quad_enabled in [true, false] {
        for block_size in [25usize, 200, 1000] {
            let mut config = PipelineConfig::paper(block_size, seed);
            if !quad_enabled {
                config.latency.cost.per_merge_quad_us = 0.0;
            }
            let (reg, name) = registry(true);
            let mut sim = fabriccrdt_simulation(config, reg);
            sim.seed_state("hot", br#"{"readings":[]}"#.to_vec());
            let metrics = sim.run(rmw_schedule(&name, n, 300.0));
            rows.push(vec![
                if quad_enabled {
                    "with quad term"
                } else {
                    "without quad term"
                }
                .to_owned(),
                block_size.to_string(),
                format!("{:.1}", metrics.successful_throughput_tps()),
                metrics
                    .avg_latency_secs()
                    .map_or_else(|| "n/a".to_owned(), |s| format!("{s:.3}")),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &["cost model", "block size", "tput(tps)", "avg-lat(s)"],
            &rows
        )
    );
    println!(
        "Without the operation-log apply-cost term the block-size penalty\n\
         collapses — the term (not the pipeline) produces Figure 3's shape.\n"
    );

    println!("=== Ablation C: StreamChain-style stream processing (§8) ===\n");
    // A conflict-free workload (per-transaction keys) at a modest rate so
    // batching latency, not queueing, dominates.
    let stream_n = n.min(2000);
    let keyed = |name: &str| -> Vec<(SimTime, TxRequest)> {
        (0..stream_n)
            .map(|i| {
                let json = format!(r#"{{"readings":["r{i}"]}}"#);
                (
                    SimTime::from_secs_f64(i as f64 / 150.0),
                    TxRequest::new(name, IotChaincode::args(&[], &[format!("k{i}")], &json)),
                )
            })
            .collect()
    };
    let mut rows = Vec::new();
    for (label, block_size, streaming) in [
        ("Fabric, 400-tx blocks", 400usize, false),
        ("Fabric, 1-tx blocks", 1, false),
        ("StreamChain-style", 1, true),
    ] {
        let mut config = PipelineConfig::paper(block_size, seed);
        if streaming {
            // Stream processing removes the per-block batching overhead;
            // a small per-"block" cost remains (hash chaining, I/O).
            config.latency.cost.block_overhead_us = 500.0;
        }
        let (reg, name) = registry(false);
        let mut sim = fabric_simulation(config, reg);
        let metrics = sim.run(keyed(&name));
        rows.push(vec![
            label.to_owned(),
            format!("{:.1}", metrics.successful_throughput_tps()),
            metrics
                .avg_latency_secs()
                .map_or_else(|| "n/a".to_owned(), |s| format!("{:.1}", s * 1000.0)),
            metrics.successful().to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(&["pipeline", "tput(tps)", "avg-lat(ms)", "ok"], &rows)
    );
    println!(
        "Streaming removes block-fill latency (StreamChain's result); the\n\
         per-block overhead it deletes is what batching amortizes.\n"
    );

    println!("=== Ablation D: client resubmission vs merging (§1) ===\n");
    let retry_n = n.min(1500);
    let rmw = |name: &str| rmw_schedule(name, retry_n, 300.0);
    let mut rows = Vec::new();
    for (label, retries) in [
        ("Fabric, no retries", 0usize),
        ("Fabric, retry x5", 5),
        ("Fabric, retry x50", 50),
    ] {
        let (reg, name) = registry(false);
        let mut sim = fabric_simulation(
            PipelineConfig::paper(25, seed).with_client_retries(retries),
            reg,
        );
        sim.seed_state("hot", br#"{"readings":[]}"#.to_vec());
        let metrics = sim.run(rmw(&name));
        rows.push(vec![
            label.to_owned(),
            metrics.successful().to_string(),
            metrics.failed().to_string(),
            metrics.resubmissions.to_string(),
            metrics
                .avg_latency_secs()
                .map_or_else(|| "n/a".to_owned(), |s| format!("{s:.2}")),
        ]);
    }
    {
        let (reg, name) = registry(true);
        let mut sim = fabriccrdt_simulation(PipelineConfig::paper(25, seed), reg);
        sim.seed_state("hot", br#"{"readings":[]}"#.to_vec());
        let metrics = sim.run(rmw(&name));
        rows.push(vec![
            "FabricCRDT, single shot".to_owned(),
            metrics.successful().to_string(),
            metrics.failed().to_string(),
            metrics.resubmissions.to_string(),
            metrics
                .avg_latency_secs()
                .map_or_else(|| "n/a".to_owned(), |s| format!("{s:.2}")),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "client strategy",
                "ok",
                "failed",
                "resubmissions",
                "avg-lat(s)"
            ],
            &rows,
        )
    );
    println!(
        "Retries buy successes with extra round trips and latency;\n\
         FabricCRDT commits everything in one submission (§1's argument)."
    );
}
