//! Figure 4 + Table 2: effect of the number of read and write keys.
//!
//! Sweep (#read-keys, #write-keys) over {1, 3, 5}² with the Table 2
//! workload: 300 tx/s, 2-key JSON objects, all transactions conflicting,
//! each system at its best block size (25 for FabricCRDT, 400 for
//! Fabric; §7.3). The read and write key sets are identical across all
//! transactions, as in the paper.
//!
//! Paper shape: FabricCRDT throughput decreases (and latency increases)
//! as the read-write set grows — it is affected by both reads and writes
//! — while Fabric's successful throughput stays far lower; FabricCRDT
//! commits every transaction.

use fabriccrdt_bench::{run_figure, HarnessOptions};
use fabriccrdt_workload::experiment::{ExperimentConfig, SystemKind};

const KEY_COUNTS: [usize; 3] = [1, 3, 5];

fn main() {
    let options = HarnessOptions::from_args();
    run_figure(
        "Figure 4 / Table 2: effect of read/write key counts",
        &options,
        &[SystemKind::FabricCrdt, SystemKind::Fabric],
        |system| {
            let mut cells = Vec::new();
            for &reads in &KEY_COUNTS {
                for &writes in &KEY_COUNTS {
                    let config = ExperimentConfig {
                        read_keys: reads,
                        write_keys: writes,
                        ..options.base_config().for_system(system)
                    };
                    cells.push((format!("{reads}r-{writes}w"), config));
                }
            }
            cells
        },
    );
}
