//! Partition-and-heal experiment for the gossip dissemination layer.
//!
//! The paper's experiments assume every peer sees every block (ideal
//! FIFO delivery). This experiment stresses the assumption that makes
//! FabricCRDT safe to run over Fabric's *real* dissemination substrate
//! (§4.4 of the Fabric paper: leader pull, push gossip, anti-entropy):
//! because Algorithm 1 rewrites CRDT write sets deterministically, every
//! replica re-seals every block identically, so a partitioned minority
//! that catches up via anti-entropy state transfer lands on
//! **byte-identical** ledgers.
//!
//! Protocol:
//!
//! 1. Run the FabricCRDT pipeline under ideal delivery and log the
//!    orderer's block stream (the workload: 300 all-conflicting CRDT
//!    transactions on one hot key).
//! 2. Replay that stream through two standalone gossip networks — one
//!    fault-free, one where peers 4 and 5 are partitioned from the
//!    majority and the orderer for a window mid-run — and drain both.
//! 3. Verify all six replicas of each network converge to ledgers that
//!    are byte-identical to each other *and* to the pipeline's peer.
//! 4. Report dissemination metrics: propagation percentiles, redundancy
//!    ratio, and the catch-up episodes the heal triggered.
//!
//! Run with: `cargo run --release --bin partition_heal`

use std::sync::Arc;

use fabriccrdt::CrdtValidator;
use fabriccrdt_fabric::chaincode::ChaincodeRegistry;
use fabriccrdt_fabric::config::{FaultConfig, PartitionSpec, PipelineConfig};
use fabriccrdt_fabric::metrics::DisseminationMetrics;
use fabriccrdt_fabric::simulation::{Simulation, TxRequest};
use fabriccrdt_gossip::GossipNetwork;
use fabriccrdt_ledger::block::Block;
use fabriccrdt_sim::time::SimTime;
use fabriccrdt_workload::iot::IotChaincode;

const SEED_DOC: &[u8] = br#"{"readings":[]}"#;
const TXS: usize = 300;
const PARTITION_AT_MS: u64 = 300;
const HEAL_AT_MS: u64 = 1_200;

fn pipeline_config() -> PipelineConfig {
    PipelineConfig::paper(25, 29)
}

fn schedule() -> Vec<(SimTime, TxRequest)> {
    (0..TXS)
        .map(|i| {
            let json = format!(r#"{{"deviceID":"device1","readings":["r{i}"]}}"#);
            (
                SimTime::from_secs_f64(i as f64 / 300.0),
                TxRequest::new(
                    "iot-crdt",
                    IotChaincode::args(&["device1".into()], &["device1".into()], &json),
                ),
            )
        })
        .collect()
}

/// Replays the logged block stream through a gossip network built from
/// `config`, drains it, and returns the final metrics.
fn replay(
    config: &PipelineConfig,
    log: &[(SimTime, Block)],
) -> (GossipNetwork<CrdtValidator>, DisseminationMetrics) {
    let mut network = GossipNetwork::new(config, CrdtValidator::new);
    network.seed_state("device1", SEED_DOC);
    for (cut_at, block) in log {
        network.publish(*cut_at, block.clone());
    }
    network.drain();
    let metrics = network.take_metrics();
    (network, metrics)
}

fn report(label: &str, network: &GossipNetwork<CrdtValidator>, metrics: &DisseminationMetrics) {
    println!("--- {label} ---");
    let propagation = metrics.propagation_summary();
    println!(
        "  propagation latency: p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms, max {:.2} ms ({} deliveries)",
        propagation.percentile(50.0).unwrap_or(0.0) * 1e3,
        propagation.percentile(95.0).unwrap_or(0.0) * 1e3,
        propagation.percentile(99.0).unwrap_or(0.0) * 1e3,
        propagation.max().unwrap_or(0.0) * 1e3,
        propagation.count(),
    );
    println!(
        "  messages: {} sent, {} redundant (ratio {:.3}), {} dropped, {} duplicated",
        metrics.messages_sent,
        metrics.redundant_messages,
        metrics.redundancy_ratio(),
        metrics.messages_dropped,
        metrics.messages_duplicated,
    );
    println!(
        "  anti-entropy: {} transfers carrying {} blocks",
        metrics.anti_entropy_transfers, metrics.anti_entropy_blocks,
    );
    if metrics.catch_up.is_empty() {
        println!("  catch-up episodes: none");
    } else {
        for episode in &metrics.catch_up {
            let end = if episode.is_abandoned() {
                "abandoned (crash)"
            } else if episode.used_snapshot() {
                "caught up via snapshot"
            } else {
                "caught up via replay"
            };
            println!(
                "  catch-up: peer {} behind at {:.1} ms, {end} at {:.1} ms ({:.1} ms, {} bytes shipped)",
                episode.peer,
                episode.from.as_millis_f64(),
                episode.ended_at().as_millis_f64(),
                episode.duration().as_millis_f64(),
                episode.bytes_shipped,
            );
        }
    }
    println!(
        "  committed heights: {:?} (published {})",
        network.committed_heights(),
        network.published_count(),
    );
}

/// Asserts every replica's serialized ledger equals the reference
/// snapshot, byte for byte.
fn assert_byte_identical(
    label: &str,
    network: &GossipNetwork<CrdtValidator>,
    reference: &fabriccrdt_fabric::peer::PeerSnapshot,
) {
    assert!(network.fully_converged(), "{label}: not converged");
    for index in 0..network.peer_count() {
        let snapshot = network.snapshot(index).expect("peer is up after drain");
        assert_eq!(
            snapshot.state, reference.state,
            "{label}: peer {index} world state diverged"
        );
        assert_eq!(
            snapshot.chain, reference.chain,
            "{label}: peer {index} chain diverged"
        );
    }
    println!(
        "  reconvergence: all {} ledgers byte-identical ✓",
        network.peer_count()
    );
}

fn main() {
    println!("Partition-and-heal: gossip dissemination under FabricCRDT");
    println!(
        "workload: {TXS} conflicting CRDT txs on one key; partition peers [4, 5] \
         during [{PARTITION_AT_MS} ms, {HEAL_AT_MS} ms)\n"
    );

    // 1. Pipeline run under ideal delivery; log the block stream.
    let mut registry = ChaincodeRegistry::new();
    registry.deploy(Arc::new(IotChaincode::crdt()));
    let mut sim = Simulation::new(pipeline_config(), CrdtValidator::new(), registry);
    sim.seed_state("device1", SEED_DOC.to_vec());
    sim.enable_block_log();
    let run = sim.run(schedule());
    let log = sim.take_block_log();
    let reference = sim.peer().snapshot();
    println!(
        "pipeline: {} committed over {} blocks, end at {:.1} ms\n",
        run.successful(),
        run.blocks_committed,
        run.end_time.as_millis_f64(),
    );

    // 2a. Fault-free gossip replay.
    let baseline_config = pipeline_config().with_gossip();
    let (baseline_net, baseline) = replay(&baseline_config, &log);
    report("gossip, no faults", &baseline_net, &baseline);
    assert_byte_identical("no faults", &baseline_net, &reference);
    println!();

    // 2b. Partition peers 4 and 5 mid-run, heal later.
    let partition = FaultConfig {
        partitions: vec![PartitionSpec {
            at: SimTime::from_millis(PARTITION_AT_MS),
            heal_at: SimTime::from_millis(HEAL_AT_MS),
            minority: vec![4, 5],
        }],
        ..FaultConfig::none()
    };
    let faulty_config = pipeline_config().with_gossip().with_faults(partition);
    let (faulty_net, faulty) = replay(&faulty_config, &log);
    report("gossip, partition + heal", &faulty_net, &faulty);
    assert_byte_identical("partition + heal", &faulty_net, &reference);

    let worst = faulty
        .worst_catch_up()
        .expect("the heal triggers catch-up episodes");
    assert!(
        worst.from >= SimTime::from_millis(HEAL_AT_MS),
        "catch-up starts at the heal"
    );
    println!(
        "\nworst catch-up after heal: peer {} in {:.1} ms",
        worst.peer,
        worst.duration().as_millis_f64(),
    );
}
