//! Shared harness for the figure-regeneration binaries.
//!
//! One binary per figure of the paper's evaluation (`fig3` … `fig7`,
//! plus `tables`); each prints the same series the corresponding figure
//! plots — throughput of successful transactions (panel a), average
//! latency of successful transactions (panel b), and number of
//! successful transactions (panel c) — for both FabricCRDT and Fabric.
//!
//! Every binary accepts:
//!
//! - `--txs N` — transactions per cell (default 10 000, the paper's
//!   count; lower for a quick look),
//! - `--seed S` — PRNG seed (default 42).

use fabriccrdt_workload::experiment::{ExperimentConfig, ExperimentResult, SystemKind};
use fabriccrdt_workload::report::{figure_headers, figure_row, render_table};

/// Command-line options shared by the figure binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessOptions {
    /// Transactions per experiment cell.
    pub total_txs: usize,
    /// PRNG seed.
    pub seed: u64,
    /// Optional CSV output path for plotting pipelines.
    pub csv: Option<String>,
    /// Arrival rate override in transactions per second (binaries that
    /// hardcode a rate use this instead when set).
    pub rate_tps: Option<f64>,
    /// Block-cut size override (max transactions per block).
    pub block_cut: Option<usize>,
    /// Key-space size override for contention sweeps.
    pub keys: Option<usize>,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            total_txs: 10_000,
            seed: 42,
            csv: None,
            rate_tps: None,
            block_cut: None,
            keys: None,
        }
    }
}

impl HarnessOptions {
    /// Parses `--txs N`, `--seed S`, `--csv PATH`, `--rate TPS`,
    /// `--block-cut N` and `--keys N` from the process arguments.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn from_args() -> Self {
        let mut options = HarnessOptions::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--txs" => {
                    options.total_txs = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .expect("--txs requires a positive integer");
                    i += 2;
                }
                "--seed" => {
                    options.seed = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .expect("--seed requires an integer");
                    i += 2;
                }
                "--csv" => {
                    options.csv =
                        Some(args.get(i + 1).expect("--csv requires a file path").clone());
                    i += 2;
                }
                "--rate" => {
                    let rate: f64 = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .expect("--rate requires a positive number (tps)");
                    assert!(rate > 0.0, "--rate requires a positive number (tps)");
                    options.rate_tps = Some(rate);
                    i += 2;
                }
                "--block-cut" => {
                    options.block_cut = Some(
                        args.get(i + 1)
                            .and_then(|v| v.parse().ok())
                            .expect("--block-cut requires a positive integer"),
                    );
                    i += 2;
                }
                "--keys" => {
                    options.keys = Some(
                        args.get(i + 1)
                            .and_then(|v| v.parse().ok())
                            .expect("--keys requires a positive integer"),
                    );
                    i += 2;
                }
                other => {
                    panic!(
                        "unknown argument {other:?}; supported: --txs N, --seed S, --csv PATH, \
                         --rate TPS, --block-cut N, --keys N"
                    )
                }
            }
        }
        options
    }

    /// The base experiment configuration under these options.
    pub fn base_config(&self) -> ExperimentConfig {
        ExperimentConfig {
            total_txs: self.total_txs,
            seed: self.seed,
            ..ExperimentConfig::paper_defaults()
        }
    }
}

/// Runs a sweep for both systems and prints the standard figure table.
///
/// `cells` yields `(x-label, config-for-that-x)` given a base config for
/// the system; rows print incrementally so long sweeps show progress.
pub fn run_figure<F>(title: &str, options: &HarnessOptions, systems: &[SystemKind], cells: F)
where
    F: Fn(SystemKind) -> Vec<(String, ExperimentConfig)>,
{
    println!("=== {title} ===");
    println!(
        "(10k-tx paper setup; running {} txs/cell, seed {})\n",
        options.total_txs, options.seed
    );
    let mut rows: Vec<Vec<String>> = Vec::new();
    for &system in systems {
        for (label, config) in cells(system) {
            let result = config.run();
            let row = figure_row(&label, &result);
            eprintln!(
                "  done: {} x={} -> {:.1} tps, {} ok",
                system.label(),
                label,
                result.throughput_tps,
                result.successful
            );
            rows.push(row);
        }
    }
    println!("{}", render_table(&figure_headers(), &rows));

    if let Some(path) = &options.csv {
        let mut csv = figure_headers().join(",");
        csv.push('\n');
        for row in &rows {
            csv.push_str(&row.join(","));
            csv.push('\n');
        }
        match std::fs::write(path, csv) {
            Ok(()) => eprintln!("wrote CSV to {path}"),
            Err(e) => eprintln!("could not write CSV to {path}: {e}"),
        }
    }
}

/// Convenience: run one cell.
pub fn run_cell(config: ExperimentConfig) -> ExperimentResult {
    config.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_match_paper() {
        let o = HarnessOptions::default();
        assert_eq!(o.total_txs, 10_000);
        assert_eq!(o.seed, 42);
    }

    #[test]
    fn base_config_threads_options() {
        let o = HarnessOptions {
            total_txs: 123,
            seed: 9,
            ..HarnessOptions::default()
        };
        let cfg = o.base_config();
        assert_eq!(cfg.total_txs, 123);
        assert_eq!(cfg.seed, 9);
    }
}
