//! Property-based tests for the JSON model and the CRDT laws.

use proptest::prelude::*;

use fabriccrdt_jsoncrdt::crdts::{GCounter, GSet, LwwRegister, OrSet, PnCounter};
use fabriccrdt_jsoncrdt::json::Value;
use fabriccrdt_jsoncrdt::op::{Cursor, ItemKey, Mutation, Operation};
use fabriccrdt_jsoncrdt::op_codec;
use fabriccrdt_jsoncrdt::{JsonCrdt, OpId, ReplicaId};

/// Strategy for arbitrary operations.
fn arb_operation() -> impl Strategy<Value = Operation> {
    let arb_id = (1u64..1000, 0u64..8).prop_map(|(c, r)| OpId::new(c, ReplicaId(r)));
    let element = prop_oneof![
        "[a-z]{1,6}".prop_map(fabriccrdt_jsoncrdt::op::CursorElement::Key),
        (0u64..16, any::<u64>()).prop_map(|(index, hash)| {
            fabriccrdt_jsoncrdt::op::CursorElement::ListItem(ItemKey { index, hash })
        }),
    ];
    let mutation = prop_oneof![
        "[a-zA-Z0-9 ]{0,16}".prop_map(Mutation::Assign),
        Just(Mutation::MakeMap),
        Just(Mutation::MakeList),
        Just(Mutation::Delete),
    ];
    (
        arb_id.clone(),
        prop::collection::vec(arb_id, 0..4),
        prop::collection::vec(element, 0..5),
        mutation,
    )
        .prop_map(|(id, deps, elements, mutation)| {
            Operation::new(id, deps, Cursor::from_elements(elements), mutation)
        })
}

/// Strategy for arbitrary JSON values (strings at the leaves, as in the
/// paper's programming model, but also numbers/bools/null for the parser).
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1.0e9..1.0e9f64).prop_map(Value::from),
        "[a-zA-Z0-9 .\\-]{0,12}".prop_map(Value::string),
    ];
    leaf.prop_recursive(4, 48, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Value::list),
            prop::collection::btree_map("[a-z]{1,6}", inner, 0..6).prop_map(Value::Map),
        ]
    })
}

/// Strategy for JSON documents whose leaves are strings only — the shape
/// FabricCRDT chaincodes submit (paper §5.2).
fn arb_string_doc() -> impl Strategy<Value = Value> {
    let leaf = "[a-z0-9.]{1,8}".prop_map(Value::string);
    let node = leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::list),
            prop::collection::btree_map("[a-z]{1,4}", inner, 0..4).prop_map(Value::Map),
        ]
    });
    prop::collection::btree_map("[a-z]{1,4}", node, 0..5).prop_map(Value::Map)
}

proptest! {
    #[test]
    fn json_compact_roundtrip(v in arb_value()) {
        let text = v.to_compact_string();
        prop_assert_eq!(text.parse::<Value>().unwrap(), v);
    }

    #[test]
    fn json_pretty_roundtrip(v in arb_value()) {
        let text = v.to_pretty_string();
        prop_assert_eq!(text.parse::<Value>().unwrap(), v);
    }

    #[test]
    fn json_canonical_form_is_stable(v in arb_value()) {
        let once = v.to_compact_string();
        let twice = once.parse::<Value>().unwrap().to_compact_string();
        prop_assert_eq!(once, twice);
    }

    /// Merging the same document repeatedly never changes the result.
    #[test]
    fn crdt_merge_idempotent(doc in arb_string_doc()) {
        let mut once = JsonCrdt::new(ReplicaId(1));
        once.merge_value(&doc).unwrap();
        let mut many = JsonCrdt::new(ReplicaId(1));
        for _ in 0..3 {
            many.merge_value(&doc).unwrap();
        }
        prop_assert_eq!(once.to_value(), many.to_value());
    }

    /// The same merge sequence always produces the same result
    /// (determinism is what lets every peer converge in block order).
    #[test]
    fn crdt_merge_deterministic(docs in prop::collection::vec(arb_string_doc(), 1..5)) {
        let run = || {
            let mut d = JsonCrdt::new(ReplicaId(1));
            for doc in &docs {
                d.merge_value(doc).unwrap();
            }
            d.to_value()
        };
        prop_assert_eq!(run(), run());
    }

    /// A single merged document converts back to itself (roundtrip through
    /// the CRDT, modulo the string-leaf normalization which arb_string_doc
    /// never triggers).
    #[test]
    fn crdt_single_source_roundtrip(doc in arb_string_doc()) {
        let mut d = JsonCrdt::new(ReplicaId(1));
        d.merge_value(&doc).unwrap();
        prop_assert_eq!(d.to_value(), doc);
    }

    /// Merging sources with disjoint top-level keys is order-insensitive.
    #[test]
    fn crdt_disjoint_sources_commute(
        a in prop::collection::btree_map("a[a-z]{1,3}", "[a-z]{1,6}".prop_map(Value::string), 0..4),
        b in prop::collection::btree_map("b[a-z]{1,3}", "[a-z]{1,6}".prop_map(Value::string), 0..4),
    ) {
        let (a, b) = (Value::Map(a), Value::Map(b));
        let mut ab = JsonCrdt::new(ReplicaId(1));
        ab.merge_value(&a).unwrap();
        ab.merge_value(&b).unwrap();
        let mut ba = JsonCrdt::new(ReplicaId(1));
        ba.merge_value(&b).unwrap();
        ba.merge_value(&a).unwrap();
        prop_assert_eq!(ab.to_value(), ba.to_value());
    }

    /// No update loss: every distinct list item contributed by any source
    /// survives the merge (the paper's "no update loss" requirement).
    #[test]
    fn crdt_list_items_never_lost(
        lists in prop::collection::vec(
            prop::collection::vec("[a-z0-9]{1,6}", 0..5), 1..4),
    ) {
        let mut doc = JsonCrdt::new(ReplicaId(1));
        for items in &lists {
            let source = Value::Map(
                [("l".to_owned(), Value::list(items.iter().map(|s| Value::string(s.clone()))))]
                    .into_iter()
                    .collect(),
            );
            doc.merge_value(&source).unwrap();
        }
        let merged = doc.to_value();
        let merged_items: Vec<&str> = merged
            .get("l")
            .map(|l| l.as_list().unwrap().iter().map(|v| v.as_str().unwrap()).collect())
            .unwrap_or_default();
        for items in &lists {
            for item in items {
                prop_assert!(
                    merged_items.contains(&item.as_str()),
                    "lost item {item:?}"
                );
            }
        }
    }

    /// Two sources writing the same list key converge to the same value
    /// regardless of merge order: list-element identity is
    /// content-addressed and ordering is deterministic, so list unions
    /// are order-insensitive (unlike registers, which arbitrate by merge
    /// order — the property FabricCRDT gets from identical block order).
    #[test]
    fn crdt_list_unions_commute(
        a in prop::collection::vec("[a-z0-9]{1,6}", 0..6),
        b in prop::collection::vec("[a-z0-9]{1,6}", 0..6),
    ) {
        let src = |items: &[String]| {
            Value::Map(
                [("l".to_owned(), Value::list(items.iter().map(|s| Value::string(s.clone()))))]
                    .into_iter()
                    .collect(),
            )
        };
        let mut ab = JsonCrdt::new(ReplicaId(1));
        ab.merge_value(&src(&a)).unwrap();
        ab.merge_value(&src(&b)).unwrap();
        let mut ba = JsonCrdt::new(ReplicaId(1));
        ba.merge_value(&src(&b)).unwrap();
        ba.merge_value(&src(&a)).unwrap();
        prop_assert_eq!(ab.to_value(), ba.to_value());
    }

    /// Merge work counters are deterministic.
    #[test]
    fn crdt_work_deterministic(doc in arb_string_doc()) {
        let run = || {
            let mut d = JsonCrdt::new(ReplicaId(1));
            d.merge_value(&doc).unwrap()
        };
        prop_assert_eq!(run(), run());
    }

    /// The JSON parser is total: arbitrary input never panics.
    #[test]
    fn parser_is_total(input in ".*") {
        let _ = Value::parse(&input);
    }

    /// ... including arbitrary non-UTF-8 byte strings via from_bytes.
    #[test]
    fn from_bytes_is_total(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = Value::from_bytes(&bytes);
    }

    /// Operation codec roundtrips.
    #[test]
    fn op_codec_roundtrip(op in arb_operation()) {
        let decoded = op_codec::decode_op(&op_codec::encode_op(&op)).unwrap();
        prop_assert_eq!(decoded, op);
    }

    /// Operation decoding is total.
    #[test]
    fn op_decode_is_total(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = op_codec::decode_op(&bytes);
    }

    /// Collaborative text: two replicas make arbitrary concurrent edit
    /// scripts, exchange all operations, and converge to the same text
    /// with no character of either replica's insertions lost unless
    /// explicitly deleted.
    #[test]
    fn text_replicas_converge(
        script_a in prop::collection::vec((0usize..20, "[a-z]{1,3}", any::<bool>()), 1..10),
        script_b in prop::collection::vec((0usize..20, "[a-z]{1,3}", any::<bool>()), 1..10),
    ) {
        use fabriccrdt_jsoncrdt::text::TextDoc;
        let mut a = TextDoc::new(ReplicaId(1));
        let mut b = TextDoc::new(ReplicaId(2));
        let mut ops_a = Vec::new();
        for (pos, text, insert) in &script_a {
            if *insert {
                ops_a.extend(a.insert(*pos, text));
            } else {
                ops_a.extend(a.delete(*pos, text.len()));
            }
        }
        let mut ops_b = Vec::new();
        for (pos, text, insert) in &script_b {
            if *insert {
                ops_b.extend(b.insert(*pos, text));
            } else {
                ops_b.extend(b.delete(*pos, text.len()));
            }
        }
        for op in ops_b {
            a.apply(op);
        }
        for op in ops_a {
            b.apply(op);
        }
        prop_assert_eq!(a.text(), b.text());
    }

    /// RGA sequences converge under arbitrary delivery orders.
    #[test]
    fn rga_converges_under_shuffled_delivery(
        inserts in prop::collection::vec((0u64..8, any::<char>()), 1..12),
        shuffle_seed in any::<u64>(),
    ) {
        use fabriccrdt_jsoncrdt::crdts::Rga;
        // Build a causally valid op list: each insert's parent is HEAD or
        // a previously inserted element.
        let mut ops: Vec<(OpId, OpId, char)> = Vec::new();
        for (i, (parent_choice, ch)) in inserts.iter().enumerate() {
            let id = OpId::new(i as u64 + 1, ReplicaId(1 + (i as u64 % 3)));
            let parent = if ops.is_empty() || *parent_choice == 0 {
                Rga::<char>::HEAD
            } else {
                ops[(*parent_choice as usize - 1) % ops.len()].1
            };
            ops.push((parent, id, *ch));
        }
        let reference = {
            let mut rga = Rga::new();
            for &(p, id, ch) in &ops {
                rga.insert_after(p, id, ch);
            }
            rga.to_text()
        };
        // Deliver in a deterministic shuffle.
        let mut shuffled = ops.clone();
        let mut state = shuffle_seed;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let mut rga = Rga::new();
        for (p, id, ch) in shuffled {
            rga.insert_after(p, id, ch);
        }
        prop_assert_eq!(rga.pending_len(), 0);
        prop_assert_eq!(rga.to_text(), reference);
    }

    /// Add-wins graph merge laws (commutative, idempotent).
    #[test]
    fn graph_merge_laws(
        script_a in prop::collection::vec((0u8..4, 0u8..4, any::<bool>()), 0..10),
        script_b in prop::collection::vec((0u8..4, 0u8..4, any::<bool>()), 0..10),
    ) {
        use fabriccrdt_jsoncrdt::crdts::{Edge, GraphCrdt};
        let build = |script: &[(u8, u8, bool)], replica: u64| {
            let mut g = GraphCrdt::new();
            for (i, (from, to, add_edge)) in script.iter().enumerate() {
                let tag = OpId::new(i as u64 + 1, ReplicaId(replica));
                if *add_edge {
                    g.add_vertex(format!("v{from}"), tag);
                    g.add_edge(Edge::new(format!("v{from}"), format!("v{to}")), tag);
                } else {
                    g.add_vertex(format!("v{to}"), tag);
                }
            }
            g
        };
        let a = build(&script_a, 1);
        let b = build(&script_b, 2);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        let mut aa = a.clone();
        aa.merge(&a);
        prop_assert_eq!(&aa, &a);
    }

    /// G-Counter semilattice laws.
    #[test]
    fn gcounter_laws(
        ops_a in prop::collection::vec((0u64..4, 1u64..10), 0..8),
        ops_b in prop::collection::vec((0u64..4, 1u64..10), 0..8),
        ops_c in prop::collection::vec((0u64..4, 1u64..10), 0..8),
    ) {
        let build = |ops: &[(u64, u64)]| {
            let mut c = GCounter::new();
            for &(r, n) in ops {
                c.increment(ReplicaId(r), n);
            }
            c
        };
        let (a, b, c) = (build(&ops_a), build(&ops_b), build(&ops_c));
        // Commutativity.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        // Associativity.
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);
        // Idempotence.
        let mut aa = a.clone();
        aa.merge(&a);
        prop_assert_eq!(&aa, &a);
    }

    /// PN-Counter merge preserves the value of independent updates.
    #[test]
    fn pncounter_merge_sums_disjoint_replicas(
        inc in 0u64..1000, dec in 0u64..1000,
    ) {
        let mut a = PnCounter::new();
        a.increment(ReplicaId(1), inc);
        let mut b = PnCounter::new();
        b.decrement(ReplicaId(2), dec);
        a.merge(&b);
        prop_assert_eq!(a.value(), inc as i64 - dec as i64);
    }

    /// OR-Set: merge is commutative and idempotent over random scripts.
    #[test]
    fn orset_laws(
        script_a in prop::collection::vec(("[a-c]", any::<bool>()), 0..12),
        script_b in prop::collection::vec(("[a-c]", any::<bool>()), 0..12),
    ) {
        let build = |script: &[(String, bool)], replica: u64| {
            let mut s = OrSet::new();
            for (i, (elem, add)) in script.iter().enumerate() {
                if *add {
                    s.insert(elem.clone(), OpId::new(i as u64 + 1, ReplicaId(replica)));
                } else {
                    s.remove(elem);
                }
            }
            s
        };
        let a = build(&script_a, 1);
        let b = build(&script_b, 2);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        let mut aa = a.clone();
        aa.merge(&a);
        prop_assert_eq!(&aa, &a);
    }

    /// GSet merge equals plain set union.
    #[test]
    fn gset_merge_is_union(
        xs in prop::collection::btree_set("[a-z]{1,4}", 0..10),
        ys in prop::collection::btree_set("[a-z]{1,4}", 0..10),
    ) {
        let mut a = GSet::new();
        for x in &xs {
            a.insert(x.clone());
        }
        let mut b = GSet::new();
        for y in &ys {
            b.insert(y.clone());
        }
        a.merge(&b);
        let union: std::collections::BTreeSet<_> = xs.union(&ys).cloned().collect();
        prop_assert_eq!(a.len(), union.len());
        for e in &union {
            prop_assert!(a.contains(e));
        }
    }

    /// LWW register: merge result is the max-stamp write, regardless of
    /// order.
    #[test]
    fn lww_merge_picks_max_stamp(
        stamps in prop::collection::vec((1u64..100, 1u64..5), 1..6),
    ) {
        let regs: Vec<LwwRegister<usize>> = stamps
            .iter()
            .enumerate()
            .map(|(i, &(c, r))| LwwRegister::new(i, OpId::new(c, ReplicaId(r))))
            .collect();
        let mut forward = regs[0].clone();
        for r in &regs[1..] {
            forward.merge(r);
        }
        let mut backward = regs.last().unwrap().clone();
        for r in regs.iter().rev().skip(1) {
            backward.merge(r);
        }
        prop_assert_eq!(forward.stamp(), backward.stamp());
        let max = regs.iter().map(LwwRegister::stamp).max().unwrap();
        prop_assert_eq!(forward.stamp(), max);
    }
}
