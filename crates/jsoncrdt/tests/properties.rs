//! Randomized property tests for the JSON model and the CRDT laws,
//! driven by the deterministic in-repo generator (`fabriccrdt_sim::gen`)
//! so the suite runs with no external dependencies.

use std::collections::BTreeMap;

use fabriccrdt_jsoncrdt::cache;
use fabriccrdt_jsoncrdt::crdts::{GCounter, GSet, LwwRegister, OrSet, PnCounter};
use fabriccrdt_jsoncrdt::json::Value;
use fabriccrdt_jsoncrdt::op::{Cursor, CursorElement, ItemKey, Mutation, Operation};
use fabriccrdt_jsoncrdt::op_codec;
use fabriccrdt_jsoncrdt::{JsonCrdt, OpId, ReplicaId};
use fabriccrdt_sim::gen::{self, Gen};

/// An arbitrary operation.
fn arb_operation(g: &mut Gen) -> Operation {
    let mut arb_id = |g: &mut Gen| OpId::new(g.range(1, 1000), ReplicaId(g.range(0, 8)));
    let id = arb_id(g);
    let deps = g.vec(0, 3, &mut arb_id);
    let elements = g.vec(0, 4, |g| {
        if g.flip() {
            CursorElement::Key(g.ident(1, 6).into())
        } else {
            CursorElement::ListItem(ItemKey {
                index: g.range(0, 16),
                hash: g.u64(),
            })
        }
    });
    let mutation = match g.range(0, 4) {
        0 => Mutation::Assign(g.string_of("abcdefgXYZ0123456789 ", 0, 16)),
        1 => Mutation::MakeMap,
        2 => Mutation::MakeList,
        _ => Mutation::Delete,
    };
    Operation::new(id, deps, Cursor::from_elements(elements), mutation)
}

/// An arbitrary JSON value (strings at the leaves, as in the paper's
/// programming model, but also numbers/bools/null for the parser).
fn arb_value(g: &mut Gen, depth: usize) -> Value {
    if depth == 0 || g.prob(0.45) {
        return match g.range(0, 4) {
            0 => Value::Null,
            1 => Value::Bool(g.flip()),
            2 => Value::from((g.f64_in(-1.0e9, 1.0e9) * 1e3).round() / 1e3),
            _ => Value::string(g.string_of("abcdefXYZ0189 .-", 0, 12)),
        };
    }
    if g.flip() {
        Value::list(g.vec(0, 5, |g| arb_value(g, depth - 1)))
    } else {
        let entries: BTreeMap<String, Value> = g
            .vec(0, 5, |g| (g.ident(1, 6), arb_value(g, depth - 1)))
            .into_iter()
            .collect();
        Value::Map(entries)
    }
}

/// A JSON document whose leaves are strings only — the shape FabricCRDT
/// chaincodes submit (paper §5.2).
fn arb_string_doc(g: &mut Gen) -> Value {
    fn node(g: &mut Gen, depth: usize) -> Value {
        if depth == 0 || g.prob(0.5) {
            return Value::string(g.string_of("abcdefghij0123456789.", 1, 8));
        }
        if g.flip() {
            Value::list(g.vec(0, 4, |g| node(g, depth - 1)))
        } else {
            let entries: BTreeMap<String, Value> = g
                .vec(0, 4, |g| (g.ident(1, 4), node(g, depth - 1)))
                .into_iter()
                .collect();
            Value::Map(entries)
        }
    }
    let entries: BTreeMap<String, Value> = g
        .vec(0, 4, |g| (g.ident(1, 4), node(g, 3)))
        .into_iter()
        .collect();
    Value::Map(entries)
}

#[test]
fn json_compact_roundtrip() {
    gen::cases(128, |g| {
        let v = arb_value(g, 4);
        let text = v.to_compact_string();
        assert_eq!(text.parse::<Value>().unwrap(), v, "{text}");
    });
}

#[test]
fn json_pretty_roundtrip() {
    gen::cases(128, |g| {
        let v = arb_value(g, 4);
        let text = v.to_pretty_string();
        assert_eq!(text.parse::<Value>().unwrap(), v, "{text}");
    });
}

#[test]
fn json_canonical_form_is_stable() {
    gen::cases(128, |g| {
        let v = arb_value(g, 4);
        let once = v.to_compact_string();
        let twice = once.parse::<Value>().unwrap().to_compact_string();
        assert_eq!(once, twice);
    });
}

/// Merging the same document repeatedly never changes the result.
#[test]
fn crdt_merge_idempotent() {
    gen::cases(64, |g| {
        let doc = arb_string_doc(g);
        let mut once = JsonCrdt::new(ReplicaId(1));
        once.merge_value(&doc).unwrap();
        let mut many = JsonCrdt::new(ReplicaId(1));
        for _ in 0..3 {
            many.merge_value(&doc).unwrap();
        }
        assert_eq!(once.to_value(), many.to_value());
    });
}

/// Idempotence also holds through the shared decode cache — the
/// committing-peer path, where N peers merge the same cached
/// `Arc<Value>` parse of one MergeTx payload instead of N fresh parses.
#[test]
fn crdt_merge_idempotent_through_decode_cache() {
    gen::cases(64, |g| {
        let doc = arb_string_doc(g);
        let bytes = doc.to_bytes();
        let cached = cache::decode_cached(&bytes).unwrap();
        let again = cache::decode_cached(&bytes).unwrap();
        let mut fresh = JsonCrdt::new(ReplicaId(1));
        fresh.merge_value(&doc).unwrap();
        let mut via_cache = JsonCrdt::new(ReplicaId(1));
        via_cache.merge_value(&cached).unwrap();
        via_cache.merge_value(&again).unwrap();
        via_cache.merge_value(&cached).unwrap();
        assert_eq!(fresh.to_value(), via_cache.to_value());
    });
}

/// The same merge sequence always produces the same result (determinism
/// is what lets every peer converge in block order).
#[test]
fn crdt_merge_deterministic() {
    gen::cases(64, |g| {
        let docs = g.vec(1, 4, arb_string_doc);
        let run = || {
            let mut d = JsonCrdt::new(ReplicaId(1));
            for doc in &docs {
                d.merge_value(doc).unwrap();
            }
            d.to_value()
        };
        assert_eq!(run(), run());
    });
}

/// A single merged document converts back to itself (roundtrip through
/// the CRDT, modulo the string-leaf normalization which arb_string_doc
/// never triggers).
#[test]
fn crdt_single_source_roundtrip() {
    gen::cases(64, |g| {
        let doc = arb_string_doc(g);
        let mut d = JsonCrdt::new(ReplicaId(1));
        d.merge_value(&doc).unwrap();
        assert_eq!(d.to_value(), doc);
    });
}

/// Merging sources with disjoint top-level keys is order-insensitive.
#[test]
fn crdt_disjoint_sources_commute() {
    gen::cases(64, |g| {
        let side = |g: &mut Gen, prefix: &str| {
            let entries: BTreeMap<String, Value> = g
                .vec(0, 4, |g| {
                    (
                        format!("{prefix}{}", g.ident(1, 3)),
                        Value::string(g.ident(1, 6)),
                    )
                })
                .into_iter()
                .collect();
            Value::Map(entries)
        };
        let a = side(g, "a");
        let b = side(g, "b");
        let mut ab = JsonCrdt::new(ReplicaId(1));
        ab.merge_value(&a).unwrap();
        ab.merge_value(&b).unwrap();
        let mut ba = JsonCrdt::new(ReplicaId(1));
        ba.merge_value(&b).unwrap();
        ba.merge_value(&a).unwrap();
        assert_eq!(ab.to_value(), ba.to_value());
    });
}

/// No update loss: every distinct list item contributed by any source
/// survives the merge (the paper's "no update loss" requirement).
#[test]
fn crdt_list_items_never_lost() {
    gen::cases(64, |g| {
        let lists = g.vec(1, 3, |g| g.vec(0, 4, |g| g.string_of("abcdef012", 1, 6)));
        let mut doc = JsonCrdt::new(ReplicaId(1));
        for items in &lists {
            let source = Value::Map(
                [(
                    "l".to_owned(),
                    Value::list(items.iter().map(|s| Value::string(s.clone()))),
                )]
                .into_iter()
                .collect(),
            );
            doc.merge_value(&source).unwrap();
        }
        let merged = doc.to_value();
        let merged_items: Vec<&str> = merged
            .get("l")
            .map(|l| {
                l.as_list()
                    .unwrap()
                    .iter()
                    .map(|v| v.as_str().unwrap())
                    .collect()
            })
            .unwrap_or_default();
        for items in &lists {
            for item in items {
                assert!(merged_items.contains(&item.as_str()), "lost item {item:?}");
            }
        }
    });
}

/// Two sources writing the same list key converge to the same value
/// regardless of merge order: list-element identity is content-addressed
/// and ordering is deterministic, so list unions are order-insensitive
/// (unlike registers, which arbitrate by merge order — the property
/// FabricCRDT gets from identical block order).
#[test]
fn crdt_list_unions_commute() {
    gen::cases(64, |g| {
        let a = g.vec(0, 6, |g| g.string_of("abcdef012", 1, 6));
        let b = g.vec(0, 6, |g| g.string_of("abcdef012", 1, 6));
        let src = |items: &[String]| {
            Value::Map(
                [(
                    "l".to_owned(),
                    Value::list(items.iter().map(|s| Value::string(s.clone()))),
                )]
                .into_iter()
                .collect(),
            )
        };
        let mut ab = JsonCrdt::new(ReplicaId(1));
        ab.merge_value(&src(&a)).unwrap();
        ab.merge_value(&src(&b)).unwrap();
        let mut ba = JsonCrdt::new(ReplicaId(1));
        ba.merge_value(&src(&b)).unwrap();
        ba.merge_value(&src(&a)).unwrap();
        assert_eq!(ab.to_value(), ba.to_value());
    });
}

/// Merge work counters are deterministic.
#[test]
fn crdt_work_deterministic() {
    gen::cases(64, |g| {
        let doc = arb_string_doc(g);
        let run = || {
            let mut d = JsonCrdt::new(ReplicaId(1));
            d.merge_value(&doc).unwrap()
        };
        assert_eq!(run(), run());
    });
}

/// The JSON parser is total: arbitrary input never panics.
#[test]
fn parser_is_total() {
    gen::cases(256, |g| {
        let input: String = g
            .vec(0, 60, |g| {
                char::from_u32(g.range(1, 0xd800) as u32).unwrap()
            })
            .into_iter()
            .collect();
        let _ = Value::parse(&input);
        // And inputs biased toward JSON-looking text.
        let jsonish = g.string_of("{}[]\",:.0123456789truefalsenul \\", 0, 60);
        let _ = Value::parse(&jsonish);
    });
}

/// ... including arbitrary non-UTF-8 byte strings via from_bytes.
#[test]
fn from_bytes_is_total() {
    gen::cases(256, |g| {
        let bytes = g.bytes(0, 200);
        let _ = Value::from_bytes(&bytes);
    });
}

/// Operation codec roundtrips.
#[test]
fn op_codec_roundtrip() {
    gen::cases(128, |g| {
        let op = arb_operation(g);
        let decoded = op_codec::decode_op(&op_codec::encode_op(&op)).unwrap();
        assert_eq!(decoded, op);
    });
}

/// Operation decoding is total.
#[test]
fn op_decode_is_total() {
    gen::cases(256, |g| {
        let bytes = g.bytes(0, 200);
        let _ = op_codec::decode_op(&bytes);
    });
}

/// Collaborative text: two replicas make arbitrary concurrent edit
/// scripts, exchange all operations, and converge to the same text with
/// no character of either replica's insertions lost unless explicitly
/// deleted.
#[test]
fn text_replicas_converge() {
    use fabriccrdt_jsoncrdt::text::TextDoc;
    gen::cases(64, |g| {
        let script =
            |g: &mut Gen| g.vec(1, 9, |g| (g.range(0, 20) as usize, g.ident(1, 3), g.flip()));
        let script_a = script(g);
        let script_b = script(g);
        let mut a = TextDoc::new(ReplicaId(1));
        let mut b = TextDoc::new(ReplicaId(2));
        let mut ops_a = Vec::new();
        for (pos, text, insert) in &script_a {
            if *insert {
                ops_a.extend(a.insert(*pos, text));
            } else {
                ops_a.extend(a.delete(*pos, text.len()));
            }
        }
        let mut ops_b = Vec::new();
        for (pos, text, insert) in &script_b {
            if *insert {
                ops_b.extend(b.insert(*pos, text));
            } else {
                ops_b.extend(b.delete(*pos, text.len()));
            }
        }
        for op in ops_b {
            a.apply(op);
        }
        for op in ops_a {
            b.apply(op);
        }
        assert_eq!(a.text(), b.text());
    });
}

/// RGA sequences converge under arbitrary delivery orders.
#[test]
fn rga_converges_under_shuffled_delivery() {
    use fabriccrdt_jsoncrdt::crdts::Rga;
    gen::cases(64, |g| {
        let inserts = g.vec(1, 11, |g| {
            (
                g.range(0, 8),
                char::from_u32(g.range(0x20, 0x7f) as u32).unwrap(),
            )
        });
        // Build a causally valid op list: each insert's parent is HEAD or
        // a previously inserted element.
        let mut ops: Vec<(OpId, OpId, char)> = Vec::new();
        for (i, (parent_choice, ch)) in inserts.iter().enumerate() {
            let id = OpId::new(i as u64 + 1, ReplicaId(1 + (i as u64 % 3)));
            let parent = if ops.is_empty() || *parent_choice == 0 {
                Rga::<char>::HEAD
            } else {
                ops[(*parent_choice as usize - 1) % ops.len()].1
            };
            ops.push((parent, id, *ch));
        }
        let reference = {
            let mut rga = Rga::new();
            for &(p, id, ch) in &ops {
                rga.insert_after(p, id, ch);
            }
            rga.to_text()
        };
        // Deliver in a deterministic shuffle.
        let mut shuffled = ops.clone();
        g.rng().shuffle(&mut shuffled);
        let mut rga = Rga::new();
        for (p, id, ch) in shuffled {
            rga.insert_after(p, id, ch);
        }
        assert_eq!(rga.pending_len(), 0);
        assert_eq!(rga.to_text(), reference);
    });
}

/// Add-wins graph merge laws (commutative, idempotent).
#[test]
fn graph_merge_laws() {
    use fabriccrdt_jsoncrdt::crdts::{Edge, GraphCrdt};
    gen::cases(64, |g| {
        let script = |g: &mut Gen| g.vec(0, 9, |g| (g.range(0, 4), g.range(0, 4), g.flip()));
        let build = |script: &[(u64, u64, bool)], replica: u64| {
            let mut graph = GraphCrdt::new();
            for (i, (from, to, add_edge)) in script.iter().enumerate() {
                let tag = OpId::new(i as u64 + 1, ReplicaId(replica));
                if *add_edge {
                    graph.add_vertex(format!("v{from}"), tag);
                    graph.add_edge(Edge::new(format!("v{from}"), format!("v{to}")), tag);
                } else {
                    graph.add_vertex(format!("v{to}"), tag);
                }
            }
            graph
        };
        let a = build(&script(g), 1);
        let b = build(&script(g), 2);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(&ab, &ba);
        let mut aa = a.clone();
        aa.merge(&a);
        assert_eq!(&aa, &a);
    });
}

/// G-Counter semilattice laws.
#[test]
fn gcounter_laws() {
    gen::cases(64, |g| {
        let ops = |g: &mut Gen| g.vec(0, 8, |g| (g.range(0, 4), g.range(1, 10)));
        let build = |ops: &[(u64, u64)]| {
            let mut c = GCounter::new();
            for &(r, n) in ops {
                c.increment(ReplicaId(r), n);
            }
            c
        };
        let (a, b, c) = (build(&ops(g)), build(&ops(g)), build(&ops(g)));
        // Commutativity.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(&ab, &ba);
        // Associativity.
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(&ab_c, &a_bc);
        // Idempotence.
        let mut aa = a.clone();
        aa.merge(&a);
        assert_eq!(&aa, &a);
    });
}

/// PN-Counter merge preserves the value of independent updates.
#[test]
fn pncounter_merge_sums_disjoint_replicas() {
    gen::cases(128, |g| {
        let inc = g.range(0, 1000);
        let dec = g.range(0, 1000);
        let mut a = PnCounter::new();
        a.increment(ReplicaId(1), inc);
        let mut b = PnCounter::new();
        b.decrement(ReplicaId(2), dec);
        a.merge(&b);
        assert_eq!(a.value(), inc as i64 - dec as i64);
    });
}

/// OR-Set: merge is commutative and idempotent over random scripts.
#[test]
fn orset_laws() {
    gen::cases(64, |g| {
        let script = |g: &mut Gen| g.vec(0, 12, |g| (g.string_of("abc", 1, 1), g.flip()));
        let build = |script: &[(String, bool)], replica: u64| {
            let mut s = OrSet::new();
            for (i, (elem, add)) in script.iter().enumerate() {
                if *add {
                    s.insert(elem.clone(), OpId::new(i as u64 + 1, ReplicaId(replica)));
                } else {
                    s.remove(elem);
                }
            }
            s
        };
        let a = build(&script(g), 1);
        let b = build(&script(g), 2);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(&ab, &ba);
        let mut aa = a.clone();
        aa.merge(&a);
        assert_eq!(&aa, &a);
    });
}

/// GSet merge equals plain set union.
#[test]
fn gset_merge_is_union() {
    gen::cases(64, |g| {
        let xs: std::collections::BTreeSet<String> =
            g.vec(0, 10, |g| g.ident(1, 4)).into_iter().collect();
        let ys: std::collections::BTreeSet<String> =
            g.vec(0, 10, |g| g.ident(1, 4)).into_iter().collect();
        let mut a = GSet::new();
        for x in &xs {
            a.insert(x.clone());
        }
        let mut b = GSet::new();
        for y in &ys {
            b.insert(y.clone());
        }
        a.merge(&b);
        let union: std::collections::BTreeSet<_> = xs.union(&ys).cloned().collect();
        assert_eq!(a.len(), union.len());
        for e in &union {
            assert!(a.contains(e));
        }
    });
}

/// LWW register: merge result is the max-stamp write, regardless of
/// order.
#[test]
fn lww_merge_picks_max_stamp() {
    gen::cases(128, |g| {
        let stamps = g.vec(1, 5, |g| (g.range(1, 100), g.range(1, 5)));
        let regs: Vec<LwwRegister<usize>> = stamps
            .iter()
            .enumerate()
            .map(|(i, &(c, r))| LwwRegister::new(i, OpId::new(c, ReplicaId(r))))
            .collect();
        let mut forward = regs[0].clone();
        for r in &regs[1..] {
            forward.merge(r);
        }
        let mut backward = regs.last().unwrap().clone();
        for r in regs.iter().rev().skip(1) {
            backward.merge(r);
        }
        assert_eq!(forward.stamp(), backward.stamp());
        let max = regs.iter().map(LwwRegister::stamp).max().unwrap();
        assert_eq!(forward.stamp(), max);
    });
}
