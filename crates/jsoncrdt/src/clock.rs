//! Lamport clocks and globally unique operation identifiers.
//!
//! Section 5.2 of the paper: *"We ensure that the operations identifiers
//! are globally unique by using an instance of a Lamport Clock for each
//! JSON CRDT instantiation. The Lamport clock is incremented by one with
//! every new operation to ensure the causal order of the operations."*
//!
//! [`VersionVector`] summarizes a document's applied-operation set as a
//! per-replica high-water mark — its causal frontier. Because merge
//! chains tick the clock by exactly one per operation, the frontier
//! stays *exact* (covers precisely the applied set) on the hot path,
//! turning per-op `BTreeSet` membership checks and doc-to-doc merge
//! filtering into a couple of integer compares.

use std::collections::BTreeMap;
use std::fmt;

/// Identifies the process (peer) that generated an operation. Ties between
/// equal Lamport counters are broken by the replica id, yielding the usual
/// total order on [`OpId`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ReplicaId(pub u64);

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A globally unique operation identifier: `(lamport counter, replica)`.
///
/// Ordered lexicographically — counter first, replica as tie-breaker —
/// which is the arbitration order used when converting multi-value
/// registers back to plain JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId {
    /// Lamport counter at generation time.
    pub counter: u64,
    /// Replica that generated the operation.
    pub replica: ReplicaId,
}

impl OpId {
    /// Creates an operation id.
    pub fn new(counter: u64, replica: ReplicaId) -> Self {
        OpId { counter, replica }
    }

    /// The zero id, used for values hydrated from committed ledger state
    /// (they causally precede everything a block merge generates).
    pub fn root() -> Self {
        OpId::new(0, ReplicaId(0))
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.counter, self.replica)
    }
}

/// A Lamport clock owned by one JSON CRDT document instance.
///
/// # Examples
///
/// ```
/// use fabriccrdt_jsoncrdt::{LamportClock, ReplicaId};
///
/// let mut clock = LamportClock::new(ReplicaId(7));
/// let a = clock.tick();
/// let b = clock.tick();
/// assert!(a < b);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LamportClock {
    counter: u64,
    replica: ReplicaId,
}

impl LamportClock {
    /// Creates a clock at zero for the given replica.
    pub fn new(replica: ReplicaId) -> Self {
        LamportClock {
            counter: 0,
            replica,
        }
    }

    /// Increments the clock and returns a fresh operation id
    /// (paper Algorithm 2, `TickClock` + `ClockToString`).
    pub fn tick(&mut self) -> OpId {
        self.counter += 1;
        OpId::new(self.counter, self.replica)
    }

    /// Merges in an observed id: the counter jumps to
    /// `max(local, observed)`, preserving the Lamport happened-before
    /// property when operations from another document are replayed.
    pub fn observe(&mut self, id: OpId) {
        self.counter = self.counter.max(id.counter);
    }

    /// Current counter value (the id of the most recent tick).
    pub fn current(&self) -> u64 {
        self.counter
    }

    /// The replica this clock stamps operations for.
    pub fn replica(&self) -> ReplicaId {
        self.replica
    }
}

/// A per-replica high-water mark over *contiguously* observed operation
/// counters — the document's causal frontier.
///
/// The vector only advances a replica's entry when the observed counter
/// is the direct successor of the current mark ([`VersionVector::observe`]
/// returns `false` on a gap and records nothing). That conservative rule
/// keeps `contains` sound as a lower bound in both directions: an id the
/// vector contains has definitely been observed, so it can substitute
/// for an exact applied-set membership test, while ids above the mark
/// fall through to the caller's exact bookkeeping.
///
/// Counter `0` is reserved for [`OpId::root`] (state hydrated from the
/// committed ledger, causally before everything) and is always
/// contained.
///
/// # Examples
///
/// ```
/// use fabriccrdt_jsoncrdt::{OpId, ReplicaId, VersionVector};
///
/// let mut frontier = VersionVector::new();
/// assert!(frontier.observe(OpId::new(1, ReplicaId(3))));
/// assert!(frontier.observe(OpId::new(2, ReplicaId(3))));
/// assert!(frontier.contains(OpId::new(1, ReplicaId(3))));
/// // A gap is reported, not recorded.
/// assert!(!frontier.observe(OpId::new(9, ReplicaId(3))));
/// assert!(!frontier.contains(OpId::new(9, ReplicaId(3))));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VersionVector {
    seen: BTreeMap<ReplicaId, u64>,
}

impl VersionVector {
    /// An empty frontier (contains only [`OpId::root`]).
    pub fn new() -> Self {
        VersionVector::default()
    }

    /// Whether `id` is at or below this frontier. Sound: `true` implies
    /// the id was observed (contiguously), never the converse.
    pub fn contains(&self, id: OpId) -> bool {
        id.counter <= self.entry(id.replica)
    }

    /// Records `id` if it is at or directly above the replica's mark.
    /// Returns `false` — recording nothing — when `id.counter` would
    /// leave a gap; the caller should then fall back to exact tracking.
    pub fn observe(&mut self, id: OpId) -> bool {
        if id.counter == 0 {
            return true;
        }
        let slot = self.seen.entry(id.replica).or_insert(0);
        if id.counter <= *slot {
            true
        } else if id.counter == *slot + 1 {
            *slot = id.counter;
            true
        } else {
            false
        }
    }

    /// Highest contiguously observed counter for `replica` (0 if none).
    pub fn entry(&self, replica: ReplicaId) -> u64 {
        self.seen.get(&replica).copied().unwrap_or(0)
    }

    /// Whether every id contained in `other` is also contained here.
    pub fn dominates(&self, other: &VersionVector) -> bool {
        other
            .seen
            .iter()
            .all(|(replica, counter)| self.entry(*replica) >= *counter)
    }

    /// Number of replicas with a non-zero mark.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether no replica has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Iterates `(replica, mark)` entries in replica order.
    pub fn iter(&self) -> impl Iterator<Item = (ReplicaId, u64)> + '_ {
        self.seen.iter().map(|(r, c)| (*r, *c))
    }

    /// Pointwise maximum with `other` (frontier join). Sound because
    /// both inputs are contiguous frontiers: every counter at or below
    /// either mark was observed, so the join is contiguous too.
    pub fn join(&mut self, other: &VersionVector) {
        for (replica, counter) in &other.seen {
            let slot = self.seen.entry(*replica).or_insert(0);
            *slot = (*slot).max(*counter);
        }
    }

    /// Keeps only the entries for which the predicate holds — used by
    /// snapshot GC to drop marks for already-compacted history.
    pub fn retain(&mut self, mut keep: impl FnMut(ReplicaId, u64) -> bool) {
        self.seen
            .retain(|replica, counter| keep(*replica, *counter));
    }

    /// Serializes the frontier: entry count then `(replica, counter)`
    /// pairs, all u64 big-endian, in replica order (deterministic).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 16 * self.seen.len());
        out.extend_from_slice(&(self.seen.len() as u64).to_be_bytes());
        for (replica, counter) in &self.seen {
            out.extend_from_slice(&replica.0.to_be_bytes());
            out.extend_from_slice(&counter.to_be_bytes());
        }
        out
    }

    /// Parses a frontier serialized by [`VersionVector::to_bytes`].
    /// Returns `None` on any length mismatch or zero counter (zero
    /// marks are never stored, so round-trips stay canonical).
    pub fn from_bytes(bytes: &[u8]) -> Option<VersionVector> {
        let count_bytes: [u8; 8] = bytes.get(..8)?.try_into().ok()?;
        let count = u64::from_be_bytes(count_bytes) as usize;
        if bytes.len() != 8 + count.checked_mul(16)? {
            return None;
        }
        let mut seen = BTreeMap::new();
        for entry in bytes[8..].chunks_exact(16) {
            let replica = u64::from_be_bytes(entry[..8].try_into().ok()?);
            let counter = u64::from_be_bytes(entry[8..].try_into().ok()?);
            if counter == 0 {
                return None;
            }
            seen.insert(ReplicaId(replica), counter);
        }
        (seen.len() == count).then_some(VersionVector { seen })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_strictly_increasing() {
        let mut c = LamportClock::new(ReplicaId(1));
        let mut prev = c.tick();
        for _ in 0..100 {
            let next = c.tick();
            assert!(next > prev);
            prev = next;
        }
    }

    #[test]
    fn op_id_total_order() {
        let a = OpId::new(1, ReplicaId(2));
        let b = OpId::new(2, ReplicaId(1));
        let c = OpId::new(2, ReplicaId(2));
        assert!(a < b);
        assert!(b < c);
        assert!(OpId::root() < a);
    }

    #[test]
    fn observe_advances_counter() {
        let mut c = LamportClock::new(ReplicaId(1));
        c.observe(OpId::new(41, ReplicaId(9)));
        assert_eq!(c.tick(), OpId::new(42, ReplicaId(1)));
    }

    #[test]
    fn observe_never_rolls_back() {
        let mut c = LamportClock::new(ReplicaId(1));
        for _ in 0..10 {
            c.tick();
        }
        c.observe(OpId::new(3, ReplicaId(2)));
        assert_eq!(c.current(), 10);
    }

    #[test]
    fn replica_tie_break_is_deterministic() {
        let a = OpId::new(5, ReplicaId(1));
        let b = OpId::new(5, ReplicaId(2));
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_forms() {
        assert_eq!(OpId::new(3, ReplicaId(4)).to_string(), "3@r4");
        assert_eq!(ReplicaId(9).to_string(), "r9");
    }

    #[test]
    fn version_vector_contiguous_observation() {
        let mut v = VersionVector::new();
        assert!(v.observe(OpId::new(1, ReplicaId(1))));
        assert!(v.observe(OpId::new(2, ReplicaId(1))));
        assert!(v.observe(OpId::new(1, ReplicaId(2))));
        assert!(v.contains(OpId::new(2, ReplicaId(1))));
        assert!(!v.contains(OpId::new(3, ReplicaId(1))));
        assert_eq!(v.entry(ReplicaId(1)), 2);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn version_vector_rejects_gaps_without_recording() {
        let mut v = VersionVector::new();
        assert!(v.observe(OpId::new(1, ReplicaId(1))));
        assert!(!v.observe(OpId::new(5, ReplicaId(1))));
        assert_eq!(v.entry(ReplicaId(1)), 1);
        // Re-observing at or below the mark is idempotent.
        assert!(v.observe(OpId::new(1, ReplicaId(1))));
        assert_eq!(v.entry(ReplicaId(1)), 1);
    }

    #[test]
    fn version_vector_root_always_contained() {
        let mut v = VersionVector::new();
        assert!(v.contains(OpId::root()));
        assert!(v.observe(OpId::root()));
        assert!(v.is_empty(), "root observation records nothing");
    }

    #[test]
    fn version_vector_join_is_pointwise_max() {
        let mut a = VersionVector::new();
        let mut b = VersionVector::new();
        for c in 1..=3 {
            a.observe(OpId::new(c, ReplicaId(1)));
        }
        b.observe(OpId::new(1, ReplicaId(1)));
        b.observe(OpId::new(1, ReplicaId(2)));
        a.join(&b);
        assert_eq!(a.entry(ReplicaId(1)), 3);
        assert_eq!(a.entry(ReplicaId(2)), 1);
        assert!(a.dominates(&b));
        // Joining the empty frontier is the identity.
        let snapshot = a.clone();
        a.join(&VersionVector::new());
        assert_eq!(a, snapshot);
    }

    #[test]
    fn version_vector_retain_drops_entries() {
        let mut v = VersionVector::new();
        v.observe(OpId::new(1, ReplicaId(1)));
        v.observe(OpId::new(1, ReplicaId(7)));
        v.retain(|replica, _| replica.0 > 3);
        assert_eq!(v.entry(ReplicaId(1)), 0);
        assert_eq!(v.entry(ReplicaId(7)), 1);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn version_vector_byte_roundtrip() {
        let mut v = VersionVector::new();
        for c in 1..=4 {
            v.observe(OpId::new(c, ReplicaId(2)));
        }
        v.observe(OpId::new(1, ReplicaId(u64::MAX)));
        let bytes = v.to_bytes();
        assert_eq!(bytes.len(), 8 + 16 * 2);
        assert_eq!(VersionVector::from_bytes(&bytes), Some(v));
        assert_eq!(
            VersionVector::from_bytes(&VersionVector::new().to_bytes()),
            Some(VersionVector::new())
        );
        // Truncated, padded, and zero-counter inputs are rejected.
        assert_eq!(VersionVector::from_bytes(&bytes[..bytes.len() - 1]), None);
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(VersionVector::from_bytes(&padded), None);
        let mut zeroed = VersionVector::new().to_bytes();
        zeroed[7] = 1;
        zeroed.extend_from_slice(&[0; 16]);
        assert_eq!(VersionVector::from_bytes(&zeroed), None);
        assert_eq!(VersionVector::from_bytes(b"short"), None);
    }

    #[test]
    fn version_vector_dominates_is_pointwise() {
        let mut a = VersionVector::new();
        let mut b = VersionVector::new();
        for c in 1..=3 {
            a.observe(OpId::new(c, ReplicaId(1)));
        }
        b.observe(OpId::new(1, ReplicaId(1)));
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        b.observe(OpId::new(1, ReplicaId(2)));
        assert!(!a.dominates(&b));
        assert!(a.dominates(&VersionVector::new()));
    }
}
