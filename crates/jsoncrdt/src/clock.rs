//! Lamport clocks and globally unique operation identifiers.
//!
//! Section 5.2 of the paper: *"We ensure that the operations identifiers
//! are globally unique by using an instance of a Lamport Clock for each
//! JSON CRDT instantiation. The Lamport clock is incremented by one with
//! every new operation to ensure the causal order of the operations."*

use std::fmt;

/// Identifies the process (peer) that generated an operation. Ties between
/// equal Lamport counters are broken by the replica id, yielding the usual
/// total order on [`OpId`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ReplicaId(pub u64);

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A globally unique operation identifier: `(lamport counter, replica)`.
///
/// Ordered lexicographically — counter first, replica as tie-breaker —
/// which is the arbitration order used when converting multi-value
/// registers back to plain JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId {
    /// Lamport counter at generation time.
    pub counter: u64,
    /// Replica that generated the operation.
    pub replica: ReplicaId,
}

impl OpId {
    /// Creates an operation id.
    pub fn new(counter: u64, replica: ReplicaId) -> Self {
        OpId { counter, replica }
    }

    /// The zero id, used for values hydrated from committed ledger state
    /// (they causally precede everything a block merge generates).
    pub fn root() -> Self {
        OpId::new(0, ReplicaId(0))
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.counter, self.replica)
    }
}

/// A Lamport clock owned by one JSON CRDT document instance.
///
/// # Examples
///
/// ```
/// use fabriccrdt_jsoncrdt::{LamportClock, ReplicaId};
///
/// let mut clock = LamportClock::new(ReplicaId(7));
/// let a = clock.tick();
/// let b = clock.tick();
/// assert!(a < b);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LamportClock {
    counter: u64,
    replica: ReplicaId,
}

impl LamportClock {
    /// Creates a clock at zero for the given replica.
    pub fn new(replica: ReplicaId) -> Self {
        LamportClock {
            counter: 0,
            replica,
        }
    }

    /// Increments the clock and returns a fresh operation id
    /// (paper Algorithm 2, `TickClock` + `ClockToString`).
    pub fn tick(&mut self) -> OpId {
        self.counter += 1;
        OpId::new(self.counter, self.replica)
    }

    /// Merges in an observed id: the counter jumps to
    /// `max(local, observed)`, preserving the Lamport happened-before
    /// property when operations from another document are replayed.
    pub fn observe(&mut self, id: OpId) {
        self.counter = self.counter.max(id.counter);
    }

    /// Current counter value (the id of the most recent tick).
    pub fn current(&self) -> u64 {
        self.counter
    }

    /// The replica this clock stamps operations for.
    pub fn replica(&self) -> ReplicaId {
        self.replica
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_strictly_increasing() {
        let mut c = LamportClock::new(ReplicaId(1));
        let mut prev = c.tick();
        for _ in 0..100 {
            let next = c.tick();
            assert!(next > prev);
            prev = next;
        }
    }

    #[test]
    fn op_id_total_order() {
        let a = OpId::new(1, ReplicaId(2));
        let b = OpId::new(2, ReplicaId(1));
        let c = OpId::new(2, ReplicaId(2));
        assert!(a < b);
        assert!(b < c);
        assert!(OpId::root() < a);
    }

    #[test]
    fn observe_advances_counter() {
        let mut c = LamportClock::new(ReplicaId(1));
        c.observe(OpId::new(41, ReplicaId(9)));
        assert_eq!(c.tick(), OpId::new(42, ReplicaId(1)));
    }

    #[test]
    fn observe_never_rolls_back() {
        let mut c = LamportClock::new(ReplicaId(1));
        for _ in 0..10 {
            c.tick();
        }
        c.observe(OpId::new(3, ReplicaId(2)));
        assert_eq!(c.current(), 10);
    }

    #[test]
    fn replica_tie_break_is_deterministic() {
        let a = OpId::new(5, ReplicaId(1));
        let b = OpId::new(5, ReplicaId(2));
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_forms() {
        assert_eq!(OpId::new(3, ReplicaId(4)).to_string(), "3@r4");
        assert_eq!(ReplicaId(9).to_string(), "r9");
    }
}
