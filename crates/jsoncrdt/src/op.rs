//! Cursors, mutations and operations — the vocabulary of the JSON CRDT.
//!
//! Following Kleppmann & Beresford (and Algorithm 2 of the FabricCRDT
//! paper), every modification of a JSON CRDT document is an [`Operation`]:
//! a globally unique id, a set of causal dependencies, a [`Cursor`]
//! describing the path from the document head to the mutation site, and the
//! [`Mutation`] itself.

use crate::clock::OpId;
use crate::json::Value;
use std::fmt;
use std::sync::Arc;

/// Identity of a list element.
///
/// Real JSON CRDTs identify list elements by the id of the operation that
/// inserted them, shared through a common operation history. FabricCRDT
/// peers reconstruct CRDTs from *plain JSON* write-set values (Algorithm 1
/// line 9), so two transactions that both carry the unchanged committed
/// prefix of a list must map that prefix onto the *same* element
/// identities or every block would duplicate it. We therefore derive
/// element identity from content and position: `(source index,
/// content hash)`. Identical `(index, content)` pairs from different
/// transactions merge idempotently (the "no duplication" half of the
/// paper's §2.2 requirement); divergent suffixes get distinct identities
/// and are all preserved (the "no update loss" requirement, §4.2),
/// ordered deterministically by `(index, hash)` on every peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ItemKey {
    /// Position of the element in the source JSON list.
    pub index: u64,
    /// FNV-1a hash of the element's canonical serialization.
    pub hash: u64,
}

impl ItemKey {
    /// Derives the key for the element at `index` with content `value`.
    pub fn derive(index: usize, value: &Value) -> Self {
        ItemKey {
            index: index as u64,
            hash: fnv1a(value.to_compact_string().as_bytes()),
        }
    }
}

impl fmt::Display for ItemKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}#{:08x}]", self.index, self.hash)
    }
}

/// 64-bit FNV-1a hash; content addressing for list elements.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One step of a cursor path.
///
/// Map keys are shared `Arc<str>`s rather than owned `String`s: the
/// merge hot path (`JsonCrdt::merge_at`) clones the cursor once per
/// generated operation, and a block full of MergeTxs repeats the same
/// handful of keys ("readings", "deviceID", …) thousands of times.
/// Interning turns every one of those clones into a reference-count
/// bump instead of a heap allocation + memcpy.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CursorElement {
    /// Descend into the map child with this key.
    Key(Arc<str>),
    /// Descend into the list element with this identity.
    ListItem(ItemKey),
}

impl fmt::Display for CursorElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CursorElement::Key(k) => write!(f, ".{k}"),
            CursorElement::ListItem(item) => write!(f, "{item}"),
        }
    }
}

/// A path from the head of the document to a mutation site
/// (paper Algorithm 2: `NewCursorElements` / `AddCursorElement` /
/// `RemoveCursorElement`).
///
/// # Examples
///
/// ```
/// use fabriccrdt_jsoncrdt::Cursor;
///
/// let mut cursor = Cursor::new();
/// cursor.push_key("readings");
/// assert_eq!(cursor.to_string(), ".readings");
/// cursor.pop();
/// assert!(cursor.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Cursor {
    elements: Vec<CursorElement>,
}

impl Cursor {
    /// An empty cursor pointing at the document head.
    pub fn new() -> Self {
        Cursor::default()
    }

    /// Builds a cursor from elements.
    pub fn from_elements(elements: Vec<CursorElement>) -> Self {
        Cursor { elements }
    }

    /// Appends a map-key step. Accepts `&str`, `String` or a shared
    /// `Arc<str>` (pass an interned key on hot paths to avoid the
    /// allocation).
    pub fn push_key(&mut self, key: impl Into<Arc<str>>) {
        self.elements.push(CursorElement::Key(key.into()));
    }

    /// Appends a list-element step.
    pub fn push_item(&mut self, item: ItemKey) {
        self.elements.push(CursorElement::ListItem(item));
    }

    /// Removes the last step.
    pub fn pop(&mut self) -> Option<CursorElement> {
        self.elements.pop()
    }

    /// The steps in order.
    pub fn elements(&self) -> &[CursorElement] {
        &self.elements
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the cursor points at the document head.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }
}

impl fmt::Display for Cursor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.elements.is_empty() {
            return write!(f, "<head>");
        }
        for e in &self.elements {
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

/// The modification applied at a cursor target.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Mutation {
    /// Assign a leaf (string) value to the register at the target
    /// (paper Algorithm 2, `NewInsertMutation`).
    Assign(String),
    /// Materialize a map at the target (needed so that empty maps survive
    /// the merge).
    MakeMap,
    /// Materialize a list at the target.
    MakeList,
    /// Delete the target: tombstones everything currently present beneath
    /// it. Concurrent (unseen) additions survive — add-wins semantics.
    Delete,
}

impl fmt::Display for Mutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mutation::Assign(v) => write!(f, "assign {v:?}"),
            Mutation::MakeMap => write!(f, "make-map"),
            Mutation::MakeList => write!(f, "make-list"),
            Mutation::Delete => write!(f, "delete"),
        }
    }
}

/// Causal dependencies of an operation.
///
/// The dependency chains [`crate::JsonCrdt::merge_value`] and
/// [`crate::Editor`] generate are transitively reduced, so in practice
/// every operation has zero or one dependency. Those cases are inlined
/// here — the seed code built a `Vec<OpId>` per emitted operation, one
/// heap allocation per node of every merged document. `Deps` derefs to
/// `&[OpId]`, so iteration and indexing read exactly like the old
/// `Vec`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Deps {
    /// No dependencies (the first operation of a chain).
    #[default]
    None,
    /// A single dependency — what every merge-generated operation has.
    One(OpId),
    /// An arbitrary dependency set (hand-built operation graphs).
    Many(Vec<OpId>),
}

impl std::ops::Deref for Deps {
    type Target = [OpId];

    fn deref(&self) -> &[OpId] {
        match self {
            Deps::None => &[],
            Deps::One(id) => std::slice::from_ref(id),
            Deps::Many(ids) => ids,
        }
    }
}

impl From<Option<OpId>> for Deps {
    fn from(dep: Option<OpId>) -> Self {
        match dep {
            None => Deps::None,
            Some(id) => Deps::One(id),
        }
    }
}

impl From<OpId> for Deps {
    fn from(dep: OpId) -> Self {
        Deps::One(dep)
    }
}

impl From<Vec<OpId>> for Deps {
    fn from(deps: Vec<OpId>) -> Self {
        match deps.len() {
            0 => Deps::None,
            1 => Deps::One(deps[0]),
            _ => Deps::Many(deps),
        }
    }
}

/// An operation: unique id, causal dependencies, cursor, mutation
/// (paper Algorithm 2, `NewOperation`).
///
/// The dependency list is kept transitively reduced: each operation
/// depends on the previous operation generated from the same source JSON,
/// which transitively orders the whole source (the paper's `dependencies`
/// set grows instead; both encode the same causal order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operation {
    /// Globally unique identifier.
    pub id: OpId,
    /// Ids that must be applied before this operation.
    pub deps: Deps,
    /// Path to the mutation site.
    pub cursor: Cursor,
    /// The modification.
    pub mutation: Mutation,
}

impl Operation {
    /// Creates an operation. `deps` accepts a `Vec<OpId>`, an
    /// `Option<OpId>`, a bare `OpId` or a [`Deps`].
    pub fn new(id: OpId, deps: impl Into<Deps>, cursor: Cursor, mutation: Mutation) -> Self {
        Operation {
            id,
            deps: deps.into(),
            cursor,
            mutation,
        }
    }

    /// The replica that generated this operation — the coordinate the
    /// document's version-vector frontier is indexed by.
    pub fn replica(&self) -> crate::clock::ReplicaId {
        self.id.replica
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} at {}", self.id, self.mutation, self.cursor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ReplicaId;

    #[test]
    fn item_key_is_content_addressed() {
        let a = ItemKey::derive(0, &Value::string("50.0"));
        let b = ItemKey::derive(0, &Value::string("50.0"));
        let c = ItemKey::derive(0, &Value::string("50.1"));
        let d = ItemKey::derive(1, &Value::string("50.0"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn item_key_orders_by_index_first() {
        let early = ItemKey::derive(0, &Value::string("zzz"));
        let late = ItemKey::derive(1, &Value::string("aaa"));
        assert!(early < late);
    }

    #[test]
    fn fnv_known_values() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn cursor_push_pop() {
        let mut c = Cursor::new();
        assert!(c.is_empty());
        c.push_key("a");
        c.push_item(ItemKey::derive(2, &Value::string("x")));
        assert_eq!(c.len(), 2);
        assert!(matches!(c.pop(), Some(CursorElement::ListItem(_))));
        assert_eq!(c.pop(), Some(CursorElement::Key("a".into())));
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn deps_inline_small_sets() {
        let a = OpId::new(1, ReplicaId(1));
        let b = OpId::new(2, ReplicaId(1));
        assert_eq!(Deps::from(vec![]), Deps::None);
        assert_eq!(Deps::from(vec![a]), Deps::One(a));
        assert_eq!(Deps::from(vec![a, b]), Deps::Many(vec![a, b]));
        assert_eq!(Deps::from(None), Deps::None);
        assert_eq!(Deps::from(Some(a)), Deps::One(a));
        // Deref: slice-identical views in every representation.
        assert!(Deps::None.is_empty());
        assert_eq!(&*Deps::One(a), &[a]);
        assert_eq!(Deps::Many(vec![a, b]).len(), 2);
        assert_eq!(Deps::default(), Deps::None);
    }

    #[test]
    fn display_forms() {
        let mut c = Cursor::new();
        assert_eq!(c.to_string(), "<head>");
        c.push_key("readings");
        assert!(c.to_string().contains("readings"));
        let op = Operation::new(
            OpId::new(1, ReplicaId(1)),
            vec![],
            c,
            Mutation::Assign("50.0".into()),
        );
        let s = op.to_string();
        assert!(s.contains("assign"));
        assert!(s.contains("readings"));
    }
}
