//! Binary encoding of operations.
//!
//! Replicas exchanging [`Operation`]s over a network (the [`crate::editor`]
//! model) need a wire format. Same discipline as the ledger codec:
//! versioned, length-prefixed, total decoding — arbitrary bytes produce
//! `Ok` or a structured error, never a panic.

use std::error::Error;
use std::fmt;

use crate::clock::{OpId, ReplicaId};
use crate::op::{Cursor, CursorElement, ItemKey, Mutation, Operation};

const FORMAT_VERSION: u8 = 1;

/// Decoding error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeOpError {
    message: &'static str,
    /// Offset at which decoding failed.
    pub offset: usize,
}

impl DecodeOpError {
    fn new(message: &'static str, offset: usize) -> Self {
        DecodeOpError { message, offset }
    }
}

impl fmt::Display for DecodeOpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl Error for DecodeOpError {}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8, DecodeOpError> {
        let b = *self
            .data
            .get(self.pos)
            .ok_or(DecodeOpError::new("unexpected end of input", self.pos))?;
        self.pos += 1;
        Ok(b)
    }

    fn u64(&mut self) -> Result<u64, DecodeOpError> {
        let end = self.pos + 8;
        let slice = self
            .data
            .get(self.pos..end)
            .ok_or(DecodeOpError::new("unexpected end of input", self.pos))?;
        self.pos = end;
        Ok(u64::from_be_bytes(slice.try_into().expect("8 bytes")))
    }

    fn len(&mut self, min_item: usize) -> Result<usize, DecodeOpError> {
        let at = self.pos;
        let n = self.u64()? as usize;
        if min_item > 0 && n > (self.data.len() - self.pos) / min_item + 1 {
            return Err(DecodeOpError::new("implausible collection length", at));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, DecodeOpError> {
        let at = self.pos;
        let n = self.u64()? as usize;
        let end = self.pos + n;
        let slice = self
            .data
            .get(self.pos..end)
            .ok_or(DecodeOpError::new("string exceeds input", at))?;
        self.pos = end;
        String::from_utf8(slice.to_vec()).map_err(|_| DecodeOpError::new("invalid UTF-8", at))
    }
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn put_op_id(buf: &mut Vec<u8>, id: OpId) {
    put_u64(buf, id.counter);
    put_u64(buf, id.replica.0);
}

fn read_op_id(r: &mut Reader<'_>) -> Result<OpId, DecodeOpError> {
    Ok(OpId::new(r.u64()?, ReplicaId(r.u64()?)))
}

/// Encodes one operation.
pub fn encode_op(op: &Operation) -> Vec<u8> {
    let mut buf = vec![FORMAT_VERSION];
    put_op_id(&mut buf, op.id);
    put_u64(&mut buf, op.deps.len() as u64);
    for &dep in op.deps.iter() {
        put_op_id(&mut buf, dep);
    }
    put_u64(&mut buf, op.cursor.len() as u64);
    for element in op.cursor.elements() {
        match element {
            CursorElement::Key(key) => {
                buf.push(0);
                put_str(&mut buf, key);
            }
            CursorElement::ListItem(item) => {
                buf.push(1);
                put_u64(&mut buf, item.index);
                put_u64(&mut buf, item.hash);
            }
        }
    }
    match &op.mutation {
        Mutation::Assign(value) => {
            buf.push(0);
            put_str(&mut buf, value);
        }
        Mutation::MakeMap => buf.push(1),
        Mutation::MakeList => buf.push(2),
        Mutation::Delete => buf.push(3),
    }
    buf
}

/// Decodes one operation.
///
/// # Errors
///
/// Returns a [`DecodeOpError`] for truncated, malformed or
/// wrong-version input.
pub fn decode_op(data: &[u8]) -> Result<Operation, DecodeOpError> {
    let mut r = Reader { data, pos: 0 };
    if r.u8()? != FORMAT_VERSION {
        return Err(DecodeOpError::new("unsupported format version", 0));
    }
    let id = read_op_id(&mut r)?;
    let dep_count = r.len(16)?;
    let mut deps = Vec::with_capacity(dep_count);
    for _ in 0..dep_count {
        deps.push(read_op_id(&mut r)?);
    }
    let element_count = r.len(9)?;
    let mut elements = Vec::with_capacity(element_count);
    for _ in 0..element_count {
        let at = r.pos;
        match r.u8()? {
            0 => elements.push(CursorElement::Key(r.str()?.into())),
            1 => elements.push(CursorElement::ListItem(ItemKey {
                index: r.u64()?,
                hash: r.u64()?,
            })),
            _ => return Err(DecodeOpError::new("unknown cursor element tag", at)),
        }
    }
    let at = r.pos;
    let mutation = match r.u8()? {
        0 => Mutation::Assign(r.str()?),
        1 => Mutation::MakeMap,
        2 => Mutation::MakeList,
        3 => Mutation::Delete,
        _ => return Err(DecodeOpError::new("unknown mutation tag", at)),
    };
    if r.pos != data.len() {
        return Err(DecodeOpError::new("trailing bytes after operation", r.pos));
    }
    Ok(Operation::new(
        id,
        deps,
        Cursor::from_elements(elements),
        mutation,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;

    fn sample_ops() -> Vec<Operation> {
        let mut cursor_deep = Cursor::new();
        cursor_deep.push_key("a");
        cursor_deep.push_item(ItemKey::derive(3, &Value::string("x")));
        cursor_deep.push_key("b");
        vec![
            Operation::new(
                OpId::new(1, ReplicaId(1)),
                vec![],
                {
                    let mut c = Cursor::new();
                    c.push_key("k");
                    c
                },
                Mutation::Assign("value with ünicode".into()),
            ),
            Operation::new(
                OpId::new(7, ReplicaId(3)),
                vec![OpId::new(1, ReplicaId(1)), OpId::new(2, ReplicaId(2))],
                cursor_deep,
                Mutation::MakeList,
            ),
            Operation::new(
                OpId::new(9, ReplicaId(2)),
                vec![OpId::new(7, ReplicaId(3))],
                Cursor::new(),
                Mutation::Delete,
            ),
            Operation::new(
                OpId::new(10, ReplicaId(2)),
                vec![],
                {
                    let mut c = Cursor::new();
                    c.push_key("m");
                    c
                },
                Mutation::MakeMap,
            ),
        ]
    }

    #[test]
    fn roundtrip() {
        for op in sample_ops() {
            let decoded = decode_op(&encode_op(&op)).unwrap();
            assert_eq!(decoded, op);
        }
    }

    #[test]
    fn truncation_errors() {
        let bytes = encode_op(&sample_ops()[1]);
        for cut in 0..bytes.len() {
            assert!(decode_op(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_op(&sample_ops()[0]);
        bytes.push(0);
        assert!(decode_op(&bytes).is_err());
    }

    #[test]
    fn bad_tags_rejected() {
        let mut bytes = encode_op(&sample_ops()[0]);
        bytes[0] = 9; // version
        assert!(decode_op(&bytes).is_err());
    }

    #[test]
    fn editors_can_sync_over_the_wire() {
        use crate::editor::Editor;
        let mut alice = Editor::new(ReplicaId(1));
        let mut bob = Editor::new(ReplicaId(2));
        let wire: Vec<Vec<u8>> = [
            alice.assign(&["title"], "Spec").unwrap(),
            alice.assign(&["body"], "…").unwrap(),
        ]
        .iter()
        .map(encode_op)
        .collect();
        for frame in wire {
            bob.deliver(decode_op(&frame).unwrap()).unwrap();
        }
        assert_eq!(alice.document().to_value(), bob.document().to_value());
    }
}
