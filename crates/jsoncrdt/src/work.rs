//! Work accounting for CRDT merges.
//!
//! The simulator charges validation/commit compute time from deterministic
//! work counters rather than wall-clock measurements, keeping every
//! experiment byte-for-byte reproducible across machines (see DESIGN.md
//! §1, "Time model"). Every operation application reports how many
//! operations were created and how many document nodes were visited; the
//! cost model in the `fabric` crate converts these into simulated time.

/// Counters describing the work performed by CRDT operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkStats {
    /// Operations generated and applied.
    pub ops_applied: u64,
    /// Document tree nodes visited while descending cursors and converting
    /// documents.
    pub nodes_visited: u64,
}

impl WorkStats {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds another counter into this one.
    pub fn absorb(&mut self, other: WorkStats) {
        self.ops_applied += other.ops_applied;
        self.nodes_visited += other.nodes_visited;
    }

    /// Total abstract work units: the scalar the cost model consumes.
    pub fn units(&self) -> u64 {
        self.ops_applied + self.nodes_visited
    }
}

impl std::ops::Add for WorkStats {
    type Output = WorkStats;

    fn add(self, rhs: WorkStats) -> WorkStats {
        WorkStats {
            ops_applied: self.ops_applied + rhs.ops_applied,
            nodes_visited: self.nodes_visited + rhs.nodes_visited,
        }
    }
}

impl std::iter::Sum for WorkStats {
    fn sum<I: Iterator<Item = WorkStats>>(iter: I) -> Self {
        iter.fold(WorkStats::new(), |acc, w| acc + w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut a = WorkStats {
            ops_applied: 1,
            nodes_visited: 2,
        };
        a.absorb(WorkStats {
            ops_applied: 10,
            nodes_visited: 20,
        });
        assert_eq!(a.ops_applied, 11);
        assert_eq!(a.nodes_visited, 22);
        assert_eq!(a.units(), 33);
    }

    #[test]
    fn sum_over_iterator() {
        let total: WorkStats = (0..4)
            .map(|i| WorkStats {
                ops_applied: i,
                nodes_visited: 1,
            })
            .sum();
        assert_eq!(total.ops_applied, 6);
        assert_eq!(total.nodes_visited, 4);
    }
}
