//! Process-wide cache of decoded MergeTx payloads.
//!
//! FabricCRDT's Algorithm 1 parses every CRDT write-set value from
//! plain JSON bytes (line 9) before merging it. The same payload bytes
//! are parsed many times per process: every committing peer of a
//! simulated network (six in the paper topology) decodes the identical
//! MergeTx, and a crashed peer re-decodes the whole suffix of the
//! chain during catch-up. This cache memoizes `bytes → parsed
//! [`Value`]` so each distinct payload is parsed once.
//!
//! # Determinism
//!
//! The cached value is a pure function of the key bytes, and entries
//! are immutable (`Arc<Value>`, handed out by shared reference). A hit
//! and a miss therefore produce byte-identical downstream results —
//! the cache can only change wall-clock time, never validation
//! outcomes, merge results or simulated-time work counters. This is
//! the same argument that makes the parallel validation pipeline safe
//! (see `fabriccrdt-fabric`'s `pipeline` module), and it is what lets
//! the pipeline's `prepare` hook warm this cache from worker threads.
//!
//! # Bounds
//!
//! The cache holds at most [`MAX_ENTRIES`] payloads and is flushed
//! wholesale when full (epoch eviction — no LRU bookkeeping on the hot
//! path). Parse *failures* are not cached: the failing path is rare
//! (malformed payloads commit opaquely) and caching errors would grow
//! the map with garbage keys under adversarial input.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json::{ParseError, Value};

/// Maximum number of cached payloads before the cache is flushed.
pub const MAX_ENTRIES: usize = 8192;

static CACHE: OnceLock<Mutex<HashMap<Vec<u8>, Arc<Value>>>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);

fn cache() -> &'static Mutex<HashMap<Vec<u8>, Arc<Value>>> {
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Hit/miss/eviction counters of the process-wide decode cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to parse.
    pub misses: u64,
    /// Capacity flushes (epoch evictions). An explicit [`clear`] is a
    /// benchmark reset, not capacity pressure, so it does not count.
    pub evictions: u64,
    /// Payloads currently cached.
    pub entries: usize,
}

/// Parses `bytes` as JSON, memoizing successful parses process-wide.
///
/// Equivalent to [`Value::from_bytes`] followed by `Arc::new`, except
/// that repeated calls with the same bytes share one parse and one
/// allocation.
///
/// # Errors
///
/// Returns the [`ParseError`] of the underlying parse; failures are
/// never cached.
pub fn decode_cached(bytes: &[u8]) -> Result<Arc<Value>, ParseError> {
    if let Some(hit) = cache().lock().expect("decode cache poisoned").get(bytes) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return Ok(hit.clone());
    }
    // Parse outside the lock (it can be expensive), then re-check under
    // the lock: two threads missing on the same payload both parse, and
    // the loser must return the winner's entry — replacing it would
    // silently break cross-thread `Arc::ptr_eq` sharing. The loser's
    // lookup counts as a hit (it was served from the cache); a lookup is
    // a miss only if its own parse result got inserted, so
    // `hits + misses` still equals total lookups.
    let parsed = match Value::from_bytes(bytes) {
        Ok(value) => Arc::new(value),
        Err(error) => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            return Err(error);
        }
    };
    let mut guard = cache().lock().expect("decode cache poisoned");
    if let Some(existing) = guard.get(bytes) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return Ok(existing.clone());
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    if guard.len() >= MAX_ENTRIES {
        EVICTIONS.fetch_add(1, Ordering::Relaxed);
        guard.clear();
    }
    guard.insert(bytes.to_vec(), parsed.clone());
    Ok(parsed)
}

/// Current cache statistics.
pub fn stats() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        evictions: EVICTIONS.load(Ordering::Relaxed),
        entries: cache().lock().expect("decode cache poisoned").len(),
    }
}

/// Empties the cache (for benchmarks that want cold-start numbers).
/// The hit/miss counters keep running.
pub fn clear() {
    cache().lock().expect("decode cache poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The cache is process-wide; tests that flush it (capacity or
    /// explicit clear) would race the sharing assertions of their
    /// neighbours, so every test in this module serializes on one lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn repeated_decodes_share_one_parse() {
        let _guard = serial();
        let payload = br#"{"cache-test-key":"shared","readings":["1","2"]}"#;
        let first = decode_cached(payload).unwrap();
        let second = decode_cached(payload).unwrap();
        // Same allocation, not merely equal values.
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(*first, Value::from_bytes(payload).unwrap());
    }

    #[test]
    fn distinct_payloads_do_not_collide() {
        let _guard = serial();
        let a = decode_cached(br#"{"k":"a"}"#).unwrap();
        let b = decode_cached(br#"{"k":"b"}"#).unwrap();
        assert_ne!(*a, *b);
    }

    #[test]
    fn racing_threads_share_one_entry() {
        // Regression: two threads missing on the same payload both
        // parsed, and the second insert replaced the first `Arc` —
        // callers that had already received the first one no longer
        // shared an allocation with later callers (`Arc::ptr_eq`
        // false), and the race overcounted misses.
        use std::sync::Barrier;
        let _guard = serial();
        let payload = br#"{"race-probe":"threads should share one allocation"}"#;
        clear(); // every thread starts from a guaranteed miss
        let before = stats();
        const THREADS: usize = 8;
        let barrier = Arc::new(Barrier::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    decode_cached(payload).unwrap()
                })
            })
            .collect();
        let values: Vec<Arc<Value>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for value in &values {
            assert!(
                Arc::ptr_eq(&values[0], value),
                "all racing threads must receive the same allocation"
            );
        }
        let after = stats();
        // Every lookup is counted exactly once, as a hit or a miss.
        assert_eq!(
            (after.hits + after.misses) - (before.hits + before.misses),
            THREADS as u64
        );
        // Exactly one parse result was inserted (the winner's); the
        // losers' lookups were served from the cache.
        assert_eq!(after.misses, before.misses + 1);
    }

    #[test]
    fn parse_failures_propagate_and_are_not_cached() {
        let _guard = serial();
        let before = stats();
        assert!(decode_cached(b"not json").is_err());
        assert!(decode_cached(b"not json").is_err());
        let after = stats();
        // Both attempts were misses — failures never populate the map.
        assert!(after.misses >= before.misses + 2);
    }

    #[test]
    fn capacity_flush_counts_as_eviction() {
        let _guard = serial();
        let before = stats();
        // Insert enough distinct payloads to force at least one epoch
        // flush regardless of what is already cached.
        for i in 0..=MAX_ENTRIES {
            let payload = format!(r#"{{"evict-probe":"{i}"}}"#);
            decode_cached(payload.as_bytes()).unwrap();
        }
        let after = stats();
        assert!(after.evictions > before.evictions);
        // The flush emptied the map; it cannot exceed capacity.
        assert!(after.entries <= MAX_ENTRIES);
    }

    #[test]
    fn explicit_clear_is_not_an_eviction() {
        let _guard = serial();
        decode_cached(br#"{"clear-probe":"x"}"#).unwrap();
        let before = stats();
        clear();
        let after = stats();
        assert_eq!(after.entries, 0);
        // Counters keep running; only capacity flushes count.
        assert_eq!(after.evictions, before.evictions);
        assert!(after.hits >= before.hits);
    }

    #[test]
    fn stats_move_on_hits() {
        let _guard = serial();
        let payload = br#"{"stats-probe":"x"}"#;
        decode_cached(payload).unwrap();
        let before = stats();
        decode_cached(payload).unwrap();
        let after = stats();
        assert!(after.hits > before.hits);
        assert!(after.entries >= 1);
    }
}
