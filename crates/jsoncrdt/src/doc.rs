//! The JSON CRDT document.
//!
//! A [`JsonCrdt`] is a tree of map, list and register nodes, mutated only
//! through [`Operation`]s (dependency-checked, idempotent, commutative for
//! concurrent operations). [`JsonCrdt::merge_value`] implements
//! **Algorithm 2** of the FabricCRDT paper: it folds a plain JSON object
//! into the document by generating and applying one operation per node of
//! the source value. [`JsonCrdt::to_value`] implements the paper's
//! `ConvertCRDTToDataType`: it strips all CRDT metadata and returns plain
//! JSON (Algorithm 1, lines 20–21).
//!
//! # Conflict semantics
//!
//! - **Registers** (leaf strings) are multi-value registers; conversion
//!   arbitrates by greatest operation id. Because every peer merges the
//!   transactions of a block in the same block order (the property §5.2
//!   exploits), this is last-writer-wins in block order on every peer.
//! - **Maps** merge key-wise, recursively.
//! - **Lists** are unions of content-addressed elements (see
//!   [`crate::op::ItemKey`]) ordered by `(source index, content hash)`:
//!   common prefixes deduplicate, divergent suffixes are all preserved —
//!   this is what produces the merged readings list of paper Listing 2.
//! - **Type conflicts** (one transaction writes a string, another a map at
//!   the same key) keep all branches internally; conversion prefers
//!   map over list over register, deterministically on every peer.
//! - **Deletes** tombstone everything currently present beneath the
//!   target; concurrent (unseen) additions survive — add-wins.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use crate::clock::{LamportClock, OpId, ReplicaId, VersionVector};
use crate::json::Value;
use crate::op::{Cursor, CursorElement, Deps, ItemKey, Mutation, Operation};
use crate::work::WorkStats;

/// An entry in a map (under a string key) or in a list (under an
/// [`ItemKey`]). Kleppmann-style: the entry holds one branch per possible
/// type so that concurrently written types never clobber each other.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Entry {
    /// Multi-value register: concurrent leaf assignments accumulate.
    reg: BTreeMap<OpId, String>,
    /// Map branch.
    map: Option<MapNode>,
    /// List branch.
    list: Option<ListNode>,
    /// Ids of operations that touched this entry.
    presence: BTreeSet<OpId>,
    /// Ids whose effect was deleted.
    tombstones: BTreeSet<OpId>,
}

/// Map children are keyed by shared `Arc<str>` so that the descent in
/// [`descend`] can do an `entry(key.clone())` lookup with a refcount
/// bump instead of allocating a fresh `String` per step (the merge hot
/// path descends once per operation, i.e. once per node of every
/// merged document).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct MapNode {
    children: BTreeMap<Arc<str>, Entry>,
}

#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct ListNode {
    items: BTreeMap<ItemKey, Entry>,
}

impl Entry {
    fn is_visible(&self) -> bool {
        self.presence.difference(&self.tombstones).next().is_some()
    }

    /// Tombstones every operation currently present in this subtree.
    fn tombstone_all(&mut self) {
        self.tombstones.extend(self.presence.iter().copied());
        if let Some(map) = &mut self.map {
            for child in map.children.values_mut() {
                child.tombstone_all();
            }
        }
        if let Some(list) = &mut self.list {
            for item in list.items.values_mut() {
                item.tombstone_all();
            }
        }
    }

    /// Converts to plain JSON. Precedence on type conflicts:
    /// map > list > register.
    fn to_value(&self) -> Option<Value> {
        if !self.is_visible() {
            return None;
        }
        if let Some(map) = &self.map {
            let converted: BTreeMap<String, Value> = map
                .children
                .iter()
                .filter_map(|(k, e)| e.to_value().map(|v| (k.to_string(), v)))
                .collect();
            if !converted.is_empty() || self.reg.is_empty() && self.list.is_none() {
                return Some(Value::Map(converted));
            }
        }
        if let Some(list) = &self.list {
            let converted: Vec<Value> = list.items.values().filter_map(Entry::to_value).collect();
            if !converted.is_empty() || self.reg.is_empty() {
                return Some(Value::List(converted));
            }
        }
        // Register: newest live assignment wins.
        self.reg
            .iter()
            .rfind(|(id, _)| !self.tombstones.contains(id))
            .map(|(_, v)| Value::String(v.clone()))
    }
}

/// Errors from applying operations or merging values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DocError {
    /// `merge_value` requires the source to be a JSON map — the document
    /// head is a map, exactly as in the paper's chaincode model.
    RootNotMap,
    /// An `Assign`, `MakeList` or `Delete`-of-register mutation targeted
    /// the document head, which is always a map.
    MutationAtHead,
    /// [`JsonCrdt::merge`] needs the source document's operation history,
    /// but it was constructed without one (see [`JsonCrdt::with_history`]).
    MissingHistory,
}

impl fmt::Display for DocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DocError::RootNotMap => write!(f, "merge source must be a JSON map"),
            DocError::MutationAtHead => {
                write!(f, "mutation with an empty cursor targets the document head")
            }
            DocError::MissingHistory => {
                write!(f, "merge source keeps no operation history")
            }
        }
    }
}

impl Error for DocError {}

/// Outcome of [`JsonCrdt::apply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// The operation (and possibly buffered successors) took effect.
    Applied,
    /// Some dependencies are missing; the operation is buffered until they
    /// arrive (paper §5.1: "we queue the operation until all dependencies
    /// are applied").
    Buffered,
    /// The operation had already been applied; no effect (idempotence).
    AlreadyApplied,
}

/// A JSON CRDT document (paper §5.2).
///
/// # Examples
///
/// Reproducing the paper's Listing 1 → Listing 2 merge:
///
/// ```
/// use fabriccrdt_jsoncrdt::{json::Value, JsonCrdt, ReplicaId};
///
/// let tx1: Value = r#"{"deviceID": "Device1", "readings": ["51.0", "49.5"]}"#.parse()?;
/// let tx2: Value = r#"{"deviceID": "Device1", "readings": ["50.0"]}"#.parse()?;
///
/// let mut doc = JsonCrdt::new(ReplicaId(1));
/// doc.merge_value(&tx1)?;
/// doc.merge_value(&tx2)?;
///
/// let merged = doc.to_value();
/// assert_eq!(merged.get("deviceID").unwrap().as_str(), Some("Device1"));
/// // All three readings survive the merge — no update loss.
/// assert_eq!(merged.get("readings").unwrap().as_list().unwrap().len(), 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct JsonCrdt {
    root: MapNode,
    clock: LamportClock,
    applied: BTreeSet<OpId>,
    pending: Vec<Operation>,
    work: WorkStats,
    /// Key interner: one shared `Arc<str>` per distinct map key ever
    /// merged, so repeated merges of the same schema ("readings",
    /// "deviceID", …) reuse the allocation across operations.
    interned: BTreeSet<Arc<str>>,
    /// Causal frontier: per-replica high-water mark over the applied
    /// set. Checked before the exact `applied` set on the apply hot
    /// path, and used by [`JsonCrdt::merge`] to skip the prefix of the
    /// source history this document has already applied.
    frontier: VersionVector,
    /// Whether `frontier` covers the applied set *exactly* (every
    /// applied op was observed contiguously). A counter gap — possible
    /// only for hand-fed foreign operations, never for merge chains —
    /// clears this, and `merge` then falls back to full replay.
    frontier_exact: bool,
    /// Applied operations in application order, kept only for documents
    /// built by [`JsonCrdt::with_history`] (it is what `merge` replays).
    /// `None` avoids the per-op clone on the block-validation hot path.
    history: Option<Vec<Operation>>,
}

impl JsonCrdt {
    /// Creates an empty document whose operations will be stamped with
    /// `replica` (paper Algorithm 1, `InitEmptyCRDT`).
    pub fn new(replica: ReplicaId) -> Self {
        JsonCrdt {
            root: MapNode::default(),
            clock: LamportClock::new(replica),
            applied: BTreeSet::new(),
            pending: Vec::new(),
            work: WorkStats::new(),
            interned: BTreeSet::new(),
            frontier: VersionVector::new(),
            frontier_exact: true,
            history: None,
        }
    }

    /// Like [`JsonCrdt::new`], but the document also records every
    /// applied operation in application order, making it a valid source
    /// for [`JsonCrdt::merge`].
    pub fn with_history(replica: ReplicaId) -> Self {
        JsonCrdt {
            history: Some(Vec::new()),
            ..JsonCrdt::new(replica)
        }
    }

    /// Creates a document hydrated from an existing plain JSON value (for
    /// example, the committed ledger state of a CRDT key).
    ///
    /// # Errors
    ///
    /// Returns [`DocError::RootNotMap`] if `base` is not a JSON map.
    pub fn from_value(replica: ReplicaId, base: &Value) -> Result<Self, DocError> {
        let mut doc = JsonCrdt::new(replica);
        doc.merge_value(base)?;
        Ok(doc)
    }

    /// The document's Lamport clock.
    pub fn clock(&self) -> &LamportClock {
        &self.clock
    }

    /// Number of operations applied so far.
    pub fn applied_len(&self) -> usize {
        self.applied.len()
    }

    /// Number of operations buffered waiting for dependencies.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Accumulated work counters (see [`WorkStats`]).
    pub fn work(&self) -> WorkStats {
        self.work
    }

    /// The document's causal frontier (per-replica high-water marks
    /// over contiguously applied operation counters).
    pub fn frontier(&self) -> &VersionVector {
        &self.frontier
    }

    /// Whether the frontier covers the applied set exactly. While true,
    /// [`JsonCrdt::merge`] can skip already-applied prefixes by frontier
    /// comparison alone; once false it replays full histories (still
    /// correct — application is idempotent).
    pub fn frontier_is_exact(&self) -> bool {
        self.frontier_exact
    }

    /// Applied operations in application order, if this document records
    /// them (see [`JsonCrdt::with_history`]).
    pub fn history(&self) -> Option<&[Operation]> {
        self.history.as_deref()
    }

    /// Returns and resets the accumulated work counters.
    pub fn take_work(&mut self) -> WorkStats {
        std::mem::take(&mut self.work)
    }

    /// The operations of this document's history a peer whose causal
    /// frontier is `frontier` has not yet observed, in application
    /// order — the incremental delta an offline-first client ships at
    /// rejoin instead of replaying its entire history. Counter-0 ops
    /// are vacuously "contained" by any frontier, so they are always
    /// included, mirroring [`JsonCrdt::merge`]'s skip rule.
    ///
    /// # Errors
    ///
    /// Returns [`DocError::MissingHistory`] if this document was not
    /// built with [`JsonCrdt::with_history`].
    pub fn delta_since(&self, frontier: &VersionVector) -> Result<Vec<Operation>, DocError> {
        let log = self.history.as_deref().ok_or(DocError::MissingHistory)?;
        Ok(log
            .iter()
            .filter(|op| !(frontier.contains(op.id) && op.id.counter > 0))
            .cloned()
            .collect())
    }

    /// Applies an operation, buffering it if dependencies are missing
    /// (paper §5.1, `ApplyOperationToJSON`).
    ///
    /// # Errors
    ///
    /// Returns [`DocError::MutationAtHead`] for a non-`MakeMap`/`Delete`
    /// mutation with an empty cursor.
    pub fn apply(&mut self, op: Operation) -> Result<ApplyOutcome, DocError> {
        // Frontier first: for the merge-chain hot path (one replica,
        // contiguous counters) this replaces the `BTreeSet` probes with
        // an O(1) integer compare. The frontier is a sound lower bound
        // of the applied set, so falling through to the exact set is
        // only ever needed above the high-water mark.
        if self.seen(op.id) {
            return Ok(ApplyOutcome::AlreadyApplied);
        }
        if !op.deps.iter().all(|d| self.seen(*d)) {
            self.pending.push(op);
            return Ok(ApplyOutcome::Buffered);
        }
        self.apply_ready(op)?;
        self.drain_pending()?;
        Ok(ApplyOutcome::Applied)
    }

    /// Whether `id` has been applied (frontier fast path, exact set as
    /// fallback).
    fn seen(&self, id: OpId) -> bool {
        (id.counter > 0 && self.frontier.contains(id)) || self.applied.contains(&id)
    }

    /// Merges another document into this one by replaying its operation
    /// history — incremental when possible: while this document's
    /// frontier is exact, every operation at or below the frontier is
    /// skipped outright instead of being re-applied and rejected as a
    /// duplicate. On an inexact frontier the whole history is replayed
    /// (idempotence makes that correct, just slower).
    ///
    /// Returns the work performed (skipped operations cost nothing).
    ///
    /// # Errors
    ///
    /// Returns [`DocError::MissingHistory`] if `other` was not built
    /// with [`JsonCrdt::with_history`], or propagates the first
    /// application error.
    pub fn merge(&mut self, other: &JsonCrdt) -> Result<WorkStats, DocError> {
        let log = other.history.as_deref().ok_or(DocError::MissingHistory)?;
        let before = self.work;
        for op in log {
            if self.frontier_exact && self.frontier.contains(op.id) && op.id.counter > 0 {
                continue;
            }
            self.apply(op.clone())?;
        }
        Ok(WorkStats {
            ops_applied: self.work.ops_applied - before.ops_applied,
            nodes_visited: self.work.nodes_visited - before.nodes_visited,
        })
    }

    /// Merges a plain JSON object into the document — **Algorithm 2** of
    /// the paper (`MergeCRDT`). Returns the work performed by this merge.
    ///
    /// Non-string leaves (numbers, booleans, null) are carried as their
    /// canonical string forms, per the paper's §5.2 convention that
    /// chaincodes convert other datatypes to strings.
    ///
    /// # Errors
    ///
    /// Returns [`DocError::RootNotMap`] if `json` is not a JSON map.
    pub fn merge_value(&mut self, json: &Value) -> Result<WorkStats, DocError> {
        let map = json.as_map().ok_or(DocError::RootNotMap)?;
        let before = self.work;
        // Algorithm 2, lines 2–21: one cursor and dependency chain per
        // top-level key; recursion mirrors the list/map cases.
        let mut cursor = Cursor::new();
        for (key, value) in map {
            let mut last_dep: Option<OpId> = None;
            let key = self.intern(key);
            cursor.push_key(key);
            self.merge_at(&mut cursor, value, &mut last_dep)?;
            cursor.pop();
        }
        Ok(WorkStats {
            ops_applied: self.work.ops_applied - before.ops_applied,
            nodes_visited: self.work.nodes_visited - before.nodes_visited,
        })
    }

    /// Converts the document to plain JSON, stripping all CRDT metadata
    /// (paper Algorithm 1 line 20, `ConvertCRDTToDataType`).
    pub fn to_value(&self) -> Value {
        let converted: BTreeMap<String, Value> = self
            .root
            .children
            .iter()
            .filter_map(|(k, e)| e.to_value().map(|v| (k.to_string(), v)))
            .collect();
        Value::Map(converted)
    }

    /// Returns the shared interned form of a map key, allocating it on
    /// first sight.
    fn intern(&mut self, key: &str) -> Arc<str> {
        if let Some(existing) = self.interned.get(key) {
            return existing.clone();
        }
        let shared: Arc<str> = Arc::from(key);
        self.interned.insert(shared.clone());
        shared
    }

    /// Generates, applies and chains one operation.
    fn emit(
        &mut self,
        cursor: &Cursor,
        mutation: Mutation,
        last_dep: &mut Option<OpId>,
    ) -> Result<(), DocError> {
        let id = self.clock.tick();
        // `Deps` inlines the 0/1-dependency cases — no per-op Vec.
        let op = Operation::new(id, Deps::from(*last_dep), cursor.clone(), mutation);
        // Dependencies are generated in order, so this never buffers.
        let outcome = self.apply(op)?;
        debug_assert_eq!(outcome, ApplyOutcome::Applied);
        *last_dep = Some(id);
        Ok(())
    }

    /// Recursive body of Algorithm 2: the cursor already ends at the
    /// element for `value`.
    fn merge_at(
        &mut self,
        cursor: &mut Cursor,
        value: &Value,
        last_dep: &mut Option<OpId>,
    ) -> Result<(), DocError> {
        match value {
            // Lines 5–11: leaf values become assignments.
            Value::String(s) => self.emit(cursor, Mutation::Assign(s.clone()), last_dep),
            Value::Number(n) => self.emit(cursor, Mutation::Assign(n.to_string()), last_dep),
            Value::Bool(b) => self.emit(cursor, Mutation::Assign(b.to_string()), last_dep),
            Value::Null => self.emit(cursor, Mutation::Assign("null".to_owned()), last_dep),
            // Lines 12–16: lists recurse per element.
            Value::List(items) => {
                self.emit(cursor, Mutation::MakeList, last_dep)?;
                for (index, item) in items.iter().enumerate() {
                    cursor.push_item(ItemKey::derive(index, item));
                    self.merge_at(cursor, item, last_dep)?;
                    cursor.pop();
                }
                Ok(())
            }
            // Lines 17–21: maps recurse per key.
            Value::Map(map) => {
                self.emit(cursor, Mutation::MakeMap, last_dep)?;
                for (key, item) in map {
                    let key = self.intern(key);
                    cursor.push_key(key);
                    self.merge_at(cursor, item, last_dep)?;
                    cursor.pop();
                }
                Ok(())
            }
        }
    }

    /// Applies an operation whose dependencies are satisfied.
    fn apply_ready(&mut self, op: Operation) -> Result<(), DocError> {
        if op.cursor.is_empty() && !matches!(op.mutation, Mutation::MakeMap | Mutation::Delete) {
            return Err(DocError::MutationAtHead);
        }
        // Past the only failure point: the operation will take effect,
        // so it belongs to the replayable history (if recorded).
        if let Some(history) = &mut self.history {
            history.push(op.clone());
        }
        if op.cursor.is_empty() {
            match op.mutation {
                Mutation::MakeMap => {
                    // The head is always a map; materializing it is a no-op.
                }
                Mutation::Delete => {
                    for child in self.root.children.values_mut() {
                        child.tombstone_all();
                    }
                }
                _ => unreachable!("checked above"),
            }
            self.finish_apply(op.id);
            return Ok(());
        }

        // Descend the cursor, creating intermediate nodes and recording
        // presence (paper §5.2: "For every node in the cursor, if the node
        // already exists, we add the identifier of the current operation
        // to the node...").
        let mut visited = 0u64;
        let target = descend(&mut self.root, op.cursor.elements(), op.id, &mut visited);
        self.work.nodes_visited += visited;

        match &op.mutation {
            Mutation::Assign(value) => {
                target.reg.insert(op.id, value.clone());
            }
            Mutation::MakeMap => {
                target.map.get_or_insert_with(MapNode::default);
            }
            Mutation::MakeList => {
                target.list.get_or_insert_with(ListNode::default);
            }
            Mutation::Delete => {
                target.tombstone_all();
                // The delete itself keeps the entry invisible: its id is in
                // presence (added during descent), so tombstone it too.
                target.tombstones.insert(op.id);
            }
        }
        self.finish_apply(op.id);
        Ok(())
    }

    fn finish_apply(&mut self, id: OpId) {
        self.applied.insert(id);
        if !self.frontier.observe(id) {
            // A counter gap: the frontier no longer mirrors the applied
            // set exactly, so merges fall back to full replay.
            self.frontier_exact = false;
        }
        self.clock.observe(id);
        self.work.ops_applied += 1;
    }

    /// Applies buffered operations whose dependencies have become
    /// satisfied, to fixpoint.
    fn drain_pending(&mut self) -> Result<(), DocError> {
        loop {
            let ready_idx = self
                .pending
                .iter()
                .position(|op| op.deps.iter().all(|d| self.applied.contains(d)));
            match ready_idx {
                Some(i) => {
                    let op = self.pending.swap_remove(i);
                    if !self.applied.contains(&op.id) {
                        self.apply_ready(op)?;
                    }
                }
                None => return Ok(()),
            }
        }
    }
}

/// Walks `elements` from the document root, creating intermediate nodes on
/// demand, inserting `id` into the presence set of every entry on the path,
/// and returning the target entry. `visited` counts the steps for work
/// accounting.
fn descend<'a>(
    root: &'a mut MapNode,
    elements: &[CursorElement],
    id: OpId,
    visited: &mut u64,
) -> &'a mut Entry {
    enum Container<'c> {
        Map(&'c mut MapNode),
        List(&'c mut ListNode),
    }
    let mut container = Container::Map(root);
    let last = elements.len() - 1;
    for (i, elem) in elements.iter().enumerate() {
        *visited += 1;
        let entry = match (container, elem) {
            (Container::Map(map), CursorElement::Key(k)) => {
                map.children.entry(k.clone()).or_default()
            }
            (Container::List(list), CursorElement::ListItem(ik)) => {
                list.items.entry(*ik).or_default()
            }
            // Structural mismatches cannot arise from cursors generated by
            // merge_value (the branch is always chosen from the next
            // element's type); for hand-built cursors we map the step onto
            // a deterministic synthetic child rather than panic.
            (Container::Map(map), CursorElement::ListItem(ik)) => {
                map.children.entry(ik.to_string().into()).or_default()
            }
            (Container::List(list), CursorElement::Key(k)) => list
                .items
                .entry(ItemKey {
                    index: 0,
                    hash: crate::op::fnv1a(k.as_bytes()),
                })
                .or_default(),
        };
        entry.presence.insert(id);
        if i == last {
            return entry;
        }
        // Choose the branch the next element descends into.
        container = match &elements[i + 1] {
            CursorElement::Key(_) => Container::Map(entry.map.get_or_insert_with(MapNode::default)),
            CursorElement::ListItem(_) => {
                Container::List(entry.list.get_or_insert_with(ListNode::default))
            }
        };
    }
    unreachable!("empty cursors are handled before descending")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(text: &str) -> Value {
        text.parse().unwrap()
    }

    #[test]
    fn delta_since_ships_only_unseen_operations() {
        let mut server = JsonCrdt::with_history(ReplicaId(1));
        server
            .merge_value(&v(r#"{"deviceID":"d1","temp":"20"}"#))
            .unwrap();
        let mut client = JsonCrdt::with_history(ReplicaId(2));
        client.merge(&server).unwrap();
        // The client edits offline, accumulating local history on top
        // of everything it already shares with the server.
        client
            .merge_value(&v(r#"{"temp":"25","hum":"40"}"#))
            .unwrap();
        client.merge_value(&v(r#"{"hum":"41"}"#)).unwrap();

        let full = client.history().unwrap().len();
        let delta = client.delta_since(server.frontier()).unwrap();
        assert!(
            delta.len() < full,
            "incremental delta ({}) must undercut full replay ({full})",
            delta.len()
        );

        // Shipping just the delta converges the server exactly like a
        // full-history merge would.
        let mut via_delta = server.clone();
        for op in &delta {
            via_delta.apply(op.clone()).unwrap();
        }
        let mut via_full = server;
        via_full.merge(&client).unwrap();
        assert_eq!(via_delta.to_value(), via_full.to_value());
        assert_eq!(via_delta.frontier(), via_full.frontier());

        // A history-free document cannot produce a delta.
        assert_eq!(
            JsonCrdt::new(ReplicaId(3)).delta_since(&VersionVector::new()),
            Err(DocError::MissingHistory)
        );
    }

    fn merged(sources: &[&str]) -> Value {
        let mut doc = JsonCrdt::new(ReplicaId(1));
        for s in sources {
            doc.merge_value(&v(s)).unwrap();
        }
        doc.to_value()
    }

    #[test]
    fn single_merge_roundtrips() {
        let src = r#"{"deviceID":"Device1","readings":["50.0","51.2"]}"#;
        assert_eq!(merged(&[src]), v(src));
    }

    #[test]
    fn paper_listing_1_and_2() {
        // Two transactions write the same key; the merged write-set keeps
        // the common string and unions the readings lists.
        let out = merged(&[
            r#"{"deviceID":"Device1","readings":["51.0","49.5"]}"#,
            r#"{"deviceID":"Device1","readings":["50.0"]}"#,
        ]);
        assert_eq!(out.get("deviceID").unwrap().as_str(), Some("Device1"));
        let readings = out.get("readings").unwrap().as_list().unwrap();
        assert_eq!(readings.len(), 3);
        for r in ["51.0", "49.5", "50.0"] {
            assert!(readings.iter().any(|x| x.as_str() == Some(r)), "{r}");
        }
    }

    #[test]
    fn common_prefix_deduplicates() {
        // Read-modify-write: both transactions carry the committed prefix.
        let out = merged(&[
            r#"{"readings":["a","b","new1"]}"#,
            r#"{"readings":["a","b","new2"]}"#,
        ]);
        let readings = out.get("readings").unwrap().as_list().unwrap();
        assert_eq!(readings.len(), 4, "prefix a,b must not duplicate");
    }

    #[test]
    fn register_lww_in_merge_order() {
        let out = merged(&[r#"{"k":"first"}"#, r#"{"k":"second"}"#]);
        assert_eq!(out.get("k").unwrap().as_str(), Some("second"));
    }

    #[test]
    fn disjoint_keys_union() {
        let out = merged(&[r#"{"a":"1"}"#, r#"{"b":"2"}"#]);
        assert_eq!(out, v(r#"{"a":"1","b":"2"}"#));
    }

    #[test]
    fn nested_maps_merge_keywise() {
        let out = merged(&[
            r#"{"sensor":{"temp":"20","loc":"A"}}"#,
            r#"{"sensor":{"humidity":"40"}}"#,
        ]);
        assert_eq!(
            out,
            v(r#"{"sensor":{"temp":"20","loc":"A","humidity":"40"}}"#)
        );
    }

    #[test]
    fn deeply_nested_lists_in_maps_in_lists() {
        let out = merged(&[r#"{"a":[{"x":["1"]}]}"#, r#"{"a":[{"x":["1"]},{"y":"2"}]}"#]);
        let a = out.get("a").unwrap().as_list().unwrap();
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn empty_containers_survive() {
        let out = merged(&[r#"{"m":{},"l":[]}"#]);
        assert_eq!(out, v(r#"{"m":{},"l":[]}"#));
    }

    #[test]
    fn non_string_leaves_stringified() {
        let out = merged(&[r#"{"n":1.5,"b":true,"z":null}"#]);
        assert_eq!(out, v(r#"{"n":"1.5","b":"true","z":"null"}"#));
    }

    #[test]
    fn merge_root_must_be_map() {
        let mut doc = JsonCrdt::new(ReplicaId(1));
        assert_eq!(
            doc.merge_value(&v(r#"["not","a","map"]"#)).unwrap_err(),
            DocError::RootNotMap
        );
    }

    #[test]
    fn merge_is_idempotent() {
        let src = r#"{"deviceID":"d","readings":["1","2","3"]}"#;
        let once = merged(&[src]);
        let thrice = merged(&[src, src, src]);
        assert_eq!(once, thrice);
    }

    #[test]
    fn merge_is_deterministic() {
        let sources = [
            r#"{"a":"1","l":["x"]}"#,
            r#"{"b":"2","l":["y"]}"#,
            r#"{"a":"3","l":["x","z"]}"#,
        ];
        assert_eq!(merged(&sources), merged(&sources));
    }

    #[test]
    fn type_conflict_prefers_map() {
        let out = merged(&[r#"{"k":"str"}"#, r#"{"k":{"inner":"1"}}"#]);
        assert_eq!(out.get("k").unwrap(), &v(r#"{"inner":"1"}"#));
        // ...and the same result regardless of merge order.
        let out = merged(&[r#"{"k":{"inner":"1"}}"#, r#"{"k":"str"}"#]);
        assert_eq!(out.get("k").unwrap(), &v(r#"{"inner":"1"}"#));
    }

    #[test]
    fn hydrate_then_merge_models_cross_block_flow() {
        // Block 1 commits {"readings":["a"]}; block 2 has two conflicting
        // read-modify-write transactions.
        let committed = v(r#"{"readings":["a"]}"#);
        let mut doc = JsonCrdt::from_value(ReplicaId(2), &committed).unwrap();
        doc.merge_value(&v(r#"{"readings":["a","b"]}"#)).unwrap();
        doc.merge_value(&v(r#"{"readings":["a","c"]}"#)).unwrap();
        let readings_len = doc
            .to_value()
            .get("readings")
            .unwrap()
            .as_list()
            .unwrap()
            .len();
        assert_eq!(readings_len, 3); // a, b, c — no loss, no duplication
    }

    #[test]
    fn delete_operation_tombstones_subtree() {
        let mut doc = JsonCrdt::new(ReplicaId(1));
        doc.merge_value(&v(r#"{"a":{"x":"1"},"b":"2"}"#)).unwrap();
        let mut cursor = Cursor::new();
        cursor.push_key("a");
        let id = OpId::new(1000, ReplicaId(9));
        doc.apply(Operation::new(id, vec![], cursor, Mutation::Delete))
            .unwrap();
        assert_eq!(doc.to_value(), v(r#"{"b":"2"}"#));
    }

    #[test]
    fn additions_after_delete_resurrect_entry_add_wins() {
        let mut doc = JsonCrdt::new(ReplicaId(1));
        doc.merge_value(&v(r#"{"a":{"x":"1"}}"#)).unwrap();
        let mut cursor = Cursor::new();
        cursor.push_key("a");
        doc.apply(Operation::new(
            OpId::new(1000, ReplicaId(9)),
            vec![],
            cursor,
            Mutation::Delete,
        ))
        .unwrap();
        doc.merge_value(&v(r#"{"a":{"y":"2"}}"#)).unwrap();
        // x stays deleted; y is visible.
        assert_eq!(doc.to_value(), v(r#"{"a":{"y":"2"}}"#));
    }

    #[test]
    fn delete_at_head_clears_document() {
        let mut doc = JsonCrdt::new(ReplicaId(1));
        doc.merge_value(&v(r#"{"a":"1","b":["2"]}"#)).unwrap();
        doc.apply(Operation::new(
            OpId::new(1000, ReplicaId(9)),
            vec![],
            Cursor::new(),
            Mutation::Delete,
        ))
        .unwrap();
        assert_eq!(doc.to_value(), v("{}"));
    }

    #[test]
    fn assign_at_head_is_an_error() {
        let mut doc = JsonCrdt::new(ReplicaId(1));
        let err = doc
            .apply(Operation::new(
                OpId::new(1, ReplicaId(1)),
                vec![],
                Cursor::new(),
                Mutation::Assign("x".into()),
            ))
            .unwrap_err();
        assert_eq!(err, DocError::MutationAtHead);
    }

    #[test]
    fn duplicate_operation_is_idempotent() {
        let mut doc = JsonCrdt::new(ReplicaId(1));
        let mut cursor = Cursor::new();
        cursor.push_key("k");
        let op = Operation::new(
            OpId::new(5, ReplicaId(2)),
            vec![],
            cursor,
            Mutation::Assign("v".into()),
        );
        assert_eq!(doc.apply(op.clone()).unwrap(), ApplyOutcome::Applied);
        assert_eq!(doc.apply(op).unwrap(), ApplyOutcome::AlreadyApplied);
        assert_eq!(doc.applied_len(), 1);
    }

    #[test]
    fn out_of_order_operations_buffer_until_deps_arrive() {
        let mut doc = JsonCrdt::new(ReplicaId(1));
        let mut cursor = Cursor::new();
        cursor.push_key("k");
        let first = Operation::new(
            OpId::new(1, ReplicaId(2)),
            vec![],
            cursor.clone(),
            Mutation::Assign("first".into()),
        );
        let second = Operation::new(
            OpId::new(2, ReplicaId(2)),
            vec![OpId::new(1, ReplicaId(2))],
            cursor,
            Mutation::Assign("second".into()),
        );
        // Deliver out of order: the dependent op buffers.
        assert_eq!(doc.apply(second).unwrap(), ApplyOutcome::Buffered);
        assert_eq!(doc.pending_len(), 1);
        assert_eq!(doc.to_value(), v("{}"));
        // Delivering the dependency drains the buffer.
        assert_eq!(doc.apply(first).unwrap(), ApplyOutcome::Applied);
        assert_eq!(doc.pending_len(), 0);
        assert_eq!(doc.to_value().get("k").unwrap().as_str(), Some("second"));
    }

    #[test]
    fn chained_pending_operations_drain_transitively() {
        let mut doc = JsonCrdt::new(ReplicaId(1));
        let mut cursor = Cursor::new();
        cursor.push_key("k");
        let id = |n| OpId::new(n, ReplicaId(2));
        let op = |n: u64, deps: Vec<OpId>, val: &str| {
            Operation::new(id(n), deps, cursor.clone(), Mutation::Assign(val.into()))
        };
        assert_eq!(
            doc.apply(op(3, vec![id(2)], "c")).unwrap(),
            ApplyOutcome::Buffered
        );
        assert_eq!(
            doc.apply(op(2, vec![id(1)], "b")).unwrap(),
            ApplyOutcome::Buffered
        );
        assert_eq!(
            doc.apply(op(1, vec![], "a")).unwrap(),
            ApplyOutcome::Applied
        );
        assert_eq!(doc.pending_len(), 0);
        assert_eq!(doc.to_value().get("k").unwrap().as_str(), Some("c"));
    }

    #[test]
    fn op_level_commutativity_for_concurrent_ops() {
        // Concurrent assigns to different keys commute exactly.
        let mut cursor_a = Cursor::new();
        cursor_a.push_key("a");
        let mut cursor_b = Cursor::new();
        cursor_b.push_key("b");
        let op_a = Operation::new(
            OpId::new(1, ReplicaId(1)),
            vec![],
            cursor_a,
            Mutation::Assign("1".into()),
        );
        let op_b = Operation::new(
            OpId::new(1, ReplicaId(2)),
            vec![],
            cursor_b,
            Mutation::Assign("2".into()),
        );
        let mut d1 = JsonCrdt::new(ReplicaId(9));
        d1.apply(op_a.clone()).unwrap();
        d1.apply(op_b.clone()).unwrap();
        let mut d2 = JsonCrdt::new(ReplicaId(9));
        d2.apply(op_b).unwrap();
        d2.apply(op_a).unwrap();
        assert_eq!(d1.to_value(), d2.to_value());
    }

    #[test]
    fn concurrent_register_assigns_arbitrate_by_op_id() {
        let mut cursor = Cursor::new();
        cursor.push_key("k");
        let op1 = Operation::new(
            OpId::new(1, ReplicaId(1)),
            vec![],
            cursor.clone(),
            Mutation::Assign("low".into()),
        );
        let op2 = Operation::new(
            OpId::new(1, ReplicaId(2)),
            vec![],
            cursor,
            Mutation::Assign("high".into()),
        );
        for order in [[&op1, &op2], [&op2, &op1]] {
            let mut doc = JsonCrdt::new(ReplicaId(9));
            for op in order {
                doc.apply(op.clone()).unwrap();
            }
            assert_eq!(doc.to_value().get("k").unwrap().as_str(), Some("high"));
        }
    }

    #[test]
    fn work_counters_grow_with_document_size() {
        let mut doc = JsonCrdt::new(ReplicaId(1));
        let small = doc
            .merge_value(&v(r#"{"readings":["1"]}"#))
            .unwrap()
            .units();
        let mut doc2 = JsonCrdt::new(ReplicaId(1));
        let big = doc2
            .merge_value(&v(r#"{"readings":["1","2","3","4","5","6","7","8"]}"#))
            .unwrap()
            .units();
        assert!(big > small);
    }

    #[test]
    fn take_work_resets() {
        let mut doc = JsonCrdt::new(ReplicaId(1));
        doc.merge_value(&v(r#"{"a":"1"}"#)).unwrap();
        assert!(doc.take_work().units() > 0);
        assert_eq!(doc.work().units(), 0);
    }

    #[test]
    fn clock_advances_past_applied_foreign_ops() {
        let mut doc = JsonCrdt::new(ReplicaId(1));
        let mut cursor = Cursor::new();
        cursor.push_key("k");
        doc.apply(Operation::new(
            OpId::new(50, ReplicaId(7)),
            vec![],
            cursor,
            Mutation::Assign("x".into()),
        ))
        .unwrap();
        // A subsequent local merge must stamp ids above 50.
        doc.merge_value(&v(r#"{"y":"1"}"#)).unwrap();
        assert!(doc.clock().current() > 50);
    }

    #[test]
    fn frontier_tracks_merge_chains_exactly() {
        let mut doc = JsonCrdt::new(ReplicaId(3));
        doc.merge_value(&v(r#"{"a":"1","b":{"c":"2"}}"#)).unwrap();
        assert!(doc.frontier_is_exact());
        assert_eq!(
            doc.frontier().entry(ReplicaId(3)),
            doc.clock().current(),
            "merge chains observe every counter contiguously"
        );
        assert_eq!(doc.frontier().len(), 1);
    }

    #[test]
    fn frontier_gap_from_foreign_op_clears_exactness() {
        let mut doc = JsonCrdt::new(ReplicaId(1));
        let mut cursor = Cursor::new();
        cursor.push_key("k");
        doc.apply(Operation::new(
            OpId::new(50, ReplicaId(7)),
            vec![],
            cursor,
            Mutation::Assign("x".into()),
        ))
        .unwrap();
        assert!(!doc.frontier_is_exact());
        assert!(!doc.frontier().contains(OpId::new(50, ReplicaId(7))));
    }

    #[test]
    fn merge_requires_history() {
        let plain = JsonCrdt::new(ReplicaId(1));
        let mut dst = JsonCrdt::new(ReplicaId(2));
        assert_eq!(dst.merge(&plain), Err(DocError::MissingHistory));
    }

    #[test]
    fn merge_replays_history_into_empty_doc() {
        let mut src = JsonCrdt::with_history(ReplicaId(1));
        src.merge_value(&v(r#"{"deviceID":"d1","readings":["51.0","49.5"]}"#))
            .unwrap();
        let mut dst = JsonCrdt::new(ReplicaId(2));
        let work = dst.merge(&src).unwrap();
        assert_eq!(dst.to_value(), src.to_value());
        assert_eq!(work.ops_applied, src.applied_len() as u64);
    }

    #[test]
    fn incremental_merge_applies_only_ops_beyond_frontier() {
        let mut src = JsonCrdt::with_history(ReplicaId(1));
        src.merge_value(&v(r#"{"readings":["1","2"]}"#)).unwrap();
        // A replica that has seen everything so far…
        let mut dst = src.clone();
        let ops_shared = src.applied_len();
        // …then the source advances.
        src.merge_value(&v(r#"{"readings":["3"]}"#)).unwrap();
        let work = dst.merge(&src).unwrap();
        assert_eq!(dst.to_value(), src.to_value());
        assert_eq!(
            work.ops_applied,
            (src.applied_len() - ops_shared) as u64,
            "ops at or below the frontier are skipped, not re-applied"
        );
        // Re-merging an already-covered source is free.
        assert_eq!(dst.merge(&src).unwrap().ops_applied, 0);
    }

    #[test]
    fn inexact_frontier_falls_back_to_full_replay_correctly() {
        let mut src = JsonCrdt::with_history(ReplicaId(1));
        src.merge_value(&v(r#"{"a":"1"}"#)).unwrap();
        let mut dst = JsonCrdt::new(ReplicaId(2));
        // Punch a gap into dst's frontier first.
        let mut cursor = Cursor::new();
        cursor.push_key("foreign");
        dst.apply(Operation::new(
            OpId::new(40, ReplicaId(9)),
            vec![],
            cursor,
            Mutation::Assign("x".into()),
        ))
        .unwrap();
        assert!(!dst.frontier_is_exact());
        dst.merge(&src).unwrap();
        let merged = dst.to_value();
        assert_eq!(merged.get("a").unwrap().as_str(), Some("1"));
        assert_eq!(merged.get("foreign").unwrap().as_str(), Some("x"));
        // Idempotent under replay even without the frontier fast path.
        let before = dst.to_value();
        dst.merge(&src).unwrap();
        assert_eq!(dst.to_value(), before);
    }

    #[test]
    fn history_records_application_order_and_survives_clone() {
        let mut doc = JsonCrdt::with_history(ReplicaId(5));
        doc.merge_value(&v(r#"{"a":"1","b":"2"}"#)).unwrap();
        let history = doc.history().expect("history enabled");
        assert_eq!(history.len(), doc.applied_len());
        // Application order == counter order for a lone merge chain.
        for (i, op) in history.iter().enumerate() {
            assert_eq!(op.id.counter, (i + 1) as u64);
            assert_eq!(op.replica(), ReplicaId(5));
        }
        assert!(JsonCrdt::new(ReplicaId(5)).history().is_none());
    }
}
