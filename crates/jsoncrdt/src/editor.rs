//! The operation-generating editing API.
//!
//! §5.2 of the FabricCRDT paper: *"the authors introduce the formal
//! semantics and the algorithm for implementing an API for interacting
//! with a JSON CRDT. The algorithm provides an API for modifying JSON
//! objects, such as inserting, assigning, and deleting values, as well
//! as reading from the JSON."* FabricCRDT hides this API from chaincode
//! developers (peers merge via [`crate::JsonCrdt::merge_value`]);
//! applications that replicate documents *between* processes — e.g. the
//! collaborative editors of §6 — need it. [`Editor`] is that API: every
//! call generates properly stamped, dependency-chained [`Operation`]s,
//! applies them locally, and hands them back for delivery to other
//! replicas, where out-of-order arrivals buffer until causally ready.
//!
//! # Examples
//!
//! ```
//! use fabriccrdt_jsoncrdt::editor::Editor;
//! use fabriccrdt_jsoncrdt::json::Value;
//! use fabriccrdt_jsoncrdt::ReplicaId;
//!
//! let mut alice = Editor::new(ReplicaId(1));
//! let mut bob = Editor::new(ReplicaId(2));
//!
//! let op_a = alice.assign(&["title"], "Design Doc")?;
//! let op_b = bob.assign(&["status"], "draft")?;
//!
//! // Exchange operations in any order.
//! bob.deliver(op_a)?;
//! alice.deliver(op_b)?;
//!
//! assert_eq!(alice.document().to_value(), bob.document().to_value());
//! # Ok::<(), fabriccrdt_jsoncrdt::doc::DocError>(())
//! ```

use crate::clock::{OpId, ReplicaId};
use crate::doc::{ApplyOutcome, DocError, JsonCrdt};
use crate::json::Value;
use crate::op::{Cursor, ItemKey, Mutation, Operation};

/// A replica-local editing handle over a [`JsonCrdt`].
///
/// Mutations return the generated [`Operation`]s; ship them to other
/// replicas (in any order — causality is enforced by dependency
/// buffering) and feed remote operations in via [`Editor::deliver`].
#[derive(Debug, Clone)]
pub struct Editor {
    doc: JsonCrdt,
    /// Dependency chain head: the last locally generated operation.
    last_local: Option<OpId>,
}

impl Editor {
    /// A fresh, empty document for this replica.
    pub fn new(replica: ReplicaId) -> Self {
        Editor {
            doc: JsonCrdt::new(replica),
            last_local: None,
        }
    }

    /// Starts from an existing plain JSON value.
    ///
    /// # Errors
    ///
    /// Returns [`DocError::RootNotMap`] if `base` is not a JSON map.
    pub fn from_value(replica: ReplicaId, base: &Value) -> Result<Self, DocError> {
        Ok(Editor {
            doc: JsonCrdt::from_value(replica, base)?,
            last_local: None,
        })
    }

    /// The underlying document.
    pub fn document(&self) -> &JsonCrdt {
        &self.doc
    }

    /// Reads the value at a key path (`&["a", "b"]` → `doc.a.b`), if
    /// present. List elements are not addressable by index through this
    /// reading API (their identity is content-based); read the parent
    /// list instead.
    pub fn read(&self, path: &[&str]) -> Option<Value> {
        let mut current = self.doc.to_value();
        for key in path {
            current = current.get(key)?.clone();
        }
        Some(current)
    }

    /// Assigns a string value at a key path, creating intermediate maps.
    ///
    /// # Errors
    ///
    /// Returns [`DocError::MutationAtHead`] for an empty path.
    pub fn assign(
        &mut self,
        path: &[&str],
        value: impl Into<String>,
    ) -> Result<Operation, DocError> {
        if path.is_empty() {
            return Err(DocError::MutationAtHead);
        }
        self.emit(Self::cursor_of(path), Mutation::Assign(value.into()))
    }

    /// Materializes an empty map at a key path.
    ///
    /// # Errors
    ///
    /// Returns [`DocError::MutationAtHead`] for an empty path.
    pub fn make_map(&mut self, path: &[&str]) -> Result<Operation, DocError> {
        if path.is_empty() {
            return Err(DocError::MutationAtHead);
        }
        self.emit(Self::cursor_of(path), Mutation::MakeMap)
    }

    /// Materializes an empty list at a key path.
    ///
    /// # Errors
    ///
    /// Returns [`DocError::MutationAtHead`] for an empty path.
    pub fn make_list(&mut self, path: &[&str]) -> Result<Operation, DocError> {
        if path.is_empty() {
            return Err(DocError::MutationAtHead);
        }
        self.emit(Self::cursor_of(path), Mutation::MakeList)
    }

    /// Appends a string element to the list at a key path (creating the
    /// list if needed). Returns the two generated operations
    /// (make-list, assign-element).
    ///
    /// The element is identified by its position hint and content, so
    /// concurrent appends by different replicas are both preserved.
    ///
    /// # Errors
    ///
    /// Returns [`DocError::MutationAtHead`] for an empty path.
    pub fn push_item(
        &mut self,
        path: &[&str],
        index_hint: usize,
        value: impl Into<String>,
    ) -> Result<[Operation; 2], DocError> {
        if path.is_empty() {
            return Err(DocError::MutationAtHead);
        }
        let value = value.into();
        let make = self.emit(Self::cursor_of(path), Mutation::MakeList)?;
        let mut cursor = Self::cursor_of(path);
        cursor.push_item(ItemKey::derive(index_hint, &Value::string(value.clone())));
        let assign = self.emit(cursor, Mutation::Assign(value))?;
        Ok([make, assign])
    }

    /// Deletes the subtree at a key path (tombstones; concurrent adds
    /// survive — add-wins).
    pub fn delete(&mut self, path: &[&str]) -> Result<Operation, DocError> {
        self.emit(Self::cursor_of(path), Mutation::Delete)
    }

    /// Applies an operation received from another replica. Operations
    /// whose dependencies have not arrived yet are buffered (outcome
    /// [`ApplyOutcome::Buffered`]) and drain automatically.
    ///
    /// # Errors
    ///
    /// Propagates [`DocError`] for structurally invalid operations.
    pub fn deliver(&mut self, op: Operation) -> Result<ApplyOutcome, DocError> {
        self.doc.apply(op)
    }

    fn cursor_of(path: &[&str]) -> Cursor {
        let mut cursor = Cursor::new();
        for key in path {
            cursor.push_key(*key);
        }
        cursor
    }

    fn emit(&mut self, cursor: Cursor, mutation: Mutation) -> Result<Operation, DocError> {
        let id = self.doc.clock().clone().tick();
        // 0/1 dependencies inline into `Deps` — no Vec per edit.
        let op = Operation::new(id, self.last_local, cursor, mutation);
        self.doc.apply(op.clone())?;
        self.last_local = Some(id);
        Ok(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_and_read() {
        let mut ed = Editor::new(ReplicaId(1));
        ed.assign(&["a", "b"], "deep").unwrap();
        ed.assign(&["top"], "level").unwrap();
        assert_eq!(ed.read(&["a", "b"]).unwrap().as_str(), Some("deep"));
        assert_eq!(ed.read(&["top"]).unwrap().as_str(), Some("level"));
        assert!(ed.read(&["missing"]).is_none());
        assert!(ed.read(&["a", "b", "c"]).is_none());
    }

    #[test]
    fn empty_path_rejected() {
        let mut ed = Editor::new(ReplicaId(1));
        assert_eq!(ed.assign(&[], "x").unwrap_err(), DocError::MutationAtHead);
        assert_eq!(ed.make_map(&[]).unwrap_err(), DocError::MutationAtHead);
        assert_eq!(ed.make_list(&[]).unwrap_err(), DocError::MutationAtHead);
    }

    #[test]
    fn replicas_converge_via_op_exchange() {
        let mut a = Editor::new(ReplicaId(1));
        let mut b = Editor::new(ReplicaId(2));
        let op1 = a.assign(&["x"], "from-a").unwrap();
        let op2 = b.assign(&["y"], "from-b").unwrap();
        let op3 = a.assign(&["shared"], "a-wins-or-not").unwrap();
        let op4 = b.assign(&["shared"], "b-wins-or-not").unwrap();

        // Cross-deliver in different orders.
        for op in [op2.clone(), op4.clone()] {
            a.deliver(op).unwrap();
        }
        for op in [op3, op1, op4, op2].into_iter().rev().skip(2) {
            // deliver op1 then op3 (reversed tail)
            b.deliver(op).unwrap();
        }
        assert_eq!(a.document().to_value(), b.document().to_value());
    }

    #[test]
    fn out_of_order_delivery_buffers() {
        let mut a = Editor::new(ReplicaId(1));
        let op1 = a.assign(&["k"], "first").unwrap();
        let op2 = a.assign(&["k"], "second").unwrap();

        let mut b = Editor::new(ReplicaId(2));
        // op2 depends on op1; delivering it first buffers.
        assert_eq!(b.deliver(op2).unwrap(), ApplyOutcome::Buffered);
        assert!(b.read(&["k"]).is_none());
        assert_eq!(b.deliver(op1).unwrap(), ApplyOutcome::Applied);
        assert_eq!(b.read(&["k"]).unwrap().as_str(), Some("second"));
    }

    #[test]
    fn concurrent_list_appends_both_survive() {
        let mut a = Editor::new(ReplicaId(1));
        let mut b = Editor::new(ReplicaId(2));
        let ops_a = a.push_item(&["log"], 0, "from-a").unwrap();
        let ops_b = b.push_item(&["log"], 0, "from-b").unwrap();
        for op in ops_b {
            a.deliver(op).unwrap();
        }
        for op in ops_a {
            b.deliver(op).unwrap();
        }
        let list_a = a.read(&["log"]).unwrap();
        assert_eq!(list_a.as_list().unwrap().len(), 2);
        assert_eq!(list_a, b.read(&["log"]).unwrap());
    }

    #[test]
    fn delete_replicates() {
        let mut a = Editor::new(ReplicaId(1));
        let mut b = Editor::new(ReplicaId(2));
        let op1 = a.assign(&["gone"], "x").unwrap();
        let op2 = a.assign(&["stays"], "y").unwrap();
        let op3 = a.delete(&["gone"]).unwrap();
        for op in [op1, op2, op3] {
            b.deliver(op).unwrap();
        }
        assert!(b.read(&["gone"]).is_none());
        assert_eq!(b.read(&["stays"]).unwrap().as_str(), Some("y"));
        assert_eq!(a.document().to_value(), b.document().to_value());
    }

    #[test]
    fn from_value_hydrates() {
        let base: Value = r#"{"existing":"data"}"#.parse().unwrap();
        let mut ed = Editor::from_value(ReplicaId(1), &base).unwrap();
        assert_eq!(ed.read(&["existing"]).unwrap().as_str(), Some("data"));
        ed.assign(&["more"], "stuff").unwrap();
        assert_eq!(ed.document().to_value().as_map().unwrap().len(), 2);
    }

    #[test]
    fn duplicate_delivery_is_idempotent() {
        let mut a = Editor::new(ReplicaId(1));
        let op = a.assign(&["k"], "v").unwrap();
        let mut b = Editor::new(ReplicaId(2));
        assert_eq!(b.deliver(op.clone()).unwrap(), ApplyOutcome::Applied);
        assert_eq!(b.deliver(op).unwrap(), ApplyOutcome::AlreadyApplied);
        assert_eq!(b.document().applied_len(), 1);
    }
}
