//! Recursive-descent JSON parser.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use super::{Number, Value};

/// Maximum nesting depth accepted by the parser, guarding against stack
/// exhaustion on adversarial input.
const MAX_DEPTH: usize = 256;

/// A JSON syntax error with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    /// Byte offset into the input where the error was detected.
    offset: usize,
}

impl ParseError {
    fn new(message: impl Into<String>, offset: usize) -> Self {
        ParseError {
            message: message.into(),
            offset,
        }
    }

    pub(crate) fn invalid_utf8() -> Self {
        ParseError::new("input is not valid UTF-8", 0)
    }

    /// Byte offset where the error occurred.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl Error for ParseError {}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(ParseError::new("trailing characters after value", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => Err(ParseError::new(
                format!("expected {:?}, found {:?}", b as char, got as char),
                self.pos - 1,
            )),
            None => Err(ParseError::new(
                format!("expected {:?}, found end of input", b as char),
                self.pos,
            )),
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(ParseError::new("maximum nesting depth exceeded", self.pos));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_map(depth),
            Some(b'[') => self.parse_list(depth),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(ParseError::new(
                format!("unexpected character {:?}", other as char),
                self.pos,
            )),
            None => Err(ParseError::new("unexpected end of input", self.pos)),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(ParseError::new(format!("expected keyword {kw:?}"), start))
        }
    }

    fn parse_map(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(map));
        }
        loop {
            self.skip_ws();
            let key_offset = self.pos;
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value(depth + 1)?;
            if map.insert(key, value).is_some() {
                return Err(ParseError::new("duplicate object key", key_offset));
            }
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Map(map)),
                _ => {
                    return Err(ParseError::new(
                        "expected ',' or '}' in object",
                        self.pos.saturating_sub(1),
                    ))
                }
            }
        }
    }

    fn parse_list(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::List(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::List(items)),
                _ => {
                    return Err(ParseError::new(
                        "expected ',' or ']' in array",
                        self.pos.saturating_sub(1),
                    ))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(ParseError::new("unterminated string", self.pos)),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.parse_hex4()?;
                        let ch = if (0xD800..=0xDBFF).contains(&cp) {
                            // High surrogate: a low surrogate must follow.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(ParseError::new(
                                    "high surrogate not followed by \\u escape",
                                    self.pos,
                                ));
                            }
                            let low = self.parse_hex4()?;
                            if !(0xDC00..=0xDFFF).contains(&low) {
                                return Err(ParseError::new("invalid low surrogate", self.pos));
                            }
                            let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined).ok_or_else(|| {
                                ParseError::new("invalid surrogate pair", self.pos)
                            })?
                        } else if (0xDC00..=0xDFFF).contains(&cp) {
                            return Err(ParseError::new("unexpected low surrogate", self.pos));
                        } else {
                            char::from_u32(cp)
                                .ok_or_else(|| ParseError::new("invalid codepoint", self.pos))?
                        };
                        out.push(ch);
                    }
                    _ => {
                        return Err(ParseError::new(
                            "invalid escape sequence",
                            self.pos.saturating_sub(1),
                        ))
                    }
                },
                Some(b) if b < 0x20 => {
                    return Err(ParseError::new(
                        "unescaped control character in string",
                        self.pos - 1,
                    ))
                }
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: re-decode from the source slice.
                    let width = utf8_width(b)
                        .ok_or_else(|| ParseError::new("invalid UTF-8 start byte", self.pos - 1))?;
                    let start = self.pos - 1;
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(ParseError::new("truncated UTF-8 sequence", start));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| ParseError::new("invalid UTF-8 sequence", start))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, ParseError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| ParseError::new("truncated \\u escape", self.pos))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| ParseError::new("invalid hex digit in \\u escape", self.pos - 1))?;
            cp = cp * 16 + digit;
        }
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(ParseError::new("invalid number", start)),
        }
        // Fraction.
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(ParseError::new(
                    "digit expected after decimal point",
                    self.pos,
                ));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // Exponent.
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(ParseError::new("digit expected in exponent", self.pos));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        let parsed: f64 = text
            .parse()
            .map_err(|_| ParseError::new("number out of range", start))?;
        Ok(Value::Number(Number::new(parsed)))
    }
}

fn utf8_width(first: u8) -> Option<usize> {
    match first {
        0xC2..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF4 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(input: &str) -> Value {
        parse(input).unwrap_or_else(|e| panic!("parse {input:?}: {e}"))
    }

    fn err(input: &str) -> ParseError {
        parse(input).expect_err(&format!("expected {input:?} to fail"))
    }

    #[test]
    fn literals() {
        assert_eq!(ok("null"), Value::Null);
        assert_eq!(ok("true"), Value::Bool(true));
        assert_eq!(ok("false"), Value::Bool(false));
        assert_eq!(ok("\"hi\""), Value::string("hi"));
    }

    #[test]
    fn numbers() {
        assert_eq!(ok("0").as_number(), Some(0.0));
        assert_eq!(ok("-12.5").as_number(), Some(-12.5));
        assert_eq!(ok("1e3").as_number(), Some(1000.0));
        assert_eq!(ok("2.5E-2").as_number(), Some(0.025));
        err("01");
        err("1.");
        err("-");
        err("1e");
        err("+1");
    }

    #[test]
    fn nested_structures() {
        let v = ok(r#"{"a": [{"b": ["x"]}, "y"], "c": {}}"#);
        let a = v.get("a").unwrap().as_list().unwrap();
        assert_eq!(a[1].as_str(), Some("y"));
        assert_eq!(
            a[0].get("b").unwrap().as_list().unwrap()[0].as_str(),
            Some("x")
        );
        assert!(v.get("c").unwrap().as_map().unwrap().is_empty());
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(
            ok(" {\n\t\"a\" :\r [ \"1\" , \"2\" ] } "),
            ok(r#"{"a":["1","2"]}"#)
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            ok(r#""\"\\\/\b\f\n\r\t""#).as_str(),
            Some("\"\\/\u{8}\u{c}\n\r\t")
        );
        assert_eq!(ok(r#""A""#).as_str(), Some("A"));
        assert_eq!(ok(r#""é""#).as_str(), Some("é"));
    }

    #[test]
    fn surrogate_pairs() {
        assert_eq!(ok(r#""😀""#).as_str(), Some("😀"));
        err(r#""\ud83d""#); // lone high surrogate
        err(r#""\ude00""#); // lone low surrogate
        err(r#""\ud83dxx""#);
    }

    #[test]
    fn raw_utf8_passthrough() {
        assert_eq!(ok("\"héllo 😀\"").as_str(), Some("héllo 😀"));
    }

    #[test]
    fn control_characters_rejected() {
        err("\"a\nb\"");
    }

    #[test]
    fn structural_errors() {
        err("{");
        err("[");
        err("{\"a\"}");
        err("{\"a\":1,}");
        err("[1,]");
        err("[1 2]");
        err("");
        err("{} {}");
        err("nul");
    }

    #[test]
    fn duplicate_keys_rejected() {
        let e = err(r#"{"a": "1", "a": "2"}"#);
        assert!(e.to_string().contains("duplicate"));
    }

    #[test]
    fn deep_nesting_bounded() {
        let mut s = String::new();
        for _ in 0..500 {
            s.push('[');
        }
        for _ in 0..500 {
            s.push(']');
        }
        let e = err(&s);
        assert!(e.to_string().contains("depth"));
    }

    #[test]
    fn error_offset_points_at_problem() {
        let e = err("[true, xalse]");
        assert_eq!(e.offset(), 7);
    }
}
