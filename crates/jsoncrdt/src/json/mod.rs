//! A self-contained JSON value model.
//!
//! The FabricCRDT chaincode programming model exchanges JSON documents, and
//! the JSON CRDT of Section 5.2 operates on maps, lists and strings. This
//! module provides the [`Value`] type plus a full parser ([`Value::parse`]) and
//! serializers — no external JSON dependency.
//!
//! Maps are backed by [`BTreeMap`] so iteration order (and therefore every
//! downstream hash, merge and simulation) is deterministic.

mod parse;
mod ser;

pub use parse::ParseError;

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// A JSON number.
///
/// Stored as an `f64`; equality and hashing use the canonical bit pattern
/// (with `-0.0` normalized to `0.0`) so that [`Value`] can implement `Eq`.
/// The paper's workloads carry numbers as strings (Section 5.2), so numeric
/// edge cases never reach the CRDT layer, but the JSON model is complete.
#[derive(Debug, Clone, Copy)]
pub struct Number(f64);

impl Number {
    /// Wraps an `f64`. `NaN` is normalized to a single canonical NaN.
    pub fn new(v: f64) -> Self {
        if v.is_nan() {
            Number(f64::NAN)
        } else if v == 0.0 {
            Number(0.0)
        } else {
            Number(v)
        }
    }

    /// The numeric value.
    pub fn value(self) -> f64 {
        self.0
    }

    fn canonical_bits(self) -> u64 {
        if self.0.is_nan() {
            f64::NAN.to_bits()
        } else {
            self.0.to_bits()
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        self.canonical_bits() == other.canonical_bits()
    }
}

impl Eq for Number {}

impl std::hash::Hash for Number {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.canonical_bits().hash(state);
    }
}

impl PartialOrd for Number {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Number {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .unwrap_or_else(|| self.canonical_bits().cmp(&other.canonical_bits()))
    }
}

impl From<f64> for Number {
    fn from(v: f64) -> Self {
        Number::new(v)
    }
}

impl From<i64> for Number {
    fn from(v: i64) -> Self {
        Number::new(v as f64)
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_nan() || self.0.is_infinite() {
            // JSON has no NaN/Infinity; emit null like most serializers.
            write!(f, "null")
        } else if self.0 == self.0.trunc() && self.0.abs() < 1e15 {
            write!(f, "{}", self.0 as i64)
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// A JSON value: null, boolean, number, string, list or map.
///
/// # Examples
///
/// ```
/// use fabriccrdt_jsoncrdt::json::Value;
///
/// let v: Value = r#"{"deviceID": "Device1", "readings": ["50.5"]}"#.parse()?;
/// assert_eq!(v.get("deviceID").unwrap().as_str(), Some("Device1"));
/// assert_eq!(v.to_string(), r#"{"deviceID":"Device1","readings":["50.5"]}"#);
/// # Ok::<(), fabriccrdt_jsoncrdt::json::ParseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A JSON number.
    Number(Number),
    /// A JSON string.
    String(String),
    /// A JSON array.
    List(Vec<Value>),
    /// A JSON object with deterministic (sorted) key order.
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// Parses a JSON document from text.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the first syntax error.
    pub fn parse(input: &str) -> Result<Value, ParseError> {
        parse::parse(input)
    }

    /// Builds an empty map value.
    pub fn empty_map() -> Value {
        Value::Map(BTreeMap::new())
    }

    /// Builds a string value.
    pub fn string(s: impl Into<String>) -> Value {
        Value::String(s.into())
    }

    /// Builds a list value from any iterator of values.
    pub fn list<I: IntoIterator<Item = Value>>(items: I) -> Value {
        Value::List(items.into_iter().collect())
    }

    /// Returns the string slice if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the number if this is a number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.value()),
            _ => None,
        }
    }

    /// Returns the bool if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the list slice if this is a list.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the map if this is a map.
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable access to the map if this is a map.
    pub fn as_map_mut(&mut self) -> Option<&mut BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable access to the list if this is a list.
    pub fn as_list_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up `key` if this is a map.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| m.get(key))
    }

    /// Inserts `key -> value` if this is a map; returns the previous value.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a map — inserting into a non-map is a
    /// programming error in the caller.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        self.as_map_mut()
            .expect("Value::insert requires a map")
            .insert(key.into(), value)
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Serializes to compact JSON text (no whitespace). Map keys appear in
    /// sorted order, making the output canonical — two equal values always
    /// serialize identically, which the ledger relies on for hashing.
    pub fn to_compact_string(&self) -> String {
        ser::to_compact(self)
    }

    /// Serializes to human-readable, indented JSON text.
    pub fn to_pretty_string(&self) -> String {
        ser::to_pretty(self)
    }

    /// Serializes to canonical bytes (compact form).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_compact_string().into_bytes()
    }

    /// Parses a value from canonical bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] if the bytes are not valid UTF-8 JSON.
    pub fn from_bytes(bytes: &[u8]) -> Result<Value, ParseError> {
        let text = std::str::from_utf8(bytes).map_err(|_| ParseError::invalid_utf8())?;
        Value::parse(text)
    }

    /// Total number of nodes in the value tree (maps, lists, leaves). Used
    /// by the workload layer to size documents.
    pub fn node_count(&self) -> usize {
        match self {
            Value::List(items) => 1 + items.iter().map(Value::node_count).sum::<usize>(),
            Value::Map(m) => 1 + m.values().map(Value::node_count).sum::<usize>(),
            _ => 1,
        }
    }

    /// Maximum nesting depth (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Value::List(items) => 1 + items.iter().map(Value::depth).max().unwrap_or(0),
            Value::Map(m) => 1 + m.values().map(Value::depth).max().unwrap_or(0),
            _ => 1,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact_string())
    }
}

impl FromStr for Value {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Value::parse(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(Number::new(v))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Number(Number::from(v))
    }
}

impl FromIterator<(String, Value)> for Value {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        Value::Map(iter.into_iter().collect())
    }
}

impl FromIterator<Value> for Value {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Value::List(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let v: Value = r#"{"a": "x", "b": ["1", "2"], "c": true, "d": 3.5, "e": null}"#
            .parse()
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_list().unwrap().len(), 2);
        assert_eq!(v.get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("d").unwrap().as_number(), Some(3.5));
        assert!(v.get("e").unwrap().is_null());
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn insert_into_map() {
        let mut v = Value::empty_map();
        assert!(v.insert("k", Value::string("v")).is_none());
        assert_eq!(
            v.insert("k", Value::string("w")).unwrap(),
            Value::string("v")
        );
        assert_eq!(v.get("k").unwrap().as_str(), Some("w"));
    }

    #[test]
    #[should_panic(expected = "requires a map")]
    fn insert_into_non_map_panics() {
        Value::Null.insert("k", Value::Null);
    }

    #[test]
    fn node_count_and_depth() {
        let v: Value = r#"{"a": {"b": ["x", "y"]}}"#.parse().unwrap();
        // map + map + list + 2 strings = 5 nodes
        assert_eq!(v.node_count(), 5);
        assert_eq!(v.depth(), 4);
        assert_eq!(Value::string("leaf").depth(), 1);
    }

    #[test]
    fn number_equality_normalizes_zero_and_nan() {
        assert_eq!(Number::new(0.0), Number::new(-0.0));
        assert_eq!(Number::new(f64::NAN), Number::new(f64::NAN));
        assert_ne!(Number::new(1.0), Number::new(2.0));
    }

    #[test]
    fn canonical_bytes_roundtrip() {
        let v: Value = r#"{"z": "1", "a": ["true", {"k": "v"}]}"#.parse().unwrap();
        let bytes = v.to_bytes();
        assert_eq!(Value::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn equal_values_have_equal_canonical_form() {
        let a: Value = r#"{ "x" : "1", "y" : "2" }"#.parse().unwrap();
        let b: Value = r#"{"y":"2","x":"1"}"#.parse().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_compact_string(), b.to_compact_string());
    }

    #[test]
    fn from_iterators() {
        let m: Value = vec![("a".to_owned(), Value::from("1"))]
            .into_iter()
            .collect();
        assert_eq!(m.get("a").unwrap().as_str(), Some("1"));
        let l: Value = vec![Value::from("1"), Value::from("2")]
            .into_iter()
            .collect();
        assert_eq!(l.as_list().unwrap().len(), 2);
    }
}
