//! JSON serializers: compact (canonical) and pretty-printed.

use super::Value;

/// Serializes to compact canonical JSON: no whitespace, sorted map keys
/// (guaranteed by the `BTreeMap` backing).
pub fn to_compact(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    out
}

/// Serializes to pretty JSON with two-space indentation.
pub fn to_pretty(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    out
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_string(out, s),
        Value::List(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use crate::json::Value;

    fn roundtrip(text: &str) {
        let v: Value = text.parse().unwrap();
        let compact = v.to_compact_string();
        assert_eq!(compact.parse::<Value>().unwrap(), v, "compact roundtrip");
        let pretty = v.to_pretty_string();
        assert_eq!(pretty.parse::<Value>().unwrap(), v, "pretty roundtrip");
    }

    #[test]
    fn compact_form_is_canonical() {
        let v: Value = r#"{"b":"2","a":"1"}"#.parse().unwrap();
        assert_eq!(v.to_compact_string(), r#"{"a":"1","b":"2"}"#);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Value::empty_map().to_compact_string(), "{}");
        assert_eq!(Value::list([]).to_compact_string(), "[]");
        assert_eq!(Value::empty_map().to_pretty_string(), "{}");
    }

    #[test]
    fn string_escaping() {
        let v = Value::string("a\"b\\c\nd\u{1}");
        assert_eq!(v.to_compact_string(), "\"a\\\"b\\\\c\\nd\\u0001\"");
        roundtrip(&v.to_compact_string());
    }

    #[test]
    fn pretty_output_shape() {
        let v: Value = r#"{"a":["1"]}"#.parse().unwrap();
        assert_eq!(v.to_pretty_string(), "{\n  \"a\": [\n    \"1\"\n  ]\n}");
    }

    #[test]
    fn roundtrips() {
        roundtrip(r#"{"device":"d1","readings":["50.0","51.2"],"nested":{"a":{"b":["x"]}}}"#);
        roundtrip(r#"[null,true,false,1,2.5,-3,"s"]"#);
        roundtrip(r#""unicode: é😀""#);
    }

    #[test]
    fn integer_numbers_render_without_fraction() {
        let v: Value = "42".parse().unwrap();
        assert_eq!(v.to_compact_string(), "42");
        let v: Value = "42.5".parse().unwrap();
        assert_eq!(v.to_compact_string(), "42.5");
    }
}
