//! Grow-only and increment/decrement counters.

use std::collections::BTreeMap;

use crate::clock::ReplicaId;

/// A grow-only counter (G-Counter), the introductory example of the
/// paper's §2.2: increments are commutative but not idempotent, so the
/// state tracks one monotone counter per replica and merges by pointwise
/// maximum.
///
/// # Examples
///
/// ```
/// use fabriccrdt_jsoncrdt::{GCounter, ReplicaId};
///
/// let mut a = GCounter::new();
/// let mut b = GCounter::new();
/// a.increment(ReplicaId(1), 3);
/// b.increment(ReplicaId(2), 4);
/// a.merge(&b);
/// assert_eq!(a.value(), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GCounter {
    counts: BTreeMap<ReplicaId, u64>,
}

impl GCounter {
    /// An empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `amount` to this replica's component.
    pub fn increment(&mut self, replica: ReplicaId, amount: u64) {
        *self.counts.entry(replica).or_insert(0) += amount;
    }

    /// The counter's value: the sum over replicas.
    pub fn value(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Joins another counter's state (pointwise max).
    pub fn merge(&mut self, other: &GCounter) {
        for (replica, &count) in &other.counts {
            let slot = self.counts.entry(*replica).or_insert(0);
            *slot = (*slot).max(count);
        }
    }
}

/// A PN-Counter: supports increments and decrements as a pair of
/// G-Counters.
///
/// # Examples
///
/// ```
/// use fabriccrdt_jsoncrdt::{PnCounter, ReplicaId};
///
/// let mut c = PnCounter::new();
/// c.increment(ReplicaId(1), 10);
/// c.decrement(ReplicaId(1), 3);
/// assert_eq!(c.value(), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PnCounter {
    increments: GCounter,
    decrements: GCounter,
}

impl PnCounter {
    /// An empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `amount`.
    pub fn increment(&mut self, replica: ReplicaId, amount: u64) {
        self.increments.increment(replica, amount);
    }

    /// Subtracts `amount`.
    pub fn decrement(&mut self, replica: ReplicaId, amount: u64) {
        self.decrements.increment(replica, amount);
    }

    /// The counter's value; may be negative.
    pub fn value(&self) -> i64 {
        self.increments.value() as i64 - self.decrements.value() as i64
    }

    /// Joins another counter's state.
    pub fn merge(&mut self, other: &PnCounter) {
        self.increments.merge(&other.increments);
        self.decrements.merge(&other.decrements);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcounter_sums_replicas() {
        let mut c = GCounter::new();
        c.increment(ReplicaId(1), 2);
        c.increment(ReplicaId(2), 3);
        c.increment(ReplicaId(1), 1);
        assert_eq!(c.value(), 6);
    }

    #[test]
    fn gcounter_merge_is_idempotent() {
        let mut a = GCounter::new();
        a.increment(ReplicaId(1), 5);
        let snapshot = a.clone();
        a.merge(&snapshot);
        assert_eq!(a.value(), 5);
    }

    #[test]
    fn gcounter_merge_is_commutative() {
        let mut a = GCounter::new();
        a.increment(ReplicaId(1), 5);
        let mut b = GCounter::new();
        b.increment(ReplicaId(2), 7);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn gcounter_merge_takes_max_per_replica() {
        let mut a = GCounter::new();
        a.increment(ReplicaId(1), 5);
        let mut b = a.clone();
        b.increment(ReplicaId(1), 2); // b is strictly ahead on replica 1
        a.merge(&b);
        assert_eq!(a.value(), 7); // not 12: merge is not addition
    }

    #[test]
    fn pncounter_value_can_go_negative() {
        let mut c = PnCounter::new();
        c.decrement(ReplicaId(1), 4);
        c.increment(ReplicaId(1), 1);
        assert_eq!(c.value(), -3);
    }

    #[test]
    fn pncounter_concurrent_updates_merge() {
        let mut a = PnCounter::new();
        let mut b = PnCounter::new();
        a.increment(ReplicaId(1), 10);
        b.decrement(ReplicaId(2), 4);
        a.merge(&b);
        b.merge(&a);
        assert_eq!(a.value(), 6);
        assert_eq!(a, b);
    }
}
