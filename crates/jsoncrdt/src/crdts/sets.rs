//! Grow-only and observed-remove sets.

use std::collections::{BTreeMap, BTreeSet};

use crate::clock::OpId;

/// A grow-only set: elements can only be added; merge is set union.
///
/// # Examples
///
/// ```
/// use fabriccrdt_jsoncrdt::GSet;
///
/// let mut a = GSet::new();
/// a.insert("x".to_owned());
/// let mut b = GSet::new();
/// b.insert("y".to_owned());
/// a.merge(&b);
/// assert!(a.contains(&"x".to_owned()) && a.contains(&"y".to_owned()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GSet<T: Ord> {
    elements: BTreeSet<T>,
}

impl<T: Ord + Clone> Default for GSet<T> {
    fn default() -> Self {
        GSet::new()
    }
}

impl<T: Ord + Clone> GSet<T> {
    /// An empty set.
    pub fn new() -> Self {
        GSet {
            elements: BTreeSet::new(),
        }
    }

    /// Adds an element. Returns `true` if it was not present.
    pub fn insert(&mut self, element: T) -> bool {
        self.elements.insert(element)
    }

    /// Membership test.
    pub fn contains(&self, element: &T) -> bool {
        self.elements.contains(element)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Iterates elements in order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.elements.iter()
    }

    /// Joins another set's state (union).
    pub fn merge(&mut self, other: &GSet<T>) {
        self.elements.extend(other.elements.iter().cloned());
    }
}

/// An observed-remove set (OR-Set): removals only affect additions that
/// were observed, so a concurrent add wins over a remove.
///
/// Each addition is tagged with a unique [`OpId`]; removing an element
/// tombstones the tags observed at removal time.
///
/// # Examples
///
/// ```
/// use fabriccrdt_jsoncrdt::{OrSet, OpId, ReplicaId};
///
/// let mut a = OrSet::new();
/// a.insert("x".to_owned(), OpId::new(1, ReplicaId(1)));
/// let mut b = a.clone();
/// b.remove(&"x".to_owned());          // b observed the add and removes it
/// a.insert("x".to_owned(), OpId::new(2, ReplicaId(1))); // concurrent re-add
/// a.merge(&b);
/// assert!(a.contains(&"x".to_owned())); // add-wins
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrSet<T: Ord> {
    /// Live tags per element.
    adds: BTreeMap<T, BTreeSet<OpId>>,
    /// Tombstoned tags per element.
    removes: BTreeMap<T, BTreeSet<OpId>>,
}

impl<T: Ord + Clone> Default for OrSet<T> {
    fn default() -> Self {
        OrSet::new()
    }
}

impl<T: Ord + Clone> OrSet<T> {
    /// An empty set.
    pub fn new() -> Self {
        OrSet {
            adds: BTreeMap::new(),
            removes: BTreeMap::new(),
        }
    }

    /// Adds an element with a fresh unique tag.
    pub fn insert(&mut self, element: T, tag: OpId) {
        self.adds.entry(element).or_default().insert(tag);
    }

    /// Removes the element by tombstoning all currently observed tags.
    /// Returns `true` if the element was present.
    pub fn remove(&mut self, element: &T) -> bool {
        let live: Vec<OpId> = self.live_tags(element).collect();
        if live.is_empty() {
            return false;
        }
        self.removes
            .entry(element.clone())
            .or_default()
            .extend(live);
        true
    }

    /// Membership: at least one non-tombstoned tag.
    pub fn contains(&self, element: &T) -> bool {
        self.live_tags(element).next().is_some()
    }

    /// Number of visible elements.
    pub fn len(&self) -> usize {
        self.adds.keys().filter(|e| self.contains(e)).count()
    }

    /// Whether no element is visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates visible elements in order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.adds.keys().filter(move |e| self.contains(e))
    }

    /// Joins another set's state: union of adds and of tombstones.
    pub fn merge(&mut self, other: &OrSet<T>) {
        for (element, tags) in &other.adds {
            self.adds
                .entry(element.clone())
                .or_default()
                .extend(tags.iter().copied());
        }
        for (element, tags) in &other.removes {
            self.removes
                .entry(element.clone())
                .or_default()
                .extend(tags.iter().copied());
        }
    }

    fn live_tags<'a>(&'a self, element: &T) -> impl Iterator<Item = OpId> + 'a {
        let removed = self.removes.get(element);
        self.adds
            .get(element)
            .into_iter()
            .flat_map(|tags| tags.iter())
            .filter(move |tag| removed.is_none_or(|r| !r.contains(tag)))
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ReplicaId;

    fn tag(n: u64) -> OpId {
        OpId::new(n, ReplicaId(1))
    }

    #[test]
    fn gset_union() {
        let mut a = GSet::new();
        a.insert(1);
        a.insert(2);
        let mut b = GSet::new();
        b.insert(2);
        b.insert(3);
        a.merge(&b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn gset_merge_idempotent_commutative() {
        let mut a = GSet::new();
        a.insert("x");
        let mut b = GSet::new();
        b.insert("y");
        let mut ab = a.clone();
        ab.merge(&b);
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn orset_insert_remove() {
        let mut s = OrSet::new();
        s.insert("x".to_owned(), tag(1));
        assert!(s.contains(&"x".to_owned()));
        assert!(s.remove(&"x".to_owned()));
        assert!(!s.contains(&"x".to_owned()));
        assert!(!s.remove(&"x".to_owned()));
        assert!(s.is_empty());
    }

    #[test]
    fn orset_add_wins_over_concurrent_remove() {
        let mut a = OrSet::new();
        a.insert("x".to_owned(), tag(1));
        let mut b = a.clone();
        b.remove(&"x".to_owned());
        a.insert("x".to_owned(), tag(2)); // concurrent, unobserved by b
        a.merge(&b);
        assert!(a.contains(&"x".to_owned()));
        // And symmetrically.
        let mut b2 = b.clone();
        let mut a2 = OrSet::new();
        a2.insert("x".to_owned(), tag(1));
        a2.insert("x".to_owned(), tag(2));
        b2.merge(&a2);
        assert!(b2.contains(&"x".to_owned()));
    }

    #[test]
    fn orset_observed_remove_sticks_after_merge() {
        let mut a = OrSet::new();
        a.insert("x".to_owned(), tag(1));
        let mut b = a.clone();
        b.remove(&"x".to_owned());
        a.merge(&b); // a had no concurrent re-add
        assert!(!a.contains(&"x".to_owned()));
    }

    #[test]
    fn orset_iter_only_visible() {
        let mut s = OrSet::new();
        s.insert("a".to_owned(), tag(1));
        s.insert("b".to_owned(), tag(2));
        s.remove(&"a".to_owned());
        let visible: Vec<&String> = s.iter().collect();
        assert_eq!(visible, vec![&"b".to_owned()]);
        assert_eq!(s.len(), 1);
    }
}
