//! An add-wins graph CRDT.
//!
//! The paper's conclusion names graph CRDTs as future work. This is the
//! classic two-OR-Set construction: vertices and edges are each
//! observed-remove sets, with the invariant that an edge is only
//! *visible* while both endpoints are visible (looking up edges filters
//! by live vertices, so a concurrent vertex removal hides incident
//! edges without losing them — re-adding the vertex restores them,
//! add-wins all the way down).

use std::collections::BTreeSet;

use crate::clock::OpId;
use crate::crdts::sets::OrSet;

/// A directed edge between two named vertices.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// Source vertex.
    pub from: String,
    /// Target vertex.
    pub to: String,
}

impl Edge {
    /// Creates an edge.
    pub fn new(from: impl Into<String>, to: impl Into<String>) -> Self {
        Edge {
            from: from.into(),
            to: to.into(),
        }
    }
}

/// An add-wins directed graph CRDT.
///
/// # Examples
///
/// ```
/// use fabriccrdt_jsoncrdt::crdts::{Edge, GraphCrdt};
/// use fabriccrdt_jsoncrdt::{OpId, ReplicaId};
///
/// let mut g = GraphCrdt::new();
/// let mut tag = (1..).map(|n| OpId::new(n, ReplicaId(1)));
/// g.add_vertex("a", tag.next().unwrap());
/// g.add_vertex("b", tag.next().unwrap());
/// g.add_edge(Edge::new("a", "b"), tag.next().unwrap());
/// assert!(g.has_edge(&Edge::new("a", "b")));
/// g.remove_vertex(&"b".to_owned());
/// assert!(!g.has_edge(&Edge::new("a", "b"))); // endpoint gone
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GraphCrdt {
    vertices: OrSet<String>,
    edges: OrSet<Edge>,
}

impl GraphCrdt {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a vertex with a unique tag.
    pub fn add_vertex(&mut self, name: impl Into<String>, tag: OpId) {
        self.vertices.insert(name.into(), tag);
    }

    /// Removes a vertex (observed-remove). Incident edges stay in the
    /// edge set but become invisible until the vertex is re-added.
    /// Returns `true` if the vertex was visible.
    pub fn remove_vertex(&mut self, name: &String) -> bool {
        self.vertices.remove(name)
    }

    /// Adds an edge with a unique tag. The edge only becomes visible
    /// once both endpoints are visible.
    pub fn add_edge(&mut self, edge: Edge, tag: OpId) {
        self.edges.insert(edge, tag);
    }

    /// Removes an edge (observed-remove). Returns `true` if present.
    pub fn remove_edge(&mut self, edge: &Edge) -> bool {
        self.edges.remove(edge)
    }

    /// Whether the vertex is visible.
    pub fn has_vertex(&self, name: &String) -> bool {
        self.vertices.contains(name)
    }

    /// Whether the edge is visible: present and both endpoints visible.
    pub fn has_edge(&self, edge: &Edge) -> bool {
        self.edges.contains(edge)
            && self.vertices.contains(&edge.from)
            && self.vertices.contains(&edge.to)
    }

    /// Visible vertices, in order.
    pub fn vertices(&self) -> Vec<&String> {
        self.vertices.iter().collect()
    }

    /// Visible edges, in order.
    pub fn edges(&self) -> Vec<&Edge> {
        self.edges
            .iter()
            .filter(|e| self.vertices.contains(&e.from) && self.vertices.contains(&e.to))
            .collect()
    }

    /// Visible successors of a vertex.
    pub fn successors(&self, from: &String) -> BTreeSet<&String> {
        self.edges()
            .into_iter()
            .filter(|e| &e.from == from)
            .map(|e| &e.to)
            .collect()
    }

    /// Joins another graph's state (component-wise OR-Set merge).
    pub fn merge(&mut self, other: &GraphCrdt) {
        self.vertices.merge(&other.vertices);
        self.edges.merge(&other.edges);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ReplicaId;

    fn tag(n: u64) -> OpId {
        OpId::new(n, ReplicaId(1))
    }

    fn tag2(n: u64) -> OpId {
        OpId::new(n, ReplicaId(2))
    }

    #[test]
    fn add_and_query() {
        let mut g = GraphCrdt::new();
        g.add_vertex("a", tag(1));
        g.add_vertex("b", tag(2));
        g.add_edge(Edge::new("a", "b"), tag(3));
        assert!(g.has_vertex(&"a".into()));
        assert!(g.has_edge(&Edge::new("a", "b")));
        assert_eq!(g.successors(&"a".into()).len(), 1);
    }

    #[test]
    fn edge_without_endpoints_is_invisible() {
        let mut g = GraphCrdt::new();
        g.add_edge(Edge::new("x", "y"), tag(1));
        assert!(!g.has_edge(&Edge::new("x", "y")));
        assert!(g.edges().is_empty());
        // Adding the endpoints reveals it.
        g.add_vertex("x", tag(2));
        g.add_vertex("y", tag(3));
        assert!(g.has_edge(&Edge::new("x", "y")));
    }

    #[test]
    fn vertex_removal_hides_incident_edges() {
        let mut g = GraphCrdt::new();
        g.add_vertex("a", tag(1));
        g.add_vertex("b", tag(2));
        g.add_edge(Edge::new("a", "b"), tag(3));
        g.remove_vertex(&"b".into());
        assert!(!g.has_edge(&Edge::new("a", "b")));
        // Re-adding the vertex restores the edge (add-wins).
        g.add_vertex("b", tag(4));
        assert!(g.has_edge(&Edge::new("a", "b")));
    }

    #[test]
    fn concurrent_add_wins_over_remove() {
        let mut a = GraphCrdt::new();
        a.add_vertex("v", tag(1));
        let mut b = a.clone();
        b.remove_vertex(&"v".into());
        a.add_vertex("v", tag2(1)); // concurrent re-add, unobserved by b
        a.merge(&b);
        assert!(a.has_vertex(&"v".into()));
    }

    #[test]
    fn merge_commutative_and_idempotent() {
        let mut a = GraphCrdt::new();
        a.add_vertex("x", tag(1));
        a.add_edge(Edge::new("x", "y"), tag(2));
        let mut b = GraphCrdt::new();
        b.add_vertex("y", tag2(1));
        b.add_vertex("x", tag2(2));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert!(ab.has_edge(&Edge::new("x", "y")));

        let mut aa = a.clone();
        aa.merge(&a);
        assert_eq!(aa, a);
    }

    #[test]
    fn successors_only_visible_edges() {
        let mut g = GraphCrdt::new();
        g.add_vertex("a", tag(1));
        g.add_vertex("b", tag(2));
        g.add_vertex("c", tag(3));
        g.add_edge(Edge::new("a", "b"), tag(4));
        g.add_edge(Edge::new("a", "c"), tag(5));
        g.remove_edge(&Edge::new("a", "b"));
        let succ = g.successors(&"a".into());
        assert_eq!(succ.len(), 1);
        assert!(succ.contains(&"c".to_owned()));
    }
}
