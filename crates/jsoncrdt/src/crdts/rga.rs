//! A Replicated Growable Array (RGA) — the classic sequence CRDT.
//!
//! The paper's §6 points at JSON CRDTs representing text documents, and
//! its conclusion lists list CRDTs as future work. RGA is the standard
//! operation-based sequence CRDT behind collaborative text editing:
//! every element is inserted *after* an existing element (or the head),
//! carries a globally unique [`OpId`], and deletion tombstones rather
//! than removes. Concurrent inserts after the same parent order by
//! descending id, which gives every replica the same total order.
//!
//! Out-of-order delivery is handled by buffering inserts whose parent
//! has not arrived yet (same discipline as the JSON CRDT's dependency
//! queue, paper §5.2).

use std::collections::BTreeMap;

use crate::clock::OpId;

/// The virtual head element everything is ultimately inserted after.
fn head() -> OpId {
    OpId::root()
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Node<T> {
    value: T,
    tombstone: bool,
}

/// An RGA sequence over values of type `T`.
///
/// # Examples
///
/// ```
/// use fabriccrdt_jsoncrdt::crdts::Rga;
/// use fabriccrdt_jsoncrdt::{OpId, ReplicaId};
///
/// let mut text = Rga::new();
/// let a = OpId::new(1, ReplicaId(1));
/// let b = OpId::new(2, ReplicaId(1));
/// text.insert_after(Rga::<char>::HEAD, a, 'h');
/// text.insert_after(a, b, 'i');
/// assert_eq!(text.iter().collect::<String>(), "hi");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rga<T> {
    nodes: BTreeMap<OpId, Node<T>>,
    /// parent id → child ids (kept sorted descending at read time).
    children: BTreeMap<OpId, Vec<OpId>>,
    /// Inserts waiting for their parent: parent id → queued (id, value).
    pending: BTreeMap<OpId, Vec<(OpId, T)>>,
    /// Deletes waiting for their target.
    pending_deletes: Vec<OpId>,
}

impl<T: Clone> Default for Rga<T> {
    fn default() -> Self {
        Rga::new()
    }
}

impl<T: Clone> Rga<T> {
    /// The id to pass as `parent` for inserting at the front.
    pub const HEAD: OpId = OpId {
        counter: 0,
        replica: crate::clock::ReplicaId(0),
    };

    /// An empty sequence.
    pub fn new() -> Self {
        Rga {
            nodes: BTreeMap::new(),
            children: BTreeMap::new(),
            pending: BTreeMap::new(),
            pending_deletes: Vec::new(),
        }
    }

    /// Inserts `value` with unique id `id` after `parent` (use
    /// [`Rga::HEAD`] for the front). Returns `true` if applied, `false`
    /// if buffered awaiting the parent or already present (idempotent).
    pub fn insert_after(&mut self, parent: OpId, id: OpId, value: T) -> bool {
        if self.nodes.contains_key(&id) {
            return false; // duplicate delivery
        }
        if parent != head() && !self.nodes.contains_key(&parent) {
            self.pending.entry(parent).or_default().push((id, value));
            return false;
        }
        self.integrate(parent, id, value);
        // Drain anything that waited on this id (transitively).
        let mut ready = vec![id];
        while let Some(current) = ready.pop() {
            if let Some(queued) = self.pending.remove(&current) {
                for (queued_id, queued_value) in queued {
                    if !self.nodes.contains_key(&queued_id) {
                        self.integrate(current, queued_id, queued_value);
                        ready.push(queued_id);
                    }
                }
            }
        }
        // Retry pending deletes whose target may have arrived.
        let deletes = std::mem::take(&mut self.pending_deletes);
        for target in deletes {
            self.delete(target);
        }
        true
    }

    /// Tombstones the element `id`. Unknown targets buffer until the
    /// insert arrives (causal delivery not required). Returns `true`
    /// when the tombstone is applied now.
    pub fn delete(&mut self, id: OpId) -> bool {
        match self.nodes.get_mut(&id) {
            Some(node) => {
                node.tombstone = true;
                true
            }
            None => {
                self.pending_deletes.push(id);
                false
            }
        }
    }

    /// Number of visible elements.
    pub fn len(&self) -> usize {
        self.nodes.values().filter(|n| !n.tombstone).count()
    }

    /// Whether no element is visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of operations buffered for missing parents/targets.
    pub fn pending_len(&self) -> usize {
        self.pending.values().map(Vec::len).sum::<usize>() + self.pending_deletes.len()
    }

    /// Iterates visible values in document order.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        let mut out = Vec::with_capacity(self.nodes.len());
        self.collect_visible(head(), &mut out);
        out.into_iter()
    }

    /// Renders to a `Vec`.
    pub fn to_vec(&self) -> Vec<T> {
        self.iter().collect()
    }

    /// The ids of visible elements in document order — the
    /// position-to-identity index editors need to translate indices
    /// into insert/delete targets.
    pub fn visible_ids(&self) -> Vec<OpId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        self.collect_visible_ids(head(), &mut out);
        out
    }

    fn collect_visible_ids(&self, parent: OpId, out: &mut Vec<OpId>) {
        let Some(kids) = self.children.get(&parent) else {
            return;
        };
        let mut sorted = kids.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        for child in sorted {
            if !self.nodes[&child].tombstone {
                out.push(child);
            }
            self.collect_visible_ids(child, out);
        }
    }

    fn integrate(&mut self, parent: OpId, id: OpId, value: T) {
        self.nodes.insert(
            id,
            Node {
                value,
                tombstone: false,
            },
        );
        self.children.entry(parent).or_default().push(id);
    }

    fn collect_visible(&self, parent: OpId, out: &mut Vec<T>) {
        let Some(kids) = self.children.get(&parent) else {
            return;
        };
        // Concurrent siblings order by descending id: a later (higher
        // id) insert-after lands closer to the parent, which is the RGA
        // rule that keeps typed characters in intuitive order.
        let mut sorted = kids.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        for child in sorted {
            let node = &self.nodes[&child];
            if !node.tombstone {
                out.push(node.value.clone());
            }
            self.collect_visible(child, out);
        }
    }
}

/// Convenience text façade over `Rga<char>`.
impl Rga<char> {
    /// Renders the visible characters as a `String`.
    pub fn to_text(&self) -> String {
        self.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ReplicaId;

    fn id(counter: u64, replica: u64) -> OpId {
        OpId::new(counter, ReplicaId(replica))
    }

    #[test]
    fn sequential_typing() {
        let mut text = Rga::new();
        let mut prev = Rga::<char>::HEAD;
        for (i, ch) in "hello".chars().enumerate() {
            let this = id(i as u64 + 1, 1);
            assert!(text.insert_after(prev, this, ch));
            prev = this;
        }
        assert_eq!(text.to_text(), "hello");
        assert_eq!(text.len(), 5);
    }

    #[test]
    fn delete_tombstones() {
        let mut text = Rga::new();
        text.insert_after(Rga::<char>::HEAD, id(1, 1), 'a');
        text.insert_after(id(1, 1), id(2, 1), 'b');
        assert!(text.delete(id(1, 1)));
        assert_eq!(text.to_text(), "b");
        assert_eq!(text.len(), 1);
        // Children of the tombstone keep their position.
        text.insert_after(id(1, 1), id(3, 1), 'c');
        assert_eq!(text.to_text(), "cb");
    }

    #[test]
    fn concurrent_inserts_same_parent_deterministic() {
        // Two replicas insert after HEAD concurrently; higher id first.
        let build = |order: [(u64, u64, char); 2]| {
            let mut t = Rga::new();
            for (c, r, ch) in order {
                t.insert_after(Rga::<char>::HEAD, id(c, r), ch);
            }
            t.to_text()
        };
        let ab = build([(1, 1, 'a'), (1, 2, 'b')]);
        let ba = build([(1, 2, 'b'), (1, 1, 'a')]);
        assert_eq!(ab, ba);
        assert_eq!(ab, "ba"); // replica 2's id is greater → first
    }

    #[test]
    fn out_of_order_delivery_buffers_until_parent() {
        let mut t = Rga::new();
        // Child arrives before parent.
        assert!(!t.insert_after(id(1, 1), id(2, 1), 'b'));
        assert_eq!(t.pending_len(), 1);
        assert_eq!(t.to_text(), "");
        assert!(t.insert_after(Rga::<char>::HEAD, id(1, 1), 'a'));
        assert_eq!(t.pending_len(), 0);
        assert_eq!(t.to_text(), "ab");
    }

    #[test]
    fn transitive_pending_chain_drains() {
        let mut t = Rga::new();
        t.insert_after(id(2, 1), id(3, 1), 'c');
        t.insert_after(id(1, 1), id(2, 1), 'b');
        assert_eq!(t.pending_len(), 2);
        t.insert_after(Rga::<char>::HEAD, id(1, 1), 'a');
        assert_eq!(t.pending_len(), 0);
        assert_eq!(t.to_text(), "abc");
    }

    #[test]
    fn delete_before_insert_buffers() {
        let mut t = Rga::new();
        assert!(!t.delete(id(1, 1)));
        t.insert_after(Rga::<char>::HEAD, id(1, 1), 'x');
        assert_eq!(t.to_text(), "");
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn duplicate_insert_ignored() {
        let mut t = Rga::new();
        assert!(t.insert_after(Rga::<char>::HEAD, id(1, 1), 'a'));
        assert!(!t.insert_after(Rga::<char>::HEAD, id(1, 1), 'a'));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn interleaved_edits_converge_across_replicas() {
        // Replica 1 types "hi", replica 2 concurrently types "yo" at the
        // front; deliver in different orders to two observers.
        let ops: Vec<(OpId, OpId, char)> = vec![
            (Rga::<char>::HEAD, id(1, 1), 'h'),
            (id(1, 1), id(2, 1), 'i'),
            (Rga::<char>::HEAD, id(1, 2), 'y'),
            (id(1, 2), id(2, 2), 'o'),
        ];
        let render = |order: Vec<usize>| {
            let mut t = Rga::new();
            for i in order {
                let (p, i_, ch) = ops[i];
                t.insert_after(p, i_, ch);
            }
            t.to_text()
        };
        let a = render(vec![0, 1, 2, 3]);
        let b = render(vec![2, 3, 0, 1]);
        let c = render(vec![3, 1, 2, 0]); // fully out of order
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a, "yohi"); // replica 2's ids sort first at the head
    }
}
