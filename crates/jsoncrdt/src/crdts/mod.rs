//! Companion CRDTs.
//!
//! The FabricCRDT prototype supports JSON CRDTs; the paper's conclusion
//! names counter, list, map and graph CRDTs as future work ("In future
//! work, we plan to extend FabricCRDT with more CRDTs"). This module
//! provides the classic state-based CRDTs — each a join-semilattice with a
//! commutative, associative, idempotent [`merge`](GCounter::merge) — which
//! the `fabriccrdt` core crate can register as additional mergeable value
//! types.

mod counters;
mod graph;
mod lww;
mod rga;
mod sets;

pub use counters::{GCounter, PnCounter};
pub use graph::{Edge, GraphCrdt};
pub use lww::LwwRegister;
pub use rga::Rga;
pub use sets::{GSet, OrSet};
