//! Last-writer-wins register.

use crate::clock::OpId;

/// A last-writer-wins register: the assignment with the greatest
/// [`OpId`] (Lamport counter, replica tie-break) wins the merge.
///
/// # Examples
///
/// ```
/// use fabriccrdt_jsoncrdt::{LwwRegister, OpId, ReplicaId};
///
/// let mut a = LwwRegister::new("old".to_owned(), OpId::new(1, ReplicaId(1)));
/// let b = LwwRegister::new("new".to_owned(), OpId::new(2, ReplicaId(1)));
/// a.merge(&b);
/// assert_eq!(a.value(), "new");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LwwRegister<T> {
    value: T,
    stamp: OpId,
}

impl<T: Clone> LwwRegister<T> {
    /// Creates a register holding `value` written at `stamp`.
    pub fn new(value: T, stamp: OpId) -> Self {
        LwwRegister { value, stamp }
    }

    /// The current value.
    pub fn value(&self) -> &T {
        &self.value
    }

    /// The stamp of the winning write.
    pub fn stamp(&self) -> OpId {
        self.stamp
    }

    /// Overwrites the value if `stamp` is newer than the current one.
    /// Returns `true` if the write won.
    pub fn assign(&mut self, value: T, stamp: OpId) -> bool {
        if stamp > self.stamp {
            self.value = value;
            self.stamp = stamp;
            true
        } else {
            false
        }
    }

    /// Joins another register's state: greatest stamp wins.
    pub fn merge(&mut self, other: &LwwRegister<T>) {
        if other.stamp > self.stamp {
            self.value = other.value.clone();
            self.stamp = other.stamp;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ReplicaId;

    fn stamp(counter: u64, replica: u64) -> OpId {
        OpId::new(counter, ReplicaId(replica))
    }

    #[test]
    fn newer_write_wins() {
        let mut r = LwwRegister::new(1, stamp(1, 1));
        assert!(r.assign(2, stamp(2, 1)));
        assert_eq!(*r.value(), 2);
    }

    #[test]
    fn older_write_loses() {
        let mut r = LwwRegister::new(1, stamp(5, 1));
        assert!(!r.assign(2, stamp(3, 1)));
        assert_eq!(*r.value(), 1);
    }

    #[test]
    fn equal_counter_resolved_by_replica() {
        let mut a = LwwRegister::new("a", stamp(1, 1));
        let b = LwwRegister::new("b", stamp(1, 2));
        a.merge(&b);
        assert_eq!(*a.value(), "b");
    }

    #[test]
    fn merge_commutative() {
        let a = LwwRegister::new("a", stamp(3, 1));
        let b = LwwRegister::new("b", stamp(2, 9));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn merge_idempotent() {
        let mut a = LwwRegister::new("a", stamp(3, 1));
        let snapshot = a.clone();
        a.merge(&snapshot);
        assert_eq!(a, snapshot);
    }
}
