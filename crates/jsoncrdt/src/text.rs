//! A collaborative plain-text document over the RGA sequence CRDT.
//!
//! §6 of the paper points at JSON CRDTs representing text documents
//! (via Kleppmann & Beresford); this module provides the ergonomic
//! index-based editing layer collaborative editors actually want:
//! `insert(position, text)` / `delete(position, len)` against a local
//! replica, producing [`TextOp`]s to ship to other replicas, which
//! apply them in any order and converge.
//!
//! # Examples
//!
//! ```
//! use fabriccrdt_jsoncrdt::text::TextDoc;
//! use fabriccrdt_jsoncrdt::ReplicaId;
//!
//! let mut alice = TextDoc::new(ReplicaId(1));
//! let mut bob = TextDoc::new(ReplicaId(2));
//!
//! let ops_a = alice.insert(0, "hello");
//! for op in &ops_a { bob.apply(op.clone()); }
//!
//! let ops_b = bob.insert(5, " world");
//! for op in &ops_b { alice.apply(op.clone()); }
//!
//! assert_eq!(alice.text(), "hello world");
//! assert_eq!(alice.text(), bob.text());
//! ```

use crate::clock::{LamportClock, OpId, ReplicaId};
use crate::crdts::Rga;

/// A replicable text operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TextOp {
    /// Insert `ch` with identity `id` after element `parent`
    /// ([`Rga::HEAD`] for the front).
    Insert {
        /// Element inserted after.
        parent: OpId,
        /// Identity of the new element.
        id: OpId,
        /// The character.
        ch: char,
    },
    /// Tombstone the element `id`.
    Delete {
        /// Identity of the deleted element.
        id: OpId,
    },
}

/// A text document replica.
#[derive(Debug, Clone)]
pub struct TextDoc {
    rga: Rga<char>,
    clock: LamportClock,
    /// Visible-position → element-id index, rebuilt lazily.
    cache: Option<Vec<OpId>>,
}

impl TextDoc {
    /// An empty document for this replica.
    pub fn new(replica: ReplicaId) -> Self {
        TextDoc {
            rga: Rga::new(),
            clock: LamportClock::new(replica),
            cache: None,
        }
    }

    /// The visible text.
    pub fn text(&self) -> String {
        self.rga.to_text()
    }

    /// Number of visible characters.
    pub fn len(&self) -> usize {
        self.rga.len()
    }

    /// Whether the document is empty.
    pub fn is_empty(&self) -> bool {
        self.rga.is_empty()
    }

    /// Inserts `text` so it appears starting at visible position
    /// `position` (clamped to the end). Returns the operations to ship
    /// to other replicas.
    pub fn insert(&mut self, position: usize, text: &str) -> Vec<TextOp> {
        let mut parent = self.id_before(position);
        let mut ops = Vec::new();
        for ch in text.chars() {
            let id = self.clock.tick();
            self.rga.insert_after(parent, id, ch);
            ops.push(TextOp::Insert { parent, id, ch });
            parent = id;
        }
        self.cache = None;
        ops
    }

    /// Deletes `len` visible characters starting at `position` (clamped
    /// to the document). Returns the operations to ship.
    pub fn delete(&mut self, position: usize, len: usize) -> Vec<TextOp> {
        let ids = self.visible_ids();
        let end = (position + len).min(ids.len());
        let targets: Vec<OpId> = ids
            .get(position..end)
            .map(|s| s.to_vec())
            .unwrap_or_default();
        let mut ops = Vec::new();
        for id in targets {
            self.rga.delete(id);
            ops.push(TextOp::Delete { id });
        }
        self.cache = None;
        ops
    }

    /// Applies a remote operation (any order; inserts buffer until their
    /// parent arrives).
    pub fn apply(&mut self, op: TextOp) {
        match op {
            TextOp::Insert { parent, id, ch } => {
                self.clock.observe(id);
                self.rga.insert_after(parent, id, ch);
            }
            TextOp::Delete { id } => {
                self.rga.delete(id);
            }
        }
        self.cache = None;
    }

    /// The element id preceding visible position `position`, or
    /// [`Rga::HEAD`] for position 0.
    fn id_before(&mut self, position: usize) -> OpId {
        if position == 0 {
            return Rga::<char>::HEAD;
        }
        let ids = self.visible_ids();
        let index = position.min(ids.len());
        if index == 0 {
            Rga::<char>::HEAD
        } else {
            ids[index - 1]
        }
    }

    fn visible_ids(&mut self) -> Vec<OpId> {
        if self.cache.is_none() {
            self.cache = Some(self.rga.visible_ids());
        }
        self.cache.clone().expect("cache just filled")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_editing() {
        let mut doc = TextDoc::new(ReplicaId(1));
        doc.insert(0, "hello");
        doc.insert(5, " world");
        assert_eq!(doc.text(), "hello world");
        doc.insert(5, ",");
        assert_eq!(doc.text(), "hello, world");
        doc.delete(0, 7);
        assert_eq!(doc.text(), "world");
        assert_eq!(doc.len(), 5);
    }

    #[test]
    fn insert_position_clamps() {
        let mut doc = TextDoc::new(ReplicaId(1));
        doc.insert(99, "end");
        assert_eq!(doc.text(), "end");
        doc.delete(1, 99);
        assert_eq!(doc.text(), "e");
    }

    #[test]
    fn replicas_converge_on_concurrent_edits() {
        let mut a = TextDoc::new(ReplicaId(1));
        let mut b = TextDoc::new(ReplicaId(2));
        let base = a.insert(0, "shared");
        for op in &base {
            b.apply(op.clone());
        }
        // Concurrent edits at both ends.
        let ops_a = a.insert(0, ">> ");
        let ops_b = b.insert(6, " <<");
        for op in ops_b {
            a.apply(op);
        }
        for op in ops_a {
            b.apply(op);
        }
        assert_eq!(a.text(), b.text());
        assert_eq!(a.text(), ">> shared <<");
    }

    #[test]
    fn concurrent_inserts_same_position_converge() {
        let mut a = TextDoc::new(ReplicaId(1));
        let mut b = TextDoc::new(ReplicaId(2));
        let ops_a = a.insert(0, "aaa");
        let ops_b = b.insert(0, "bbb");
        for op in ops_b {
            a.apply(op);
        }
        for op in ops_a {
            b.apply(op);
        }
        assert_eq!(a.text(), b.text());
        assert_eq!(a.len(), 6);
        // Each run stays contiguous (RGA's insert-after chains).
        assert!(a.text().contains("aaa"));
        assert!(a.text().contains("bbb"));
    }

    #[test]
    fn delete_replicates_and_concurrent_edits_survive() {
        let mut a = TextDoc::new(ReplicaId(1));
        let mut b = TextDoc::new(ReplicaId(2));
        for op in a.insert(0, "abc") {
            b.apply(op);
        }
        let del = a.delete(1, 1); // remove 'b'
        let ins = b.insert(3, "!"); // concurrent append
        for op in del {
            b.apply(op);
        }
        for op in ins {
            a.apply(op);
        }
        assert_eq!(a.text(), b.text());
        assert_eq!(a.text(), "ac!");
    }

    #[test]
    fn out_of_order_delivery_converges() {
        let mut a = TextDoc::new(ReplicaId(1));
        let ops = a.insert(0, "xyz");
        let mut b = TextDoc::new(ReplicaId(2));
        for op in ops.into_iter().rev() {
            b.apply(op);
        }
        assert_eq!(b.text(), "xyz");
    }
}
