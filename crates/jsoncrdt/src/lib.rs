//! JSON CRDTs and companion conflict-free replicated datatypes for the
//! FabricCRDT reproduction.
//!
//! This crate implements the datatype layer of *FabricCRDT* (Middleware
//! 2019):
//!
//! - [`json`]: a self-contained JSON value model with a recursive-descent
//!   parser and compact/pretty serializers (the reproduction deliberately
//!   avoids `serde_json`; JSON handling is a substrate the paper's system
//!   depends on, so it is built from scratch).
//! - [`clock`]: Lamport clocks and globally unique operation identifiers,
//!   as required by Section 5.2 of the paper.
//! - [`op`]: cursors, mutations and operations — the vocabulary of the
//!   Kleppmann & Beresford JSON CRDT (IEEE TPDS 2017) that the paper builds
//!   on.
//! - [`doc`]: the JSON CRDT document itself, including dependency-buffered
//!   operation application and **Algorithm 2** of the paper
//!   ([`JsonCrdt::merge_value`]), which folds a plain JSON object into the
//!   CRDT, plus the metadata-stripping conversion back to plain JSON.
//! - [`crdts`]: the additional CRDTs the paper lists as future work —
//!   G-Counter, PN-Counter, G-Set, OR-Set and LWW-Register — each with the
//!   usual join-semilattice `merge`.
//! - [`cache`]: a process-wide memo of decoded MergeTx payloads, so the
//!   N committing peers of a simulated network parse each distinct
//!   payload once instead of N times.
//!
//! # Quick example: merging two conflicting transactions (paper Listing 1/2)
//!
//! ```
//! use fabriccrdt_jsoncrdt::{json::Value, JsonCrdt, ReplicaId};
//!
//! let tx1: Value = r#"{"deviceID": "Device1", "readings": ["51.0"]}"#.parse()?;
//! let tx2: Value = r#"{"deviceID": "Device1", "readings": ["49.5"]}"#.parse()?;
//!
//! let mut doc = JsonCrdt::new(ReplicaId(1));
//! doc.merge_value(&tx1);
//! doc.merge_value(&tx2);
//!
//! let merged = doc.to_value();
//! assert_eq!(merged.get("deviceID").unwrap().as_str(), Some("Device1"));
//! assert_eq!(merged.get("readings").unwrap().as_list().unwrap().len(), 2);
//! # Ok::<(), fabriccrdt_jsoncrdt::json::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod clock;
pub mod crdts;
pub mod doc;
pub mod editor;
pub mod json;
pub mod op;
pub mod op_codec;
pub mod text;
pub mod work;

pub use clock::{LamportClock, OpId, ReplicaId, VersionVector};
pub use crdts::{GCounter, GSet, LwwRegister, OrSet, PnCounter};
pub use doc::JsonCrdt;
pub use editor::Editor;
pub use op::{Cursor, Deps, Mutation, Operation};
pub use work::WorkStats;
