//! Binary Merkle trees over transaction hashes.
//!
//! Fabric computes a block's data hash over the serialized transactions;
//! we use a conventional binary Merkle tree (odd nodes promoted) so that
//! the harness can also produce membership proofs in tests and examples.

use crate::sha256::{self, Digest};

/// Domain-separation prefixes so leaves can never collide with interior
/// nodes.
const LEAF_PREFIX: u8 = 0x00;
const NODE_PREFIX: u8 = 0x01;

/// A binary Merkle tree built over a list of byte strings.
///
/// # Examples
///
/// ```
/// use fabriccrdt_crypto::MerkleTree;
///
/// let tree = MerkleTree::from_leaves([b"tx1".as_slice(), b"tx2".as_slice()]);
/// let proof = tree.proof(0).expect("index in range");
/// assert!(MerkleTree::verify(tree.root(), b"tx1", 0, &proof));
/// assert!(!MerkleTree::verify(tree.root(), b"tx2", 0, &proof));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleTree {
    /// `levels[0]` holds the leaf digests; the last level holds the root.
    levels: Vec<Vec<Digest>>,
}

impl MerkleTree {
    /// Builds a tree from leaf payloads. An empty leaf set produces the
    /// digest of the empty string as root.
    pub fn from_leaves<I, B>(leaves: I) -> Self
    where
        I: IntoIterator<Item = B>,
        B: AsRef<[u8]>,
    {
        let leaf_digests: Vec<Digest> = leaves
            .into_iter()
            .map(|l| Self::hash_leaf(l.as_ref()))
            .collect();
        if leaf_digests.is_empty() {
            return MerkleTree {
                levels: vec![vec![sha256::digest(b"")]],
            };
        }
        let mut levels = vec![leaf_digests];
        while levels.last().expect("nonempty").len() > 1 {
            let prev = levels.last().expect("nonempty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                if pair.len() == 2 {
                    next.push(Self::hash_node(&pair[0], &pair[1]));
                } else {
                    // Odd node: promote unchanged.
                    next.push(pair[0]);
                }
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The Merkle root.
    pub fn root(&self) -> Digest {
        self.levels.last().expect("tree always has a root")[0]
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels[0].len()
    }

    /// Whether the tree was built from zero leaves.
    pub fn is_empty(&self) -> bool {
        // An empty tree is represented by the single sentinel root level.
        self.levels.len() == 1
            && self.levels[0].len() == 1
            && self.levels[0][0] == sha256::digest(b"")
    }

    /// Produces an inclusion proof (sibling path) for the leaf at `index`,
    /// or `None` if the index is out of range.
    pub fn proof(&self, index: usize) -> Option<Vec<ProofStep>> {
        if index >= self.len() || self.is_empty() {
            return None;
        }
        let mut path = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = idx ^ 1;
            if sibling < level.len() {
                path.push(ProofStep {
                    sibling: level[sibling],
                    sibling_on_left: sibling < idx,
                });
            }
            idx /= 2;
        }
        Some(path)
    }

    /// Verifies that `leaf` at position `index` is included in a tree with
    /// the given `root`, using a proof from [`MerkleTree::proof`].
    pub fn verify(root: Digest, leaf: &[u8], index: usize, proof: &[ProofStep]) -> bool {
        let mut acc = Self::hash_leaf(leaf);
        let mut idx = index;
        for step in proof {
            acc = if step.sibling_on_left {
                Self::hash_node(&step.sibling, &acc)
            } else {
                Self::hash_node(&acc, &step.sibling)
            };
            idx /= 2;
        }
        let _ = idx;
        acc == root
    }

    fn hash_leaf(data: &[u8]) -> Digest {
        let mut h = sha256::Sha256::new();
        h.update(&[LEAF_PREFIX]);
        h.update(data);
        h.finalize()
    }

    fn hash_node(left: &Digest, right: &Digest) -> Digest {
        let mut h = sha256::Sha256::new();
        h.update(&[NODE_PREFIX]);
        h.update(left);
        h.update(right);
        h.finalize()
    }
}

/// One step in a Merkle inclusion proof: the sibling digest and which side
/// it sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProofStep {
    /// Digest of the sibling node.
    pub sibling: Digest,
    /// `true` when the sibling is the left child.
    pub sibling_on_left: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("tx-{i}").into_bytes()).collect()
    }

    #[test]
    fn empty_tree_has_sentinel_root() {
        let t = MerkleTree::from_leaves(Vec::<Vec<u8>>::new());
        assert!(t.is_empty());
        assert_eq!(t.root(), sha256::digest(b""));
        assert_eq!(t.proof(0), None);
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let t = MerkleTree::from_leaves([b"only".as_slice()]);
        assert_eq!(t.len(), 1);
        let proof = t.proof(0).unwrap();
        assert!(proof.is_empty());
        assert!(MerkleTree::verify(t.root(), b"only", 0, &proof));
    }

    #[test]
    fn proofs_verify_for_all_leaves_all_sizes() {
        for n in 1..=17 {
            let data = leaves(n);
            let t = MerkleTree::from_leaves(&data);
            for (i, leaf) in data.iter().enumerate() {
                let proof = t.proof(i).unwrap();
                assert!(
                    MerkleTree::verify(t.root(), leaf, i, &proof),
                    "n={n} leaf={i}"
                );
            }
        }
    }

    #[test]
    fn wrong_leaf_fails_verification() {
        let data = leaves(8);
        let t = MerkleTree::from_leaves(&data);
        let proof = t.proof(3).unwrap();
        assert!(!MerkleTree::verify(t.root(), b"tx-4", 3, &proof));
    }

    #[test]
    fn tampered_proof_fails_verification() {
        let data = leaves(8);
        let t = MerkleTree::from_leaves(&data);
        let mut proof = t.proof(3).unwrap();
        proof[0].sibling[0] ^= 0xff;
        assert!(!MerkleTree::verify(t.root(), &data[3], 3, &proof));
    }

    #[test]
    fn root_changes_when_any_leaf_changes() {
        let a = MerkleTree::from_leaves(leaves(6));
        let mut modified = leaves(6);
        modified[5] = b"tx-5-tampered".to_vec();
        let b = MerkleTree::from_leaves(modified);
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn root_depends_on_leaf_order() {
        let a = MerkleTree::from_leaves([b"a".as_slice(), b"b".as_slice()]);
        let b = MerkleTree::from_leaves([b"b".as_slice(), b"a".as_slice()]);
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn leaf_and_node_domains_are_separated() {
        // The root of a 2-leaf tree must differ from a leaf whose content is
        // the concatenation of the two leaf digests.
        let t = MerkleTree::from_leaves([b"a".as_slice(), b"b".as_slice()]);
        let la = MerkleTree::from_leaves([b"a".as_slice()]).root();
        let lb = MerkleTree::from_leaves([b"b".as_slice()]).root();
        let mut concat = Vec::new();
        concat.extend_from_slice(&la);
        concat.extend_from_slice(&lb);
        let fake = MerkleTree::from_leaves([concat.as_slice()]).root();
        assert_ne!(t.root(), fake);
    }
}
