//! Hexadecimal encoding and decoding.

use std::error::Error;
use std::fmt;

/// Error returned by [`decode`] for malformed hexadecimal input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeHexError {
    /// The input length is odd.
    OddLength,
    /// A character outside `[0-9a-fA-F]` was found at the given byte offset.
    InvalidChar {
        /// Byte offset of the offending character.
        index: usize,
        /// The offending character.
        ch: char,
    },
}

impl fmt::Display for DecodeHexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeHexError::OddLength => write!(f, "hex string has odd length"),
            DecodeHexError::InvalidChar { index, ch } => {
                write!(f, "invalid hex character {ch:?} at index {index}")
            }
        }
    }
}

impl Error for DecodeHexError {}

/// Encodes `bytes` as a lowercase hexadecimal string.
///
/// # Examples
///
/// ```
/// assert_eq!(fabriccrdt_crypto::hex::encode(&[0xde, 0xad]), "dead");
/// ```
pub fn encode(bytes: &[u8]) -> String {
    const TABLE: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(TABLE[(b >> 4) as usize] as char);
        out.push(TABLE[(b & 0xf) as usize] as char);
    }
    out
}

/// Decodes a hexadecimal string into bytes.
///
/// Accepts both upper- and lowercase digits.
///
/// # Errors
///
/// Returns [`DecodeHexError`] if the input has odd length or contains a
/// non-hexadecimal character.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), fabriccrdt_crypto::hex::DecodeHexError> {
/// assert_eq!(fabriccrdt_crypto::hex::decode("DEad")?, vec![0xde, 0xad]);
/// # Ok(())
/// # }
/// ```
pub fn decode(s: &str) -> Result<Vec<u8>, DecodeHexError> {
    if !s.len().is_multiple_of(2) {
        return Err(DecodeHexError::OddLength);
    }
    fn nibble(c: u8, index: usize) -> Result<u8, DecodeHexError> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(DecodeHexError::InvalidChar {
                index,
                ch: c as char,
            }),
        }
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for i in (0..bytes.len()).step_by(2) {
        let hi = nibble(bytes[i], i)?;
        let lo = nibble(bytes[i + 1], i + 1)?;
        out.push((hi << 4) | lo);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_empty() {
        assert_eq!(encode(&[]), "");
    }

    #[test]
    fn roundtrip_all_bytes() {
        let all: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&all)).unwrap(), all);
    }

    #[test]
    fn decode_uppercase() {
        assert_eq!(decode("FF00AB").unwrap(), vec![0xff, 0x00, 0xab]);
    }

    #[test]
    fn decode_odd_length_fails() {
        assert_eq!(decode("abc"), Err(DecodeHexError::OddLength));
    }

    #[test]
    fn decode_invalid_char_fails_with_position() {
        assert_eq!(
            decode("a_"),
            Err(DecodeHexError::InvalidChar { index: 1, ch: '_' })
        );
    }

    #[test]
    fn error_display_is_informative() {
        let e = DecodeHexError::InvalidChar { index: 3, ch: 'z' };
        assert!(e.to_string().contains("index 3"));
    }
}
