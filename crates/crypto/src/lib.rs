//! Cryptographic substrate for the FabricCRDT reproduction.
//!
//! Hyperledger Fabric relies on SHA-256 block hashing, Merkle-style data
//! hashes, and x509/ECDSA identities for endorsement signatures. This crate
//! provides the equivalents used by the simulation:
//!
//! - [`sha256`]: a from-scratch FIPS-180-4 SHA-256 implementation, verified
//!   against the standard test vectors (see the `sha256` module tests).
//! - [`merkle`]: a binary Merkle tree over transaction hashes, used for
//!   block data hashes.
//! - [`identity`]: simulated identities and keyed-hash signatures. Real
//!   Fabric uses X.509 certificates and ECDSA; the *content* of the
//!   cryptosystem does not affect which transactions commit, so we
//!   substitute a deterministic keyed-hash MAC (documented in `DESIGN.md`).
//! - [`hex`]: hexadecimal encoding/decoding helpers.
//!
//! # Examples
//!
//! ```
//! use fabriccrdt_crypto::{sha256, hex};
//!
//! let digest = sha256::digest(b"abc");
//! assert_eq!(
//!     hex::encode(&digest),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hex;
pub mod identity;
pub mod merkle;
pub mod sha256;

pub use identity::{Identity, KeyPair, Signature};
pub use merkle::MerkleTree;
pub use sha256::{digest, Digest, Sha256};
