//! Simulated identities and signatures.
//!
//! Real Fabric uses X.509 certificates issued by per-organization membership
//! service providers (MSPs) and ECDSA signatures. For the reproduction the
//! only observable properties are: (1) each peer/client has a distinct
//! identity bound to an organization, (2) endorsements carry verifiable
//! signatures over the proposal response payload, (3) signing/verifying has
//! a latency cost (modelled in the simulator, not here). We substitute a
//! deterministic keyed-hash MAC: `sig = SHA-256(secret || msg)` with
//! `verify` recomputing under the registered secret. This keeps endorsement
//! validation real (bad signatures are rejected) without pulling in a
//! full signature scheme; the substitution is recorded in `DESIGN.md`.

use std::error::Error;
use std::fmt;

use crate::sha256::{self, Digest};

/// An identity: a display name plus the organization (MSP) it belongs to.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Identity {
    /// Human-readable identity name, e.g. `"peer0.org1"`.
    pub name: String,
    /// Organization / MSP identifier, e.g. `"org1"`.
    pub org: String,
}

impl Identity {
    /// Creates an identity.
    pub fn new(name: impl Into<String>, org: impl Into<String>) -> Self {
        Identity {
            name: name.into(),
            org: org.into(),
        }
    }
}

impl fmt::Display for Identity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.name, self.org)
    }
}

/// A signature produced by [`KeyPair::sign`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature(pub Digest);

/// Error returned when signature verification fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The identity whose signature failed to verify.
    pub signer: Identity,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "signature verification failed for {}", self.signer)
    }
}

impl Error for VerifyError {}

/// A deterministic keyed-hash "key pair" bound to an identity.
///
/// # Examples
///
/// ```
/// use fabriccrdt_crypto::{Identity, KeyPair};
///
/// let kp = KeyPair::derive(Identity::new("peer0", "org1"));
/// let sig = kp.sign(b"payload");
/// assert!(kp.verify(b"payload", &sig).is_ok());
/// assert!(kp.verify(b"tampered", &sig).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyPair {
    identity: Identity,
    secret: Digest,
}

impl KeyPair {
    /// Derives a key pair deterministically from the identity. Determinism
    /// keeps whole-network simulations reproducible from a single seed.
    pub fn derive(identity: Identity) -> Self {
        let mut h = sha256::Sha256::new();
        h.update(b"fabriccrdt-msp-v1:");
        h.update(identity.org.as_bytes());
        h.update(b"/");
        h.update(identity.name.as_bytes());
        let secret = h.finalize();
        KeyPair { identity, secret }
    }

    /// The identity this key pair signs for.
    pub fn identity(&self) -> &Identity {
        &self.identity
    }

    /// Signs `msg`.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        Signature(self.mac(msg))
    }

    /// Verifies `sig` over `msg`.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError`] when the signature does not match.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> Result<(), VerifyError> {
        if self.mac(msg) == sig.0 {
            Ok(())
        } else {
            Err(VerifyError {
                signer: self.identity.clone(),
            })
        }
    }

    fn mac(&self, msg: &[u8]) -> Digest {
        let mut h = sha256::Sha256::new();
        h.update(&self.secret);
        h.update(msg);
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_is_deterministic() {
        let a = KeyPair::derive(Identity::new("peer0", "org1"));
        let b = KeyPair::derive(Identity::new("peer0", "org1"));
        assert_eq!(a, b);
        assert_eq!(a.sign(b"m"), b.sign(b"m"));
    }

    #[test]
    fn different_identities_have_different_keys() {
        let a = KeyPair::derive(Identity::new("peer0", "org1"));
        let b = KeyPair::derive(Identity::new("peer0", "org2"));
        assert_ne!(a.sign(b"m"), b.sign(b"m"));
    }

    #[test]
    fn name_org_confusion_resists() {
        // ("ab", "c") must not collide with ("a", "bc").
        let a = KeyPair::derive(Identity::new("ab", "c"));
        let b = KeyPair::derive(Identity::new("a", "bc"));
        assert_ne!(a.sign(b"m"), b.sign(b"m"));
    }

    #[test]
    fn verify_accepts_valid_signature() {
        let kp = KeyPair::derive(Identity::new("client1", "org3"));
        let sig = kp.sign(b"proposal-response");
        assert!(kp.verify(b"proposal-response", &sig).is_ok());
    }

    #[test]
    fn verify_rejects_tampered_message() {
        let kp = KeyPair::derive(Identity::new("client1", "org3"));
        let sig = kp.sign(b"proposal-response");
        let err = kp.verify(b"proposal-response!", &sig).unwrap_err();
        assert_eq!(err.signer, Identity::new("client1", "org3"));
    }

    #[test]
    fn verify_rejects_foreign_signature() {
        let kp1 = KeyPair::derive(Identity::new("peer0", "org1"));
        let kp2 = KeyPair::derive(Identity::new("peer1", "org1"));
        let sig = kp1.sign(b"msg");
        assert!(kp2.verify(b"msg", &sig).is_err());
    }

    #[test]
    fn identity_display() {
        assert_eq!(Identity::new("peer0", "org1").to_string(), "peer0@org1");
    }
}
