//! Pipeline-level equivalence of the ordering backends:
//!
//! - the explicit [`SingleOrderer`] backend is bit-for-bit identical to
//!   the default constructor (the trait seam adds nothing);
//! - the Raft backend with zero faults and zero-latency consensus
//!   links replays the default backend bit-for-bit (same records, same
//!   ledger bytes) — consensus collapses to the single orderer when
//!   nothing fails;
//! - under a leader-kill schedule the pipeline still commits every
//!   transaction, with at least one re-election on the books.

use std::sync::Arc;

use fabriccrdt_fabric::chaincode::{Chaincode, ChaincodeError, ChaincodeRegistry, ChaincodeStub};
use fabriccrdt_fabric::config::{CrashSpec, PipelineConfig, RaftConfig};
use fabriccrdt_fabric::metrics::RunMetrics;
use fabriccrdt_fabric::peer::PeerSnapshot;
use fabriccrdt_fabric::pipeline::ValidationPipeline;
use fabriccrdt_fabric::simulation::{Simulation, SingleOrderer, TxRequest};
use fabriccrdt_fabric::validator::FabricValidator;
use fabriccrdt_ordering::RaftOrderingBackend;
use fabriccrdt_sim::gen::{self, Gen};
use fabriccrdt_sim::latency::LatencyModel;
use fabriccrdt_sim::time::SimTime;

/// Write-only chaincode: args = [key, value].
struct WriteOnly;

impl Chaincode for WriteOnly {
    fn name(&self) -> &str {
        "writeonly"
    }

    fn invoke(&self, stub: &mut ChaincodeStub<'_>, args: &[String]) -> Result<(), ChaincodeError> {
        stub.put_state(&args[0], args[1].clone().into_bytes());
        Ok(())
    }
}

/// Read-modify-write chaincode: args = [key, value]. Conflicting reads
/// make MVCC outcomes order-sensitive — the workload the conflict-graph
/// finalize schedule must not perturb.
struct Rmw;

impl Chaincode for Rmw {
    fn name(&self) -> &str {
        "rmw"
    }

    fn invoke(&self, stub: &mut ChaincodeStub<'_>, args: &[String]) -> Result<(), ChaincodeError> {
        stub.get_state(&args[0]);
        stub.put_state(&args[0], args[1].clone().into_bytes());
        Ok(())
    }
}

fn registry() -> ChaincodeRegistry {
    let mut reg = ChaincodeRegistry::new();
    reg.deploy(Arc::new(WriteOnly));
    reg.deploy(Arc::new(Rmw));
    reg
}

fn schedule(n: usize, rate_tps: f64) -> Vec<(SimTime, TxRequest)> {
    (0..n)
        .map(|i| {
            (
                SimTime::from_secs_f64(i as f64 / rate_tps),
                TxRequest::new("writeonly", vec![format!("k{i}"), format!("v{i}")]),
            )
        })
        .collect()
}

#[test]
fn explicit_single_orderer_matches_default_bitwise() {
    let config = PipelineConfig::paper(10, 42);

    let mut default_sim = Simulation::new(config.clone(), FabricValidator::new(), registry());
    let default_metrics = default_sim.run(schedule(120, 250.0));

    let backend = Box::new(SingleOrderer::from_config(&config));
    let mut seam_sim =
        Simulation::with_ordering(config, FabricValidator::new(), registry(), backend);
    let seam_metrics = seam_sim.run(schedule(120, 250.0));

    assert_eq!(default_metrics.records, seam_metrics.records);
    assert_eq!(default_metrics.end_time, seam_metrics.end_time);
    assert_eq!(
        default_metrics.blocks_committed,
        seam_metrics.blocks_committed
    );
    let a = default_sim.peer().snapshot();
    let b = seam_sim.peer().snapshot();
    assert_eq!(a.state, b.state, "world-state bytes diverged");
    assert_eq!(a.chain, b.chain, "chain bytes diverged");
}

#[test]
fn faultless_raft_matches_single_orderer_bitwise() {
    let mut config = PipelineConfig::paper(10, 7);
    // Zero-latency consensus links: replication round-trips complete
    // within the cut instant, so blocks reach the delivery layer at
    // exactly the moments the single orderer releases them and the
    // pipeline's PRNG draw order is untouched.
    let mut raft = RaftConfig::calibrated(5);
    raft.link = LatencyModel::zero();
    config.ordering = Some(raft);

    let mut reference = Simulation::new(config.clone(), FabricValidator::new(), registry());
    let reference_metrics = reference.run(schedule(150, 300.0));

    let backend = Box::new(RaftOrderingBackend::new(&config));
    let mut raft_sim =
        Simulation::with_ordering(config, FabricValidator::new(), registry(), backend);
    let raft_metrics = raft_sim.run(schedule(150, 300.0));

    assert_eq!(reference_metrics.records, raft_metrics.records);
    assert_eq!(reference_metrics.end_time, raft_metrics.end_time);
    assert_eq!(
        reference_metrics.blocks_committed,
        raft_metrics.blocks_committed
    );
    let a = reference.peer().snapshot();
    let b = raft_sim.peer().snapshot();
    assert_eq!(a.state, b.state, "world-state bytes diverged");
    assert_eq!(a.chain, b.chain, "chain bytes diverged");

    let ordering = raft_metrics.ordering.expect("raft backend reports metrics");
    assert_eq!(ordering.elections_started, 0, "no elections without faults");
    assert_eq!(ordering.leader_changes, 0);
    assert_eq!(ordering.final_term, 1);
    assert_eq!(
        ordering.commit_latency.len() as u64,
        raft_metrics.blocks_committed
    );
}

#[test]
fn leader_kill_recovers_without_losing_transactions() {
    let mut config = PipelineConfig::paper(10, 11);
    let mut raft = RaftConfig::calibrated(5);
    // Kill the pre-elected leader mid-run; bring it back later.
    raft.faults.crashes.push(CrashSpec {
        peer: 0,
        at: SimTime::from_millis(400),
        restart_at: SimTime::from_millis(1400),
    });
    config.ordering = Some(raft);

    let backend = Box::new(RaftOrderingBackend::new(&config));
    let mut sim = Simulation::with_ordering(config, FabricValidator::new(), registry(), backend);
    let metrics = sim.run(schedule(300, 300.0));

    assert_eq!(metrics.submitted(), 300);
    assert_eq!(
        metrics.successful(),
        300,
        "failover lost or failed transactions"
    );
    let ordering = metrics.ordering.expect("raft backend reports metrics");
    assert!(
        ordering.elections_started >= 1,
        "the leader kill must force a re-election"
    );
    assert!(ordering.leader_changes >= 1);
    assert!(
        ordering.submission_retries >= 1,
        "the leaderless window must trigger client retries"
    );
    sim.peer()
        .chain()
        .verify_integrity()
        .expect("chain verifies");
}

/// Conflict-graph finalize sweep (Raft half; the gossip half lives in
/// `crates/gossip/tests/dissemination.rs`): across 50 random Raft
/// crash/failover schedules and a workload mixing hot-key contention
/// with disjoint writes, the parallel pipeline replays the sequential
/// path bit for bit — same records, same simulated end time, same
/// ledger bytes.
#[test]
fn parallel_finalize_matches_sequential_under_raft_faults() {
    gen::cases(50, |g| {
        let seed = g.u64();
        let schedule = arb_mixed_schedule(g);
        let block_size = g.size(5, 15);
        let workers = g.size(2, 8);

        let mut config = PipelineConfig::paper(block_size, seed);
        let mut raft = RaftConfig::calibrated(5);
        if g.flip() {
            let at = SimTime::from_millis(g.range(100, 600));
            raft.faults.crashes.push(CrashSpec {
                peer: g.range(0, 5) as usize,
                at,
                restart_at: at + SimTime::from_millis(g.range(100, 800)),
            });
        }
        config.ordering = Some(raft);

        let run = |pipeline: ValidationPipeline| -> (RunMetrics, PeerSnapshot) {
            let cfg = config.clone().with_validation(pipeline);
            let backend = Box::new(RaftOrderingBackend::new(&cfg));
            let mut sim =
                Simulation::with_ordering(cfg, FabricValidator::new(), registry(), backend);
            sim.seed_state("hot", b"0".to_vec());
            let metrics = sim.run(schedule.clone());
            let snapshot = sim.peer().snapshot();
            (metrics, snapshot)
        };

        let (seq_metrics, seq_snapshot) = run(ValidationPipeline::Sequential);
        let (par_metrics, par_snapshot) = run(ValidationPipeline::parallel(workers));
        assert_eq!(
            seq_metrics, par_metrics,
            "seed {seed}: metrics diverged at {workers} workers"
        );
        assert_eq!(
            seq_snapshot.state, par_snapshot.state,
            "seed {seed}: world state diverged at {workers} workers"
        );
        assert_eq!(
            seq_snapshot.chain, par_snapshot.chain,
            "seed {seed}: chain diverged at {workers} workers"
        );
        // The cross-block pipelined path (pre-validate block N+1 while
        // block N finalizes) must be equally invisible under ordering
        // faults: failovers reshuffle block boundaries, and pipelined
        // pre-validation must still land on the same codes and times.
        let (pip_metrics, pip_snapshot) = run(ValidationPipeline::pipelined(workers));
        assert_eq!(
            seq_metrics, pip_metrics,
            "seed {seed}: metrics diverged under pipelining at {workers} workers"
        );
        assert_eq!(
            seq_snapshot.state, pip_snapshot.state,
            "seed {seed}: world state diverged under pipelining"
        );
        assert_eq!(
            seq_snapshot.chain, pip_snapshot.chain,
            "seed {seed}: chain diverged under pipelining"
        );
    });
}

/// Hot-key RMW conflicts mixed with disjoint writes, at a random rate.
fn arb_mixed_schedule(g: &mut Gen) -> Vec<(SimTime, TxRequest)> {
    let n = g.size(40, 120);
    let rate = g.f64_in(150.0, 350.0);
    (0..n)
        .map(|i| {
            let request = if g.prob(0.4) {
                TxRequest::new("rmw", vec!["hot".into(), format!("v{i}")])
            } else {
                TxRequest::new("writeonly", vec![format!("k{i}"), format!("v{i}")])
            };
            (SimTime::from_secs_f64(i as f64 / rate), request)
        })
        .collect()
}
