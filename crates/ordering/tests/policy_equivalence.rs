//! Ordering-policy equivalence and early-abort failover semantics:
//!
//! - 50-seed sweep: `OrderingPolicy::Fifo` is byte-identical to the
//!   seed pipeline (no policy configured) and `OrderingPolicy::Reorder`
//!   is byte-identical to the legacy `with_reordering()` switch — on
//!   both the single-orderer and Raft backends, under random Raft
//!   crash/failover schedules.
//! - Directed regression: early aborts from a Raft leader that crashes
//!   between block cut and entry commit are surfaced exactly once after
//!   failover — never double-counted, never silently lost — across a
//!   fine grid of crash times straddling the replication window.
//! - The adaptive policy survives failover: every transaction still
//!   receives exactly one verdict and the policy counters survive the
//!   leader handoff.

use std::collections::BTreeSet;
use std::sync::Arc;

use fabriccrdt_crypto::Identity;
use fabriccrdt_fabric::chaincode::{Chaincode, ChaincodeError, ChaincodeRegistry, ChaincodeStub};
use fabriccrdt_fabric::config::{CrashSpec, OrderingPolicy, PipelineConfig, RaftConfig};
use fabriccrdt_fabric::metrics::RunMetrics;
use fabriccrdt_fabric::peer::PeerSnapshot;
use fabriccrdt_fabric::simulation::{Simulation, TxRequest};
use fabriccrdt_fabric::validator::FabricValidator;
use fabriccrdt_ledger::rwset::ReadWriteSet;
use fabriccrdt_ledger::transaction::{Transaction, TxId};
use fabriccrdt_ledger::version::Height;
use fabriccrdt_ordering::{RaftCluster, RaftOrderingBackend};
use fabriccrdt_sim::gen::{self, Gen};
use fabriccrdt_sim::time::SimTime;

/// Write-only chaincode: args = [key, value].
struct WriteOnly;

impl Chaincode for WriteOnly {
    fn name(&self) -> &str {
        "writeonly"
    }

    fn invoke(&self, stub: &mut ChaincodeStub<'_>, args: &[String]) -> Result<(), ChaincodeError> {
        stub.put_state(&args[0], args[1].clone().into_bytes());
        Ok(())
    }
}

/// Read-modify-write chaincode: args = [key, value].
struct Rmw;

impl Chaincode for Rmw {
    fn name(&self) -> &str {
        "rmw"
    }

    fn invoke(&self, stub: &mut ChaincodeStub<'_>, args: &[String]) -> Result<(), ChaincodeError> {
        stub.get_state(&args[0]);
        stub.put_state(&args[0], args[1].clone().into_bytes());
        Ok(())
    }
}

fn registry() -> ChaincodeRegistry {
    let mut reg = ChaincodeRegistry::new();
    reg.deploy(Arc::new(WriteOnly));
    reg.deploy(Arc::new(Rmw));
    reg
}

/// Hot-key RMW conflicts mixed with disjoint writes, at a random rate.
fn arb_mixed_schedule(g: &mut Gen) -> Vec<(SimTime, TxRequest)> {
    let n = g.size(40, 100);
    let rate = g.f64_in(150.0, 350.0);
    (0..n)
        .map(|i| {
            let request = if g.prob(0.4) {
                TxRequest::new("rmw", vec!["hot".into(), format!("v{i}")])
            } else {
                TxRequest::new("writeonly", vec![format!("k{i}"), format!("v{i}")])
            };
            (SimTime::from_secs_f64(i as f64 / rate), request)
        })
        .collect()
}

/// A random Raft config, with a crash/failover on half the cases.
fn arb_raft(g: &mut Gen) -> RaftConfig {
    let mut raft = RaftConfig::calibrated(5);
    if g.flip() {
        let at = SimTime::from_millis(g.range(100, 600));
        raft.faults.crashes.push(CrashSpec {
            peer: g.range(0, 5) as usize,
            at,
            restart_at: at + SimTime::from_millis(g.range(100, 800)),
        });
    }
    raft
}

fn run_single(
    config: PipelineConfig,
    schedule: &[(SimTime, TxRequest)],
) -> (RunMetrics, PeerSnapshot) {
    let mut sim = Simulation::new(config, FabricValidator::new(), registry());
    sim.seed_state("hot", b"0".to_vec());
    let metrics = sim.run(schedule.to_vec());
    let snapshot = sim.peer().snapshot();
    (metrics, snapshot)
}

fn run_raft(
    config: PipelineConfig,
    schedule: &[(SimTime, TxRequest)],
) -> (RunMetrics, PeerSnapshot) {
    let backend = Box::new(RaftOrderingBackend::new(&config));
    let mut sim = Simulation::with_ordering(config, FabricValidator::new(), registry(), backend);
    sim.seed_state("hot", b"0".to_vec());
    let metrics = sim.run(schedule.to_vec());
    let snapshot = sim.peer().snapshot();
    (metrics, snapshot)
}

fn assert_bitwise(
    label: &str,
    seed: u64,
    a: &(RunMetrics, PeerSnapshot),
    b: &(RunMetrics, PeerSnapshot),
) {
    assert_eq!(a.0, b.0, "seed {seed}: {label}: metrics diverged");
    assert_eq!(
        a.1.state, b.1.state,
        "seed {seed}: {label}: world state diverged"
    );
    assert_eq!(a.1.chain, b.1.chain, "seed {seed}: {label}: chain diverged");
}

/// 50-seed sweep (acceptance gate): the explicit `Fifo` policy replays
/// the seed pipeline bit for bit, and the explicit `Reorder` policy
/// replays the legacy `with_reordering()` switch bit for bit — on both
/// backends, with Raft fault schedules in the mix.
#[test]
fn fifo_and_reorder_policies_match_legacy_bitwise() {
    gen::cases(50, |g| {
        let seed = g.u64();
        let schedule = arb_mixed_schedule(g);
        let block_size = g.size(5, 15);
        let base = PipelineConfig::paper(block_size, seed);
        let raft = arb_raft(g);

        // Single orderer.
        let legacy_fifo = run_single(base.clone(), &schedule);
        let policy_fifo = run_single(
            base.clone().with_ordering_policy(OrderingPolicy::Fifo),
            &schedule,
        );
        assert_bitwise("single/fifo", seed, &legacy_fifo, &policy_fifo);

        let legacy_reorder = run_single(base.clone().with_reordering(), &schedule);
        let policy_reorder = run_single(
            base.clone().with_ordering_policy(OrderingPolicy::Reorder),
            &schedule,
        );
        assert_bitwise("single/reorder", seed, &legacy_reorder, &policy_reorder);

        // Raft backend under the (possibly faulty) schedule.
        let raft_base = base.with_raft_config(raft);
        let legacy_fifo = run_raft(raft_base.clone(), &schedule);
        let policy_fifo = run_raft(
            raft_base.clone().with_ordering_policy(OrderingPolicy::Fifo),
            &schedule,
        );
        assert_bitwise("raft/fifo", seed, &legacy_fifo, &policy_fifo);

        let legacy_reorder = run_raft(raft_base.clone().with_reordering(), &schedule);
        let policy_reorder = run_raft(
            raft_base.with_ordering_policy(OrderingPolicy::Reorder),
            &schedule,
        );
        assert_bitwise("raft/reorder", seed, &legacy_reorder, &policy_reorder);
    });
}

fn rmw_tx(nonce: u64, key: &str) -> Transaction {
    let client = Identity::new("client", "org1");
    let mut rwset = ReadWriteSet::new();
    rwset.reads.record(key, Some(Height::new(1, 0)));
    rwset.writes.put(key.to_string(), vec![nonce as u8]);
    Transaction {
        id: TxId::derive(&client, nonce, "cc"),
        client,
        chaincode: "cc".into(),
        rwset,
        endorsements: Vec::new(),
    }
}

/// Directed regression (leader crash mid-batch): an RMW clique is cut
/// and reordered by the pre-elected leader, which crashes at a time
/// swept across the cut → replication → commit window. Whether the
/// entry was truncated (re-delivered by the successor) or preserved,
/// every transaction must surface exactly once — as a block commit or
/// an early abort, never both, never twice, never neither.
#[test]
fn leader_crash_mid_batch_surfaces_each_early_abort_exactly_once() {
    // The clique arrives by 5 ms (cut instant); calibrated ~1 ms links
    // put entry commit near 7 ms. 200 µs steps from before the cut to
    // well past the commit cover truncation and preservation both.
    for crash_at_us in (4_000..=9_000).step_by(200) {
        let mut raft = RaftConfig::calibrated(5);
        raft.faults.crashes.push(CrashSpec {
            peer: 0,
            at: SimTime::from_micros(crash_at_us),
            restart_at: SimTime::from_millis(700),
        });
        let config = PipelineConfig::paper(5, 17)
            .with_raft_config(raft)
            .with_ordering_policy(OrderingPolicy::Reorder);
        let mut cluster = RaftCluster::new(&config);

        // One 5-transaction RMW clique on a single key: reordering must
        // abort all but one member, whoever ends up cutting the block.
        let clique_ids: Vec<TxId> = (0..5)
            .map(|n| {
                let tx = rmw_tx(n, "hot");
                let id = tx.id;
                cluster.enqueue(SimTime::from_millis(1 + n), tx);
                id
            })
            .collect();
        // A post-recovery wave on disjoint keys: the cluster must still
        // make progress after the failover (and the restart).
        let wave_ids: Vec<TxId> = (10..15)
            .map(|n| {
                let tx = rmw_tx(n, &format!("w{n}"));
                let id = tx.id;
                cluster.enqueue(SimTime::from_millis(1000) + SimTime::from_millis(n), tx);
                id
            })
            .collect();

        // Step the cluster to quiescence, draining surfaced aborts at
        // every step so a double-surface across steps is visible too.
        let mut committed: Vec<TxId> = Vec::new();
        let mut aborted: Vec<TxId> = Vec::new();
        while let Some(at) = cluster.next_event_time() {
            for (_, block) in cluster.advance(at) {
                committed.extend(block.transactions.iter().map(|t| t.id));
            }
            aborted.extend(cluster.take_early_aborted().iter().map(|t| t.id));
        }

        // Exactly-once accounting over commits ∪ aborts.
        let mut seen: BTreeSet<TxId> = BTreeSet::new();
        for id in committed.iter().chain(&aborted) {
            assert!(
                seen.insert(*id),
                "crash at {crash_at_us} µs: transaction surfaced twice"
            );
        }
        let submitted: BTreeSet<TxId> = clique_ids.iter().chain(&wave_ids).copied().collect();
        assert_eq!(
            seen, submitted,
            "crash at {crash_at_us} µs: lost or invented transactions"
        );

        // The clique commits at least one member and aborts the rest;
        // the disjoint recovery wave commits in full.
        let clique_committed = committed
            .iter()
            .filter(|id| clique_ids.contains(id))
            .count();
        assert!(
            clique_committed >= 1,
            "crash at {crash_at_us} µs: the whole clique was aborted"
        );
        assert!(
            aborted.iter().all(|id| clique_ids.contains(id)),
            "crash at {crash_at_us} µs: aborted a disjoint-key transaction"
        );
        for id in &wave_ids {
            assert!(
                committed.contains(id),
                "crash at {crash_at_us} µs: recovery wave transaction lost"
            );
        }
    }
}

/// The adaptive policy under a leader crash: the run completes, every
/// transaction gets exactly one verdict, and the policy counters
/// survive the handoff (the successor inherits the master tracker).
#[test]
fn adaptive_policy_survives_failover() {
    let mut raft = RaftConfig::calibrated(5);
    raft.faults.crashes.push(CrashSpec {
        peer: 0,
        at: SimTime::from_millis(300),
        restart_at: SimTime::from_millis(1200),
    });
    let config = PipelineConfig::paper(10, 23)
        .with_raft_config(raft)
        .with_adaptive_ordering();

    let schedule: Vec<(SimTime, TxRequest)> = (0..200)
        .map(|i| {
            let request = if i % 2 == 0 {
                TxRequest::new("rmw", vec!["hot".into(), format!("v{i}")])
            } else {
                TxRequest::new("writeonly", vec![format!("k{i}"), format!("v{i}")])
            };
            (SimTime::from_secs_f64(i as f64 / 250.0), request)
        })
        .collect();

    let backend = Box::new(RaftOrderingBackend::new(&config));
    let mut sim = Simulation::with_ordering(config, FabricValidator::new(), registry(), backend);
    sim.seed_state("hot", b"0".to_vec());
    let metrics = sim.run(schedule);

    assert_eq!(metrics.submitted(), 200);
    assert_eq!(
        metrics.successful() + metrics.failed(),
        200,
        "failover left transactions without a verdict"
    );
    let ordering = metrics.ordering.as_ref().expect("raft metrics");
    assert!(
        ordering.leader_changes >= 1,
        "the crash must force failover"
    );
    let policy = metrics
        .conflict_policy
        .expect("adaptive run reports policy counters");
    // Cut attempts truncated by the failover never commit, so decisions
    // can exceed committed blocks — but never fall short.
    assert!(
        policy.batches_reordered + policy.batches_fifo >= metrics.blocks_committed,
        "committed blocks without a recorded policy decision"
    );
    sim.peer()
        .chain()
        .verify_integrity()
        .expect("chain verifies");
}
