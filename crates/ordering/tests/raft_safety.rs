//! Raft safety properties over randomized, seeded crash/partition
//! schedules (driven by the deterministic in-repo generator,
//! `fabriccrdt_sim::gen`):
//!
//! (a) at most one leader per term;
//! (b) the committed transaction sequence has no loss and no
//!     duplication — every submitted transaction is ordered exactly
//!     once, whatever leaders crash mid-batch;
//! (c) replicas converge: every node's committed log prefix holds
//!     byte-identical blocks, the emitted chain hash-links correctly,
//!     and replaying it through a peer yields the same world state as
//!     the single-orderer backend run on the same workload (with a
//!     fault-free schedule the block stream itself is bit-identical).

use std::collections::HashSet;

use fabriccrdt_crypto::{Identity, KeyPair};
use fabriccrdt_fabric::config::{CrashSpec, PartitionSpec, PipelineConfig, RaftConfig};
use fabriccrdt_fabric::orderer::Orderer;
use fabriccrdt_fabric::peer::Peer;
use fabriccrdt_fabric::policy::EndorsementPolicy;
use fabriccrdt_fabric::validator::FabricValidator;
use fabriccrdt_ledger::block::Block;
use fabriccrdt_ledger::chain::Blockchain;
use fabriccrdt_ledger::rwset::ReadWriteSet;
use fabriccrdt_ledger::transaction::{Endorsement, Transaction};
use fabriccrdt_ledger::TxId;
use fabriccrdt_ordering::RaftCluster;
use fabriccrdt_sim::gen::{self, Gen};
use fabriccrdt_sim::time::SimTime;

const NODES: usize = 5;

fn policy() -> EndorsementPolicy {
    EndorsementPolicy::all_of(vec!["org1".to_string()])
}

/// A properly endorsed blind write to a distinct key, so every
/// transaction commits and the final world state is insensitive to
/// block boundaries.
fn endorsed_tx(nonce: u64) -> Transaction {
    let client = Identity::new("client", "org1");
    let mut rwset = ReadWriteSet::new();
    rwset
        .writes
        .put(format!("k{nonce}"), nonce.to_le_bytes().to_vec());
    let mut tx = Transaction {
        id: TxId::derive(&client, nonce, "cc"),
        client,
        chaincode: "cc".into(),
        rwset,
        endorsements: Vec::new(),
    };
    let peer = KeyPair::derive(Identity::new("peer0", "org1"));
    tx.endorsements.push(Endorsement {
        endorser: peer.identity().clone(),
        signature: peer.sign(&tx.response_payload()),
    });
    tx
}

/// A randomized fault schedule over the cluster: up to two crashes
/// (possibly of the initial leader, node 0) and up to one minority
/// partition, all inside the traffic window.
fn random_faults(g: &mut Gen, raft: &mut RaftConfig, horizon_ms: u64) {
    for _ in 0..g.size(0, 2) {
        let at = SimTime::from_millis(g.range(1, horizon_ms));
        let down_ms = g.range(50, 800);
        raft.faults.crashes.push(CrashSpec {
            peer: g.range(0, NODES as u64) as usize,
            at,
            restart_at: at + SimTime::from_millis(down_ms),
        });
    }
    if g.flip() {
        let at = SimTime::from_millis(g.range(1, horizon_ms));
        let mut minority: Vec<usize> = Vec::new();
        for node in 0..NODES {
            if minority.len() < 2 && g.flip() {
                minority.push(node);
            }
        }
        if !minority.is_empty() {
            raft.faults.partitions.push(PartitionSpec {
                at,
                heal_at: at + SimTime::from_millis(g.range(100, 900)),
                minority,
            });
        }
    }
    if g.prob(0.3) {
        raft.faults.link.drop = g.f64_in(0.0, 0.15);
    }
}

/// Replays a block stream through a committing peer.
fn replay(blocks: &[Block]) -> Peer<FabricValidator> {
    let mut peer = Peer::new(FabricValidator::new(), policy());
    for block in blocks {
        let staged = peer.process_block(block.clone());
        peer.commit(staged).expect("blocks arrive in chain order");
    }
    peer
}

/// The committed key → value map, without version heights (those
/// legitimately shift when failover moves block boundaries).
fn committed_values(peer: &Peer<FabricValidator>) -> Vec<(String, Vec<u8>)> {
    peer.state()
        .iter()
        .map(|(k, v)| (k.clone(), v.value.clone()))
        .collect()
}

#[test]
fn safety_over_seeded_fault_schedules() {
    gen::cases(100, |g| {
        let seed = g.u64();
        let n_txs = g.size(40, 80);
        let rate_tps = 200.0;
        let horizon_ms = (n_txs as f64 / rate_tps * 1000.0) as u64 + 500;

        let mut raft = RaftConfig::calibrated(NODES);
        // Half the cases boot cold (first election races from term 0).
        if g.flip() {
            raft.preelected_leader = None;
        }
        random_faults(g, &mut raft, horizon_ms);
        let fault_free = raft.faults.is_quiescent();

        let mut config = PipelineConfig::paper(g.size(5, 25), seed);
        config.ordering = Some(raft);

        let schedule: Vec<(SimTime, Transaction)> = (0..n_txs)
            .map(|i| {
                (
                    SimTime::from_secs_f64(i as f64 / rate_tps),
                    endorsed_tx(i as u64),
                )
            })
            .collect();

        let mut cluster = RaftCluster::new(&config);
        for (at, tx) in &schedule {
            cluster.enqueue(*at, tx.clone());
        }
        cluster.drain();

        // (a) At most one leader per term.
        let mut terms_won = HashSet::new();
        for event in cluster.leadership() {
            assert!(
                terms_won.insert(event.term),
                "seed {seed}: two leaders won term {}",
                event.term
            );
        }

        // (b) No loss, no duplication: every submitted transaction is
        // ordered exactly once.
        let emitted: Vec<Block> = cluster.emitted().iter().map(|(_, b)| b.clone()).collect();
        let mut seen = HashSet::new();
        for block in &emitted {
            for tx in &block.transactions {
                assert!(seen.insert(tx.id), "seed {seed}: transaction ordered twice");
            }
        }
        for (_, tx) in &schedule {
            assert!(
                seen.contains(&tx.id),
                "seed {seed}: transaction lost by failover"
            );
        }
        assert_eq!(seen.len(), n_txs, "seed {seed}: phantom transactions");

        // (c) Convergence. The emitted stream is a valid hash chain...
        let mut chain = Blockchain::new();
        chain.append(Block::genesis()).expect("genesis");
        for block in &emitted {
            chain.append(block.clone()).expect("emitted blocks chain");
        }
        chain.verify_integrity().expect("emitted chain verifies");
        // ...every replica's committed prefix is a prefix of it,
        // byte-identical block by block...
        for node in 0..cluster.node_count() {
            let committed = cluster.committed_blocks(node);
            assert!(
                committed.len() <= emitted.len(),
                "seed {seed}: node {node} committed past the cluster"
            );
            for (mine, cluster_block) in committed.iter().zip(&emitted) {
                assert_eq!(
                    mine.hash(),
                    cluster_block.hash(),
                    "seed {seed}: node {node} diverged"
                );
                assert_eq!(mine, cluster_block, "seed {seed}: hash collision?");
            }
        }
        // ...and replaying it yields the same committed values as the
        // single-orderer backend on the same workload.
        let mut single = Orderer::new(config.block_cut);
        let mut reference = Vec::new();
        let mut last_timeout = None;
        for (at, tx) in &schedule {
            let (block, timeout) = single.receive(tx.clone(), *at);
            reference.extend(block);
            if let Some(t) = timeout {
                last_timeout = Some(t);
            }
        }
        if let Some(t) = last_timeout {
            reference.extend(single.timeout_fired(t));
        }
        let raft_peer = replay(&emitted);
        let single_peer = replay(&reference);
        assert_eq!(
            committed_values(&raft_peer),
            committed_values(&single_peer),
            "seed {seed}: committed values diverged from the single orderer"
        );
        // With no faults and a pre-elected leader the ledger is
        // bit-identical: same cuts, same seals, same serialized bytes.
        if fault_free
            && config
                .ordering
                .as_ref()
                .unwrap()
                .preelected_leader
                .is_some()
        {
            assert_eq!(
                emitted, reference,
                "seed {seed}: fault-free Raft diverged from the single orderer"
            );
            let a = raft_peer.snapshot();
            let b = single_peer.snapshot();
            assert_eq!(a.state, b.state, "seed {seed}: state bytes diverged");
            assert_eq!(a.chain, b.chain, "seed {seed}: chain bytes diverged");
        }
    });
}
