//! The deterministic Raft cluster replicating the ordering service.
//!
//! Every consenter node hosts a full Raft state machine — term, voted
//! ballot, replicated log, commit index — plus, while it is leader, the
//! block-cutting [`Orderer`] from `fabriccrdt-fabric`. Clients submit
//! endorsed transactions to the highest-term reachable leader; the
//! leader's orderer applies Fabric's cutting rules (max count, max
//! bytes, batch timeout) and every cut block becomes one Raft log
//! entry. A block is released to the delivery layer only once its
//! entry is committed (replicated on a majority), so a deposed leader's
//! uncommitted cuts are simply truncated away and their transactions
//! re-delivered to the next leader — re-elections neither lose nor
//! duplicate ordered transactions.
//!
//! Determinism: all randomness (election timeouts, link latencies,
//! drop/duplicate coin flips) comes from per-node forks of a PRNG
//! forked off the run seed, and event ties break in scheduling order,
//! so a `(config, workload)` pair replays bit-identically.

use std::collections::{HashSet, VecDeque};

use fabriccrdt_fabric::config::{BlockCutConfig, OrderingPolicy, PipelineConfig, RaftConfig};
use fabriccrdt_fabric::conflict::{BlockFeedback, ConflictTracker};
use fabriccrdt_fabric::metrics::{ConflictPolicyMetrics, OrderingMetrics};
use fabriccrdt_fabric::orderer::{Orderer, TimeoutRequest};
use fabriccrdt_ledger::block::Block;
use fabriccrdt_ledger::transaction::{Transaction, TxId};
use fabriccrdt_sim::queue::EventQueue;
use fabriccrdt_sim::rng::SimRng;
use fabriccrdt_sim::time::SimTime;

/// Raft roles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Passive replica: appends what the leader sends.
    Follower,
    /// Election in progress: collecting votes for itself.
    Candidate,
    /// Sole block cutter of its term.
    Leader,
}

/// One replicated log entry: a cut block, or a `None` "barrier" no-op
/// a fresh leader appends to force commitment of prior-term entries
/// (Raft §5.4.2: a leader may only count replicas for entries of its
/// own term).
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// Term of the leader that appended the entry.
    pub term: u64,
    /// When the leader sealed (cut) it — commit latency is measured
    /// from here.
    pub sealed_at: SimTime,
    /// The block, or `None` for a barrier no-op.
    pub block: Option<Block>,
    /// Transactions the cut policy early-aborted while sealing this
    /// block. They ride in the entry and surface only when the entry
    /// *commits*: a deposed leader's uncommitted cuts are truncated
    /// away, and truncating the entry drops its aborts with it — the
    /// transactions stay pending and get a fresh verdict from the next
    /// leader, never a duplicate or lost one.
    pub aborted: Vec<Transaction>,
}

/// A point-in-time view of one consenter, for tests and failover
/// diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeStatus {
    /// Whether the node is running.
    pub up: bool,
    /// Current role.
    pub role: Role,
    /// Current term.
    pub term: u64,
    /// Log length (committed prefix plus any uncommitted tail).
    pub log_len: usize,
    /// Committed entries.
    pub commit_index: u64,
}

/// A leadership transition, for the at-most-one-leader-per-term safety
/// check and failover diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeadershipEvent {
    /// Term the node won.
    pub term: u64,
    /// The winning node.
    pub node: usize,
    /// When it assumed leadership.
    pub at: SimTime,
}

/// Raft wire messages.
#[derive(Debug, Clone)]
enum Payload {
    AppendEntries {
        term: u64,
        /// Entries preceding this batch on the leader (the follower's
        /// log must be at least this long, with a matching term at the
        /// tail, for the batch to apply).
        prev_len: usize,
        prev_term: u64,
        entries: Vec<LogEntry>,
        leader_commit: u64,
    },
    AppendResponse {
        term: u64,
        success: bool,
        /// On success: entries now known replicated on the follower.
        /// On failure: a retry hint (upper bound for `next_index`).
        match_len: usize,
    },
    RequestVote {
        term: u64,
        last_len: usize,
        last_term: u64,
    },
    VoteResponse {
        term: u64,
        granted: bool,
    },
}

/// Cluster events.
#[derive(Debug)]
enum RaftEvent {
    /// An endorsed transaction reaches the ordering tier.
    Submission(Transaction),
    /// The client sweep re-attempting undelivered transactions.
    ClientRetry,
    /// A Raft message arrives.
    Message {
        from: usize,
        to: usize,
        payload: Payload,
    },
    /// A node's randomized election timer fires.
    ElectionTimeout { node: usize, epoch: u64 },
    /// A leader's heartbeat timer fires.
    HeartbeatTick { node: usize, epoch: u64 },
    /// The leader's orderer batch timeout fires.
    BatchTimeout {
        node: usize,
        epoch: u64,
        request: TimeoutRequest,
    },
    /// Scheduled fault: the node crashes.
    Crash { node: usize },
    /// Scheduled recovery: the node rejoins.
    Restart { node: usize },
}

/// One consenter node.
struct Node {
    /// Whether the node is running (false between crash and restart).
    up: bool,
    /// Durable Raft state: survives crashes.
    term: u64,
    voted_for: Option<usize>,
    log: Vec<LogEntry>,
    role: Role,
    /// Count of committed entries (commit index as a length).
    commit_index: u64,
    /// Bumped whenever outstanding timers must be invalidated (timer
    /// re-arm, role change, crash, restart); events carry the epoch
    /// they were armed under and stale ones are dropped.
    epoch: u64,
    /// Votes received this candidacy (includes self).
    votes: HashSet<usize>,
    /// Leader bookkeeping: next entry position to send to each peer.
    next_index: Vec<usize>,
    /// Leader bookkeeping: entries known replicated on each peer.
    match_index: Vec<usize>,
    /// The block cutter — `Some` only while leader.
    orderer: Option<Orderer>,
    /// Transactions this leader already holds (in its batch or log),
    /// so the client sweep does not re-deliver them.
    held: HashSet<TxId>,
    /// Per-node PRNG (election timeout jitter).
    rng: SimRng,
}

impl Node {
    fn last_term(&self) -> u64 {
        self.log.last().map_or(0, |e| e.term)
    }

    /// Raft's voting rule: is a candidate log described by
    /// `(last_term, last_len)` at least as up to date as ours?
    fn candidate_up_to_date(&self, last_term: u64, last_len: usize) -> bool {
        (last_term, last_len) >= (self.last_term(), self.log.len())
    }
}

/// A deterministic, event-driven Raft cluster wrapping the block
/// cutter. See the crate docs for the protocol summary; drive it with
/// [`RaftCluster::enqueue`] + [`RaftCluster::advance`] (the
/// [`crate::RaftOrderingBackend`] does), or [`RaftCluster::drain`] for
/// standalone runs.
pub struct RaftCluster {
    raft: RaftConfig,
    block_cut: BlockCutConfig,
    /// The cut policy every leader's orderer runs (resolved once from
    /// the pipeline config, so re-elections cannot change it).
    policy: OrderingPolicy,
    /// Cluster-maintained conflict tracker. The live copy lives inside
    /// the current leader's orderer; this master copy is synced from an
    /// orderer whenever one is dropped (step-down, crash) and installed
    /// into each new leader, so adaptive decisions survive failover
    /// instead of restarting cold.
    tracker: ConflictTracker,
    /// Policy counters harvested from dropped orderers (the live
    /// leader's counters are added on top when metrics are taken).
    policy_stats: ConflictPolicyMetrics,
    /// Cluster-level PRNG: link latencies and fault coin flips.
    rng: SimRng,
    queue: EventQueue<RaftEvent>,
    nodes: Vec<Node>,
    /// Transactions submitted but not yet committed, in arrival order.
    pending: VecDeque<Transaction>,
    pending_ids: HashSet<TxId>,
    /// Submissions scheduled via [`RaftCluster::enqueue`] whose arrival
    /// event has not fired yet (they block quiescence).
    outstanding_submissions: usize,
    retry_armed: bool,
    /// Every committed block with its commit time, in commit order.
    emitted: Vec<(SimTime, Block)>,
    /// Start of the not-yet-drained suffix of `emitted`.
    outbox_cursor: usize,
    /// Log entries (blocks and no-ops) already surfaced from the
    /// committed prefix.
    emitted_entries: u64,
    early_aborted: Vec<Transaction>,
    metrics: OrderingMetrics,
    leadership: Vec<LeadershipEvent>,
    clock: SimTime,
    /// No run is quiescent before the last scheduled fault.
    last_fault_time: SimTime,
}

impl RaftCluster {
    /// Builds the cluster for a pipeline configuration. Uses
    /// `config.ordering` (or [`RaftConfig::calibrated`] with 5 nodes
    /// when unset) and forks its PRNG from `config.seed` so identical
    /// configs replay identical runs.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent configuration: zero nodes, a zero or
    /// inverted election-timeout window, a heartbeat period at or above
    /// the minimum election timeout, an out-of-range pre-elected
    /// leader, out-of-range fault indices, a restart before its crash,
    /// a heal before its partition, a partition isolating every node,
    /// or a link drop probability of 1.0.
    pub fn new(config: &PipelineConfig) -> Self {
        let raft = config
            .ordering
            .clone()
            .unwrap_or_else(|| RaftConfig::calibrated(5));
        let n = raft.nodes;
        assert!(n > 0, "cluster has no nodes");
        assert!(
            SimTime::ZERO < raft.election_timeout_min
                && raft.election_timeout_min <= raft.election_timeout_max,
            "election timeout window must be positive and ordered"
        );
        assert!(
            raft.heartbeat_interval < raft.election_timeout_min,
            "heartbeat period must be below the election timeout"
        );
        if let Some(leader) = raft.preelected_leader {
            assert!(leader < n, "pre-elected leader {leader} out of range");
        }
        for crash in &raft.faults.crashes {
            assert!(crash.peer < n, "crash node out of range");
            assert!(crash.restart_at >= crash.at, "restart before crash");
        }
        for partition in &raft.faults.partitions {
            assert!(partition.heal_at >= partition.at, "heal before partition");
            assert!(
                partition.minority.iter().all(|p| *p < n),
                "partition node out of range"
            );
            assert!(
                partition.minority.len() < n,
                "partition isolates every node"
            );
        }
        assert!(raft.faults.link.drop < 1.0, "links drop every message");

        let policy = config.effective_ordering_policy();
        let tracker = match policy {
            OrderingPolicy::Adaptive(cfg) => ConflictTracker::new(cfg.decay),
            _ => {
                ConflictTracker::new(fabriccrdt_fabric::config::AdaptiveConfig::calibrated().decay)
            }
        };
        let mut root = SimRng::seed_from(config.seed);
        let mut rng = root.fork(0x7261_6674); // "raft"
        let mut nodes: Vec<Node> = (0..n)
            .map(|i| Node {
                up: true,
                term: 0,
                voted_for: None,
                log: Vec::new(),
                role: Role::Follower,
                commit_index: 0,
                epoch: 0,
                votes: HashSet::new(),
                next_index: vec![0; n],
                match_index: vec![0; n],
                orderer: None,
                held: HashSet::new(),
                rng: rng.fork(i as u64),
            })
            .collect();

        let mut last_fault_time = SimTime::ZERO;
        let mut queue = EventQueue::new();
        for crash in &raft.faults.crashes {
            queue.schedule(crash.at, RaftEvent::Crash { node: crash.peer });
            queue.schedule(crash.restart_at, RaftEvent::Restart { node: crash.peer });
            last_fault_time = last_fault_time.max(crash.restart_at);
        }
        for partition in &raft.faults.partitions {
            last_fault_time = last_fault_time.max(partition.heal_at);
        }

        let mut leadership = Vec::new();
        if let Some(leader) = raft.preelected_leader {
            // A Fabric channel elects its leader at channel creation,
            // long before traffic: boot straight into term 1.
            for node in nodes.iter_mut() {
                node.term = 1;
                node.voted_for = Some(leader);
            }
            let l = &mut nodes[leader];
            l.role = Role::Leader;
            l.epoch += 1;
            l.next_index = vec![0; n];
            l.match_index = vec![0; n];
            let mut orderer = make_orderer(config.block_cut, policy, &l.log);
            orderer.install_tracker(tracker.clone());
            l.orderer = Some(orderer);
            leadership.push(LeadershipEvent {
                term: 1,
                node: leader,
                at: SimTime::ZERO,
            });
            let epoch = l.epoch;
            queue.schedule(
                SimTime::ZERO,
                RaftEvent::HeartbeatTick {
                    node: leader,
                    epoch,
                },
            );
        }

        let mut cluster = RaftCluster {
            raft,
            block_cut: config.block_cut,
            policy,
            tracker,
            policy_stats: ConflictPolicyMetrics::default(),
            rng,
            queue,
            nodes,
            pending: VecDeque::new(),
            pending_ids: HashSet::new(),
            outstanding_submissions: 0,
            retry_armed: false,
            emitted: Vec::new(),
            outbox_cursor: 0,
            emitted_entries: 0,
            early_aborted: Vec::new(),
            metrics: OrderingMetrics::default(),
            leadership,
            clock: SimTime::ZERO,
            last_fault_time,
        };
        for i in 0..n {
            if cluster.nodes[i].role != Role::Leader {
                cluster.arm_election(i, SimTime::ZERO);
            }
        }
        cluster
    }

    // ------------------------------------------------------------------
    // Public driving API
    // ------------------------------------------------------------------

    /// Schedules an endorsed transaction to arrive at the ordering tier
    /// at time `at` (must not be in the cluster's past).
    pub fn enqueue(&mut self, at: SimTime, tx: Transaction) {
        assert!(at >= self.clock, "submission in the cluster's past");
        self.outstanding_submissions += 1;
        self.queue.schedule(at, RaftEvent::Submission(tx));
    }

    /// Processes every event up to and including time `now`, then
    /// returns the blocks committed since the previous drain, each with
    /// its commit time.
    pub fn advance(&mut self, now: SimTime) -> Vec<(SimTime, Block)> {
        while let Some(at) = self.queue.peek_time() {
            if at > now {
                break;
            }
            let (at, event) = self.queue.pop().expect("peeked event");
            self.clock = self.clock.max(at);
            self.handle(at, event);
        }
        self.clock = self.clock.max(now);
        self.drain_outbox()
    }

    /// Runs until the cluster is quiescent (see
    /// [`RaftCluster::is_quiescent`]); returns the final clock.
    ///
    /// # Panics
    ///
    /// Panics if the event queue empties while work is still
    /// outstanding — a liveness bug, since heartbeats and client
    /// retries re-arm themselves until quiescence.
    pub fn drain(&mut self) -> SimTime {
        while !self.is_quiescent() {
            let (at, event) = self
                .queue
                .pop()
                .expect("event queue drained before the cluster settled");
            self.clock = self.clock.max(at);
            self.handle(at, event);
        }
        self.clock
    }

    /// The next scheduled event time, or `None` once the cluster is
    /// quiescent (heartbeats run forever, so without the quiescence cut
    /// the queue never empties).
    pub fn next_event_time(&self) -> Option<SimTime> {
        if self.is_quiescent() {
            None
        } else {
            self.queue.peek_time()
        }
    }

    /// Whether nothing observable remains: every scheduled fault has
    /// played out, every node is up, no transaction is waiting, a
    /// leader exists whose log is fully committed with an empty batch,
    /// and every replica agrees on the commit index.
    pub fn is_quiescent(&self) -> bool {
        if self.clock < self.last_fault_time
            || self.outstanding_submissions > 0
            || !self.pending.is_empty()
            || self.nodes.iter().any(|n| !n.up)
        {
            return false;
        }
        let Some(leader) = self.current_leader() else {
            return false;
        };
        let l = &self.nodes[leader];
        l.commit_index == l.log.len() as u64
            && l.orderer.as_ref().is_some_and(|o| o.pending_len() == 0)
            && self.nodes.iter().all(|n| n.commit_index == l.commit_index)
    }

    /// Current simulated time (max event time processed so far).
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Number of consenter nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Transactions submitted but not yet committed (or early-aborted).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// A point-in-time view of node `i`.
    pub fn node_status(&self, i: usize) -> NodeStatus {
        let n = &self.nodes[i];
        NodeStatus {
            up: n.up,
            role: n.role,
            term: n.term,
            log_len: n.log.len(),
            commit_index: n.commit_index,
        }
    }

    /// The up node with the highest leader term, if any.
    pub fn current_leader(&self) -> Option<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.up && n.role == Role::Leader)
            .max_by_key(|(_, n)| n.term)
            .map(|(i, _)| i)
    }

    /// Every committed block with its commit time, in commit order.
    pub fn emitted(&self) -> &[(SimTime, Block)] {
        &self.emitted
    }

    /// Every leadership transition so far (for the
    /// at-most-one-leader-per-term safety check).
    pub fn leadership(&self) -> &[LeadershipEvent] {
        &self.leadership
    }

    /// Node `i`'s committed blocks — the non-barrier entries of its
    /// committed log prefix. Replica convergence means these agree
    /// across nodes (uncommitted log tails may differ; Raft only
    /// truncates them on conflict).
    pub fn committed_blocks(&self, i: usize) -> Vec<Block> {
        let node = &self.nodes[i];
        node.log[..node.commit_index as usize]
            .iter()
            .filter_map(|e| e.block.clone())
            .collect()
    }

    /// Drains transactions early-aborted by the cut policy (always
    /// empty under [`OrderingPolicy::Fifo`]). An abort only appears
    /// here once its log entry committed — exactly once, regardless of
    /// leader crashes in between.
    pub fn take_early_aborted(&mut self) -> Vec<Transaction> {
        std::mem::take(&mut self.early_aborted)
    }

    /// Feeds a committed block's validation outcome back into the
    /// conflict tracker: the cluster master copy and, when a leader is
    /// live, its orderer's working copy (kept identical so failover
    /// hands over exactly the state the deposed leader was using).
    /// No-op unless the policy is [`OrderingPolicy::Adaptive`].
    pub fn observe_finalized(&mut self, feedback: &BlockFeedback) {
        if !self.policy.is_adaptive() {
            return;
        }
        self.tracker.observe(feedback);
        if let Some(leader) = self.current_leader() {
            if let Some(orderer) = self.nodes[leader].orderer.as_mut() {
                orderer.observe_finalized(feedback);
            }
        }
    }

    /// The cut policy every leader runs.
    pub fn policy(&self) -> OrderingPolicy {
        self.policy
    }

    /// Takes the accumulated ordering-policy counters: everything
    /// harvested from deposed leaders plus the live leader's counters.
    pub fn take_policy_metrics(&mut self) -> ConflictPolicyMetrics {
        let mut stats = std::mem::take(&mut self.policy_stats);
        for node in &mut self.nodes {
            if let Some(orderer) = node.orderer.as_mut() {
                stats.absorb(orderer.take_policy_stats());
            }
        }
        stats
    }

    /// Read access to the ordering metrics accumulated so far.
    pub fn metrics(&self) -> &OrderingMetrics {
        &self.metrics
    }

    /// Takes the ordering metrics, stamping the final term.
    pub fn take_metrics(&mut self) -> OrderingMetrics {
        self.metrics.final_term = self.nodes.iter().map(|n| n.term).max().unwrap_or(0);
        std::mem::take(&mut self.metrics)
    }

    fn drain_outbox(&mut self) -> Vec<(SimTime, Block)> {
        let fresh = self.emitted[self.outbox_cursor..].to_vec();
        self.outbox_cursor = self.emitted.len();
        fresh
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle(&mut self, now: SimTime, event: RaftEvent) {
        match event {
            RaftEvent::Submission(tx) => {
                self.outstanding_submissions -= 1;
                if self.pending_ids.insert(tx.id) {
                    self.pending.push_back(tx.clone());
                }
                match self.delivery_target() {
                    Some(leader) if !self.nodes[leader].held.contains(&tx.id) => {
                        self.leader_receive(leader, tx, now);
                    }
                    _ => {}
                }
                self.ensure_retry(now);
            }
            RaftEvent::ClientRetry => {
                self.retry_armed = false;
                self.client_sweep(now);
                self.ensure_retry(now);
            }
            RaftEvent::Message { from, to, payload } => {
                if self.nodes[to].up {
                    self.receive(to, from, payload, now);
                }
            }
            RaftEvent::ElectionTimeout { node, epoch } => {
                let n = &self.nodes[node];
                if n.up && n.epoch == epoch && n.role != Role::Leader {
                    self.start_election(node, now);
                }
            }
            RaftEvent::HeartbeatTick { node, epoch } => {
                let n = &self.nodes[node];
                if n.up && n.epoch == epoch && n.role == Role::Leader {
                    for peer in 0..self.nodes.len() {
                        if peer != node {
                            self.send_append(node, peer, now);
                        }
                    }
                    let at = now + self.raft.heartbeat_interval;
                    self.queue
                        .schedule(at, RaftEvent::HeartbeatTick { node, epoch });
                }
            }
            RaftEvent::BatchTimeout {
                node,
                epoch,
                request,
            } => {
                let n = &mut self.nodes[node];
                if n.up && n.epoch == epoch && n.role == Role::Leader {
                    if let Some(block) = n.orderer.as_mut().and_then(|o| o.timeout_fired(request)) {
                        let aborted = n
                            .orderer
                            .as_mut()
                            .map(|o| o.take_early_aborted())
                            .unwrap_or_default();
                        self.append_block(node, block, aborted, now);
                    }
                }
            }
            RaftEvent::Crash { node } => self.crash(node),
            RaftEvent::Restart { node } => self.restart(node, now),
        }
    }

    /// Where the client delivers right now: the up leader with the
    /// highest term (clients follow redirects, so a deposed minority
    /// leader does not hold traffic hostage).
    fn delivery_target(&self) -> Option<usize> {
        self.current_leader()
    }

    /// Hands a transaction to the leader's orderer, arming the batch
    /// timeout and replicating any cut block.
    fn leader_receive(&mut self, leader: usize, tx: Transaction, now: SimTime) {
        let node = &mut self.nodes[leader];
        node.held.insert(tx.id);
        let epoch = node.epoch;
        let orderer = node.orderer.as_mut().expect("leaders carry an orderer");
        let (block, timeout) = orderer.receive(tx, now);
        if let Some(request) = timeout {
            self.queue.schedule(
                request.at,
                RaftEvent::BatchTimeout {
                    node: leader,
                    epoch,
                    request,
                },
            );
        }
        if let Some(block) = block {
            let aborted = self.nodes[leader]
                .orderer
                .as_mut()
                .map(|o| o.take_early_aborted())
                .unwrap_or_default();
            self.append_block(leader, block, aborted, now);
        }
    }

    /// Appends a cut block — together with the transactions the cut
    /// policy early-aborted while sealing it — to the leader's log and
    /// fans out replication. The aborts stay *pending* (and in the
    /// leader's `held` set, so the client sweep does not re-deliver
    /// them) until the entry commits; see [`LogEntry::aborted`] for the
    /// failover semantics.
    fn append_block(
        &mut self,
        leader: usize,
        block: Block,
        aborted: Vec<Transaction>,
        now: SimTime,
    ) {
        let term = self.nodes[leader].term;
        self.nodes[leader].log.push(LogEntry {
            term,
            sealed_at: now,
            block: Some(block),
            aborted,
        });
        for peer in 0..self.nodes.len() {
            if peer != leader {
                self.send_append(leader, peer, now);
            }
        }
        self.advance_commit(leader, now);
    }

    /// Re-attempts delivery of every waiting transaction. Counted as a
    /// retry only when the sweep actually has to act (no reachable
    /// leader, or the leader does not hold the transaction).
    fn client_sweep(&mut self, now: SimTime) {
        let snapshot: Vec<Transaction> = self.pending.iter().cloned().collect();
        for tx in snapshot {
            if !self.pending_ids.contains(&tx.id) {
                continue; // early-aborted mid-sweep
            }
            match self.delivery_target() {
                Some(leader) => {
                    if !self.nodes[leader].held.contains(&tx.id) {
                        self.metrics.submission_retries += 1;
                        self.leader_receive(leader, tx, now);
                    }
                }
                None => self.metrics.submission_retries += 1,
            }
        }
    }

    fn ensure_retry(&mut self, now: SimTime) {
        if !self.retry_armed && !self.pending.is_empty() {
            self.retry_armed = true;
            self.queue
                .schedule(now + self.raft.retry_interval, RaftEvent::ClientRetry);
        }
    }

    // ------------------------------------------------------------------
    // Raft protocol
    // ------------------------------------------------------------------

    /// (Re-)arms a node's randomized election timer, invalidating any
    /// previously armed timer via the epoch bump.
    fn arm_election(&mut self, i: usize, now: SimTime) {
        let lo = self.raft.election_timeout_min.as_micros();
        let hi = self.raft.election_timeout_max.as_micros();
        let node = &mut self.nodes[i];
        node.epoch += 1;
        let jitter = if hi > lo {
            node.rng.gen_range(lo, hi + 1)
        } else {
            lo
        };
        let epoch = node.epoch;
        self.queue.schedule(
            now + SimTime::from_micros(jitter),
            RaftEvent::ElectionTimeout { node: i, epoch },
        );
    }

    fn start_election(&mut self, i: usize, now: SimTime) {
        self.metrics.elections_started += 1;
        let node = &mut self.nodes[i];
        node.term += 1;
        node.role = Role::Candidate;
        node.voted_for = Some(i);
        node.votes = HashSet::from([i]);
        let term = node.term;
        let last_len = node.log.len();
        let last_term = node.last_term();
        self.arm_election(i, now); // candidacy itself times out and retries
        if self.quorum() == 1 {
            self.become_leader(i, now);
            return;
        }
        for peer in 0..self.nodes.len() {
            if peer != i {
                self.send(
                    i,
                    peer,
                    Payload::RequestVote {
                        term,
                        last_len,
                        last_term,
                    },
                    now,
                );
            }
        }
    }

    fn become_leader(&mut self, i: usize, now: SimTime) {
        let n = self.nodes.len();
        let node = &mut self.nodes[i];
        node.role = Role::Leader;
        node.epoch += 1; // invalidate the candidacy timer
        node.votes.clear();
        node.next_index = vec![node.log.len(); n];
        node.match_index = vec![0; n];
        node.match_index[i] = node.log.len();
        // Everything in inherited log entries is spoken for: block
        // transactions get their verdict when the entry commits, and so
        // do the entry's early-aborts — re-accepting either into a
        // fresh batch would hand it a second verdict.
        node.held = node
            .log
            .iter()
            .flat_map(|e| {
                e.block
                    .iter()
                    .flat_map(|b| b.transactions.iter().map(|tx| tx.id))
                    .chain(e.aborted.iter().map(|tx| tx.id))
            })
            .collect();
        let mut orderer = make_orderer(self.block_cut, self.policy, &node.log);
        orderer.install_tracker(self.tracker.clone());
        node.orderer = Some(orderer);
        let term = node.term;
        if (node.log.len() as u64) > node.commit_index {
            // Barrier no-op (§5.4.2): commit inherited entries by
            // committing one entry of our own term on top of them.
            node.log.push(LogEntry {
                term,
                sealed_at: now,
                block: None,
                aborted: Vec::new(),
            });
            node.match_index[i] = node.log.len();
        }
        if !self.leadership.is_empty() {
            self.metrics.leader_changes += 1;
        }
        self.leadership.push(LeadershipEvent {
            term,
            node: i,
            at: now,
        });
        let epoch = self.nodes[i].epoch;
        self.queue
            .schedule(now, RaftEvent::HeartbeatTick { node: i, epoch });
        self.advance_commit(i, now); // single-node clusters commit inline
    }

    /// Steps down into follower state (term change or higher-term
    /// leader observed). The orderer batch dies with the leadership —
    /// its transactions are still pending and will be re-delivered.
    fn become_follower(&mut self, i: usize, now: SimTime) {
        self.harvest_orderer(i);
        let node = &mut self.nodes[i];
        node.role = Role::Follower;
        node.held.clear();
        node.votes.clear();
        self.arm_election(i, now);
    }

    /// Salvages tracker state and policy counters from a node's orderer
    /// before dropping it (step-down or crash), so the next leader
    /// inherits both. The tracker copy is deterministic cluster
    /// metadata, *not* replicated state: it only ever influences cut
    /// decisions on the current leader, never the committed log's
    /// interpretation.
    fn harvest_orderer(&mut self, i: usize) {
        if let Some(mut orderer) = self.nodes[i].orderer.take() {
            if self.policy.is_adaptive() {
                self.tracker = orderer.tracker().clone();
            }
            self.policy_stats.absorb(orderer.take_policy_stats());
        }
    }

    /// Adopts a higher term seen on any message (Raft: all servers).
    fn observe_term(&mut self, i: usize, term: u64, now: SimTime) {
        if term > self.nodes[i].term {
            self.nodes[i].term = term;
            self.nodes[i].voted_for = None;
            self.become_follower(i, now);
        }
    }

    fn quorum(&self) -> usize {
        self.nodes.len() / 2 + 1
    }

    /// Sends one `AppendEntries` to `peer` with everything from the
    /// leader's `next_index` onward (empty = heartbeat).
    fn send_append(&mut self, leader: usize, peer: usize, now: SimTime) {
        let node = &self.nodes[leader];
        let ni = node.next_index[peer].min(node.log.len());
        let prev_term = if ni > 0 { node.log[ni - 1].term } else { 0 };
        let payload = Payload::AppendEntries {
            term: node.term,
            prev_len: ni,
            prev_term,
            entries: node.log[ni..].to_vec(),
            leader_commit: node.commit_index,
        };
        self.send(leader, peer, payload, now);
    }

    /// Applies link faults and latency, then schedules delivery.
    fn send(&mut self, from: usize, to: usize, payload: Payload, now: SimTime) {
        self.metrics.messages_sent += 1;
        if self.partitioned(now, from, to) {
            self.metrics.messages_dropped += 1;
            return;
        }
        let link = &self.raft.faults.link;
        if link.drop > 0.0 && self.rng.gen_bool(link.drop) {
            self.metrics.messages_dropped += 1;
            return;
        }
        let delay = self.raft.link.sample(&mut self.rng) + link.extra_delay.sample(&mut self.rng);
        let duplicate = link.duplicate > 0.0 && self.rng.gen_bool(link.duplicate);
        if duplicate {
            let delay2 =
                self.raft.link.sample(&mut self.rng) + link.extra_delay.sample(&mut self.rng);
            self.queue.schedule(
                now + delay2,
                RaftEvent::Message {
                    from,
                    to,
                    payload: payload.clone(),
                },
            );
        }
        self.queue
            .schedule(now + delay, RaftEvent::Message { from, to, payload });
    }

    /// Whether an active partition separates nodes `a` and `b` at `now`.
    fn partitioned(&self, now: SimTime, a: usize, b: usize) -> bool {
        self.raft.faults.partitions.iter().any(|p| {
            now >= p.at && now < p.heal_at && (p.minority.contains(&a) != p.minority.contains(&b))
        })
    }

    fn receive(&mut self, to: usize, from: usize, payload: Payload, now: SimTime) {
        match payload {
            Payload::AppendEntries {
                term,
                prev_len,
                prev_term,
                entries,
                leader_commit,
            } => {
                self.observe_term(to, term, now);
                let node = &mut self.nodes[to];
                if term < node.term {
                    let mine = node.term;
                    self.send(
                        to,
                        from,
                        Payload::AppendResponse {
                            term: mine,
                            success: false,
                            match_len: 0,
                        },
                        now,
                    );
                    return;
                }
                // A current-term AppendEntries is authoritative: any
                // candidacy of ours lost.
                if node.role != Role::Follower {
                    self.become_follower(to, now);
                } else {
                    self.arm_election(to, now);
                }
                let node = &mut self.nodes[to];
                let consistent = node.log.len() >= prev_len
                    && (prev_len == 0 || node.log[prev_len - 1].term == prev_term);
                if !consistent {
                    let hint = node.log.len().min(prev_len.saturating_sub(1));
                    let mine = node.term;
                    self.send(
                        to,
                        from,
                        Payload::AppendResponse {
                            term: mine,
                            success: false,
                            match_len: hint,
                        },
                        now,
                    );
                    return;
                }
                let matched = prev_len + entries.len();
                for (offset, entry) in entries.into_iter().enumerate() {
                    let pos = prev_len + offset;
                    if pos < node.log.len() {
                        if node.log[pos].term != entry.term {
                            node.log.truncate(pos);
                            node.log.push(entry);
                        }
                        // Same term at same position: already have it.
                    } else {
                        node.log.push(entry);
                    }
                }
                node.commit_index = node.commit_index.max(leader_commit.min(matched as u64));
                let mine = node.term;
                self.note_commit_progress(now);
                self.send(
                    to,
                    from,
                    Payload::AppendResponse {
                        term: mine,
                        success: true,
                        match_len: matched,
                    },
                    now,
                );
            }
            Payload::AppendResponse {
                term,
                success,
                match_len,
            } => {
                self.observe_term(to, term, now);
                let node = &mut self.nodes[to];
                if node.role != Role::Leader || term < node.term {
                    return;
                }
                if success {
                    node.match_index[from] = node.match_index[from].max(match_len);
                    node.next_index[from] = node.next_index[from].max(match_len);
                    let behind = node.next_index[from] < node.log.len();
                    self.advance_commit(to, now);
                    if behind {
                        self.send_append(to, from, now);
                    }
                } else {
                    node.next_index[from] = match_len.min(node.next_index[from].saturating_sub(1));
                    self.send_append(to, from, now);
                }
            }
            Payload::RequestVote {
                term,
                last_len,
                last_term,
            } => {
                self.observe_term(to, term, now);
                let node = &mut self.nodes[to];
                let grant = term == node.term
                    && node.voted_for.is_none_or(|v| v == from)
                    && node.candidate_up_to_date(last_term, last_len);
                if grant {
                    node.voted_for = Some(from);
                }
                let mine = node.term;
                if grant {
                    // Granting a vote concedes the election window.
                    self.arm_election(to, now);
                }
                self.send(
                    to,
                    from,
                    Payload::VoteResponse {
                        term: mine,
                        granted: grant,
                    },
                    now,
                );
            }
            Payload::VoteResponse { term, granted } => {
                self.observe_term(to, term, now);
                let node = &mut self.nodes[to];
                if node.role == Role::Candidate && term == node.term && granted {
                    node.votes.insert(from);
                    if node.votes.len() >= self.quorum() {
                        self.become_leader(to, now);
                    }
                }
            }
        }
    }

    /// Leader-side commit advancement (§5.3/§5.4.2): an entry commits
    /// once a majority holds it *and* it belongs to the leader's
    /// current term.
    fn advance_commit(&mut self, leader: usize, now: SimTime) {
        let quorum = self.quorum();
        let node = &self.nodes[leader];
        let mut best = node.commit_index;
        for n in (node.commit_index as usize + 1)..=node.log.len() {
            if node.log[n - 1].term != node.term {
                continue;
            }
            let replicas = node.match_index.iter().filter(|&&m| m >= n).count();
            if replicas >= quorum {
                best = n as u64;
            }
        }
        if best > self.nodes[leader].commit_index {
            self.nodes[leader].commit_index = best;
            self.note_commit_progress(now);
        }
    }

    /// Surfaces newly committed entries exactly once, cluster-wide.
    /// Committed log prefixes are immutable and identical across
    /// replicas (Raft's state-machine safety), so reading them from the
    /// most-advanced node is sound.
    fn note_commit_progress(&mut self, now: SimTime) {
        let source = match self
            .nodes
            .iter()
            .enumerate()
            .max_by_key(|(_, n)| n.commit_index)
        {
            Some((i, _)) => i,
            None => return,
        };
        let committed = self.nodes[source].commit_index;
        while self.emitted_entries < committed {
            let idx = self.emitted_entries as usize;
            let entry = &self.nodes[source].log[idx];
            let sealed_at = entry.sealed_at;
            let block = entry.block.clone();
            let aborted = entry.aborted.clone();
            self.emitted_entries += 1;
            // The entry's early-aborts surface exactly here — once per
            // entry, and only for entries that actually committed. A
            // leader crashing between cut and commit truncates the
            // entry, so its aborts never reach this point and the
            // transactions get re-delivered instead.
            if !aborted.is_empty() {
                for tx in &aborted {
                    self.pending_ids.remove(&tx.id);
                }
                self.pending.retain(|tx| self.pending_ids.contains(&tx.id));
                self.early_aborted.extend(aborted);
            }
            if let Some(block) = block {
                self.metrics
                    .commit_latency
                    .push(now.saturating_sub(sealed_at));
                for tx in &block.transactions {
                    self.pending_ids.remove(&tx.id);
                }
                self.pending.retain(|tx| self.pending_ids.contains(&tx.id));
                self.emitted.push((now, block));
            }
        }
    }

    // ------------------------------------------------------------------
    // Faults
    // ------------------------------------------------------------------

    /// Crash: volatile state (role, batch, vote tally) is lost; durable
    /// Raft state (term, ballot, log) and the committed ledger persist.
    fn crash(&mut self, node: usize) {
        self.harvest_orderer(node);
        let n = &mut self.nodes[node];
        n.up = false;
        n.epoch += 1;
        n.role = Role::Follower;
        n.held.clear();
        n.votes.clear();
    }

    fn restart(&mut self, node: usize, now: SimTime) {
        let n = &mut self.nodes[node];
        if n.up {
            return;
        }
        n.up = true;
        n.role = Role::Follower;
        self.arm_election(node, now);
    }
}

/// Builds the block cutter for a (possibly mid-chain) leader: block
/// numbering and hash chaining resume from the last block in `log`, so
/// Algorithm 1's deterministic re-sealing keeps replica ledgers
/// byte-identical across leadership changes.
fn make_orderer(block_cut: BlockCutConfig, policy: OrderingPolicy, log: &[LogEntry]) -> Orderer {
    let mut number = 1;
    let mut previous_hash = Block::genesis().hash();
    for entry in log {
        if let Some(block) = &entry.block {
            number = block.header.number + 1;
            previous_hash = block.hash();
        }
    }
    Orderer::resuming_with_policy(block_cut, policy, number, previous_hash)
}
