//! The [`OrderingBackend`] adapter plugging [`RaftCluster`] into the
//! pipeline's trait seam, plus convenience constructors mirroring the
//! gossip crate's.

use fabriccrdt_fabric::chaincode::ChaincodeRegistry;
use fabriccrdt_fabric::config::{OrderingPolicy, PipelineConfig};
use fabriccrdt_fabric::conflict::BlockFeedback;
use fabriccrdt_fabric::metrics::{ConflictPolicyMetrics, OrderingMetrics};
use fabriccrdt_fabric::orderer::TimeoutRequest;
use fabriccrdt_fabric::simulation::{OrderingBackend, OrderingOutcome, Simulation};
use fabriccrdt_fabric::validator::FabricValidator;
use fabriccrdt_ledger::transaction::Transaction;
use fabriccrdt_sim::time::SimTime;

use crate::cluster::RaftCluster;

/// Runs the Raft cluster behind the pipeline's [`OrderingBackend`]
/// seam. Submissions enter the cluster immediately (the pipeline
/// already charged the client→orderer hop); the cluster's internal
/// timers (heartbeats, elections, batch timeouts, retries) surface as
/// wakeup requests, so the pipeline's event queue stays the single
/// clock.
pub struct RaftOrderingBackend {
    cluster: RaftCluster,
}

impl RaftOrderingBackend {
    /// Builds the backend for a pipeline configuration (see
    /// [`RaftCluster::new`] for the validation rules).
    pub fn new(config: &PipelineConfig) -> Self {
        RaftOrderingBackend {
            cluster: RaftCluster::new(config),
        }
    }

    /// Read access to the underlying cluster (leadership history,
    /// per-replica committed prefixes).
    pub fn cluster(&self) -> &RaftCluster {
        &self.cluster
    }

    fn outcome_at(&mut self, now: SimTime) -> OrderingOutcome {
        OrderingOutcome {
            blocks: self.cluster.advance(now),
            timeout: None,
            wakeup: self.cluster.next_event_time(),
        }
    }
}

impl OrderingBackend for RaftOrderingBackend {
    fn submit(&mut self, tx: Transaction, now: SimTime) -> OrderingOutcome {
        self.cluster.enqueue(now, tx);
        self.outcome_at(now)
    }

    fn timeout_fired(&mut self, _timeout: TimeoutRequest, now: SimTime) -> OrderingOutcome {
        // Batch timeouts are armed inside the cluster (per leader);
        // the pipeline-level hook only ever fires for timeouts this
        // backend requested — and it requests none.
        self.outcome_at(now)
    }

    fn wakeup(&mut self, now: SimTime) -> OrderingOutcome {
        self.outcome_at(now)
    }

    fn take_early_aborted(&mut self) -> Vec<Transaction> {
        self.cluster.take_early_aborted()
    }

    fn take_ordering_metrics(&mut self) -> Option<OrderingMetrics> {
        Some(self.cluster.take_metrics())
    }

    fn observe_finalized(&mut self, feedback: &BlockFeedback) {
        self.cluster.observe_finalized(feedback);
    }

    fn take_policy_metrics(&mut self) -> Option<ConflictPolicyMetrics> {
        match self.cluster.policy() {
            OrderingPolicy::Fifo => None,
            _ => Some(self.cluster.take_policy_metrics()),
        }
    }
}

/// A vanilla-Fabric pipeline whose ordering runs on the Raft cluster
/// described by `config.ordering` (the calibrated 5-node cluster when
/// unset). Mirrors `fabric_gossip_simulation` in the gossip crate.
pub fn fabric_raft_simulation(
    config: PipelineConfig,
    registry: ChaincodeRegistry,
) -> Simulation<FabricValidator> {
    let backend = Box::new(RaftOrderingBackend::new(&config));
    Simulation::with_ordering(config, FabricValidator::new(), registry, backend)
}
