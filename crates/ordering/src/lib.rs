//! A Raft-replicated ordering service for the FabricCRDT pipeline,
//! with crash-failover fault injection.
//!
//! The paper's deployment orders transactions through Kafka/ZooKeeper
//! (§7.2) — a crash-fault-tolerant total-order service that Fabric's
//! pluggable consensus later replaced with Raft (Androulaki et al.).
//! Our pipeline's default remains the single in-process
//! [`Orderer`](fabriccrdt_fabric::orderer::Orderer); this crate
//! replicates that orderer across a deterministic Raft cluster so the
//! ordering tier itself can be crashed, partitioned and failed over:
//!
//! - **Leader election** with randomized-but-seeded timeouts; at most
//!   one leader per term (checked by the safety tests).
//! - **Log replication**: only the leader cuts blocks (count / bytes /
//!   batch timeout); each cut block is one log entry, released to the
//!   delivery layer when committed on a majority.
//! - **Failover without loss or duplication**: a deposed leader's
//!   uncommitted cuts are truncated away and their transactions
//!   re-delivered by the client retry sweep; committed prefixes are
//!   immutable, so replicas converge to byte-identical ledgers
//!   (Algorithm 1 re-seals blocks deterministically).
//! - **Fault injection** reusing the `fabric` fault-schedule types
//!   (crash/restart, partitions, per-link drop/duplicate/delay) over
//!   ordering-node indices.
//!
//! The cluster plugs into the pipeline behind the
//! [`OrderingBackend`](fabriccrdt_fabric::simulation::OrderingBackend)
//! trait seam — the same pattern as the gossip crate's
//! `DeliveryLayer` — via [`RaftOrderingBackend`], or runs standalone
//! via [`RaftCluster`] for protocol-level tests.
//!
//! # Examples
//!
//! See `examples/raft_failover.rs` at the repository root and the
//! `orderer_failover` experiment binary in `crates/bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod cluster;

pub use backend::{fabric_raft_simulation, RaftOrderingBackend};
pub use cluster::{LeadershipEvent, LogEntry, NodeStatus, RaftCluster, Role};
