//! Integration tests of durable peer storage under gossip: crash
//! recovery from in-memory and append-only-file backends, snapshot
//! catch-up byte accounting, frontier-driven GC, and the
//! abandoned-episode accounting for crashes that interrupt a catch-up.

use std::sync::atomic::{AtomicU64, Ordering};

use fabriccrdt::CrdtValidator;
use fabriccrdt_crypto::{Identity, KeyPair};
use fabriccrdt_fabric::config::{
    CrashSpec, FaultConfig, LinkFaults, PartitionSpec, PipelineConfig, Topology,
};
use fabriccrdt_fabric::peer::Peer;
use fabriccrdt_fabric::storage::StorageConfig;
use fabriccrdt_gossip::GossipNetwork;
use fabriccrdt_ledger::block::Block;
use fabriccrdt_ledger::rwset::ReadWriteSet;
use fabriccrdt_ledger::transaction::{Endorsement, Transaction, TxId};
use fabriccrdt_ledger::version::Height;
use fabriccrdt_sim::gen::{self, Gen};
use fabriccrdt_sim::latency::LatencyModel;
use fabriccrdt_sim::time::SimTime;

const SEED_DOC: &[u8] = br#"{"readings":[]}"#;

/// A fully endorsed CRDT transaction on the shared hot key.
fn endorsed_tx(nonce: u64) -> Transaction {
    let client = Identity::new("client", "org1");
    let mut rwset = ReadWriteSet::new();
    rwset.reads.record("hot", Some(Height::new(0, 0))); // stale on purpose
    rwset.writes.put_crdt(
        "hot".to_string(),
        format!(r#"{{"readings":["r{nonce}"]}}"#).into_bytes(),
    );
    let mut tx = Transaction {
        id: TxId::derive(&client, nonce, "cc"),
        client,
        chaincode: "cc".into(),
        rwset,
        endorsements: Vec::new(),
    };
    let payload = tx.response_payload();
    for org in ["org1", "org2", "org3"] {
        let kp = KeyPair::derive(Identity::new("peer0", org));
        tx.endorsements.push(Endorsement {
            endorser: kp.identity().clone(),
            signature: kp.sign(&payload),
        });
    }
    tx
}

/// An orderer-style raw block stream, numbered from 1.
fn block_stream(blocks: usize, per_block: usize) -> Vec<Block> {
    let mut nonce = 0u64;
    (1..=blocks as u64)
        .map(|number| {
            let txs = (0..per_block)
                .map(|_| {
                    nonce += 1;
                    endorsed_tx(nonce)
                })
                .collect();
            Block::assemble(number, [0; 32], txs)
        })
        .collect()
}

/// The ideal-FIFO outcome: one peer committing the stream in order.
fn reference_snapshot(blocks: &[Block]) -> fabriccrdt_fabric::peer::PeerSnapshot {
    let mut peer = Peer::new(CrdtValidator::new(), Topology::paper().default_policy());
    peer.seed_state("hot", SEED_DOC.to_vec());
    for block in blocks {
        let staged = peer.process_block(block.clone());
        peer.commit(staged).unwrap();
    }
    peer.snapshot()
}

fn seeded_network(config: &PipelineConfig) -> GossipNetwork<CrdtValidator> {
    let mut network = GossipNetwork::new(config, CrdtValidator::new);
    network.seed_state("hot", SEED_DOC);
    network
}

/// Publishes the stream at a 100 ms cadence and drains the network.
fn run_stream(network: &mut GossipNetwork<CrdtValidator>, blocks: &[Block]) {
    for (i, block) in blocks.iter().enumerate() {
        network.publish(SimTime::from_millis(100 * (i as u64 + 1)), block.clone());
    }
    network.drain();
}

/// Every peer's world state must match the ideal-FIFO reference byte
/// for byte; chains are only compared on peers that never installed a
/// snapshot (an installed snapshot legitimately truncates the chain).
fn assert_states_match_reference(network: &GossipNetwork<CrdtValidator>, blocks: &[Block]) {
    assert!(
        network.fully_converged(),
        "heights: {:?}",
        network.committed_heights()
    );
    let reference = reference_snapshot(blocks);
    for i in 0..network.peer_count() {
        let snap = network.snapshot(i).expect("peer up after drain");
        assert_eq!(snap.state, reference.state, "peer {i} state diverged");
    }
}

/// A fresh scratch directory for append-only-file backends.
fn temp_dir(label: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "fabriccrdt-gossip-{label}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed),
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn crash(peer: usize, at_ms: u64, restart_ms: u64) -> CrashSpec {
    CrashSpec {
        peer,
        at: SimTime::from_millis(at_ms),
        restart_at: SimTime::from_millis(restart_ms),
    }
}

/// Regression (satellite): a peer that crashes *while catching up* used
/// to silently drop the in-flight episode, understating catch-up churn
/// under repeated failures. The episode must now be recorded as
/// abandoned — and the post-recovery episode must still complete.
#[test]
fn crash_mid_catch_up_records_abandoned_episode() {
    // Peer 3 is cut off from everyone (including the orderer) for most
    // of the run, so its 450 ms restart starts a catch-up that cannot
    // progress; the second crash at 600 ms interrupts it.
    let faults = FaultConfig {
        crashes: vec![crash(3, 150, 450), crash(3, 600, 700)],
        partitions: vec![PartitionSpec {
            at: SimTime::from_millis(140),
            heal_at: SimTime::from_millis(900),
            minority: vec![3],
        }],
        ..FaultConfig::none()
    };
    let config = PipelineConfig::paper(25, 23)
        .with_gossip()
        .with_faults(faults);
    let blocks = block_stream(8, 4);
    let mut network = seeded_network(&config);
    run_stream(&mut network, &blocks);
    assert_states_match_reference(&network, &blocks);

    let metrics = network.metrics();
    let abandoned: Vec<_> = metrics
        .catch_up
        .iter()
        .filter(|e| e.peer == 3 && e.is_abandoned())
        .collect();
    assert_eq!(abandoned.len(), 1, "exactly one episode dies in the crash");
    assert_eq!(abandoned[0].from, SimTime::from_millis(450));
    assert_eq!(abandoned[0].ended_at(), SimTime::from_millis(600));
    assert_eq!(
        abandoned[0].completed_at(),
        None,
        "an abandoned episode never completes"
    );
    let completed = metrics
        .catch_up
        .iter()
        .find(|e| e.peer == 3 && e.completed_at().is_some())
        .expect("the second recovery completes a catch-up");
    assert!(completed.from >= SimTime::from_millis(700));
    // The abandoned episode must not poison the worst-case statistic.
    let worst = metrics.worst_catch_up().expect("completed episodes exist");
    assert!(!worst.is_abandoned());
}

/// With durable storage, a restarted peer recovers from its own store
/// (not an in-memory saved ledger) and converges byte-identically; the
/// final run is draw-for-draw identical to the storage-free baseline.
#[test]
fn memory_storage_fault_sweep_matches_no_storage_baseline() {
    gen::cases(20, |g| {
        let blocks = block_stream(g.size(3, 9), g.size(1, 5));
        let base = PipelineConfig::paper(25, g.u64())
            .with_gossip()
            .with_faults(arb_faults(g));

        let mut baseline = seeded_network(&base);
        run_stream(&mut baseline, &blocks);

        let stored_config = base
            .clone()
            .with_storage(StorageConfig::memory().with_snapshot_interval(3));
        let mut stored = seeded_network(&stored_config);
        run_stream(&mut stored, &blocks);

        assert_states_match_reference(&stored, &blocks);
        // The snapshot/replay negotiation draws no randomness, so the
        // two runs consume the PRNG identically and land on the same
        // message totals and per-peer states.
        assert_eq!(
            baseline.metrics().messages_sent,
            stored.metrics().messages_sent,
            "storage must not perturb the PRNG draw sequence"
        );
        for i in 0..stored.peer_count() {
            let a = baseline.snapshot(i).expect("baseline peer up");
            let b = stored.snapshot(i).expect("stored peer up");
            assert_eq!(a.state, b.state, "peer {i} state diverged");
            if stored.metrics().snapshot_transfers == 0 {
                assert_eq!(a.chain, b.chain, "peer {i} chain diverged");
            }
        }
    });
}

/// Append-only-file recovery sweep: across random crash schedules, an
/// AOF-backed network converges to states byte-identical to both the
/// reference replay and a memory-backed run of the same seed — the
/// backend choice is invisible above the store.
#[test]
fn aof_and_memory_backends_converge_identically_under_crashes() {
    gen::cases(8, |g| {
        let blocks = block_stream(g.size(3, 7), g.size(1, 4));
        let at = g.range(120, 400);
        let faults = FaultConfig {
            crashes: vec![crash(g.range(0, 6) as usize, at, at + g.range(50, 400))],
            ..FaultConfig::none()
        };
        let base = PipelineConfig::paper(25, g.u64())
            .with_gossip()
            .with_faults(faults);
        let interval = g.range(2, 5);

        let dir = temp_dir("sweep");
        let aof_config = base
            .clone()
            .with_storage(StorageConfig::append_only(&dir).with_snapshot_interval(interval));
        let mut aof = seeded_network(&aof_config);
        run_stream(&mut aof, &blocks);

        let mem_config = base
            .clone()
            .with_storage(StorageConfig::memory().with_snapshot_interval(interval));
        let mut mem = seeded_network(&mem_config);
        run_stream(&mut mem, &blocks);

        assert_states_match_reference(&aof, &blocks);
        for i in 0..aof.peer_count() {
            assert_eq!(
                aof.snapshot(i).expect("aof peer up"),
                mem.snapshot(i).expect("mem peer up"),
                "peer {i}: AOF and memory backends diverged"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    });
}

/// A long outage over a long chain: the restarted peer must be served a
/// snapshot (strictly cheaper in bytes than replaying the suffix), and
/// the episode's byte accounting must show the saving against the
/// storage-free replay baseline.
#[test]
fn snapshot_catch_up_ships_fewer_bytes_than_replay() {
    let faults = FaultConfig {
        crashes: vec![crash(3, 150, 3050)],
        ..FaultConfig::none()
    };
    let base = PipelineConfig::paper(25, 29)
        .with_gossip()
        .with_faults(faults);
    let blocks = block_stream(30, 3);

    let mut replay_run = seeded_network(&base);
    run_stream(&mut replay_run, &blocks);
    let replay_episode = replay_run
        .metrics()
        .catch_up
        .iter()
        .find(|e| e.peer == 3 && e.completed_at().is_some())
        .copied()
        .expect("storage-free run catches up by replay");
    assert!(!replay_episode.used_snapshot());
    assert!(replay_episode.bytes_shipped > 0);

    let stored_config = base
        .clone()
        .with_storage(StorageConfig::memory().with_snapshot_interval(5));
    let mut stored = seeded_network(&stored_config);
    run_stream(&mut stored, &blocks);
    assert_states_match_reference(&stored, &blocks);

    let metrics = stored.metrics();
    assert!(metrics.snapshot_transfers >= 1, "no snapshot was served");
    assert!(metrics.snapshot_bytes > 0);
    let episode = metrics
        .catch_up
        .iter()
        .find(|e| e.peer == 3 && e.completed_at().is_some())
        .expect("stored run completes catch-up");
    assert!(
        episode.used_snapshot(),
        "a 29-block gap must be served by snapshot"
    );
    assert!(
        episode.bytes_shipped < replay_episode.bytes_shipped,
        "snapshot catch-up shipped {} bytes, replay {}",
        episode.bytes_shipped,
        replay_episode.bytes_shipped
    );
    // The restarted peer adopted the donor snapshot into its own store.
    let adopted = stored
        .durable_snapshot(3)
        .expect("peer 3 holds a durable snapshot");
    assert!(adopted.last_block >= 5);
}

/// Frontier-driven GC: once every replica acknowledges a height, the
/// cluster floor advances and peers prune at it — without disturbing
/// the committed state or convergence.
#[test]
fn gc_sweep_prunes_at_the_acknowledged_floor_without_divergence() {
    gen::cases(10, |g| {
        let blocks = block_stream(g.size(4, 9), g.size(1, 4));
        let config = PipelineConfig::paper(25, g.u64())
            .with_gossip()
            .with_faults(arb_faults(g))
            .with_storage(
                StorageConfig::memory()
                    .with_snapshot_interval(g.range(2, 4))
                    .with_gc(true),
            );
        let mut network = seeded_network(&config);
        run_stream(&mut network, &blocks);
        assert_states_match_reference(&network, &blocks);
        // Fully converged and fully acknowledged: the floor is the
        // whole published chain.
        assert_eq!(network.acked_floor(), network.published_count());
    });
}

/// A fully endorsed CRDT transaction appending an explicit reading
/// value (sized by the caller) to the shared hot key.
fn endorsed_tx_on_key(nonce: u64, key: &str, reading: &str) -> Transaction {
    let client = Identity::new("client", "org1");
    let mut rwset = ReadWriteSet::new();
    rwset.reads.record(key, Some(Height::new(0, 0)));
    rwset.writes.put_crdt(
        key.to_string(),
        format!(r#"{{"readings":["{reading}"]}}"#).into_bytes(),
    );
    let mut tx = Transaction {
        id: TxId::derive(&client, nonce, "cc"),
        client,
        chaincode: "cc".into(),
        rwset,
        endorsements: Vec::new(),
    };
    let payload = tx.response_payload();
    for org in ["org1", "org2", "org3"] {
        let kp = KeyPair::derive(Identity::new("peer0", org));
        tx.endorsements.push(Endorsement {
            endorser: kp.identity().clone(),
            signature: kp.sign(&payload),
        });
    }
    tx
}

/// Regression (satellite): a helper whose in-memory chain base moved up
/// (it recovered through its own durable snapshot) used to be unable to
/// serve replay below that base even though its store still retained
/// the blocks — forcing every lagging peer it helped onto the
/// snapshot path. Anti-entropy must fall back to reading the suffix
/// from the helper's `LedgerStore`.
///
/// Setup (40 ms cadence so every block commits before the first 500 ms
/// anti-entropy tick, block by block): peer 1 crashes at height 1 and
/// peer 5 at height 2, pinning the frontier floor; peer 1 recovers
/// mid-stream, advancing the floor to 2 while commits are still
/// running, so every live peer prunes its chain and compacts its store
/// down to `blocks 3.. + snapshots`. Helper peer 3 — holding
/// `snap(4) + snap(8) + blocks 3..10` — then crashes and recovers from
/// its own store: a snapshot-path recovery (blocks 3..10 are not
/// contiguous from 1), leaving its in-memory chain based at block 9
/// while the store still retains 3..10. Peer 5 finally restarts at
/// height 2 inside a partition where peer 3 is the only reachable
/// helper and the orderer is unreachable. Blocks 1–2 carry fat CRDT
/// payloads that persist in the world state (making every snapshot
/// expensive) while blocks 3..10 are small — so the byte negotiation
/// must pick replay of 3..10, which only the helper's *store* can
/// serve.
#[test]
fn snapshot_recovered_helper_serves_replay_from_its_store() {
    let faults = FaultConfig {
        crashes: vec![
            crash(1, 58, 180),  // pins the floor at 1, then releases it
            crash(5, 95, 2000), // the lagging peer, pinned at height 2
            crash(3, 450, 550), // the helper; recovers via its snapshot
        ],
        partitions: vec![PartitionSpec {
            at: SimTime::from_millis(500),
            heal_at: SimTime::from_millis(3000),
            minority: vec![3, 5],
        }],
        ..FaultConfig::none()
    };
    let config = PipelineConfig::paper(25, 17)
        .with_gossip()
        .with_faults(faults)
        .with_storage(
            StorageConfig::memory()
                .with_snapshot_interval(4)
                .with_gc(true),
        );
    let fat = "x".repeat(24_000);
    let blocks: Vec<Block> = (1..=10u64)
        .map(|n| {
            let reading = if n <= 2 {
                format!("r{n}-{fat}")
            } else {
                format!("r{n}")
            };
            let key = format!("k{n}");
            Block::assemble(n, [0; 32], vec![endorsed_tx_on_key(n, &key, &reading)])
        })
        .collect();
    let mut network = seeded_network(&config);
    for (i, block) in blocks.iter().enumerate() {
        network.publish(SimTime::from_millis(40 * (i as u64 + 1)), block.clone());
    }
    network.drain();
    assert_states_match_reference(&network, &blocks);

    // The wedge actually existed: the helper's chain was rebased onto
    // its own snap(8), so blocks 3..8 could only have come from its
    // store.
    let helper = network.peer(3).expect("helper up after drain");
    assert!(
        helper.chain().block(8).is_none(),
        "helper chain was not truncated; the scenario lost its wedge"
    );
    assert!(helper.chain().block(9).is_some());

    let episode = network
        .metrics()
        .catch_up
        .iter()
        .find(|e| e.peer == 5 && e.completed_at().is_some())
        .expect("the lagging peer completes its catch-up");
    assert!(
        !episode.used_snapshot(),
        "catch-up must be served by store-backed replay, not a snapshot"
    );
    assert!(episode.bytes_shipped > 0);
}

fn arb_faults(g: &mut Gen) -> FaultConfig {
    let mut faults = FaultConfig {
        link: LinkFaults {
            drop: g.f64_in(0.0, 0.45),
            duplicate: g.f64_in(0.0, 0.25),
            extra_delay: if g.flip() {
                LatencyModel::Exponential {
                    mean_secs: g.f64_in(0.0005, 0.003),
                }
            } else {
                LatencyModel::zero()
            },
        },
        crashes: Vec::new(),
        partitions: Vec::new(),
    };
    if g.flip() {
        let at = SimTime::from_millis(g.range(50, 500));
        faults.crashes.push(CrashSpec {
            peer: g.range(0, 6) as usize,
            at,
            restart_at: at + SimTime::from_millis(g.range(50, 500)),
        });
    }
    if g.flip() {
        let minority: Vec<usize> = (0..6).filter(|_| g.prob(0.35)).collect();
        let minority = if minority.is_empty() || minority.len() == 6 {
            vec![g.range(0, 6) as usize]
        } else {
            minority
        };
        let at = SimTime::from_millis(g.range(50, 400));
        faults.partitions.push(PartitionSpec {
            at,
            heal_at: at + SimTime::from_millis(g.range(50, 600)),
            minority,
        });
    }
    faults
}
