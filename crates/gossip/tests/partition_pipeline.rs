//! The full FabricCRDT pipeline over gossip dissemination under a
//! combined fault schedule — lossy links, a mid-run crash/restart, and
//! a partition that heals. This is the integration-test promotion of
//! `examples/gossip_partition.rs` (kept as a thin demo wrapper): every
//! CRDT transaction must still commit, and the dissemination metrics
//! must show the faults actually happened and were repaired.

use std::sync::Arc;

use fabriccrdt::CrdtValidator;
use fabriccrdt_fabric::chaincode::ChaincodeRegistry;
use fabriccrdt_fabric::config::{
    CrashSpec, FaultConfig, LinkFaults, PartitionSpec, PipelineConfig,
};
use fabriccrdt_fabric::metrics::RunMetrics;
use fabriccrdt_fabric::simulation::{Simulation, TxRequest};
use fabriccrdt_gossip::GossipDelivery;
use fabriccrdt_sim::latency::LatencyModel;
use fabriccrdt_sim::time::SimTime;
use fabriccrdt_workload::iot::IotChaincode;

const TXS: usize = 250;
const RATE_TPS: f64 = 300.0;

/// The example's fault schedule: 20 % drop / 5 % duplication on every
/// gossip hop, peer 2 down 250–700 ms, peers 4–5 partitioned off
/// 400 ms–1 s.
fn faults() -> FaultConfig {
    FaultConfig {
        link: LinkFaults {
            drop: 0.20,
            duplicate: 0.05,
            extra_delay: LatencyModel::Constant(SimTime::ZERO),
        },
        crashes: vec![CrashSpec {
            peer: 2,
            at: SimTime::from_millis(250),
            restart_at: SimTime::from_millis(700),
        }],
        partitions: vec![PartitionSpec {
            at: SimTime::from_millis(400),
            heal_at: SimTime::from_millis(1_000),
            minority: vec![4, 5],
        }],
    }
}

fn run(seed: u64) -> RunMetrics {
    let config = PipelineConfig::paper(25, seed)
        .with_gossip()
        .with_faults(faults());
    let mut registry = ChaincodeRegistry::new();
    registry.deploy(Arc::new(IotChaincode::crdt()));
    let delivery = Box::new(GossipDelivery::new(&config, CrdtValidator::new));
    let mut sim = Simulation::with_delivery(config, CrdtValidator::new(), registry, delivery);
    sim.seed_state("device1", br#"{"readings":[]}"#.to_vec());

    // All-conflicting CRDT transactions on one hot key.
    let schedule: Vec<(SimTime, TxRequest)> = (0..TXS)
        .map(|i| {
            let json = format!(r#"{{"deviceID":"device1","readings":["r{i}"]}}"#);
            (
                SimTime::from_secs_f64(i as f64 / RATE_TPS),
                TxRequest::new(
                    "iot-crdt",
                    IotChaincode::args(&["device1".into()], &["device1".into()], &json),
                ),
            )
        })
        .collect();
    sim.run(schedule)
}

#[test]
fn faulty_gossip_commits_every_crdt_transaction() {
    let metrics = run(7);
    assert_eq!(metrics.submitted(), TXS);
    // The paper's punchline carried through faults: CRDT merges mean
    // faults cost latency, never correctness.
    assert_eq!(metrics.successful(), TXS);
    assert!(metrics.blocks_committed >= (TXS / 25) as u64);
}

#[test]
fn dissemination_metrics_reflect_the_fault_schedule() {
    let metrics = run(7);
    let d = metrics
        .dissemination
        .expect("the gossip layer reports dissemination metrics");
    // A 20 % drop rate over hundreds of pushes must lose some.
    assert!(d.messages_sent > 0);
    assert!(d.messages_dropped > 0, "lossy links dropped nothing?");
    assert!(d.messages_duplicated > 0, "5% duplication produced none?");
    // The crashed peer and the partitioned minority must have been
    // repaired by anti-entropy, and every catch-up must complete.
    assert!(d.anti_entropy_transfers > 0, "no anti-entropy repairs ran");
    assert!(d.anti_entropy_blocks > 0);
    for episode in &d.catch_up {
        assert!(
            episode.ended_at() >= episode.from,
            "catch-up episode ends before it starts"
        );
    }
}

#[test]
fn faulty_gossip_run_is_deterministic() {
    let a = run(7);
    let b = run(7);
    assert_eq!(a.records, b.records);
    assert_eq!(a.blocks_committed, b.blocks_committed);
    assert_eq!(a.end_time, b.end_time);
    let (da, db) = (a.dissemination.unwrap(), b.dissemination.unwrap());
    assert_eq!(da.messages_sent, db.messages_sent);
    assert_eq!(da.messages_dropped, db.messages_dropped);
}
