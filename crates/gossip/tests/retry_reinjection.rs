//! Abort-and-retry through the gossip dissemination layer: a retried
//! transaction is re-endorsed and re-ordered as a fresh submission, so
//! its replacement block must flow through gossip like any other — the
//! retry loop lives above the delivery seam and needs no gossip-side
//! plumbing. These tests pin that down: retries fire, some succeed,
//! every transaction ends with exactly one verdict, and the retry
//! counters stay silent when no policy is configured.

use std::sync::Arc;

use fabriccrdt_fabric::chaincode::{Chaincode, ChaincodeError, ChaincodeRegistry, ChaincodeStub};
use fabriccrdt_fabric::config::{PipelineConfig, RetryPolicy};
use fabriccrdt_fabric::simulation::TxRequest;
use fabriccrdt_gossip::fabric_gossip_simulation;
use fabriccrdt_sim::time::SimTime;

/// Read-modify-write chaincode: args = [key, value].
struct Rmw;

impl Chaincode for Rmw {
    fn name(&self) -> &str {
        "rmw"
    }

    fn invoke(&self, stub: &mut ChaincodeStub<'_>, args: &[String]) -> Result<(), ChaincodeError> {
        stub.get_state(&args[0]);
        stub.put_state(&args[0], args[1].clone().into_bytes());
        Ok(())
    }
}

fn registry() -> ChaincodeRegistry {
    let mut reg = ChaincodeRegistry::new();
    reg.deploy(Arc::new(Rmw));
    reg
}

/// Hot-key contention: bursts of RMWs on one key guarantee MVCC
/// conflicts in every block, so the retry loop has work to do.
fn contended_schedule(n: usize) -> Vec<(SimTime, TxRequest)> {
    (0..n)
        .map(|i| {
            let key = if i % 4 == 0 {
                format!("k{i}")
            } else {
                "hot".into()
            };
            (
                SimTime::from_secs_f64(i as f64 / 250.0),
                TxRequest::new("rmw", vec![key, format!("v{i}")]),
            )
        })
        .collect()
}

#[test]
fn retries_reinject_through_gossip_delivery() {
    let config = PipelineConfig::paper(10, 31)
        .with_gossip()
        .with_retry_policy(RetryPolicy::calibrated(2));
    let mut sim = fabric_gossip_simulation(config, registry());
    sim.seed_state("hot", b"0".to_vec());
    let metrics = sim.run(contended_schedule(120));

    assert_eq!(metrics.submitted(), 120);
    assert_eq!(
        metrics.successful() + metrics.failed(),
        120,
        "a retried transaction lost its verdict in the gossip pipeline"
    );
    assert!(
        metrics.retry.retries > 0,
        "hot-key contention must trigger retries"
    );
    assert!(
        metrics.retry.retry_success > 0,
        "backed-off retries land in later, less contended blocks"
    );
    assert_eq!(
        metrics.retry.retry_latency.len() as u64,
        metrics.retry.retry_success,
        "one retry latency sample per transaction that succeeded on retry"
    );
    assert!(metrics.retry.wasted_validation_work > 0);
    assert!(
        metrics.dissemination.is_some(),
        "the gossip layer really ran"
    );
}

#[test]
fn no_retry_policy_keeps_counters_silent() {
    let config = PipelineConfig::paper(10, 31).with_gossip();
    let mut sim = fabric_gossip_simulation(config, registry());
    sim.seed_state("hot", b"0".to_vec());
    let metrics = sim.run(contended_schedule(120));

    assert_eq!(metrics.retry.retries, 0);
    assert_eq!(metrics.retry.retry_success, 0);
    assert!(metrics.retry.retry_latency.is_empty());
    assert!(
        metrics.retry.wasted_validation_work > 0,
        "failed transactions count their wasted endorsement/validation work \
         even without a retry policy"
    );
    assert!(metrics.failed() > 0);
}
