//! Pipelined-validation equivalence over gossip fault schedules.
//!
//! The cross-block pipelined commit path (pre-validate block N+1 on
//! the worker pool while block N finalizes; lockless snapshot reads
//! reconciled by MVCC at finalize) may only change wall-clock time,
//! never outcomes. This sweep drives the full gossip network — lossy
//! links, crash/restart windows, healing partitions — over 50 seeded
//! fault schedules and asserts that a `Pipelined { workers: 4 }` run
//! is indistinguishable from the `Sequential` seed path: identical
//! [`RunMetrics`] (work-derived simulated times included) and
//! byte-identical ledgers on *every* replica, not just the observer.
//!
//! The Raft half of this sweep (pipelined validation under ordering
//! crash/failover schedules) lives in
//! `crates/ordering/tests/pipeline_equivalence.rs`.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use fabriccrdt::CrdtValidator;
use fabriccrdt_fabric::chaincode::{Chaincode, ChaincodeError, ChaincodeRegistry, ChaincodeStub};
use fabriccrdt_fabric::config::{CrashSpec, FaultConfig, PartitionSpec, PipelineConfig};
use fabriccrdt_fabric::metrics::RunMetrics;
use fabriccrdt_fabric::peer::PeerSnapshot;
use fabriccrdt_fabric::pipeline::ValidationPipeline;
use fabriccrdt_fabric::simulation::{Simulation, TxRequest};
use fabriccrdt_gossip::{ChannelDelivery, GossipNetwork};
use fabriccrdt_sim::gen::{self, Gen};
use fabriccrdt_sim::time::SimTime;
use fabriccrdt_workload::iot::IotChaincode;

/// Read-modify-write chaincode: args = [key, value]. Non-CRDT reads
/// on a contended key make MVCC outcomes — and therefore the
/// speculative read checks the pipelined path must reconcile —
/// sensitive to block formation.
struct Rmw;

impl Chaincode for Rmw {
    fn name(&self) -> &str {
        "rmw"
    }

    fn invoke(&self, stub: &mut ChaincodeStub<'_>, args: &[String]) -> Result<(), ChaincodeError> {
        stub.get_state(&args[0]);
        stub.put_state(&args[0], args[1].clone().into_bytes());
        Ok(())
    }
}

/// The paper topology's replica count (3 orgs x 2 peers).
const PEERS: usize = 6;

fn registry() -> ChaincodeRegistry {
    let mut reg = ChaincodeRegistry::new();
    reg.deploy(Arc::new(IotChaincode::crdt()));
    reg.deploy(Arc::new(Rmw));
    reg
}

/// A randomized gossip fault schedule: optional lossy/duplicating
/// links, up to two crash/restart windows, and up to one healing
/// minority partition — all inside the traffic window.
fn arb_faults(g: &mut Gen, horizon_ms: u64) -> FaultConfig {
    let mut faults = FaultConfig::none();
    if g.prob(0.5) {
        faults.link.drop = g.f64_in(0.0, 0.25);
    }
    if g.prob(0.3) {
        faults.link.duplicate = g.f64_in(0.0, 0.10);
    }
    // Crash windows target distinct peers: overlapping crash/restart
    // windows on one peer are outside the lane's fault model.
    let first = g.range(0, PEERS as u64) as usize;
    for k in 0..g.size(0, 2) {
        let at = SimTime::from_millis(g.range(1, horizon_ms));
        faults.crashes.push(CrashSpec {
            peer: (first + k) % PEERS,
            at,
            restart_at: at + SimTime::from_millis(g.range(50, 600)),
        });
    }
    if g.flip() {
        let at = SimTime::from_millis(g.range(1, horizon_ms));
        let minority: Vec<usize> = (0..PEERS).filter(|_| g.prob(0.3)).take(2).collect();
        if !minority.is_empty() {
            faults.partitions.push(PartitionSpec {
                at,
                heal_at: at + SimTime::from_millis(g.range(100, 800)),
                minority,
            });
        }
    }
    faults
}

/// Hot-key CRDT merges (the paper's workload) interleaved with
/// MVCC-contended RMW writes on a second hot key.
fn arb_schedule(g: &mut Gen) -> Vec<(SimTime, TxRequest)> {
    let n = g.size(30, 70);
    let rate = g.f64_in(150.0, 350.0);
    (0..n)
        .map(|i| {
            let request = if g.prob(0.5) {
                let json = format!(r#"{{"deviceID":"device1","readings":["r{i}"]}}"#);
                TxRequest::new(
                    "iot-crdt",
                    IotChaincode::args(&["device1".into()], &["device1".into()], &json),
                )
            } else {
                TxRequest::new("rmw", vec!["hot".into(), format!("v{i}")])
            };
            (SimTime::from_secs_f64(i as f64 / rate), request)
        })
        .collect()
}

/// Runs the gossip pipeline with a handle on the network, so after the
/// drain every replica's ledger bytes can be read back — the observer
/// peer alone would hide a divergence on a non-observed replica.
fn run_with(
    pipeline: ValidationPipeline,
    block_size: usize,
    seed: u64,
    faults: &FaultConfig,
    schedule: &[(SimTime, TxRequest)],
) -> (RunMetrics, Vec<Option<PeerSnapshot>>) {
    let config = PipelineConfig::paper(block_size, seed)
        .with_gossip()
        .with_faults(faults.clone())
        .with_validation(pipeline);
    let network = Rc::new(RefCell::new(GossipNetwork::new(
        &config,
        CrdtValidator::new,
    )));
    let delivery = Box::new(ChannelDelivery::new(network.clone(), 0));
    let mut sim = Simulation::with_delivery(config, CrdtValidator::new(), registry(), delivery);
    sim.seed_state("device1", br#"{"readings":[]}"#.to_vec());
    sim.seed_state("hot", b"0".to_vec());
    let metrics = sim.run(schedule.to_vec());
    let snapshots = {
        let mut network = network.borrow_mut();
        network.drain();
        (0..network.peer_count())
            .map(|peer| network.snapshot(peer))
            .collect()
    };
    (metrics, snapshots)
}

/// 50 seeded fault schedules: the pipelined commit path replays the
/// sequential one bit for bit on every replica.
#[test]
fn pipelined_gossip_matches_sequential_over_seeded_fault_sweep() {
    gen::cases(50, |g| {
        let seed = g.u64();
        let block_size = g.size(5, 25);
        let schedule = arb_schedule(g);
        let horizon_ms = 1 + (schedule.len() as u64 * 1000) / 150;
        let faults = arb_faults(g, horizon_ms);

        let (seq_metrics, seq_snapshots) = run_with(
            ValidationPipeline::Sequential,
            block_size,
            seed,
            &faults,
            &schedule,
        );
        let (pip_metrics, pip_snapshots) = run_with(
            ValidationPipeline::pipelined(4),
            block_size,
            seed,
            &faults,
            &schedule,
        );

        assert_eq!(
            seq_metrics, pip_metrics,
            "seed {seed}: metrics diverged under pipelining"
        );
        assert_eq!(seq_snapshots.len(), pip_snapshots.len());
        for (peer, (seq, pip)) in seq_snapshots.iter().zip(&pip_snapshots).enumerate() {
            assert_eq!(
                seq, pip,
                "seed {seed}: replica {peer} ledger diverged under pipelining"
            );
        }
        // The drain leaves every replica byte-identical, so the sweep
        // compares real ledgers, not six copies of `None`.
        assert!(
            seq_snapshots.iter().all(Option::is_some),
            "seed {seed}: a replica was still down after the drain"
        );
    });
}
