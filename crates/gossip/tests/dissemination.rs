//! Integration tests of the gossip dissemination layer: byte-identical
//! convergence under every fault class, determinism, and pipeline
//! equivalence with the default ideal-FIFO delivery at zero faults.

use std::sync::Arc;

use fabriccrdt::CrdtValidator;
use fabriccrdt_crypto::{Identity, KeyPair};
use fabriccrdt_fabric::chaincode::{Chaincode, ChaincodeError, ChaincodeRegistry, ChaincodeStub};
use fabriccrdt_fabric::config::{
    CrashSpec, FaultConfig, LinkFaults, PartitionSpec, PipelineConfig, Topology,
};
use fabriccrdt_fabric::peer::Peer;
use fabriccrdt_fabric::simulation::{Simulation, TxRequest};
use fabriccrdt_fabric::validator::FabricValidator;
use fabriccrdt_gossip::{fabric_gossip_simulation, GossipNetwork};
use fabriccrdt_ledger::block::Block;
use fabriccrdt_ledger::rwset::ReadWriteSet;
use fabriccrdt_ledger::transaction::{Endorsement, Transaction, TxId};
use fabriccrdt_ledger::version::Height;
use fabriccrdt_sim::gen::{self, Gen};
use fabriccrdt_sim::latency::LatencyModel;
use fabriccrdt_sim::time::SimTime;

const SEED_DOC: &[u8] = br#"{"readings":[]}"#;

/// A fully endorsed CRDT transaction on the shared hot key.
fn endorsed_tx(nonce: u64) -> Transaction {
    endorsed_tx_on("hot", nonce)
}

/// A fully endorsed CRDT transaction on an arbitrary key.
fn endorsed_tx_on(key: &str, nonce: u64) -> Transaction {
    let client = Identity::new("client", "org1");
    let mut rwset = ReadWriteSet::new();
    rwset.reads.record(key, Some(Height::new(0, 0))); // stale on purpose
    rwset.writes.put_crdt(
        key.to_string(),
        format!(r#"{{"readings":["r{nonce}"]}}"#).into_bytes(),
    );
    let mut tx = Transaction {
        id: TxId::derive(&client, nonce, "cc"),
        client,
        chaincode: "cc".into(),
        rwset,
        endorsements: Vec::new(),
    };
    let payload = tx.response_payload();
    for org in ["org1", "org2", "org3"] {
        let kp = KeyPair::derive(Identity::new("peer0", org));
        tx.endorsements.push(Endorsement {
            endorser: kp.identity().clone(),
            signature: kp.sign(&payload),
        });
    }
    tx
}

/// An orderer-style raw block stream, numbered from 1.
fn block_stream(blocks: usize, per_block: usize) -> Vec<Block> {
    let mut nonce = 0u64;
    (1..=blocks as u64)
        .map(|number| {
            let txs = (0..per_block)
                .map(|_| {
                    nonce += 1;
                    endorsed_tx(nonce)
                })
                .collect();
            Block::assemble(number, [0; 32], txs)
        })
        .collect()
}

/// The ideal-FIFO outcome: one peer committing the stream in order.
fn reference_snapshot(blocks: &[Block]) -> fabriccrdt_fabric::peer::PeerSnapshot {
    let mut peer = Peer::new(CrdtValidator::new(), Topology::paper().default_policy());
    peer.seed_state("hot", SEED_DOC.to_vec());
    for block in blocks {
        let staged = peer.process_block(block.clone());
        peer.commit(staged).unwrap();
    }
    peer.snapshot()
}

fn seeded_network(config: &PipelineConfig) -> GossipNetwork<CrdtValidator> {
    let mut network = GossipNetwork::new(config, CrdtValidator::new);
    network.seed_state("hot", SEED_DOC);
    network
}

/// Publishes the stream at a 100 ms cadence and drains the network.
fn run_stream(network: &mut GossipNetwork<CrdtValidator>, blocks: &[Block]) {
    for (i, block) in blocks.iter().enumerate() {
        network.publish(SimTime::from_millis(100 * (i as u64 + 1)), block.clone());
    }
    network.drain();
}

fn assert_all_match_reference(network: &GossipNetwork<CrdtValidator>, blocks: &[Block]) {
    assert!(
        network.fully_converged(),
        "heights: {:?}",
        network.committed_heights()
    );
    let reference = reference_snapshot(blocks);
    for i in 0..network.peer_count() {
        let snap = network.snapshot(i).expect("peer up after drain");
        assert_eq!(snap.state, reference.state, "peer {i} state diverged");
        assert_eq!(snap.chain, reference.chain, "peer {i} chain diverged");
    }
}

#[test]
fn zero_fault_network_converges_byte_identically() {
    let config = PipelineConfig::paper(25, 7).with_gossip();
    let blocks = block_stream(8, 5);
    let mut network = seeded_network(&config);
    run_stream(&mut network, &blocks);
    assert_all_match_reference(&network, &blocks);

    let metrics = network.metrics();
    // Every (block, peer) pair gets exactly one propagation sample.
    assert_eq!(metrics.propagation.len(), 8 * network.peer_count());
    assert_eq!(metrics.messages_dropped, 0);
    assert_eq!(metrics.messages_duplicated, 0);
    assert!(metrics.messages_sent > 0);
    // Epidemic push with fanout 3 over 6 peers is inherently redundant.
    assert!(metrics.redundant_messages > 0);
    assert!(metrics.catch_up.is_empty());
}

#[test]
fn identical_configs_replay_identical_runs() {
    let faults = FaultConfig {
        link: LinkFaults {
            drop: 0.25,
            duplicate: 0.15,
            extra_delay: LatencyModel::Exponential { mean_secs: 0.002 },
        },
        crashes: vec![CrashSpec {
            peer: 2,
            at: SimTime::from_millis(150),
            restart_at: SimTime::from_millis(500),
        }],
        partitions: Vec::new(),
    };
    let config = PipelineConfig::paper(25, 11)
        .with_gossip()
        .with_faults(faults);
    let blocks = block_stream(6, 4);

    let run = || {
        let mut network = seeded_network(&config);
        run_stream(&mut network, &blocks);
        let snapshots: Vec<_> = (0..network.peer_count())
            .map(|i| network.snapshot(i).unwrap())
            .collect();
        (network.take_metrics(), snapshots)
    };
    assert_eq!(run(), run());
}

#[test]
fn link_faults_recovered_by_anti_entropy() {
    let faults = FaultConfig {
        link: LinkFaults {
            drop: 0.4,
            duplicate: 0.1,
            extra_delay: LatencyModel::Exponential { mean_secs: 0.002 },
        },
        ..FaultConfig::none()
    };
    let config = PipelineConfig::paper(25, 13)
        .with_gossip()
        .with_faults(faults);
    let blocks = block_stream(8, 4);
    let mut network = seeded_network(&config);
    run_stream(&mut network, &blocks);
    assert_all_match_reference(&network, &blocks);

    let metrics = network.metrics();
    assert!(metrics.messages_dropped > 0, "40% drop rate must bite");
    assert!(metrics.messages_duplicated > 0);
    // Regression: the ratio must stay a sane fraction under heavy loss
    // (the old unchecked subtraction could underflow to ~0/2^64).
    let ratio = metrics.redundancy_ratio();
    assert!((0.0..=1.0).contains(&ratio), "redundancy ratio {ratio}");
}

#[test]
fn crashed_peer_restores_ledger_and_catches_up() {
    let faults = FaultConfig {
        crashes: vec![CrashSpec {
            peer: 3,
            at: SimTime::from_millis(150),
            restart_at: SimTime::from_millis(450),
        }],
        ..FaultConfig::none()
    };
    let config = PipelineConfig::paper(25, 17)
        .with_gossip()
        .with_faults(faults);
    let blocks = block_stream(8, 4);
    let mut network = seeded_network(&config);
    run_stream(&mut network, &blocks);
    assert_all_match_reference(&network, &blocks);

    let metrics = network.metrics();
    let episode = metrics
        .catch_up
        .iter()
        .find(|e| e.peer == 3)
        .expect("restarted peer records a catch-up episode");
    assert!(episode.from >= SimTime::from_millis(450));
    let caught_up_at = episode.completed_at().expect("episode completed");
    assert!(caught_up_at >= episode.from);
    assert!(
        metrics.anti_entropy_blocks > 0,
        "catch-up uses state transfer"
    );
}

#[test]
fn partition_heals_into_byte_identical_ledgers() {
    // Org 3 (peers 4 and 5) loses the rest of the network — including
    // the ordering service — for 400 ms mid-stream.
    let faults = FaultConfig {
        partitions: vec![PartitionSpec {
            at: SimTime::from_millis(200),
            heal_at: SimTime::from_millis(600),
            minority: vec![4, 5],
        }],
        ..FaultConfig::none()
    };
    let config = PipelineConfig::paper(25, 19)
        .with_gossip()
        .with_faults(faults);
    let blocks = block_stream(8, 4);
    let mut network = seeded_network(&config);
    run_stream(&mut network, &blocks);
    assert_all_match_reference(&network, &blocks);

    let metrics = network.metrics();
    for peer in [4usize, 5] {
        let episode = metrics
            .catch_up
            .iter()
            .find(|e| e.peer == peer)
            .expect("isolated peers record catch-up episodes");
        assert_eq!(
            episode.from,
            SimTime::from_millis(600),
            "episode starts at heal"
        );
        assert!(episode.duration() > SimTime::ZERO);
    }
}

/// Satellite property: *any* seed × fault schedule converges every
/// replica to the exact committed state ideal-FIFO delivery produces,
/// once all peers have caught up.
#[test]
fn any_fault_schedule_converges_to_ideal_state() {
    gen::cases(24, |g| {
        let blocks = block_stream(g.size(3, 9), g.size(1, 5));
        let config = PipelineConfig::paper(25, g.u64())
            .with_gossip()
            .with_faults(arb_faults(g));
        let mut network = seeded_network(&config);
        run_stream(&mut network, &blocks);
        assert_all_match_reference(&network, &blocks);
    });
}

/// Satellite property: the parallel validation pipeline is
/// value-identical to the sequential seed path on the *CRDT merge*
/// workload too, across random fault schedules — every converged
/// peer's snapshot matches the sequential reference byte for byte.
#[test]
fn parallel_validation_matches_sequential_under_fault_schedules() {
    gen::cases(16, |g| {
        let blocks = block_stream(g.size(3, 8), g.size(1, 5));
        let workers = g.size(2, 8);
        let config = PipelineConfig::paper(25, g.u64())
            .with_gossip()
            .with_faults(arb_faults(g))
            .with_parallel_validation(workers);
        let mut network = seeded_network(&config);
        run_stream(&mut network, &blocks);
        // The reference replay inside runs the sequential default.
        assert_all_match_reference(&network, &blocks);
    });
}

/// Conflict-graph finalize sweep (gossip half; the Raft half lives in
/// `crates/ordering/tests/pipeline_equivalence.rs`): across 50 random
/// fault schedules, a workload mixing hot-key CRDT contention (one
/// multi-member chain per block) with disjoint-key documents (singleton
/// chains) converges every gossip peer running parallel finalize to the
/// byte-identical ledger of the sequential reference replay.
#[test]
fn parallel_finalize_matches_sequential_over_fault_sweep() {
    gen::cases(50, |g| {
        let block_count = g.size(3, 8);
        let per_block = g.size(2, 6);
        let blocks = mixed_block_stream(g, block_count, per_block);
        let workers = g.size(2, 8);
        let config = PipelineConfig::paper(25, g.u64())
            .with_gossip()
            .with_faults(arb_faults(g))
            .with_parallel_validation(workers);
        let mut network = seeded_network(&config);
        run_stream(&mut network, &blocks);
        // The reference replay inside runs the sequential default.
        assert_all_match_reference(&network, &blocks);
    });
}

/// A block stream mixing hot-key contention with per-transaction
/// disjoint keys, so every block's conflict graph has both a
/// multi-member chain and singletons.
fn mixed_block_stream(g: &mut Gen, blocks: usize, per_block: usize) -> Vec<Block> {
    let mut nonce = 0u64;
    (1..=blocks as u64)
        .map(|number| {
            let txs = (0..per_block)
                .map(|_| {
                    nonce += 1;
                    if g.prob(0.5) {
                        endorsed_tx(nonce)
                    } else {
                        endorsed_tx_on(&format!("doc{nonce}"), nonce)
                    }
                })
                .collect();
            Block::assemble(number, [0; 32], txs)
        })
        .collect()
}

fn arb_faults(g: &mut Gen) -> FaultConfig {
    let mut faults = FaultConfig {
        link: LinkFaults {
            drop: g.f64_in(0.0, 0.45),
            duplicate: g.f64_in(0.0, 0.25),
            extra_delay: if g.flip() {
                LatencyModel::Exponential {
                    mean_secs: g.f64_in(0.0005, 0.003),
                }
            } else {
                LatencyModel::zero()
            },
        },
        crashes: Vec::new(),
        partitions: Vec::new(),
    };
    if g.flip() {
        let at = SimTime::from_millis(g.range(50, 500));
        faults.crashes.push(CrashSpec {
            peer: g.range(0, 6) as usize,
            at,
            restart_at: at + SimTime::from_millis(g.range(50, 500)),
        });
    }
    if g.flip() {
        let minority: Vec<usize> = (0..6).filter(|_| g.prob(0.35)).collect();
        let minority = if minority.is_empty() || minority.len() == 6 {
            vec![g.range(0, 6) as usize]
        } else {
            minority
        };
        let at = SimTime::from_millis(g.range(50, 400));
        faults.partitions.push(PartitionSpec {
            at,
            heal_at: at + SimTime::from_millis(g.range(50, 600)),
            minority,
        });
    }
    faults
}

/// Read-modify-write chaincode with plain (conflicting) writes — the
/// workload where validation outcomes are sensitive to block formation.
struct Rmw;

impl Chaincode for Rmw {
    fn name(&self) -> &str {
        "rmw"
    }

    fn invoke(&self, stub: &mut ChaincodeStub<'_>, args: &[String]) -> Result<(), ChaincodeError> {
        stub.get_state(&args[0]);
        stub.put_state(&args[0], args[1].clone().into_bytes());
        Ok(())
    }
}

fn rmw_registry() -> ChaincodeRegistry {
    let mut registry = ChaincodeRegistry::new();
    registry.deploy(Arc::new(Rmw));
    registry
}

fn rmw_schedule(n: usize) -> Vec<(SimTime, TxRequest)> {
    (0..n)
        .map(|i| {
            (
                SimTime::from_secs_f64(i as f64 / 300.0),
                TxRequest::new("rmw", vec!["hot".into(), format!("v{i}")]),
            )
        })
        .collect()
}

/// Acceptance criterion: at zero faults the gossip layer delivers the
/// very same blocks as ideal FIFO, so the run commits the same number of
/// blocks with the same success count. (Per-transaction codes may shift
/// by one position at commit boundaries: the observed peer commits a few
/// hundred microseconds later under gossip, so an endorsement issued
/// right at a boundary can read one block staler — a different member of
/// the conflicting batch wins, but exactly one wins either way.)
#[test]
fn zero_fault_gossip_pipeline_matches_ideal_fifo_outcomes() {
    let config = PipelineConfig::paper(25, 42);

    let mut ideal = Simulation::new(config.clone(), FabricValidator::new(), rmw_registry());
    ideal.seed_state("hot", b"0".to_vec());
    let ideal_metrics = ideal.run(rmw_schedule(150));

    let mut gossip = fabric_gossip_simulation(config.with_gossip(), rmw_registry());
    gossip.seed_state("hot", b"0".to_vec());
    let gossip_metrics = gossip.run(rmw_schedule(150));

    assert_eq!(
        ideal_metrics.blocks_committed,
        gossip_metrics.blocks_committed
    );
    assert_eq!(ideal_metrics.successful(), gossip_metrics.successful());

    assert!(ideal_metrics.dissemination.is_none());
    let dissemination = gossip_metrics
        .dissemination
        .expect("gossip reports metrics");
    assert_eq!(dissemination.messages_dropped, 0);
    assert!(dissemination.messages_sent > 0);
    assert_eq!(
        dissemination.propagation.len() as u64,
        gossip_metrics.blocks_committed * 6
    );
    // Gossip can only add latency over the ideal single hop.
    assert!(gossip_metrics.end_time >= ideal_metrics.end_time);
}
