//! Byzantine block forgery and the gossip ingress screen that detects
//! it.
//!
//! A [`LaneAdversary`] lives inside one channel lane (see
//! [`crate::network`]) and plays both sides of the threat model:
//!
//! - **Injection**: when the lane publishes the canonical block at an
//!   attacked height, the adversary forges divergent variants
//!   ([`TamperMode`]) and schedules their delivery to the configured
//!   victims — spoofing either a compromised relay peer or the
//!   ordering service itself. Forgeries are pure functions of the
//!   canonical block and the victim index, so an adversarial run stays
//!   reproducible and draws nothing from the lane's PRNG stream.
//! - **Screening**: every raw-block ingress first passes the screen.
//!   A block whose Merkle data hash does not cover its transactions is
//!   rejected as tampered; a well-formed block whose header digest
//!   diverges from the canonical digest registered at publish time is
//!   rejected as forged, and each distinct divergent digest per height
//!   is recorded as equivocation evidence. Either way the named relay
//!   is quarantined: its future pushes are dropped at ingress.
//!   Liveness survives quarantine because anti-entropy transfers and
//!   orderer re-requests (which ship committed or canonical blocks)
//!   bypass the push path.
//! - **Probation release**: quarantine is no longer a life sentence.
//!   A quarantined relay that serves
//!   [`AdversaryConfig::probation_rounds`] consecutive gossip rounds
//!   (one per block the lane publishes) without a fresh detection is
//!   released and its pushes count
//!   again — an honest peer that was spoofed *once* (the attacker named
//!   it as `via`) recovers, while a genuinely hostile relay re-offends
//!   on its next forged push and restarts its sentence from zero. The
//!   release decision reads only the per-relay clean-round counter
//!   advanced by [`LaneAdversary::end_round`]; it never touches the
//!   lane's PRNG stream, so enabling or tuning probation changes zero
//!   random draws. `probation_rounds == 0` restores the permanent
//!   quarantine of earlier revisions.
//!
//! With no adversary configured the screen does not exist and the lane
//! behaves byte-for-byte as before.

use std::collections::{BTreeMap, BTreeSet};

use fabriccrdt_crypto::Digest;
use fabriccrdt_fabric::config::{AdversaryConfig, TamperMode};
use fabriccrdt_fabric::metrics::AdversaryMetrics;
use fabriccrdt_ledger::block::Block;
use fabriccrdt_sim::time::SimTime;

/// One attack resolved to a lane's member positions (victims outside
/// the member set are dropped at construction).
struct LaneAttack {
    height: u64,
    mode: TamperMode,
    /// Victim member positions.
    victims: Vec<usize>,
    /// Spoofed relay member position; `None` masquerades as the
    /// ordering service.
    via: Option<usize>,
    delay: SimTime,
}

/// A forged delivery to schedule: `(delay past the orderer hop, victim
/// member position, spoofed sender, forged block)`.
pub(crate) type Injection = (SimTime, usize, Option<usize>, Block);

/// Per-lane adversary state: the resolved attack schedule, the
/// canonical digest registry, equivocation evidence, the quarantine
/// set and detection counters.
pub(crate) struct LaneAdversary {
    attacks: Vec<LaneAttack>,
    /// Canonical header digest per published height.
    canonical: BTreeMap<u64, Digest>,
    /// Distinct divergent digests observed per height.
    evidence: BTreeSet<(u64, Digest)>,
    /// Quarantined member positions, each mapped to the number of
    /// consecutive clean gossip rounds served so far.
    quarantined: BTreeMap<usize, u64>,
    /// Clean rounds required before release; 0 = permanent.
    probation_rounds: u64,
    metrics: AdversaryMetrics,
}

impl LaneAdversary {
    /// Resolves a schedule against one lane's sorted member set.
    /// Victims and relays that are not members are dropped (the attack
    /// cannot reach them on this channel).
    pub(crate) fn new(config: &AdversaryConfig, members: &[usize]) -> Self {
        let attacks = config
            .attacks
            .iter()
            .map(|attack| LaneAttack {
                height: attack.height,
                mode: attack.mode,
                victims: attack
                    .victims
                    .iter()
                    .filter_map(|v| members.binary_search(v).ok())
                    .collect(),
                via: attack.via.and_then(|v| members.binary_search(&v).ok()),
                delay: attack.delay,
            })
            .collect();
        LaneAdversary {
            attacks,
            canonical: BTreeMap::new(),
            evidence: BTreeSet::new(),
            quarantined: BTreeMap::new(),
            probation_rounds: config.probation_rounds,
            metrics: AdversaryMetrics::default(),
        }
    }

    /// Registers the canonical digest of a freshly published block and
    /// returns the forged deliveries to schedule for it. No-op
    /// forgeries (a mode that cannot alter this particular block, e.g.
    /// reordering a 1-transaction block) are skipped, so every counted
    /// injection is genuinely divergent.
    pub(crate) fn injections_for(&mut self, block: &Block) -> Vec<Injection> {
        let number = block.header.number;
        self.canonical.insert(number, block.hash());
        let mut injections = Vec::new();
        for attack in self.attacks.iter().filter(|a| a.height == number) {
            for &victim in &attack.victims {
                let forged = forge(attack.mode, block, victim as u64);
                if forged == *block {
                    continue;
                }
                self.metrics.forged_blocks_injected += 1;
                injections.push((attack.delay, victim, attack.via, forged));
            }
        }
        injections
    }

    /// The ingress screen: whether a raw block pushed by `from` may
    /// enter the replica. Rejections count, collect equivocation
    /// evidence, and quarantine the relay.
    pub(crate) fn admit(&mut self, from: Option<usize>, block: &Block) -> bool {
        if let Some(relay) = from {
            if self.quarantined.contains_key(&relay) {
                self.metrics.quarantine_drops += 1;
                return false;
            }
        }
        if !block.data_hash_is_valid() {
            self.metrics.tampered_rejected += 1;
            self.quarantine(from);
            return false;
        }
        if let Some(&canonical) = self.canonical.get(&block.header.number) {
            let digest = block.hash();
            if digest != canonical {
                self.metrics.forged_rejected += 1;
                if self.evidence.insert((block.header.number, digest)) {
                    self.metrics.equivocations_detected += 1;
                }
                self.quarantine(from);
                return false;
            }
        }
        true
    }

    fn quarantine(&mut self, from: Option<usize>) {
        if let Some(relay) = from {
            // (Re-)insertion zeroes the clean-round counter, so a
            // repeat offender restarts its probation from scratch.
            self.quarantined.insert(relay, 0);
        }
    }

    /// Advances every quarantined relay's probation clock by one clean
    /// gossip round and releases those that have served
    /// `probation_rounds` of them. Called once per lane round (at each
    /// block publish, before new forgeries are registered); reads only
    /// counters — no PRNG draws — so probation leaves the lane's
    /// random stream untouched. With `probation_rounds == 0`
    /// quarantine is permanent and this is a no-op.
    pub(crate) fn end_round(&mut self) {
        if self.probation_rounds == 0 || self.quarantined.is_empty() {
            return;
        }
        let released: Vec<usize> = self
            .quarantined
            .iter_mut()
            .filter_map(|(&relay, clean_rounds)| {
                *clean_rounds += 1;
                (*clean_rounds >= self.probation_rounds).then_some(relay)
            })
            .collect();
        for relay in released {
            self.quarantined.remove(&relay);
            self.metrics.quarantine_releases += 1;
        }
    }

    /// Takes (and resets) the detection counters; the digest registry,
    /// evidence and quarantine set persist across takes.
    pub(crate) fn take_metrics(&mut self) -> AdversaryMetrics {
        let mut metrics = std::mem::take(&mut self.metrics);
        metrics.quarantined_peers = self.quarantined.len() as u64;
        metrics
    }
}

/// Forges a divergent variant of the canonical block. `salt` (the
/// victim position) varies the forged content, so one equivocating
/// publish yields *different* well-formed blocks at the same height
/// for different victims. Deterministic: no PRNG involved.
fn forge(mode: TamperMode, block: &Block, salt: u64) -> Block {
    // Odd and injective in the victim index (mod 256), so distinct
    // victims get distinct forgeries and the flip is never a no-op.
    let poison = (salt as u8).wrapping_mul(2) | 1;
    match mode {
        TamperMode::FlipPayloadByte => {
            let mut forged = block.clone();
            if let Some(tx) = forged.transactions.first_mut() {
                tx.id.0[0] ^= poison;
            }
            forged
        }
        TamperMode::DuplicateTx => {
            let mut forged = block.clone();
            if let Some(tx) = forged.transactions.first().cloned() {
                forged.transactions.push(tx);
            }
            forged
        }
        TamperMode::ReorderTxs => {
            let mut forged = block.clone();
            forged.transactions.reverse();
            forged
        }
        TamperMode::ForgeTipHash => forge_previous_hash(block, poison),
        TamperMode::EquivocateValue => {
            if block.transactions.is_empty() {
                // An empty block has no value to equivocate on; the
                // orderer diverges on the chain linkage instead.
                return forge_previous_hash(block, poison);
            }
            let mut transactions = block.transactions.clone();
            transactions[0].id.0[0] ^= poison;
            // Re-sealed: the forged payload carries a *valid* data
            // hash, detectable only against the canonical digest.
            Block::assemble(
                block.header.number,
                block.header.previous_hash,
                transactions,
            )
        }
    }
}

/// Re-seals the block over a salted previous-block hash — a splice
/// onto a fork that never existed.
fn forge_previous_hash(block: &Block, poison: u8) -> Block {
    let mut previous = block.header.previous_hash;
    previous[0] ^= poison;
    Block::assemble(block.header.number, previous, block.transactions.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabriccrdt_fabric::config::AttackSpec;
    use fabriccrdt_ledger::transaction::{Transaction, TxId};

    fn tx(n: u8) -> Transaction {
        Transaction {
            id: TxId([n; 32]),
            client: fabriccrdt_crypto::Identity::new("client", "org1"),
            chaincode: "cc".into(),
            rwset: Default::default(),
            endorsements: Vec::new(),
        }
    }

    fn block(number: u64, txs: Vec<Transaction>) -> Block {
        Block::assemble(number, [7; 32], txs)
    }

    fn schedule(mode: TamperMode) -> AdversaryConfig {
        AdversaryConfig {
            attacks: vec![AttackSpec {
                height: 1,
                mode,
                victims: vec![3, 5],
                via: Some(1),
                delay: SimTime::from_millis(2),
            }],
            ..AdversaryConfig::none()
        }
    }

    #[test]
    fn unsealed_tampering_breaks_the_data_hash() {
        let canonical = block(1, vec![tx(1), tx(2)]);
        for mode in [
            TamperMode::FlipPayloadByte,
            TamperMode::DuplicateTx,
            TamperMode::ReorderTxs,
        ] {
            let forged = forge(mode, &canonical, 3);
            assert!(
                !forged.data_hash_is_valid(),
                "{mode:?} must leave the stale data hash exposed"
            );
        }
    }

    #[test]
    fn resealed_forgeries_are_internally_consistent_but_divergent() {
        let canonical = block(1, vec![tx(1)]);
        for mode in [TamperMode::ForgeTipHash, TamperMode::EquivocateValue] {
            let forged = forge(mode, &canonical, 3);
            assert!(forged.data_hash_is_valid(), "{mode:?} re-seals");
            assert_ne!(forged.hash(), canonical.hash(), "{mode:?} diverges");
        }
        // Different victims receive *different* equivocation payloads.
        let a = forge(TamperMode::EquivocateValue, &canonical, 3);
        let b = forge(TamperMode::EquivocateValue, &canonical, 5);
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn screen_rejects_counts_and_quarantines() {
        let members = [0, 1, 3, 5];
        let mut adv = LaneAdversary::new(&schedule(TamperMode::EquivocateValue), &members);
        let canonical = block(1, vec![tx(1)]);
        let injections = adv.injections_for(&canonical);
        // Victims 3 and 5 are member positions 2 and 3.
        assert_eq!(injections.len(), 2);
        assert_eq!(injections[0].1, 2);
        assert_eq!(injections[1].1, 3);
        assert_eq!(injections[0].2, Some(1), "spoofed relay resolved");

        // The canonical block passes everywhere.
        assert!(adv.admit(None, &canonical));
        assert!(adv.admit(Some(0), &canonical));
        // Both forged variants are rejected; each distinct digest is
        // one piece of equivocation evidence, a re-delivery is not.
        assert!(!adv.admit(None, &injections[0].3));
        assert!(!adv.admit(None, &injections[1].3));
        assert!(!adv.admit(None, &injections[1].3));
        // A tampered block is caught by the data hash alone.
        let tampered = forge(TamperMode::FlipPayloadByte, &canonical, 1);
        assert!(!adv.admit(Some(1), &tampered));
        // The quarantined relay's later honest push is dropped too.
        assert!(!adv.admit(Some(1), &canonical));

        let metrics = adv.take_metrics();
        assert_eq!(metrics.forged_blocks_injected, 2);
        assert_eq!(metrics.forged_rejected, 3);
        assert_eq!(metrics.equivocations_detected, 2);
        assert_eq!(metrics.tampered_rejected, 1);
        assert_eq!(metrics.quarantined_peers, 1);
        assert_eq!(metrics.quarantine_drops, 1);
        assert_eq!(metrics.rejected_blocks(), 4);
        // Counters reset on take; the quarantine set persists.
        let again = adv.take_metrics();
        assert_eq!(again.forged_rejected, 0);
        assert_eq!(again.quarantined_peers, 1);
    }

    #[test]
    fn probation_releases_a_spoofed_relay_after_clean_rounds() {
        let members = [0, 1, 3, 5];
        let config = schedule(TamperMode::FlipPayloadByte);
        assert_eq!(
            config.probation_rounds,
            AdversaryConfig::DEFAULT_PROBATION_ROUNDS
        );
        let mut adv = LaneAdversary::new(&config, &members);
        let canonical = block(1, vec![tx(1), tx(2)]);
        adv.injections_for(&canonical);

        // Relay 1 is honest but spoofed once: a tampered block arrives
        // "from" it and it lands in quarantine.
        let tampered = forge(TamperMode::FlipPayloadByte, &canonical, 1);
        assert!(!adv.admit(Some(1), &tampered));
        assert!(!adv.admit(Some(1), &canonical), "quarantined push drops");
        assert_eq!(adv.take_metrics().quarantine_drops, 1);

        // Fewer clean rounds than the probation term: still quarantined.
        for _ in 1..AdversaryConfig::DEFAULT_PROBATION_ROUNDS {
            adv.end_round();
        }
        assert!(!adv.admit(Some(1), &canonical));
        let mid = adv.take_metrics();
        assert_eq!(mid.quarantine_drops, 1);
        assert_eq!(mid.quarantine_releases, 0);
        assert_eq!(mid.quarantined_peers, 1);

        // The final clean round releases it; its pushes count again
        // and quarantine_drops stops growing.
        adv.end_round();
        assert!(adv.admit(Some(1), &canonical), "released relay readmitted");
        let released = adv.take_metrics();
        assert_eq!(released.quarantine_drops, 0);
        assert_eq!(released.quarantine_releases, 1);
        assert_eq!(released.quarantined_peers, 0);

        // A repeat offense restarts the sentence from zero.
        assert!(!adv.admit(Some(1), &tampered));
        adv.end_round();
        assert!(!adv.admit(Some(1), &canonical), "one round is not enough");
        assert_eq!(adv.take_metrics().quarantined_peers, 1);
    }

    #[test]
    fn zero_probation_rounds_means_permanent_quarantine() {
        let mut config = schedule(TamperMode::FlipPayloadByte);
        config.probation_rounds = 0;
        let mut adv = LaneAdversary::new(&config, &[0, 1, 3, 5]);
        let canonical = block(1, vec![tx(1), tx(2)]);
        adv.injections_for(&canonical);
        let tampered = forge(TamperMode::FlipPayloadByte, &canonical, 1);
        assert!(!adv.admit(Some(1), &tampered));
        for _ in 0..100 {
            adv.end_round();
        }
        assert!(!adv.admit(Some(1), &canonical), "no release at K = 0");
        let metrics = adv.take_metrics();
        assert_eq!(metrics.quarantine_releases, 0);
        assert_eq!(metrics.quarantined_peers, 1);
    }

    #[test]
    fn noop_forgeries_are_not_injected() {
        // An empty block cannot be tampered by flipping or reordering.
        let mut adv = LaneAdversary::new(&schedule(TamperMode::ReorderTxs), &[0, 1, 3, 5]);
        assert!(adv.injections_for(&block(1, Vec::new())).is_empty());
        // But an equivocating orderer always finds a divergent header.
        let mut adv = LaneAdversary::new(&schedule(TamperMode::EquivocateValue), &[0, 1, 3, 5]);
        assert_eq!(adv.injections_for(&block(1, Vec::new())).len(), 2);
    }

    #[test]
    fn off_channel_victims_are_unreachable() {
        // Victims 3 and 5 are not members here; the attack fizzles.
        let mut adv = LaneAdversary::new(&schedule(TamperMode::EquivocateValue), &[0, 1]);
        assert!(adv.injections_for(&block(1, vec![tx(1)])).is_empty());
        assert_eq!(adv.take_metrics().forged_blocks_injected, 0);
    }
}
