//! Plugging the gossip network into the transaction pipeline.
//!
//! [`GossipDelivery`] implements the pipeline's
//! [`DeliveryLayer`](fabriccrdt_fabric::simulation::DeliveryLayer):
//! every block the orderer cuts is published into an internal
//! [`GossipNetwork`] and becomes available to the pipeline's committing
//! peer once the *observed* replica (default: the last follower, the
//! farthest from the orderer) has committed it. Commit latency measured
//! by the pipeline then includes real dissemination time — and, under
//! fault injection, the cost of drops, crashes, and partitions.
//!
//! To stay comparable with the default
//! [`IdealFifoDelivery`](fabriccrdt_fabric::simulation::IdealFifoDelivery),
//! `deliver` draws exactly one `orderer_to_peer` sample from the
//! pipeline PRNG per block (used as the orderer→leader hop), keeping
//! the pipeline's draw sequence — and therefore its block stream —
//! identical between the two layers; all gossip-internal randomness
//! comes from a seed fork inside the network.

use std::cell::RefCell;
use std::rc::Rc;

use fabriccrdt_fabric::chaincode::ChaincodeRegistry;
use fabriccrdt_fabric::config::{GossipConfig, PipelineConfig};
use fabriccrdt_fabric::latency::LatencyConfig;
use fabriccrdt_fabric::metrics::{AdversaryMetrics, DisseminationMetrics};
use fabriccrdt_fabric::simulation::{DeliveryLayer, Simulation};
use fabriccrdt_fabric::validator::{BlockValidator, FabricValidator};
use fabriccrdt_ledger::block::Block;
use fabriccrdt_sim::rng::SimRng;
use fabriccrdt_sim::time::SimTime;

use crate::network::GossipNetwork;

/// A [`DeliveryLayer`] that routes every orderer-cut block through a
/// simulated gossip network before the committing peer sees it.
pub struct GossipDelivery<V> {
    network: GossipNetwork<V>,
    observed: usize,
    last: SimTime,
}

impl<V: BlockValidator> GossipDelivery<V> {
    /// Builds the layer from the pipeline configuration (gossip
    /// parameters, fault schedule, seed). `make_validator` constructs
    /// the validator for each gossip replica — use the same strategy as
    /// the pipeline's committing peer so all replicas agree.
    pub fn new(config: &PipelineConfig, make_validator: impl Fn() -> V + 'static) -> Self {
        let observed = config
            .gossip
            .clone()
            .unwrap_or_else(|| GossipConfig::calibrated(&config.topology))
            .observed_peer;
        GossipDelivery {
            network: GossipNetwork::new(config, make_validator),
            observed,
            last: SimTime::ZERO,
        }
    }

    /// The underlying gossip network (peer replicas, metrics, clock).
    pub fn network(&self) -> &GossipNetwork<V> {
        &self.network
    }
}

impl<V: BlockValidator> DeliveryLayer for GossipDelivery<V> {
    fn deliver(
        &mut self,
        now: SimTime,
        block: &Block,
        latency: &LatencyConfig,
        rng: &mut SimRng,
    ) -> SimTime {
        // One draw, exactly like IdealFifoDelivery, so the pipeline's
        // PRNG sequence (and with it every later endorsement/ordering
        // sample) is unchanged by switching delivery layers.
        let hop = latency.orderer_to_peer.sample(rng);
        self.network.publish_with_hop(now, hop, block.clone());
        let committed_at = self
            .network
            .run_until_committed(self.observed, block.header.number);
        let at = committed_at.max(self.last);
        self.last = at;
        at
    }

    fn seed_state(&mut self, key: &str, value: &[u8]) {
        self.network.seed_state(key, value);
    }

    fn take_dissemination(&mut self) -> Option<DisseminationMetrics> {
        // Let fault windows close and stragglers catch up so the
        // metrics include complete catch-up episodes.
        self.network.drain();
        Some(self.network.take_metrics())
    }

    fn take_adversary(&mut self) -> Option<AdversaryMetrics> {
        self.network.drain();
        self.network.take_adversary()
    }
}

/// A [`DeliveryLayer`] giving one channel's pipeline a view onto a
/// *shared* multi-channel [`GossipNetwork`]: every channel's
/// simulation holds its own `ChannelDelivery` over the same network
/// (via `Rc<RefCell<..>>`), so per-peer fault schedules apply across
/// channels deterministically while each lane keeps its own event
/// queue, clock, and PRNG stream.
///
/// `deliver` draws one `orderer_to_peer` sample from the *pipeline's*
/// PRNG per block, exactly like [`GossipDelivery`] — so a 1-channel
/// deployment is draw-for-draw identical to the single-channel layer.
/// `take_dissemination` drains only this channel's lane: sibling
/// channels may still be publishing.
pub struct ChannelDelivery<V> {
    network: Rc<RefCell<GossipNetwork<V>>>,
    /// Lane index of this channel in the shared network.
    channel: usize,
    /// Global index of the channel's observed replica.
    observed: usize,
    last: SimTime,
}

impl<V: BlockValidator> ChannelDelivery<V> {
    /// Builds the layer for lane `channel` of a shared network (as
    /// built by [`GossipNetwork::new_multi`]; lane order follows the
    /// deployment's channel order).
    pub fn new(network: Rc<RefCell<GossipNetwork<V>>>, channel: usize) -> Self {
        let observed = network.borrow().observed_on(channel);
        ChannelDelivery {
            network,
            channel,
            observed,
            last: SimTime::ZERO,
        }
    }

    /// Overrides the observed replica (a global peer index that must
    /// be a member of the channel) — e.g. a
    /// [`ChannelSpec`](fabriccrdt_fabric::channel::ChannelSpec)'s
    /// per-channel `observed_peer` override.
    pub fn with_observed(mut self, observed: usize) -> Self {
        self.observed = observed;
        self
    }
}

impl<V: BlockValidator> DeliveryLayer for ChannelDelivery<V> {
    fn deliver(
        &mut self,
        now: SimTime,
        block: &Block,
        latency: &LatencyConfig,
        rng: &mut SimRng,
    ) -> SimTime {
        let hop = latency.orderer_to_peer.sample(rng);
        let mut network = self.network.borrow_mut();
        network.publish_with_hop_on(self.channel, now, hop, block.clone());
        let committed_at =
            network.run_until_committed_on(self.channel, self.observed, block.header.number);
        let at = committed_at.max(self.last);
        self.last = at;
        at
    }

    fn seed_state(&mut self, key: &str, value: &[u8]) {
        self.network
            .borrow_mut()
            .seed_state_on(self.channel, key, value);
    }

    fn take_dissemination(&mut self) -> Option<DisseminationMetrics> {
        let mut network = self.network.borrow_mut();
        network.drain_on(self.channel);
        Some(network.take_metrics_on(self.channel))
    }

    fn take_adversary(&mut self) -> Option<AdversaryMetrics> {
        let mut network = self.network.borrow_mut();
        network.drain_on(self.channel);
        network.take_adversary_on(self.channel)
    }
}

/// Builds a vanilla-Fabric pipeline whose block dissemination runs
/// through the gossip layer (honoring `config.gossip` and
/// `config.faults`). The FabricCRDT twin lives in the umbrella crate
/// (`fabriccrdt_repro::fabriccrdt_gossip_simulation`), which can name
/// the CRDT validator.
pub fn fabric_gossip_simulation(
    config: PipelineConfig,
    registry: ChaincodeRegistry,
) -> Simulation<FabricValidator> {
    let delivery = Box::new(GossipDelivery::new(&config, FabricValidator::new));
    Simulation::with_delivery(config, FabricValidator::new(), registry, delivery)
}
