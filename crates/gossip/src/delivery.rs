//! Plugging the gossip network into the transaction pipeline.
//!
//! [`GossipDelivery`] implements the pipeline's
//! [`DeliveryLayer`](fabriccrdt_fabric::simulation::DeliveryLayer):
//! every block the orderer cuts is published into an internal
//! [`GossipNetwork`] and becomes available to the pipeline's committing
//! peer once the *observed* replica (default: the last follower, the
//! farthest from the orderer) has committed it. Commit latency measured
//! by the pipeline then includes real dissemination time — and, under
//! fault injection, the cost of drops, crashes, and partitions.
//!
//! To stay comparable with the default
//! [`IdealFifoDelivery`](fabriccrdt_fabric::simulation::IdealFifoDelivery),
//! `deliver` draws exactly one `orderer_to_peer` sample from the
//! pipeline PRNG per block (used as the orderer→leader hop), keeping
//! the pipeline's draw sequence — and therefore its block stream —
//! identical between the two layers; all gossip-internal randomness
//! comes from a seed fork inside the network.

use fabriccrdt_fabric::chaincode::ChaincodeRegistry;
use fabriccrdt_fabric::config::{GossipConfig, PipelineConfig};
use fabriccrdt_fabric::latency::LatencyConfig;
use fabriccrdt_fabric::metrics::DisseminationMetrics;
use fabriccrdt_fabric::simulation::{DeliveryLayer, Simulation};
use fabriccrdt_fabric::validator::{BlockValidator, FabricValidator};
use fabriccrdt_ledger::block::Block;
use fabriccrdt_sim::rng::SimRng;
use fabriccrdt_sim::time::SimTime;

use crate::network::GossipNetwork;

/// A [`DeliveryLayer`] that routes every orderer-cut block through a
/// simulated gossip network before the committing peer sees it.
pub struct GossipDelivery<V> {
    network: GossipNetwork<V>,
    observed: usize,
    last: SimTime,
}

impl<V: BlockValidator> GossipDelivery<V> {
    /// Builds the layer from the pipeline configuration (gossip
    /// parameters, fault schedule, seed). `make_validator` constructs
    /// the validator for each gossip replica — use the same strategy as
    /// the pipeline's committing peer so all replicas agree.
    pub fn new(config: &PipelineConfig, make_validator: impl Fn() -> V + 'static) -> Self {
        let observed = config
            .gossip
            .clone()
            .unwrap_or_else(|| GossipConfig::calibrated(&config.topology))
            .observed_peer;
        GossipDelivery {
            network: GossipNetwork::new(config, make_validator),
            observed,
            last: SimTime::ZERO,
        }
    }

    /// The underlying gossip network (peer replicas, metrics, clock).
    pub fn network(&self) -> &GossipNetwork<V> {
        &self.network
    }
}

impl<V: BlockValidator> DeliveryLayer for GossipDelivery<V> {
    fn deliver(
        &mut self,
        now: SimTime,
        block: &Block,
        latency: &LatencyConfig,
        rng: &mut SimRng,
    ) -> SimTime {
        // One draw, exactly like IdealFifoDelivery, so the pipeline's
        // PRNG sequence (and with it every later endorsement/ordering
        // sample) is unchanged by switching delivery layers.
        let hop = latency.orderer_to_peer.sample(rng);
        self.network.publish_with_hop(now, hop, block.clone());
        let committed_at = self
            .network
            .run_until_committed(self.observed, block.header.number);
        let at = committed_at.max(self.last);
        self.last = at;
        at
    }

    fn seed_state(&mut self, key: &str, value: &[u8]) {
        self.network.seed_state(key, value);
    }

    fn take_dissemination(&mut self) -> Option<DisseminationMetrics> {
        // Let fault windows close and stragglers catch up so the
        // metrics include complete catch-up episodes.
        self.network.drain();
        Some(self.network.take_metrics())
    }
}

/// Builds a vanilla-Fabric pipeline whose block dissemination runs
/// through the gossip layer (honoring `config.gossip` and
/// `config.faults`). The FabricCRDT twin lives in the umbrella crate
/// (`fabriccrdt_repro::fabriccrdt_gossip_simulation`), which can name
/// the CRDT validator.
pub fn fabric_gossip_simulation(
    config: PipelineConfig,
    registry: ChaincodeRegistry,
) -> Simulation<FabricValidator> {
    let delivery = Box::new(GossipDelivery::new(&config, FabricValidator::new));
    Simulation::with_delivery(config, FabricValidator::new(), registry, delivery)
}
