//! Gossip block dissemination with fault injection.
//!
//! Hyperledger Fabric does not ship every block from the orderer to
//! every peer directly: one *leader* peer per organization pulls blocks
//! from the ordering service and the rest receive them through an
//! epidemic gossip layer — push forwarding to a small random fanout,
//! plus periodic pull-based *anti-entropy* (state transfer) that lets
//! lagging peers request what they missed (Fabric §4.4). The base
//! pipeline in `fabriccrdt-fabric` idealizes all of that away as a
//! single FIFO orderer→peer hop; this crate models it, deterministically
//! and event-driven, on the same simulation substrate
//! (`fabriccrdt_sim::queue::EventQueue` + `fabriccrdt_sim::rng::SimRng`).
//!
//! Two entry points:
//!
//! - [`GossipNetwork`] — a standalone multi-replica network. Feed it
//!   orderer-cut blocks with [`GossipNetwork::publish`] and it
//!   disseminates them across every peer of the topology, injecting the
//!   faults described by the run's
//!   [`FaultConfig`](fabriccrdt_fabric::config::FaultConfig): per-link
//!   drop/duplication/extra delay, scheduled peer crashes with restart,
//!   and network partitions with heal. Crashed peers restore their
//!   persisted ledger ([`Peer::snapshot`](fabriccrdt_fabric::peer::Peer)
//!   / `restore`) and catch up via anti-entropy block replay.
//! - [`GossipDelivery`] — plugs the network into the transaction
//!   pipeline as a
//!   [`DeliveryLayer`](fabriccrdt_fabric::simulation::DeliveryLayer):
//!   every orderer-cut block is published into an internal
//!   `GossipNetwork` and becomes available to the committing peer when
//!   the *observed* replica (by default the last follower) has committed
//!   it. With a quiescent fault config this delivers the very same
//!   blocks in the same order as the default ideal FIFO layer, so
//!   transaction outcomes are unchanged; under faults, commit latency
//!   stretches and the dissemination metrics
//!   ([`DisseminationMetrics`](fabriccrdt_fabric::metrics::DisseminationMetrics))
//!   show why.
//!
//! Everything — fanout choices, link delays, fault coin-flips — is
//! drawn from a fork of the run seed, so a whole faulty run is
//! reproducible bit-for-bit from its
//! [`PipelineConfig`](fabriccrdt_fabric::config::PipelineConfig).
//!
//! The byzantine threat model lives in the private `adversary` module:
//! when a run sets
//! [`PipelineConfig::adversary`](fabriccrdt_fabric::config::PipelineConfig),
//! each lane injects the scheduled block forgeries (equivocating
//! orderer payloads, in-flight tampering, forged tip hashes) and
//! screens every raw-block ingress against the canonical digest,
//! surfacing detections as
//! [`AdversaryMetrics`](fabriccrdt_fabric::metrics::AdversaryMetrics).
//!
//! Modelling notes: peers validate and commit deterministically, so
//! every replica re-seals identical chains and anti-entropy can ship
//! *committed* blocks (replayed without re-endorsement — see
//! `Peer::replay_block`); gossip-side commit is instantaneous (the
//! pipeline charges validation cost at its own committing peer; this
//! crate models dissemination, not CPU); link faults apply to
//! peer-to-peer pushes, while orderer delivery and anti-entropy
//! transfers are reliable streams (they ride gRPC connections with
//! retransmission in real Fabric).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversary;
pub mod delivery;
pub mod network;

pub use delivery::{fabric_gossip_simulation, ChannelDelivery, GossipDelivery};
pub use network::GossipNetwork;
