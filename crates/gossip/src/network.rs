//! The event-driven gossip network: leader pull, push forwarding,
//! anti-entropy catch-up, and fault injection.
//!
//! Peers are flattened to indices `0..orgs * peers_per_org`; peer
//! `o * peers_per_org + p` is peer `p` of org `o`, and peer 0 of each
//! org is its leader. Every peer hosts a full
//! [`Peer`](fabriccrdt_fabric::peer::Peer) replica; a block a peer sees
//! for the first time is buffered (blocks can arrive out of order),
//! forwarded to `fanout` random peers, and committed as soon as all its
//! predecessors are in. Lagging peers recover through the periodic
//! anti-entropy tick: pull committed blocks from a random better-off
//! reachable peer, or — when no peer can help — re-request the raw
//! blocks from the ordering service (Fabric's deliver-service
//! reconnect).
//!
//! # Durable storage and snapshot catch-up
//!
//! With [`PipelineConfig::storage`] set, every peer mirrors its commits
//! into a [`DurableLedger`] (in-memory or append-only file), writes a
//! [`LedgerSnapshot`] every `snapshot_interval` blocks, and restarts by
//! recovering from that store instead of from an in-memory saved
//! ledger. Anti-entropy then negotiates by byte cost: when a helper's
//! latest snapshot plus the post-snapshot block suffix is cheaper to
//! ship than replaying the full missing suffix, the lagging peer
//! installs the snapshot (plus the helper's acknowledgement-frontier
//! delta) and replays only the suffix — recorded as a
//! [`CatchUpOutcome::Snapshot`] episode with bytes accounted. Ties go
//! to replay, which keeps the recovered ledger byte-identical to one
//! that never fell behind.
//!
//! Acknowledgements (`peer i has contiguously committed through block
//! h`) are modelled as an instantly convergent [`AckFrontier`]: ack
//! payloads are a few bytes and their propagation latency is
//! irrelevant next to block dissemination, so the network keeps one
//! shared frontier rather than simulating its gossip. When GC is
//! enabled, each peer prunes operation history and compacts its store
//! up to the frontier's minimum — a height every replica has already
//! merged past.

use std::collections::BTreeMap;

use fabriccrdt_fabric::config::{FaultConfig, GossipConfig, PipelineConfig, Topology};
use fabriccrdt_fabric::metrics::{CatchUpEpisode, CatchUpOutcome, DisseminationMetrics};
use fabriccrdt_fabric::peer::{Peer, PeerSnapshot};
use fabriccrdt_fabric::policy::EndorsementPolicy;
use fabriccrdt_fabric::storage::{AckFrontier, DurableLedger};
use fabriccrdt_fabric::validator::BlockValidator;
use fabriccrdt_ledger::block::Block;
use fabriccrdt_ledger::codec;
use fabriccrdt_ledger::store::LedgerSnapshot;
use fabriccrdt_sim::latency::LatencyModel;
use fabriccrdt_sim::queue::EventQueue;
use fabriccrdt_sim::rng::SimRng;
use fabriccrdt_sim::time::SimTime;

#[derive(Debug)]
enum GossipEvent {
    /// A raw (orderer-sealed) block arrives at a peer; `from` is the
    /// forwarding peer, `None` for the ordering service.
    RawBlock {
        to: usize,
        from: Option<usize>,
        block: Block,
    },
    /// Committed blocks arrive at a pulling peer (anti-entropy).
    Transfer { to: usize, blocks: Vec<Block> },
    /// A snapshot, the helper's acknowledgement frontier, and the
    /// post-snapshot block suffix arrive at a catching-up peer.
    SnapshotTransfer {
        to: usize,
        snapshot: LedgerSnapshot,
        frontier: AckFrontier,
        suffix: Vec<Block>,
    },
    /// Per-peer anti-entropy timer.
    Tick { peer: usize },
    /// Scheduled fault: the peer goes down.
    Crash { peer: usize },
    /// Scheduled recovery: the peer restores its ledger and rejoins.
    Restart { peer: usize },
    /// A partition heals; its minority starts catching up.
    Heal { partition: usize },
}

/// A catch-up episode in progress: when the peer rejoined, the height
/// it must reach, and the bytes shipped to it so far.
struct ActiveCatchUp {
    from: SimTime,
    target: u64,
    bytes: u64,
    /// Bytes of installed snapshots (plus frontier deltas), `None`
    /// while the episode has only used block replay.
    snapshot_bytes: Option<u64>,
}

/// Per-peer bookkeeping around the replica itself.
struct Slot<V> {
    /// The live replica; `None` while crashed.
    peer: Option<Peer<V>>,
    /// Ledger persisted at crash time, consumed by restart. Only used
    /// without durable storage; with a store, restarts recover from it.
    saved: Option<PeerSnapshot>,
    /// Raw blocks received but not yet committable (gaps below them).
    buffer: BTreeMap<u64, Block>,
    /// Outstanding `Tick` events for this peer.
    ticks_pending: u32,
    /// Active catch-up episode, if any.
    catch_up: Option<ActiveCatchUp>,
    /// The peer's durable store, when storage is configured.
    store: Option<DurableLedger>,
    /// Highest block number appended to `store`.
    persisted: u64,
    /// Highest frontier floor this peer has GC'd up to.
    gc_floor: u64,
}

/// A deterministic, event-driven model of Fabric's gossip
/// block-dissemination layer over the full topology, with fault
/// injection. See the crate docs for the protocol summary.
pub struct GossipNetwork<V> {
    topology: Topology,
    policy: EndorsementPolicy,
    validation: fabriccrdt_fabric::pipeline::ValidationPipeline,
    gossip: GossipConfig,
    faults: FaultConfig,
    /// Orderer → leader delivery latency (from the pipeline calibration).
    orderer_hop: LatencyModel,
    make_validator: Box<dyn Fn() -> V>,
    rng: SimRng,
    queue: EventQueue<GossipEvent>,
    slots: Vec<Slot<V>>,
    /// The ordering service's log: `(cut time, block)`, numbers `1..`.
    published: Vec<(SimTime, Block)>,
    /// Seeded genesis-height state, replayed on durable recovery (it
    /// lives in no block).
    seeds: Vec<(String, Vec<u8>)>,
    /// The cluster acknowledgement frontier (see the module docs).
    acked: AckFrontier,
    metrics: DisseminationMetrics,
    /// Time of the last processed event.
    clock: SimTime,
}

impl<V: BlockValidator> GossipNetwork<V> {
    /// Builds the network for a pipeline configuration. Uses
    /// `config.gossip` (or [`GossipConfig::calibrated`] when unset),
    /// applies `config.faults`, opens per-peer durable stores when
    /// `config.storage` is set, and forks its PRNG from `config.seed`,
    /// so identical configs replay identical runs. `make_validator`
    /// constructs one validator per replica (and per restart).
    ///
    /// # Panics
    ///
    /// Panics on inconsistent fault schedules: out-of-range peer
    /// indices, a restart before its crash, a heal before its
    /// partition, a partition isolating every peer, or a link drop
    /// probability of 1.0 (which would disconnect the mesh for good).
    /// Also panics if a configured storage backend cannot be opened.
    pub fn new(config: &PipelineConfig, make_validator: impl Fn() -> V + 'static) -> Self {
        let topology = config.topology.clone();
        let n_peers = topology.orgs * topology.peers_per_org;
        assert!(n_peers > 0, "topology has no peers");
        let gossip = config
            .gossip
            .clone()
            .unwrap_or_else(|| GossipConfig::calibrated(&topology));
        assert!(
            gossip.observed_peer < n_peers,
            "observed peer {} out of range (peers: {n_peers})",
            gossip.observed_peer
        );
        let faults = config.faults.clone();
        for crash in &faults.crashes {
            assert!(crash.peer < n_peers, "crash peer out of range");
            assert!(crash.restart_at >= crash.at, "restart before crash");
        }
        for partition in &faults.partitions {
            assert!(partition.heal_at >= partition.at, "heal before partition");
            assert!(
                partition.minority.iter().all(|p| *p < n_peers),
                "partition peer out of range"
            );
            assert!(
                partition.minority.len() < n_peers,
                "partition must leave a majority side"
            );
        }
        assert!(
            faults.link.drop < 1.0,
            "drop probability 1.0 disconnects the gossip mesh"
        );

        let mut root = SimRng::seed_from(config.seed);
        let rng = root.fork(0x676f_7373_6970); // "gossip"
        let storage = config.storage.clone();
        let slots = (0..n_peers)
            .map(|i| Slot {
                peer: Some(
                    Peer::new(make_validator(), config.policy.clone())
                        .with_pipeline(config.validation),
                ),
                saved: None,
                buffer: BTreeMap::new(),
                ticks_pending: 0,
                catch_up: None,
                store: storage
                    .as_ref()
                    .map(|cfg| DurableLedger::open(cfg, i).expect("peer storage opens")),
                persisted: 0,
                gc_floor: 0,
            })
            .collect();
        let mut queue = EventQueue::new();
        for crash in &faults.crashes {
            queue.schedule(crash.at, GossipEvent::Crash { peer: crash.peer });
            queue.schedule(crash.restart_at, GossipEvent::Restart { peer: crash.peer });
        }
        for (index, partition) in faults.partitions.iter().enumerate() {
            queue.schedule(partition.heal_at, GossipEvent::Heal { partition: index });
        }
        GossipNetwork {
            topology,
            policy: config.policy.clone(),
            validation: config.validation,
            gossip,
            faults,
            orderer_hop: config.latency.orderer_to_peer,
            make_validator: Box::new(make_validator),
            rng,
            queue,
            slots,
            published: Vec::new(),
            seeds: Vec::new(),
            acked: AckFrontier::new(),
            metrics: DisseminationMetrics::default(),
            clock: SimTime::ZERO,
        }
    }

    /// Seeds a key into every replica's world state (mirror of
    /// `Simulation::seed_state`). Call before any event is processed.
    pub fn seed_state(&mut self, key: &str, value: &[u8]) {
        self.seeds.push((key.to_string(), value.to_vec()));
        for slot in &mut self.slots {
            if let Some(peer) = slot.peer.as_mut() {
                peer.seed_state(key.to_string(), value.to_vec());
            }
        }
    }

    /// Number of peers in the network.
    pub fn peer_count(&self) -> usize {
        self.slots.len()
    }

    /// The replica at `index`, or `None` while it is crashed.
    pub fn peer(&self, index: usize) -> Option<&Peer<V>> {
        self.slots[index].peer.as_ref()
    }

    /// Committed (post-genesis) block count of each peer; crashed peers
    /// report 0.
    pub fn committed_heights(&self) -> Vec<u64> {
        (0..self.slots.len()).map(|i| self.committed(i)).collect()
    }

    /// Blocks published by the ordering service so far.
    pub fn published_count(&self) -> u64 {
        self.published.len() as u64
    }

    /// Whether every peer is up and has committed every published block.
    pub fn fully_converged(&self) -> bool {
        let expected = self.published_count();
        (0..self.slots.len()).all(|i| self.slots[i].peer.is_some() && self.committed(i) == expected)
    }

    /// Time of the last processed event.
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Dissemination metrics accumulated so far.
    pub fn metrics(&self) -> &DisseminationMetrics {
        &self.metrics
    }

    /// Takes (and resets) the accumulated dissemination metrics.
    pub fn take_metrics(&mut self) -> DisseminationMetrics {
        std::mem::take(&mut self.metrics)
    }

    /// The cluster-wide GC floor: the minimum block height every peer
    /// has acknowledged committing (0 without durable storage, or
    /// before every peer has acknowledged anything).
    pub fn acked_floor(&self) -> u64 {
        self.acked.min_acked(self.slots.len())
    }

    /// The latest snapshot in the replica's durable store, or `None`
    /// while crashed / without storage / before the first snapshot.
    pub fn durable_snapshot(&self, index: usize) -> Option<&LedgerSnapshot> {
        self.slots[index]
            .store
            .as_ref()
            .and_then(DurableLedger::latest_snapshot)
    }

    /// Serialized ledger of the replica at `index` (state + chain
    /// bytes), or `None` while it is crashed. Byte-equal snapshots mean
    /// byte-equal ledgers — the reconvergence check.
    pub fn snapshot(&self, index: usize) -> Option<PeerSnapshot> {
        self.slots[index].peer.as_ref().map(Peer::snapshot)
    }

    /// Publishes an orderer-cut block into the network, sampling the
    /// orderer→leader hop from the network's own PRNG. Blocks must be
    /// published in order, numbered from 1.
    pub fn publish(&mut self, cut_at: SimTime, block: Block) {
        let hop = self.orderer_hop.sample(&mut self.rng);
        self.publish_with_hop(cut_at, hop, block);
    }

    /// Publishes with an explicit orderer→leader hop (used by
    /// [`crate::GossipDelivery`], which samples the hop from the
    /// pipeline's PRNG to stay draw-for-draw compatible with ideal FIFO
    /// delivery).
    pub fn publish_with_hop(&mut self, cut_at: SimTime, hop: SimTime, block: Block) {
        let number = block.header.number;
        assert_eq!(
            number,
            self.published.len() as u64 + 1,
            "blocks must be published in order, numbered from 1"
        );
        self.published.push((cut_at, block.clone()));
        for org in 0..self.topology.orgs {
            let leader = org * self.topology.peers_per_org;
            if self.slots[leader].peer.is_some() && self.orderer_reachable(cut_at, leader) {
                self.queue.schedule(
                    cut_at + hop,
                    GossipEvent::RawBlock {
                        to: leader,
                        from: None,
                        block: block.clone(),
                    },
                );
            }
        }
        // Arm the anti-entropy timers: any peer still behind once the
        // pushes settle recovers through its tick.
        for i in 0..self.slots.len() {
            self.ensure_tick(cut_at, i);
        }
    }

    /// Processes events until the replica at `peer` has committed block
    /// `number`, returning the time that happened. Events already past
    /// that point stay queued for later calls.
    ///
    /// # Panics
    ///
    /// Panics if the event queue drains first — a fault schedule that
    /// never lets the peer recover (e.g. a partition without heal).
    pub fn run_until_committed(&mut self, peer: usize, number: u64) -> SimTime {
        while self.slots[peer].peer.is_none() || self.committed(peer) < number {
            let Some((now, event)) = self.queue.pop() else {
                panic!("gossip network deadlocked: peer {peer} never commits block {number}");
            };
            self.clock = now;
            self.handle(now, event);
        }
        self.clock
    }

    /// Processes every remaining event (fault windows close, stragglers
    /// catch up, timers expire) and returns the final clock.
    pub fn drain(&mut self) -> SimTime {
        while let Some((now, event)) = self.queue.pop() {
            self.clock = now;
            self.handle(now, event);
        }
        self.clock
    }

    /// Committed (post-genesis) block count; 0 while crashed.
    fn committed(&self, i: usize) -> u64 {
        self.slots[i]
            .peer
            .as_ref()
            .map(|p| p.chain().height() - 1)
            .unwrap_or(0)
    }

    fn has_block(&self, i: usize, number: u64) -> bool {
        self.slots[i].buffer.contains_key(&number) || self.committed(i) >= number
    }

    /// Whether an active partition separates `a` and `b` at `now`.
    fn partitioned(&self, now: SimTime, a: usize, b: usize) -> bool {
        self.faults.partitions.iter().any(|p| {
            now >= p.at && now < p.heal_at && (p.minority.contains(&a) != p.minority.contains(&b))
        })
    }

    /// The ordering service sits on the majority side of every
    /// partition.
    fn orderer_reachable(&self, now: SimTime, peer: usize) -> bool {
        !self
            .faults
            .partitions
            .iter()
            .any(|p| now >= p.at && now < p.heal_at && p.minority.contains(&peer))
    }

    fn handle(&mut self, now: SimTime, event: GossipEvent) {
        match event {
            GossipEvent::RawBlock { to, from, block } => self.raw_block(now, to, from, block),
            GossipEvent::Transfer { to, blocks } => self.transfer(now, to, blocks),
            GossipEvent::SnapshotTransfer {
                to,
                snapshot,
                frontier,
                suffix,
            } => self.snapshot_transfer(now, to, snapshot, frontier, suffix),
            GossipEvent::Tick { peer } => self.tick(now, peer),
            GossipEvent::Crash { peer } => self.crash(now, peer),
            GossipEvent::Restart { peer } => self.restart(now, peer),
            GossipEvent::Heal { partition } => self.heal(now, partition),
        }
    }

    fn raw_block(&mut self, now: SimTime, to: usize, from: Option<usize>, block: Block) {
        if self.slots[to].peer.is_none() {
            return; // down: the message is lost
        }
        let number = block.header.number;
        if self.has_block(to, number) {
            if from.is_some() {
                self.metrics.redundant_messages += 1;
            }
            return;
        }
        self.record_arrival(now, number);
        self.slots[to].buffer.insert(number, block.clone());
        self.forward(now, to, from, &block);
        self.commit_buffered(to);
        self.check_catch_up(now, to);
    }

    /// Push-forwards a freshly seen block to `fanout` random peers
    /// (excluding self and the sender), applying link faults.
    fn forward(&mut self, now: SimTime, i: usize, sender: Option<usize>, block: &Block) {
        let mut candidates: Vec<usize> = (0..self.slots.len())
            .filter(|&j| j != i && Some(j) != sender)
            .collect();
        for _ in 0..self.gossip.fanout.min(candidates.len()) {
            let pick = self.rng.gen_range(0, candidates.len() as u64) as usize;
            let target = candidates.swap_remove(pick);
            self.send_raw(now, i, target, block);
        }
    }

    fn send_raw(&mut self, now: SimTime, from: usize, to: usize, block: &Block) {
        if self.partitioned(now, from, to) {
            return;
        }
        self.metrics.messages_sent += 1;
        if self.rng.gen_bool(self.faults.link.drop) {
            self.metrics.messages_dropped += 1;
            return;
        }
        let delay = self.link_delay();
        self.queue.schedule(
            now + delay,
            GossipEvent::RawBlock {
                to,
                from: Some(from),
                block: block.clone(),
            },
        );
        if self.rng.gen_bool(self.faults.link.duplicate) {
            self.metrics.messages_duplicated += 1;
            let delay = self.link_delay();
            self.queue.schedule(
                now + delay,
                GossipEvent::RawBlock {
                    to,
                    from: Some(from),
                    block: block.clone(),
                },
            );
        }
    }

    fn link_delay(&mut self) -> SimTime {
        self.gossip.link.sample(&mut self.rng) + self.faults.link.extra_delay.sample(&mut self.rng)
    }

    /// Whether helper `j` can replay-serve a peer whose committed
    /// height is `above`: its in-memory chain must still hold block
    /// `above + 1` (a snapshot-installed helper's chain may not).
    fn can_replay_from(&self, j: usize, above: u64) -> bool {
        self.slots[j]
            .peer
            .as_ref()
            .is_some_and(|p| p.chain().block(above + 1).is_some())
    }

    /// Encoded bytes of helper `j`'s blocks above `above` — the wire
    /// cost of a replay transfer.
    fn suffix_bytes(&self, j: usize, above: u64) -> u64 {
        self.slots[j]
            .peer
            .as_ref()
            .expect("helper is up")
            .chain()
            .iter()
            .filter(|b| b.header.number > above)
            .map(|b| codec::encode_block(b).len() as u64)
            .sum()
    }

    /// Helper `j`'s latest durable snapshot, if it would advance a peer
    /// whose committed height is `above`.
    fn snapshot_offer(&self, j: usize, above: u64) -> Option<&LedgerSnapshot> {
        let snapshot = self.slots[j].store.as_ref()?.latest_snapshot()?;
        (snapshot.last_block > above).then_some(snapshot)
    }

    /// Anti-entropy tick: pull missing state from a random better-off
    /// reachable peer — as a block-suffix replay or, when cheaper in
    /// bytes, a snapshot install plus suffix — falling back to
    /// re-requesting raw blocks from the ordering service; re-arms
    /// while still behind.
    fn tick(&mut self, now: SimTime, i: usize) {
        self.slots[i].ticks_pending -= 1;
        if self.slots[i].peer.is_none() {
            return; // restart re-arms
        }
        let mine = self.committed(i);
        let published = self.published_count();
        let candidates: Vec<usize> = (0..self.slots.len())
            .filter(|&j| {
                j != i
                    && !self.partitioned(now, i, j)
                    && self.committed(j) > mine
                    && (self.can_replay_from(j, mine) || self.snapshot_offer(j, mine).is_some())
            })
            .collect();
        if !candidates.is_empty() {
            let j = candidates[self.rng.gen_range(0, candidates.len() as u64) as usize];
            let replay_bytes = self
                .can_replay_from(j, mine)
                .then(|| self.suffix_bytes(j, mine));
            // Snapshot cost: the encoded snapshot, the frontier delta,
            // and the post-snapshot block suffix.
            let snapshot_plan = self.snapshot_offer(j, mine).map(|snapshot| {
                let snapshot_bytes =
                    snapshot.encoded_len() as u64 + self.acked.to_bytes().len() as u64;
                let total = snapshot_bytes + self.suffix_bytes(j, snapshot.last_block);
                (snapshot.last_block, snapshot_bytes, total)
            });
            // Pure byte-cost negotiation, no PRNG draws: ties go to
            // replay, which preserves full-chain byte identity.
            let use_snapshot = match (replay_bytes, &snapshot_plan) {
                (Some(replay), Some((_, _, total))) => *total < replay,
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (None, None) => unreachable!("candidate filter guarantees one option"),
            };
            let delay = self.gossip.link.sample(&mut self.rng);
            if use_snapshot {
                let (snapshot_block, snapshot_bytes, total) =
                    snapshot_plan.expect("use_snapshot implies a plan");
                let snapshot = self
                    .snapshot_offer(j, mine)
                    .expect("plan came from this offer")
                    .clone();
                let suffix: Vec<Block> = self.slots[j]
                    .peer
                    .as_ref()
                    .expect("helper is up")
                    .chain()
                    .iter()
                    .filter(|b| b.header.number > snapshot_block)
                    .cloned()
                    .collect();
                self.metrics.anti_entropy_transfers += 1;
                self.metrics.anti_entropy_blocks += suffix.len() as u64;
                self.metrics.anti_entropy_bytes += total;
                self.metrics.snapshot_transfers += 1;
                self.metrics.snapshot_bytes += snapshot_bytes;
                if let Some(active) = self.slots[i].catch_up.as_mut() {
                    active.bytes += total;
                    active.snapshot_bytes =
                        Some(active.snapshot_bytes.unwrap_or(0) + snapshot_bytes);
                }
                self.queue.schedule(
                    now + delay,
                    GossipEvent::SnapshotTransfer {
                        to: i,
                        snapshot,
                        frontier: self.acked.clone(),
                        suffix,
                    },
                );
            } else {
                let blocks: Vec<Block> = self.slots[j]
                    .peer
                    .as_ref()
                    .expect("helper is up")
                    .chain()
                    .iter()
                    .filter(|b| b.header.number > mine)
                    .cloned()
                    .collect();
                let bytes = replay_bytes.expect("replay branch implies replay is possible");
                self.metrics.anti_entropy_transfers += 1;
                self.metrics.anti_entropy_blocks += blocks.len() as u64;
                self.metrics.anti_entropy_bytes += bytes;
                if let Some(active) = self.slots[i].catch_up.as_mut() {
                    active.bytes += bytes;
                }
                self.queue
                    .schedule(now + delay, GossipEvent::Transfer { to: i, blocks });
            }
        } else if mine < published && self.orderer_reachable(now, i) {
            // No peer can help (all behind or unreachable): reconnect to
            // the deliver service and re-request what's missing.
            let missing: Vec<Block> = (mine + 1..=published)
                .filter(|n| !self.has_block(i, *n))
                .map(|n| self.published[n as usize - 1].1.clone())
                .collect();
            for block in missing {
                let hop = self.orderer_hop.sample(&mut self.rng);
                self.queue.schedule(
                    now + hop,
                    GossipEvent::RawBlock {
                        to: i,
                        from: None,
                        block,
                    },
                );
            }
        }
        if self.committed(i) < published {
            self.ensure_tick(now, i);
        }
    }

    fn transfer(&mut self, now: SimTime, to: usize, blocks: Vec<Block>) {
        if self.slots[to].peer.is_none() {
            return;
        }
        for block in blocks {
            // Locally buffered predecessors commit first; then the
            // transferred block fills the next hole, if still a hole
            // (pushes may have raced ahead of the pull).
            self.commit_buffered(to);
            let number = block.header.number;
            if self.committed(to) + 1 != number {
                continue;
            }
            self.record_arrival(now, number);
            self.slots[to]
                .peer
                .as_mut()
                .expect("checked above")
                .replay_block(block)
                .expect("anti-entropy blocks extend the chain: all replicas re-seal identically");
        }
        self.commit_buffered(to);
        self.check_catch_up(now, to);
    }

    /// Installs a donor snapshot on a catching-up peer (unless it
    /// raced ahead on its own), merges the shipped frontier delta, and
    /// replays the post-snapshot suffix.
    fn snapshot_transfer(
        &mut self,
        now: SimTime,
        to: usize,
        snapshot: LedgerSnapshot,
        frontier: AckFrontier,
        suffix: Vec<Block>,
    ) {
        if self.slots[to].peer.is_none() {
            return;
        }
        self.acked.join(&frontier);
        if self.committed(to) < snapshot.last_block {
            let mut peer = Peer::restore_from_snapshot(
                (self.make_validator)(),
                self.policy.clone(),
                &snapshot,
            )
            .expect("a donor snapshot restores cleanly");
            peer.set_pipeline(self.validation);
            let slot = &mut self.slots[to];
            slot.peer = Some(peer);
            slot.buffer
                .retain(|number, _| *number > snapshot.last_block);
            if let Some(store) = slot.store.as_mut() {
                // Adopt the snapshot locally so this peer's own crash
                // recovery starts from it; the stale block prefix it
                // covers is compacted away.
                store
                    .put_snapshot(snapshot.clone())
                    .expect("local store accepts the snapshot");
                store
                    .compact_up_to(snapshot.last_block)
                    .expect("local store compacts");
            }
            slot.persisted = slot.persisted.max(snapshot.last_block);
        }
        self.transfer(now, to, suffix);
    }

    /// Commits buffered raw blocks as long as the next one is present,
    /// then persists, acknowledges, and GCs (see [`Self::note_commit`]).
    fn commit_buffered(&mut self, i: usize) {
        loop {
            let next = self.committed(i) + 1;
            let Some(block) = self.slots[i].buffer.remove(&next) else {
                break;
            };
            let peer = self.slots[i].peer.as_mut().expect("caller checked");
            let staged = peer.process_block(block);
            peer.commit(staged)
                .expect("buffered blocks extend the chain in order");
        }
        self.note_commit(i);
    }

    /// Post-commit bookkeeping for peer `i`: mirror newly committed
    /// blocks into its durable store, write a snapshot when one is
    /// due, acknowledge the committed height on the cluster frontier,
    /// and — with GC enabled — prune history and compact the store up
    /// to the frontier's minimum.
    fn note_commit(&mut self, i: usize) {
        let n_peers = self.slots.len();
        let slot = &mut self.slots[i];
        let Some(peer) = slot.peer.as_ref() else {
            return;
        };
        let height = peer.chain().height() - 1;
        if let Some(store) = slot.store.as_mut() {
            for number in slot.persisted + 1..=height {
                let block = peer
                    .chain()
                    .block(number)
                    .expect("committed blocks above the persisted mark are in the chain");
                store.append_block(block).expect("store append succeeds");
            }
            slot.persisted = height;
            if store.snapshot_due(height) {
                store
                    .put_snapshot(peer.ledger_snapshot())
                    .expect("store snapshot succeeds");
            }
        }
        self.acked.ack(i, height);
        let floor = self.acked.min_acked(n_peers);
        let slot = &mut self.slots[i];
        if floor > slot.gc_floor && slot.store.as_ref().is_some_and(DurableLedger::gc_enabled) {
            if let (Some(peer), Some(store)) = (slot.peer.as_mut(), slot.store.as_mut()) {
                peer.prune_up_to(floor);
                store
                    .compact_up_to(floor)
                    .expect("store compaction succeeds");
                slot.gc_floor = floor;
            }
        }
    }

    fn crash(&mut self, now: SimTime, p: usize) {
        let slot = &mut self.slots[p];
        let Some(peer) = slot.peer.take() else {
            return;
        };
        // Without a durable store the ledger "persists" as an in-memory
        // snapshot; with one, the store itself survives the crash.
        if slot.store.is_none() {
            slot.saved = Some(peer.snapshot());
        }
        slot.buffer.clear();
        // A crash mid-catch-up ends the episode without reaching the
        // target; record it as abandoned rather than dropping it, so
        // catch-up statistics stay honest under repeated crashes.
        if let Some(active) = slot.catch_up.take() {
            self.metrics.catch_up.push(CatchUpEpisode {
                peer: p,
                from: active.from,
                bytes_shipped: active.bytes,
                outcome: CatchUpOutcome::Abandoned { at: now },
            });
        }
    }

    fn restart(&mut self, now: SimTime, p: usize) {
        let mut peer = if self.slots[p].store.is_some() {
            let seeds = self.seeds.clone();
            let recovery = self.slots[p]
                .store
                .as_ref()
                .expect("checked above")
                .recover_seeded((self.make_validator)(), self.policy.clone(), move |peer| {
                    for (key, value) in seeds {
                        peer.seed_state(key, value);
                    }
                })
                .expect("a peer's own durable store recovers cleanly");
            self.slots[p].persisted = recovery.peer.chain().height() - 1;
            recovery.peer
        } else {
            let snapshot = self.slots[p]
                .saved
                .take()
                .expect("restart follows a crash with a saved ledger");
            Peer::restore((self.make_validator)(), self.policy.clone(), &snapshot)
                .expect("a peer's own snapshot restores cleanly")
        };
        peer.set_pipeline(self.validation);
        self.slots[p].peer = Some(peer);
        self.begin_catch_up(now, p);
    }

    fn heal(&mut self, now: SimTime, partition: usize) {
        let minority = self.faults.partitions[partition].minority.clone();
        for p in minority {
            if self.slots[p].peer.is_some() {
                self.begin_catch_up(now, p);
            }
        }
    }

    /// Registers a catch-up episode for a rejoining peer (target: what
    /// the rest of the network has committed right now) and pulls
    /// immediately.
    fn begin_catch_up(&mut self, now: SimTime, p: usize) {
        let target = (0..self.slots.len())
            .filter(|&j| j != p && self.slots[j].peer.is_some())
            .map(|j| self.committed(j))
            .max()
            .unwrap_or(0);
        if target > self.committed(p) && self.slots[p].catch_up.is_none() {
            self.slots[p].catch_up = Some(ActiveCatchUp {
                from: now,
                target,
                bytes: 0,
                snapshot_bytes: None,
            });
        }
        self.slots[p].ticks_pending += 1;
        self.queue.schedule(now, GossipEvent::Tick { peer: p });
    }

    fn check_catch_up(&mut self, now: SimTime, i: usize) {
        let done = self.slots[i]
            .catch_up
            .as_ref()
            .is_some_and(|active| self.committed(i) >= active.target);
        if done {
            let active = self.slots[i].catch_up.take().expect("checked above");
            let outcome = match active.snapshot_bytes {
                Some(snapshot_bytes) => CatchUpOutcome::Snapshot {
                    caught_up_at: now,
                    snapshot_bytes,
                },
                None => CatchUpOutcome::Replay { caught_up_at: now },
            };
            self.metrics.catch_up.push(CatchUpEpisode {
                peer: i,
                from: active.from,
                bytes_shipped: active.bytes,
                outcome,
            });
        }
    }

    /// Schedules an anti-entropy tick if none is outstanding.
    fn ensure_tick(&mut self, now: SimTime, i: usize) {
        if self.slots[i].ticks_pending > 0 {
            return;
        }
        self.slots[i].ticks_pending += 1;
        self.queue.schedule(
            now + self.gossip.anti_entropy_interval,
            GossipEvent::Tick { peer: i },
        );
    }

    /// First time this block's content reaches any given peer: one
    /// propagation-latency sample (relative to the orderer cut).
    /// Snapshot-covered blocks never arrive individually and record no
    /// sample.
    fn record_arrival(&mut self, now: SimTime, number: u64) {
        let cut_at = self.published[number as usize - 1].0;
        self.metrics.propagation.push(now.saturating_sub(cut_at));
    }
}
