//! The event-driven gossip network: leader pull, push forwarding,
//! anti-entropy catch-up, fault injection, and multi-channel
//! multiplexing.
//!
//! Peers are flattened to indices `0..orgs * peers_per_org`; peer
//! `o * peers_per_org + p` is peer `p` of org `o`, and the
//! lowest-indexed member of each org on a channel is its leader there.
//! Every member peer hosts a full
//! [`Peer`](fabriccrdt_fabric::peer::Peer) replica per channel; a
//! block a replica sees for the first time is buffered (blocks can
//! arrive out of order), forwarded to `fanout` random peers, and
//! committed as soon as all its predecessors are in. Lagging replicas
//! recover through the periodic anti-entropy tick: pull committed
//! blocks from a random better-off reachable peer, or — when no peer
//! can help — re-request the raw blocks from the ordering service
//! (Fabric's deliver-service reconnect).
//!
//! # Channels
//!
//! One [`GossipNetwork`] hosts every channel of a deployment
//! ([`MultiChannelConfig`]) over one topology and one fault schedule:
//! each channel is a *lane* with its own replica set, ordering log,
//! acknowledgement frontier, metrics and deterministic PRNG stream
//! (forked per channel from the base seed, channel 0 first so a
//! 1-channel network is draw-for-draw identical to the historical
//! single-channel one). Every queued [`GossipEvent`] carries its
//! channel tag, and the configured per-peer crash/restart times and
//! partition windows are applied on every lane a peer is a member of
//! — the same peer goes down at the same simulated time on all its
//! channels. The single-channel constructors and accessors operate on
//! channel 0, so existing callers are unchanged.
//!
//! # Durable storage and snapshot catch-up
//!
//! With [`PipelineConfig::storage`] set, every replica mirrors its
//! commits into a [`DurableLedger`] (in-memory or append-only file,
//! one file per channel × peer), writes a [`LedgerSnapshot`] every
//! `snapshot_interval` blocks, and restarts by recovering from that
//! store instead of from an in-memory saved ledger. Anti-entropy then
//! negotiates by byte cost: when a helper's latest snapshot plus the
//! post-snapshot block suffix is cheaper to ship than replaying the
//! full missing suffix, the lagging peer installs the snapshot (plus
//! the helper's acknowledgement-frontier delta) and replays only the
//! suffix — recorded as a [`CatchUpOutcome::Snapshot`] episode with
//! bytes accounted. Ties go to replay, which keeps the recovered
//! ledger byte-identical to one that never fell behind.
//!
//! Replay serving reads from the helper's in-memory chain *and* its
//! durable store: a helper whose chain base moved up (snapshot-path
//! recovery, or snapshot adoption with GC off) can still serve the
//! prefix blocks its store retains, so a GC'd helper remains useful
//! for replay instead of forcing every requester onto the snapshot
//! path.
//!
//! Acknowledgements (`peer i has contiguously committed through block
//! h`) are modelled as an instantly convergent [`AckFrontier`] per
//! channel: ack payloads are a few bytes and their propagation latency
//! is irrelevant next to block dissemination, so each lane keeps one
//! shared frontier rather than simulating its gossip. When GC is
//! enabled, each replica prunes operation history and compacts its
//! store up to the frontier's minimum — a height every replica of the
//! channel has already merged past.

use std::collections::BTreeMap;

use fabriccrdt_fabric::channel::{ChannelId, ChannelSpec, MultiChannelConfig};
use fabriccrdt_fabric::config::{FaultConfig, GossipConfig, PipelineConfig, Topology};
use fabriccrdt_fabric::metrics::{
    AdversaryMetrics, CatchUpEpisode, CatchUpOutcome, DisseminationMetrics,
};
use fabriccrdt_fabric::peer::{Peer, PeerSnapshot};
use fabriccrdt_fabric::pipeline::ValidationPipeline;
use fabriccrdt_fabric::policy::EndorsementPolicy;
use fabriccrdt_fabric::storage::{AckFrontier, DurableLedger};
use fabriccrdt_fabric::validator::BlockValidator;
use fabriccrdt_ledger::block::Block;
use fabriccrdt_ledger::codec;
use fabriccrdt_ledger::store::LedgerSnapshot;
use fabriccrdt_sim::latency::LatencyModel;
use fabriccrdt_sim::queue::EventQueue;
use fabriccrdt_sim::rng::SimRng;
use fabriccrdt_sim::time::SimTime;

use crate::adversary::LaneAdversary;

/// One queued network event, tagged with the channel lane it belongs
/// to. Peer fields are member *positions* within that lane.
#[derive(Debug)]
struct GossipEvent {
    channel: ChannelId,
    kind: EventKind,
}

#[derive(Debug)]
enum EventKind {
    /// A raw (orderer-sealed) block arrives at a peer; `from` is the
    /// forwarding peer, `None` for the ordering service.
    RawBlock {
        to: usize,
        from: Option<usize>,
        block: Block,
    },
    /// Committed blocks arrive at a pulling peer (anti-entropy).
    Transfer { to: usize, blocks: Vec<Block> },
    /// A snapshot, the helper's acknowledgement frontier, and the
    /// post-snapshot block suffix arrive at a catching-up peer.
    SnapshotTransfer {
        to: usize,
        snapshot: LedgerSnapshot,
        frontier: AckFrontier,
        suffix: Vec<Block>,
    },
    /// Per-peer anti-entropy timer.
    Tick { peer: usize },
    /// Scheduled fault: the peer goes down.
    Crash { peer: usize },
    /// Scheduled recovery: the peer restores its ledger and rejoins.
    Restart { peer: usize },
    /// A partition heals; its minority starts catching up.
    Heal { partition: usize },
}

/// A catch-up episode in progress: when the peer rejoined, the height
/// it must reach, and the bytes shipped to it so far.
struct ActiveCatchUp {
    from: SimTime,
    target: u64,
    bytes: u64,
    /// Bytes of installed snapshots (plus frontier deltas), `None`
    /// while the episode has only used block replay.
    snapshot_bytes: Option<u64>,
}

/// Per-replica bookkeeping around the replica itself.
struct Slot<V> {
    /// The live replica; `None` while crashed.
    peer: Option<Peer<V>>,
    /// Ledger persisted at crash time, consumed by restart. Only used
    /// without durable storage; with a store, restarts recover from it.
    saved: Option<PeerSnapshot>,
    /// Raw blocks received but not yet committable (gaps below them).
    buffer: BTreeMap<u64, Block>,
    /// Outstanding `Tick` events for this replica.
    ticks_pending: u32,
    /// Active catch-up episode, if any.
    catch_up: Option<ActiveCatchUp>,
    /// The replica's durable store, when storage is configured.
    store: Option<DurableLedger>,
    /// Highest block number appended to `store`.
    persisted: u64,
    /// Highest frontier floor this replica has GC'd up to.
    gc_floor: u64,
}

/// Configuration shared by every channel lane: the topology, fault
/// schedule and latency calibration are one network-wide reality.
struct Shared {
    topology: Topology,
    policy: EndorsementPolicy,
    validation: ValidationPipeline,
    faults: FaultConfig,
    /// Orderer → leader delivery latency (from the pipeline calibration).
    orderer_hop: LatencyModel,
}

impl Shared {
    /// Whether an active partition separates global peers `a` and `b`
    /// at `now`.
    fn partitioned(&self, now: SimTime, a: usize, b: usize) -> bool {
        self.faults.partitions.iter().any(|p| {
            now >= p.at && now < p.heal_at && (p.minority.contains(&a) != p.minority.contains(&b))
        })
    }

    /// The ordering service sits on the majority side of every
    /// partition.
    fn orderer_reachable(&self, now: SimTime, peer: usize) -> bool {
        !self
            .faults
            .partitions
            .iter()
            .any(|p| now >= p.at && now < p.heal_at && p.minority.contains(&peer))
    }
}

/// One channel's state: its member replicas, ordering log, event
/// timeline, PRNG stream and metrics.
struct ChannelLane<V> {
    id: ChannelId,
    gossip: GossipConfig,
    /// Global peer indices that are members, sorted ascending; slot
    /// `k` is the replica of global peer `members[k]`.
    members: Vec<usize>,
    rng: SimRng,
    queue: EventQueue<GossipEvent>,
    slots: Vec<Slot<V>>,
    /// The channel's ordering-service log: `(cut time, block)`,
    /// numbers `1..`.
    published: Vec<(SimTime, Block)>,
    /// Seeded genesis-height state, replayed on durable recovery (it
    /// lives in no block).
    seeds: Vec<(String, Vec<u8>)>,
    /// The channel's acknowledgement frontier (see the module docs),
    /// keyed by member position.
    acked: AckFrontier,
    metrics: DisseminationMetrics,
    /// Byzantine injection + ingress screening, when the run
    /// configures an adversary schedule. `None` (the default) keeps
    /// the lane byte-for-byte identical to an honest one.
    adversary: Option<LaneAdversary>,
    /// Time of the last processed event on this lane.
    clock: SimTime,
}

/// A deterministic, event-driven model of Fabric's gossip
/// block-dissemination layer over the full topology, with fault
/// injection and multi-channel multiplexing. See the module docs for
/// the protocol summary.
pub struct GossipNetwork<V> {
    shared: Shared,
    make_validator: Box<dyn Fn() -> V>,
    lanes: Vec<ChannelLane<V>>,
}

impl<V: BlockValidator> GossipNetwork<V> {
    /// Builds a single-channel network for a pipeline configuration —
    /// a one-lane [`GossipNetwork::new_multi`]. Uses `config.gossip`
    /// (or [`GossipConfig::calibrated`] when unset), applies
    /// `config.faults`, opens per-peer durable stores when
    /// `config.storage` is set, and forks its PRNG from `config.seed`,
    /// so identical configs replay identical runs. `make_validator`
    /// constructs one validator per replica (and per restart).
    ///
    /// # Panics
    ///
    /// See [`GossipNetwork::new_multi`].
    pub fn new(config: &PipelineConfig, make_validator: impl Fn() -> V + 'static) -> Self {
        let spec = ChannelSpec::full(ChannelId::DEFAULT, config.topology.total_peers());
        let multi = MultiChannelConfig {
            base: config.clone(),
            channels: vec![spec],
        };
        Self::new_multi(&multi, make_validator)
    }

    /// Builds one network hosting every channel of `multi` over the
    /// shared topology and fault schedule. Channel `c`'s PRNG stream
    /// is fork `c` of the base seed's gossip lane (channel 0 first, so
    /// a 1-channel network is draw-for-draw identical to
    /// [`GossipNetwork::new`] on the base config), and each crash /
    /// restart / heal from the fault schedule is applied on every lane
    /// the affected peer is a member of, at the same simulated time.
    ///
    /// # Panics
    ///
    /// Panics on an invalid deployment ([`MultiChannelConfig::validate`])
    /// or inconsistent fault schedules: out-of-range peer indices, a
    /// restart before its crash, a heal before its partition, a
    /// partition isolating every peer, or a link drop probability of
    /// 1.0 (which would disconnect the mesh for good). Also panics if
    /// a configured storage backend cannot be opened.
    pub fn new_multi(multi: &MultiChannelConfig, make_validator: impl Fn() -> V + 'static) -> Self {
        multi.validate();
        let config = &multi.base;
        let topology = config.topology.clone();
        let n_peers = topology.total_peers();
        assert!(n_peers > 0, "topology has no peers");
        let faults = config.faults.clone();
        for crash in &faults.crashes {
            assert!(crash.peer < n_peers, "crash peer out of range");
            assert!(crash.restart_at >= crash.at, "restart before crash");
        }
        for partition in &faults.partitions {
            assert!(partition.heal_at >= partition.at, "heal before partition");
            assert!(
                partition.minority.iter().all(|p| *p < n_peers),
                "partition peer out of range"
            );
            assert!(
                partition.minority.len() < n_peers,
                "partition must leave a majority side"
            );
        }
        assert!(
            faults.link.drop < 1.0,
            "drop probability 1.0 disconnects the gossip mesh"
        );
        if let Some(adversary) = &config.adversary {
            for attack in &adversary.attacks {
                assert!(attack.height >= 1, "blocks are numbered from 1");
                assert!(
                    attack.victims.iter().all(|v| *v < n_peers),
                    "attack victim out of range"
                );
                assert!(
                    attack.via.is_none_or(|v| v < n_peers),
                    "attack relay out of range"
                );
            }
        }

        let mut root = SimRng::seed_from(config.seed);
        let storage = config.storage.clone();
        let lanes = multi
            .channels
            .iter()
            .enumerate()
            .map(|(c, spec)| {
                // Channel 0 must be the first fork with the historical
                // "gossip" label: that reproduces the single-channel
                // PRNG stream bit-for-bit.
                let rng = root.fork(0x676f_7373_6970u64.wrapping_add(c as u64));
                let gossip = config
                    .gossip
                    .clone()
                    .unwrap_or_else(|| GossipConfig::calibrated(&topology));
                assert!(
                    gossip.observed_peer < n_peers,
                    "observed peer {} out of range (peers: {n_peers})",
                    gossip.observed_peer
                );
                let slots = spec
                    .members
                    .iter()
                    .map(|&global| Slot {
                        peer: Some(
                            Peer::new(make_validator(), config.policy.clone())
                                .with_pipeline(config.validation)
                                .with_channel(spec.id),
                        ),
                        saved: None,
                        buffer: BTreeMap::new(),
                        ticks_pending: 0,
                        catch_up: None,
                        store: storage.as_ref().map(|cfg| {
                            DurableLedger::open_channel(cfg, spec.id, global)
                                .expect("peer storage opens")
                        }),
                        persisted: 0,
                        gc_floor: 0,
                    })
                    .collect();
                let mut queue = EventQueue::new();
                for crash in &faults.crashes {
                    let Ok(pos) = spec.members.binary_search(&crash.peer) else {
                        continue; // not a member of this channel
                    };
                    queue.schedule(
                        crash.at,
                        GossipEvent {
                            channel: spec.id,
                            kind: EventKind::Crash { peer: pos },
                        },
                    );
                    queue.schedule(
                        crash.restart_at,
                        GossipEvent {
                            channel: spec.id,
                            kind: EventKind::Restart { peer: pos },
                        },
                    );
                }
                for (index, partition) in faults.partitions.iter().enumerate() {
                    queue.schedule(
                        partition.heal_at,
                        GossipEvent {
                            channel: spec.id,
                            kind: EventKind::Heal { partition: index },
                        },
                    );
                }
                ChannelLane {
                    id: spec.id,
                    gossip,
                    members: spec.members.clone(),
                    rng,
                    queue,
                    slots,
                    published: Vec::new(),
                    seeds: Vec::new(),
                    acked: AckFrontier::new(),
                    metrics: DisseminationMetrics::default(),
                    adversary: config
                        .adversary
                        .as_ref()
                        .map(|a| LaneAdversary::new(a, &spec.members)),
                    clock: SimTime::ZERO,
                }
            })
            .collect();
        GossipNetwork {
            shared: Shared {
                topology,
                policy: config.policy.clone(),
                validation: config.validation,
                faults,
                orderer_hop: config.latency.orderer_to_peer,
            },
            make_validator: Box::new(make_validator),
            lanes,
        }
    }

    /// Number of channel lanes this network hosts.
    pub fn channel_count(&self) -> usize {
        self.lanes.len()
    }

    /// The member set (global peer indices) of channel `ch`.
    pub fn members(&self, ch: usize) -> &[usize] {
        &self.lanes[ch].members
    }

    /// Seeds a key into every channel-0 replica's world state (mirror
    /// of `Simulation::seed_state`). Call before any event is
    /// processed.
    pub fn seed_state(&mut self, key: &str, value: &[u8]) {
        self.seed_state_on(0, key, value);
    }

    /// Seeds a key into every replica of channel `ch`.
    pub fn seed_state_on(&mut self, ch: usize, key: &str, value: &[u8]) {
        let lane = &mut self.lanes[ch];
        lane.seeds.push((key.to_string(), value.to_vec()));
        for slot in &mut lane.slots {
            if let Some(peer) = slot.peer.as_mut() {
                peer.seed_state(key.to_string(), value.to_vec());
            }
        }
    }

    /// Number of peers in the network's topology.
    pub fn peer_count(&self) -> usize {
        self.shared.topology.total_peers()
    }

    /// The channel-0 replica of global peer `index`, or `None` while
    /// it is crashed.
    pub fn peer(&self, index: usize) -> Option<&Peer<V>> {
        self.peer_on(0, index)
    }

    /// The channel-`ch` replica of global peer `index`, or `None`
    /// while it is crashed.
    ///
    /// # Panics
    ///
    /// Panics when `index` is not a member of the channel.
    pub fn peer_on(&self, ch: usize, index: usize) -> Option<&Peer<V>> {
        let lane = &self.lanes[ch];
        lane.slots[lane.pos(index)].peer.as_ref()
    }

    /// Committed (post-genesis) block count of each channel-0 member,
    /// in member order; crashed replicas report 0.
    pub fn committed_heights(&self) -> Vec<u64> {
        self.committed_heights_on(0)
    }

    /// Committed (post-genesis) block count of each channel-`ch`
    /// member, in member order; crashed replicas report 0.
    pub fn committed_heights_on(&self, ch: usize) -> Vec<u64> {
        let lane = &self.lanes[ch];
        (0..lane.slots.len()).map(|i| lane.committed(i)).collect()
    }

    /// Blocks published by channel 0's ordering service so far.
    pub fn published_count(&self) -> u64 {
        self.published_count_on(0)
    }

    /// Blocks published by channel `ch`'s ordering service so far.
    pub fn published_count_on(&self, ch: usize) -> u64 {
        self.lanes[ch].published.len() as u64
    }

    /// Whether every channel-0 replica is up and has committed every
    /// published block.
    pub fn fully_converged(&self) -> bool {
        self.fully_converged_on(0)
    }

    /// Whether every channel-`ch` replica is up and has committed
    /// every block the channel published.
    pub fn fully_converged_on(&self, ch: usize) -> bool {
        let lane = &self.lanes[ch];
        let expected = lane.published.len() as u64;
        (0..lane.slots.len()).all(|i| lane.slots[i].peer.is_some() && lane.committed(i) == expected)
    }

    /// Time of the last processed channel-0 event.
    pub fn clock(&self) -> SimTime {
        self.clock_on(0)
    }

    /// Time of the last processed event on channel `ch`.
    pub fn clock_on(&self, ch: usize) -> SimTime {
        self.lanes[ch].clock
    }

    /// Channel 0's dissemination metrics accumulated so far.
    pub fn metrics(&self) -> &DisseminationMetrics {
        &self.lanes[0].metrics
    }

    /// Takes (and resets) channel 0's accumulated dissemination
    /// metrics.
    pub fn take_metrics(&mut self) -> DisseminationMetrics {
        self.take_metrics_on(0)
    }

    /// Takes (and resets) channel `ch`'s accumulated dissemination
    /// metrics.
    pub fn take_metrics_on(&mut self, ch: usize) -> DisseminationMetrics {
        std::mem::take(&mut self.lanes[ch].metrics)
    }

    /// Takes (and resets) channel 0's byzantine-screen detection
    /// counters; `None` when the run configured no adversary.
    pub fn take_adversary(&mut self) -> Option<AdversaryMetrics> {
        self.take_adversary_on(0)
    }

    /// Takes (and resets) channel `ch`'s byzantine-screen detection
    /// counters. The canonical-digest registry, equivocation evidence
    /// and quarantine set persist across takes.
    pub fn take_adversary_on(&mut self, ch: usize) -> Option<AdversaryMetrics> {
        self.lanes[ch]
            .adversary
            .as_mut()
            .map(LaneAdversary::take_metrics)
    }

    /// Channel 0's GC floor: the minimum block height every member has
    /// acknowledged committing (0 without durable storage, or before
    /// every member has acknowledged anything).
    pub fn acked_floor(&self) -> u64 {
        self.acked_floor_on(0)
    }

    /// Channel `ch`'s GC floor.
    pub fn acked_floor_on(&self, ch: usize) -> u64 {
        let lane = &self.lanes[ch];
        lane.acked.min_acked(lane.slots.len())
    }

    /// The latest snapshot in the channel-0 replica's durable store,
    /// or `None` while crashed / without storage / before the first
    /// snapshot.
    pub fn durable_snapshot(&self, index: usize) -> Option<&LedgerSnapshot> {
        self.durable_snapshot_on(0, index)
    }

    /// The latest snapshot in the channel-`ch` replica's durable
    /// store.
    pub fn durable_snapshot_on(&self, ch: usize, index: usize) -> Option<&LedgerSnapshot> {
        let lane = &self.lanes[ch];
        lane.slots[lane.pos(index)]
            .store
            .as_ref()
            .and_then(DurableLedger::latest_snapshot)
    }

    /// Serialized ledger of the channel-0 replica at `index` (state +
    /// chain bytes), or `None` while it is crashed. Byte-equal
    /// snapshots mean byte-equal ledgers — the reconvergence check.
    pub fn snapshot(&self, index: usize) -> Option<PeerSnapshot> {
        self.snapshot_on(0, index)
    }

    /// Serialized ledger of the channel-`ch` replica at `index`.
    pub fn snapshot_on(&self, ch: usize, index: usize) -> Option<PeerSnapshot> {
        self.peer_on(ch, index).map(Peer::snapshot)
    }

    /// Publishes an orderer-cut block into channel 0, sampling the
    /// orderer→leader hop from the lane's own PRNG. Blocks must be
    /// published in order, numbered from 1.
    pub fn publish(&mut self, cut_at: SimTime, block: Block) {
        self.publish_on(0, cut_at, block);
    }

    /// Publishes an orderer-cut block into channel `ch`.
    pub fn publish_on(&mut self, ch: usize, cut_at: SimTime, block: Block) {
        let lane = &mut self.lanes[ch];
        let hop = self.shared.orderer_hop.sample(&mut lane.rng);
        lane.publish_with_hop(&self.shared, cut_at, hop, block);
    }

    /// Publishes into channel 0 with an explicit orderer→leader hop
    /// (used by [`crate::GossipDelivery`], which samples the hop from
    /// the pipeline's PRNG to stay draw-for-draw compatible with ideal
    /// FIFO delivery).
    pub fn publish_with_hop(&mut self, cut_at: SimTime, hop: SimTime, block: Block) {
        self.publish_with_hop_on(0, cut_at, hop, block);
    }

    /// Publishes into channel `ch` with an explicit orderer→leader
    /// hop.
    pub fn publish_with_hop_on(&mut self, ch: usize, cut_at: SimTime, hop: SimTime, block: Block) {
        self.lanes[ch].publish_with_hop(&self.shared, cut_at, hop, block);
    }

    /// Processes channel-0 events until the replica of global peer
    /// `peer` has committed block `number`, returning the time that
    /// happened. Events already past that point stay queued for later
    /// calls.
    ///
    /// # Panics
    ///
    /// Panics if the lane's event queue drains first — a fault
    /// schedule that never lets the peer recover (e.g. a partition
    /// without heal).
    pub fn run_until_committed(&mut self, peer: usize, number: u64) -> SimTime {
        self.run_until_committed_on(0, peer, number)
    }

    /// Processes channel-`ch` events until the replica of global peer
    /// `peer` has committed block `number`.
    ///
    /// # Panics
    ///
    /// Panics if the lane's event queue drains first.
    pub fn run_until_committed_on(&mut self, ch: usize, peer: usize, number: u64) -> SimTime {
        let lane = &mut self.lanes[ch];
        let pos = lane.pos(peer);
        while lane.slots[pos].peer.is_none() || lane.committed(pos) < number {
            let Some((now, event)) = lane.queue.pop() else {
                panic!(
                    "gossip network deadlocked: {} peer {peer} never commits block {number}",
                    lane.id
                );
            };
            lane.clock = now;
            lane.handle(&self.shared, self.make_validator.as_ref(), now, event);
        }
        lane.clock
    }

    /// Processes every remaining event on every lane (fault windows
    /// close, stragglers catch up, timers expire) and returns the
    /// latest lane clock.
    pub fn drain(&mut self) -> SimTime {
        (0..self.lanes.len())
            .map(|ch| self.drain_on(ch))
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Processes every remaining event on channel `ch` only, leaving
    /// other lanes' queues untouched — so one channel's simulation can
    /// finish (fault windows close, stragglers catch up) while its
    /// siblings are still publishing.
    pub fn drain_on(&mut self, ch: usize) -> SimTime {
        let lane = &mut self.lanes[ch];
        while let Some((now, event)) = lane.queue.pop() {
            lane.clock = now;
            lane.handle(&self.shared, self.make_validator.as_ref(), now, event);
        }
        lane.clock
    }

    /// The global index of channel `ch`'s *observed* replica — the one
    /// whose commit time defines block delivery for the channel's
    /// pipeline: the configured observed peer when it is a member,
    /// otherwise the channel's last member (the farthest from the
    /// orderer).
    pub fn observed_on(&self, ch: usize) -> usize {
        let lane = &self.lanes[ch];
        if lane
            .members
            .binary_search(&lane.gossip.observed_peer)
            .is_ok()
        {
            lane.gossip.observed_peer
        } else {
            *lane.members.last().expect("channel has members")
        }
    }
}

impl<V: BlockValidator> ChannelLane<V> {
    /// Member position of global peer `global`.
    ///
    /// # Panics
    ///
    /// Panics when the peer is not a member of this channel.
    fn pos(&self, global: usize) -> usize {
        self.members
            .binary_search(&global)
            .unwrap_or_else(|_| panic!("peer {global} is not a member of {}", self.id))
    }

    /// Committed (post-genesis) block count of slot `i`; 0 while
    /// crashed.
    fn committed(&self, i: usize) -> u64 {
        self.slots[i]
            .peer
            .as_ref()
            .map(|p| p.chain().height() - 1)
            .unwrap_or(0)
    }

    fn has_block(&self, i: usize, number: u64) -> bool {
        self.slots[i].buffer.contains_key(&number) || self.committed(i) >= number
    }

    fn schedule(&mut self, at: SimTime, kind: EventKind) {
        self.queue.schedule(
            at,
            GossipEvent {
                channel: self.id,
                kind,
            },
        );
    }

    fn publish_with_hop(&mut self, shared: &Shared, cut_at: SimTime, hop: SimTime, block: Block) {
        let number = block.header.number;
        assert_eq!(
            number,
            self.published.len() as u64 + 1,
            "blocks must be published in order, numbered from 1"
        );
        self.published.push((cut_at, block.clone()));
        let ppo = shared.topology.peers_per_org;
        for org in 0..shared.topology.orgs {
            // The channel leader of an org is its lowest-indexed
            // member (the org's peer 0 under full membership).
            let Some(leader) = (0..self.slots.len()).find(|&k| self.members[k] / ppo == org) else {
                continue;
            };
            if self.slots[leader].peer.is_some()
                && shared.orderer_reachable(cut_at, self.members[leader])
            {
                self.schedule(
                    cut_at + hop,
                    EventKind::RawBlock {
                        to: leader,
                        from: None,
                        block: block.clone(),
                    },
                );
            }
        }
        // Byzantine injection: register the canonical digest (the
        // ground truth the ingress screen checks against) and put the
        // scheduled forgeries on the wire. Entirely PRNG-free, so the
        // lane's honest draw sequence is untouched.
        let injections = match self.adversary.as_mut() {
            Some(adversary) => {
                // Each published block closes one dissemination round:
                // quarantined relays that drew no fresh detection all
                // round advance toward probation release (counter
                // arithmetic only — no PRNG draws, so the honest draw
                // sequence is still untouched).
                adversary.end_round();
                adversary.injections_for(&block)
            }
            None => Vec::new(),
        };
        for (delay, victim, via, forged) in injections {
            self.schedule(
                cut_at + hop + delay,
                EventKind::RawBlock {
                    to: victim,
                    from: via,
                    block: forged,
                },
            );
        }
        // Arm the anti-entropy timers: any replica still behind once
        // the pushes settle recovers through its tick.
        for i in 0..self.slots.len() {
            self.ensure_tick(cut_at, i);
        }
    }

    fn handle(&mut self, shared: &Shared, mk: &dyn Fn() -> V, now: SimTime, event: GossipEvent) {
        debug_assert_eq!(event.channel, self.id, "event routed to the wrong lane");
        match event.kind {
            EventKind::RawBlock { to, from, block } => self.raw_block(shared, now, to, from, block),
            EventKind::Transfer { to, blocks } => self.transfer(now, to, blocks),
            EventKind::SnapshotTransfer {
                to,
                snapshot,
                frontier,
                suffix,
            } => self.snapshot_transfer(shared, mk, now, to, snapshot, frontier, suffix),
            EventKind::Tick { peer } => self.tick(shared, now, peer),
            EventKind::Crash { peer } => self.crash(now, peer),
            EventKind::Restart { peer } => self.restart(shared, mk, now, peer),
            EventKind::Heal { partition } => self.heal(shared, now, partition),
        }
    }

    fn raw_block(
        &mut self,
        shared: &Shared,
        now: SimTime,
        to: usize,
        from: Option<usize>,
        block: Block,
    ) {
        if self.slots[to].peer.is_none() {
            return; // down: the message is lost
        }
        // The ingress screen: tampered or forged blocks are rejected
        // before they can be buffered, forwarded, or counted as
        // redundant — honest replicas never see adversarial bytes.
        if let Some(adversary) = self.adversary.as_mut() {
            if !adversary.admit(from, &block) {
                return;
            }
        }
        let number = block.header.number;
        if self.has_block(to, number) {
            if from.is_some() {
                self.metrics.redundant_messages += 1;
            }
            return;
        }
        self.record_arrival(now, number);
        self.slots[to].buffer.insert(number, block.clone());
        self.forward(shared, now, to, from, &block);
        self.commit_buffered(to);
        self.check_catch_up(now, to);
    }

    /// Push-forwards a freshly seen block to `fanout` random member
    /// replicas (excluding self and the sender), applying link faults.
    fn forward(
        &mut self,
        shared: &Shared,
        now: SimTime,
        i: usize,
        sender: Option<usize>,
        block: &Block,
    ) {
        let mut candidates: Vec<usize> = (0..self.slots.len())
            .filter(|&j| j != i && Some(j) != sender)
            .collect();
        for _ in 0..self.gossip.fanout.min(candidates.len()) {
            let pick = self.rng.gen_range(0, candidates.len() as u64) as usize;
            let target = candidates.swap_remove(pick);
            self.send_raw(shared, now, i, target, block);
        }
    }

    fn send_raw(&mut self, shared: &Shared, now: SimTime, from: usize, to: usize, block: &Block) {
        if shared.partitioned(now, self.members[from], self.members[to]) {
            return;
        }
        self.metrics.messages_sent += 1;
        if self.rng.gen_bool(shared.faults.link.drop) {
            self.metrics.messages_dropped += 1;
            return;
        }
        let delay = self.link_delay(shared);
        self.schedule(
            now + delay,
            EventKind::RawBlock {
                to,
                from: Some(from),
                block: block.clone(),
            },
        );
        if self.rng.gen_bool(shared.faults.link.duplicate) {
            self.metrics.messages_duplicated += 1;
            let delay = self.link_delay(shared);
            self.schedule(
                now + delay,
                EventKind::RawBlock {
                    to,
                    from: Some(from),
                    block: block.clone(),
                },
            );
        }
    }

    fn link_delay(&mut self, shared: &Shared) -> SimTime {
        self.gossip.link.sample(&mut self.rng)
            + shared.faults.link.extra_delay.sample(&mut self.rng)
    }

    /// Whether helper `j` can replay-serve a peer whose committed
    /// height is `above`: block `above + 1` must be in its in-memory
    /// chain *or* retained in its durable store (a snapshot-installed
    /// helper's chain may have moved past it, but its store can still
    /// serve the prefix).
    fn can_replay_from(&self, j: usize, above: u64) -> bool {
        let slot = &self.slots[j];
        slot.peer
            .as_ref()
            .is_some_and(|p| p.chain().block(above + 1).is_some())
            || slot.store.as_ref().is_some_and(|s| s.has_block(above + 1))
    }

    /// The contiguous block run starting at `above + 1` that helper
    /// `j` can ship, merged from its durable store and its in-memory
    /// chain (chain copies win; both re-seal identically). Empty when
    /// the helper holds neither source for `above + 1`.
    fn replay_suffix(&self, j: usize, above: u64) -> Vec<Block> {
        let slot = &self.slots[j];
        let peer = slot.peer.as_ref().expect("helper is up");
        let mut merged: BTreeMap<u64, Block> = BTreeMap::new();
        if let Some(store) = slot.store.as_ref() {
            let retained = store.retained_blocks().expect("helper store reads back");
            for block in retained {
                if block.header.number > above {
                    merged.insert(block.header.number, block);
                }
            }
        }
        for block in peer.chain().iter().filter(|b| b.header.number > above) {
            merged.insert(block.header.number, block.clone());
        }
        let mut suffix = Vec::with_capacity(merged.len());
        let mut next = above + 1;
        while let Some(block) = merged.remove(&next) {
            suffix.push(block);
            next += 1;
        }
        suffix
    }

    /// Encoded bytes of a block run — the wire cost of a replay
    /// transfer.
    fn suffix_bytes(suffix: &[Block]) -> u64 {
        suffix
            .iter()
            .map(|b| codec::encode_block(b).len() as u64)
            .sum()
    }

    /// Helper `j`'s latest durable snapshot, if it would advance a
    /// peer whose committed height is `above`.
    fn snapshot_offer(&self, j: usize, above: u64) -> Option<&LedgerSnapshot> {
        let snapshot = self.slots[j].store.as_ref()?.latest_snapshot()?;
        (snapshot.last_block > above).then_some(snapshot)
    }

    /// Anti-entropy tick: pull missing state from a random better-off
    /// reachable peer — as a block-suffix replay or, when cheaper in
    /// bytes, a snapshot install plus suffix — falling back to
    /// re-requesting raw blocks from the ordering service; re-arms
    /// while still behind.
    fn tick(&mut self, shared: &Shared, now: SimTime, i: usize) {
        self.slots[i].ticks_pending -= 1;
        if self.slots[i].peer.is_none() {
            return; // restart re-arms
        }
        let mine = self.committed(i);
        let published = self.published.len() as u64;
        let candidates: Vec<usize> = (0..self.slots.len())
            .filter(|&j| {
                j != i
                    && !shared.partitioned(now, self.members[i], self.members[j])
                    && self.committed(j) > mine
                    && (self.can_replay_from(j, mine) || self.snapshot_offer(j, mine).is_some())
            })
            .collect();
        if !candidates.is_empty() {
            let j = candidates[self.rng.gen_range(0, candidates.len() as u64) as usize];
            let replay_suffix = self.replay_suffix(j, mine);
            let replay_bytes =
                (!replay_suffix.is_empty()).then(|| Self::suffix_bytes(&replay_suffix));
            // Snapshot cost: the encoded snapshot, the frontier delta,
            // and the post-snapshot block suffix.
            let snapshot_plan = self.snapshot_offer(j, mine).map(|snapshot| {
                let snapshot_bytes =
                    snapshot.encoded_len() as u64 + self.acked.to_bytes().len() as u64;
                let last_block = snapshot.last_block;
                (last_block, snapshot_bytes)
            });
            let snapshot_plan = snapshot_plan.map(|(last_block, snapshot_bytes)| {
                let suffix = self.replay_suffix(j, last_block);
                let total = snapshot_bytes + Self::suffix_bytes(&suffix);
                (snapshot_bytes, total, suffix)
            });
            // Pure byte-cost negotiation, no PRNG draws: ties go to
            // replay, which preserves full-chain byte identity.
            let use_snapshot = match (replay_bytes, &snapshot_plan) {
                (Some(replay), Some((_, total, _))) => *total < replay,
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (None, None) => unreachable!("candidate filter guarantees one option"),
            };
            let delay = self.gossip.link.sample(&mut self.rng);
            if use_snapshot {
                let (snapshot_bytes, total, suffix) =
                    snapshot_plan.expect("use_snapshot implies a plan");
                let snapshot = self
                    .snapshot_offer(j, mine)
                    .expect("plan came from this offer")
                    .clone();
                self.metrics.anti_entropy_transfers += 1;
                self.metrics.anti_entropy_blocks += suffix.len() as u64;
                self.metrics.anti_entropy_bytes += total;
                self.metrics.snapshot_transfers += 1;
                self.metrics.snapshot_bytes += snapshot_bytes;
                if let Some(active) = self.slots[i].catch_up.as_mut() {
                    active.bytes += total;
                    active.snapshot_bytes =
                        Some(active.snapshot_bytes.unwrap_or(0) + snapshot_bytes);
                }
                self.schedule(
                    now + delay,
                    EventKind::SnapshotTransfer {
                        to: i,
                        snapshot,
                        frontier: self.acked.clone(),
                        suffix,
                    },
                );
            } else {
                let bytes = replay_bytes.expect("replay branch implies replay is possible");
                self.metrics.anti_entropy_transfers += 1;
                self.metrics.anti_entropy_blocks += replay_suffix.len() as u64;
                self.metrics.anti_entropy_bytes += bytes;
                if let Some(active) = self.slots[i].catch_up.as_mut() {
                    active.bytes += bytes;
                }
                self.schedule(
                    now + delay,
                    EventKind::Transfer {
                        to: i,
                        blocks: replay_suffix,
                    },
                );
            }
        } else if mine < published && shared.orderer_reachable(now, self.members[i]) {
            // No peer can help (all behind or unreachable): reconnect to
            // the deliver service and re-request what's missing.
            let missing: Vec<Block> = (mine + 1..=published)
                .filter(|n| !self.has_block(i, *n))
                .map(|n| self.published[n as usize - 1].1.clone())
                .collect();
            for block in missing {
                let hop = shared.orderer_hop.sample(&mut self.rng);
                self.schedule(
                    now + hop,
                    EventKind::RawBlock {
                        to: i,
                        from: None,
                        block,
                    },
                );
            }
        }
        if self.committed(i) < published {
            self.ensure_tick(now, i);
        }
    }

    fn transfer(&mut self, now: SimTime, to: usize, blocks: Vec<Block>) {
        if self.slots[to].peer.is_none() {
            return;
        }
        for block in blocks {
            // Locally buffered predecessors commit first; then the
            // transferred block fills the next hole, if still a hole
            // (pushes may have raced ahead of the pull).
            self.commit_buffered(to);
            let number = block.header.number;
            if self.committed(to) + 1 != number {
                continue;
            }
            self.record_arrival(now, number);
            self.slots[to]
                .peer
                .as_mut()
                .expect("checked above")
                .replay_block(block)
                .expect("anti-entropy blocks extend the chain: all replicas re-seal identically");
        }
        self.commit_buffered(to);
        self.check_catch_up(now, to);
    }

    /// Installs a donor snapshot on a catching-up peer (unless it
    /// raced ahead on its own), merges the shipped frontier delta, and
    /// replays the post-snapshot suffix.
    #[allow(clippy::too_many_arguments)]
    fn snapshot_transfer(
        &mut self,
        shared: &Shared,
        mk: &dyn Fn() -> V,
        now: SimTime,
        to: usize,
        snapshot: LedgerSnapshot,
        frontier: AckFrontier,
        suffix: Vec<Block>,
    ) {
        if self.slots[to].peer.is_none() {
            return;
        }
        self.acked.join(&frontier);
        if self.committed(to) < snapshot.last_block {
            let mut peer = Peer::restore_from_snapshot(mk(), shared.policy.clone(), &snapshot)
                .expect("a donor snapshot restores cleanly");
            peer.set_pipeline(shared.validation);
            peer.set_channel(self.id);
            let slot = &mut self.slots[to];
            slot.peer = Some(peer);
            slot.buffer
                .retain(|number, _| *number > snapshot.last_block);
            if let Some(store) = slot.store.as_mut() {
                // Adopt the snapshot locally so this peer's own crash
                // recovery starts from it. The stale block prefix it
                // covers is compacted away only under GC: without GC
                // the prefix stays serveable to other lagging peers
                // (see `replay_suffix`).
                store
                    .put_snapshot(snapshot.clone())
                    .expect("local store accepts the snapshot");
                if store.gc_enabled() {
                    store
                        .compact_up_to(snapshot.last_block)
                        .expect("local store compacts");
                }
            }
            slot.persisted = slot.persisted.max(snapshot.last_block);
        }
        self.transfer(now, to, suffix);
    }

    /// Commits buffered raw blocks as long as the next one is present,
    /// then persists, acknowledges, and GCs (see [`Self::note_commit`]).
    ///
    /// Under a [`ValidationPipeline::Pipelined`] peer the drain
    /// overlaps stages across consecutive buffered blocks: while block
    /// N finalizes on the replica thread, block N+1's pure
    /// pre-validation runs on the worker pool against the lockless
    /// state snapshot (see `fabriccrdt_fabric::peer`). Outcomes are
    /// byte-identical to the sequential drain — in-flight duplicate
    /// ids are threaded through and MVCC re-checks at finalize settle
    /// any read that raced the predecessor's commit.
    ///
    /// [`ValidationPipeline::Pipelined`]: fabriccrdt_fabric::pipeline::ValidationPipeline::Pipelined
    fn commit_buffered(&mut self, i: usize) {
        let pipelined = self.slots[i]
            .peer
            .as_ref()
            .is_some_and(|peer| peer.pipeline().is_pipelined());
        if pipelined {
            self.commit_buffered_pipelined(i);
        } else {
            loop {
                let next = self.committed(i) + 1;
                let Some(block) = self.slots[i].buffer.remove(&next) else {
                    break;
                };
                let peer = self.slots[i].peer.as_mut().expect("caller checked");
                let staged = peer.process_block(block);
                peer.commit(staged)
                    .expect("buffered blocks extend the chain in order");
            }
        }
        self.note_commit(i);
    }

    /// The overlapped drain behind [`Self::commit_buffered`]: each
    /// successor block is pulled from the buffer *before* its
    /// predecessor finalizes, so its pre-validation rides the worker
    /// pool during the predecessor's conflict-chain commit.
    fn commit_buffered_pipelined(&mut self, i: usize) {
        let mut next = self.committed(i) + 1;
        let slot = &mut self.slots[i];
        let Some(first) = slot.buffer.remove(&next) else {
            return;
        };
        let peer = slot.peer.as_mut().expect("caller checked");
        let mut prep = peer.prevalidate(first);
        loop {
            next += 1;
            match slot.buffer.remove(&next) {
                Some(follow) => {
                    let (staged, follow_prep) = peer.finish_block_with_next(prep, follow);
                    peer.commit(staged)
                        .expect("buffered blocks extend the chain in order");
                    prep = follow_prep;
                }
                None => {
                    let staged = peer.finish_block(prep);
                    peer.commit(staged)
                        .expect("buffered blocks extend the chain in order");
                    break;
                }
            }
        }
    }

    /// Post-commit bookkeeping for slot `i`: mirror newly committed
    /// blocks into its durable store, write a snapshot when one is
    /// due, acknowledge the committed height on the channel frontier,
    /// and — with GC enabled — prune history and compact the store up
    /// to the frontier's minimum.
    fn note_commit(&mut self, i: usize) {
        let n_members = self.slots.len();
        let slot = &mut self.slots[i];
        let Some(peer) = slot.peer.as_ref() else {
            return;
        };
        let height = peer.chain().height() - 1;
        if let Some(store) = slot.store.as_mut() {
            for number in slot.persisted + 1..=height {
                let block = peer
                    .chain()
                    .block(number)
                    .expect("committed blocks above the persisted mark are in the chain");
                store.append_block(block).expect("store append succeeds");
            }
            slot.persisted = height;
            if store.snapshot_due(height) {
                store
                    .put_snapshot(peer.ledger_snapshot())
                    .expect("store snapshot succeeds");
            }
        }
        self.acked.ack(i, height);
        let floor = self.acked.min_acked(n_members);
        let slot = &mut self.slots[i];
        if floor > slot.gc_floor && slot.store.as_ref().is_some_and(DurableLedger::gc_enabled) {
            if let (Some(peer), Some(store)) = (slot.peer.as_mut(), slot.store.as_mut()) {
                peer.prune_up_to(floor);
                store
                    .compact_up_to(floor)
                    .expect("store compaction succeeds");
                slot.gc_floor = floor;
            }
        }
    }

    fn crash(&mut self, now: SimTime, p: usize) {
        let global = self.members[p];
        let slot = &mut self.slots[p];
        let Some(peer) = slot.peer.take() else {
            return;
        };
        // Without a durable store the ledger "persists" as an in-memory
        // snapshot; with one, the store itself survives the crash.
        if slot.store.is_none() {
            slot.saved = Some(peer.snapshot());
        }
        slot.buffer.clear();
        // A crash mid-catch-up ends the episode without reaching the
        // target; record it as abandoned rather than dropping it, so
        // catch-up statistics stay honest under repeated crashes.
        if let Some(active) = slot.catch_up.take() {
            self.metrics.catch_up.push(CatchUpEpisode {
                peer: global,
                from: active.from,
                bytes_shipped: active.bytes,
                outcome: CatchUpOutcome::Abandoned { at: now },
            });
        }
    }

    fn restart(&mut self, shared: &Shared, mk: &dyn Fn() -> V, now: SimTime, p: usize) {
        let mut peer = if self.slots[p].store.is_some() {
            let seeds = self.seeds.clone();
            let recovery = self.slots[p]
                .store
                .as_ref()
                .expect("checked above")
                .recover_seeded(mk(), shared.policy.clone(), move |peer| {
                    for (key, value) in seeds {
                        peer.seed_state(key, value);
                    }
                })
                .expect("a peer's own durable store recovers cleanly");
            self.slots[p].persisted = recovery.peer.chain().height() - 1;
            recovery.peer
        } else {
            let snapshot = self.slots[p]
                .saved
                .take()
                .expect("restart follows a crash with a saved ledger");
            Peer::restore(mk(), shared.policy.clone(), &snapshot)
                .expect("a peer's own snapshot restores cleanly")
        };
        peer.set_pipeline(shared.validation);
        peer.set_channel(self.id);
        self.slots[p].peer = Some(peer);
        self.begin_catch_up(now, p);
    }

    fn heal(&mut self, shared: &Shared, now: SimTime, partition: usize) {
        let minority = shared.faults.partitions[partition].minority.clone();
        for global in minority {
            let Ok(p) = self.members.binary_search(&global) else {
                continue; // not a member of this channel
            };
            if self.slots[p].peer.is_some() {
                self.begin_catch_up(now, p);
            }
        }
    }

    /// Registers a catch-up episode for a rejoining peer (target: what
    /// the rest of the channel has committed right now) and pulls
    /// immediately.
    fn begin_catch_up(&mut self, now: SimTime, p: usize) {
        let target = (0..self.slots.len())
            .filter(|&j| j != p && self.slots[j].peer.is_some())
            .map(|j| self.committed(j))
            .max()
            .unwrap_or(0);
        if target > self.committed(p) && self.slots[p].catch_up.is_none() {
            self.slots[p].catch_up = Some(ActiveCatchUp {
                from: now,
                target,
                bytes: 0,
                snapshot_bytes: None,
            });
        }
        self.slots[p].ticks_pending += 1;
        self.schedule(now, EventKind::Tick { peer: p });
    }

    fn check_catch_up(&mut self, now: SimTime, i: usize) {
        let done = self.slots[i]
            .catch_up
            .as_ref()
            .is_some_and(|active| self.committed(i) >= active.target);
        if done {
            let active = self.slots[i].catch_up.take().expect("checked above");
            let outcome = match active.snapshot_bytes {
                Some(snapshot_bytes) => CatchUpOutcome::Snapshot {
                    caught_up_at: now,
                    snapshot_bytes,
                },
                None => CatchUpOutcome::Replay { caught_up_at: now },
            };
            self.metrics.catch_up.push(CatchUpEpisode {
                peer: self.members[i],
                from: active.from,
                bytes_shipped: active.bytes,
                outcome,
            });
        }
    }

    /// Schedules an anti-entropy tick if none is outstanding.
    fn ensure_tick(&mut self, now: SimTime, i: usize) {
        if self.slots[i].ticks_pending > 0 {
            return;
        }
        self.slots[i].ticks_pending += 1;
        self.schedule(
            now + self.gossip.anti_entropy_interval,
            EventKind::Tick { peer: i },
        );
    }

    /// First time this block's content reaches any given peer: one
    /// propagation-latency sample (relative to the orderer cut).
    /// Snapshot-covered blocks never arrive individually and record no
    /// sample.
    fn record_arrival(&mut self, now: SimTime, number: u64) {
        let cut_at = self.published[number as usize - 1].0;
        self.metrics.propagation.push(now.saturating_sub(cut_at));
    }
}
