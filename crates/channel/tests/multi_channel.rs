//! Integration tests for the multi-channel driver: seed-pipeline
//! byte-identity, per-channel isolation and reconvergence, per-channel
//! Raft ordering, and the two-phase cross-channel transfer protocol
//! (including the seeded crash/partition sweep asserting exactly-once
//! handoffs).

use std::sync::Arc;

use fabriccrdt::CrdtValidator;
use fabriccrdt_channel::{fabriccrdt_multi_channel, XferChaincode};
use fabriccrdt_fabric::chaincode::ChaincodeRegistry;
use fabriccrdt_fabric::channel::{ChannelId, MultiChannelConfig, TransferOutcome, TransferSpec};
use fabriccrdt_fabric::config::{
    CrashSpec, FaultConfig, PartitionSpec, PipelineConfig, RaftConfig,
};
use fabriccrdt_fabric::simulation::TxRequest;
use fabriccrdt_fabric::storage::StorageConfig;
use fabriccrdt_gossip::GossipDelivery;
use fabriccrdt_jsoncrdt::json::Value;
use fabriccrdt_sim::time::SimTime;
use fabriccrdt_workload::iot::IotChaincode;

fn iot_registry() -> ChaincodeRegistry {
    let mut registry = ChaincodeRegistry::new();
    registry.deploy(Arc::new(IotChaincode::crdt()));
    registry
}

/// A small channel-keyed IoT workload: `txs` transactions at 20 ms
/// intervals, read-modify-writing the channel's hot keys.
fn channel_schedule(channel: usize, txs: usize) -> Vec<(SimTime, TxRequest)> {
    (0..txs)
        .map(|i| {
            let key = format!("ch{channel}-k{}", i % 4);
            let payload = format!(r#"{{"readings":["c{channel}-r{i}"]}}"#);
            (
                SimTime::from_millis(20 * (i as u64 + 1)),
                TxRequest::new(
                    "iot-crdt",
                    IotChaincode::args(
                        std::slice::from_ref(&key),
                        std::slice::from_ref(&key),
                        &payload,
                    ),
                ),
            )
        })
        .collect()
}

fn seed_channel_keys(
    net: &mut fabriccrdt_channel::MultiChannelNetwork<CrdtValidator>,
    channel: usize,
) {
    for k in 0..4 {
        net.seed_state(
            channel,
            format!("ch{channel}-k{k}"),
            br#"{"readings":[]}"#.to_vec(),
        );
    }
}

#[test]
fn one_channel_run_matches_the_seed_gossip_pipeline() {
    let base = PipelineConfig::paper(25, 42).with_gossip();
    let schedule = channel_schedule(0, 60);

    // The seed pipeline: the single-channel gossip delivery layer.
    let mut single = fabriccrdt::fabriccrdt_simulation_with_delivery(
        base.clone(),
        iot_registry(),
        Box::new(GossipDelivery::new(&base, CrdtValidator::new)),
    );
    for k in 0..4 {
        single.seed_state(format!("ch0-k{k}"), br#"{"readings":[]}"#.to_vec());
    }
    let expected = single.run(schedule.clone());

    // The same run as a 1-channel deployment of the new subsystem.
    let config = MultiChannelConfig::uniform(base, 1);
    let mut multi = fabriccrdt_multi_channel(config, iot_registry());
    seed_channel_keys(&mut multi, 0);
    let rollup = multi.run(vec![schedule]);

    assert_eq!(rollup.channels.len(), 1);
    assert_eq!(
        rollup.channels[0].metrics, expected,
        "1-channel run must reproduce the seed pipeline's metrics bit-for-bit"
    );
    assert_eq!(
        multi.simulation(0).peer().snapshot(),
        single.peer().snapshot(),
        "1-channel ledger must be byte-identical to the seed pipeline's"
    );
    multi.verify_converged();
}

#[test]
fn channels_keep_isolated_worlds_and_reconverge() {
    let base = PipelineConfig::paper(25, 7).with_gossip();
    let config = MultiChannelConfig::uniform(base, 3);
    let mut net = fabriccrdt_multi_channel(config, iot_registry());
    for c in 0..3 {
        seed_channel_keys(&mut net, c);
    }
    let rollup = net.run((0..3).map(|c| channel_schedule(c, 40)).collect());

    assert_eq!(rollup.total_submitted(), 120);
    assert_eq!(
        rollup.total_successful(),
        120,
        "CRDT merge commits every conflicting RMW"
    );
    assert!(rollup.aggregate_tps() > 0.0);
    for c in 0..3 {
        let state = net.simulation(c).peer().state();
        assert!(state.value(&format!("ch{c}-k0")).is_some());
        let other = (c + 1) % 3;
        assert!(
            state.value(&format!("ch{other}-k0")).is_none(),
            "channel {c} must not see channel {other}'s world state"
        );
        assert_eq!(
            rollup.channels[c].metrics.channel,
            ChannelId(c as u32),
            "metrics carry their channel id"
        );
    }
    net.verify_converged();
}

#[test]
fn partial_membership_channels_converge_on_their_members() {
    let base = PipelineConfig::paper(25, 11).with_gossip();
    let mut config = MultiChannelConfig::uniform(base, 2);
    // Channel 1 runs on a 4-peer subset that still covers every org
    // (peers 0,1 of org 0; peer 2 of org 1; peer 4 of org 2).
    config.channels[1].members = vec![0, 1, 2, 4];
    config.channels[1].observed_peer = None;
    config.validate();
    let mut net = fabriccrdt_multi_channel(config, iot_registry());
    for c in 0..2 {
        seed_channel_keys(&mut net, c);
    }
    net.run((0..2).map(|c| channel_schedule(c, 30)).collect());
    assert_eq!(net.network().members(1), &[0, 1, 2, 4]);
    net.verify_converged();
}

#[test]
fn per_channel_raft_ordering_backend() {
    let base = PipelineConfig::paper(25, 13).with_gossip();
    let mut config = MultiChannelConfig::uniform(base, 2);
    config.channels[1].ordering = Some(RaftConfig::calibrated(3));
    let mut net = fabriccrdt_multi_channel(config, iot_registry());
    for c in 0..2 {
        seed_channel_keys(&mut net, c);
    }
    let rollup = net.run((0..2).map(|c| channel_schedule(c, 30)).collect());
    assert!(
        rollup.channels[0].metrics.ordering.is_none(),
        "channel 0 keeps the single orderer"
    );
    assert!(
        rollup.channels[1].metrics.ordering.is_some(),
        "channel 1 orders through the Raft cluster"
    );
    assert_eq!(rollup.total_successful(), 60);
    net.verify_converged();
}

// ------------------------------------------------------- transfers

fn json(bytes: &[u8]) -> Value {
    Value::from_bytes(bytes).expect("committed value parses")
}

#[test]
fn transfer_commits_key_to_the_destination_channel() {
    let base = PipelineConfig::paper(25, 21).with_gossip();
    let config = MultiChannelConfig::uniform(base, 2);
    let mut net = fabriccrdt_multi_channel(config, iot_registry());
    // String scalars: the destination's put_crdt renormalizes the
    // document through the JSON CRDT, which stores scalars as strings.
    let original = br#"{"asset":{"owner":"org1","qty":"7"}}"#.to_vec();
    net.seed_state(0, "asset-1", original.clone());

    let reports = net.execute_transfers(&[TransferSpec {
        key: "asset-1".into(),
        from: ChannelId(0),
        to: ChannelId(1),
        inject_failure: false,
        destination_down: false,
    }]);

    assert_eq!(reports.len(), 1);
    let report = &reports[0];
    assert_eq!(report.outcome, TransferOutcome::Committed);
    let id = report.id;
    let dest = net.simulation(1).peer().state();
    assert_eq!(
        json(dest.value("asset-1").expect("key lives on the destination")),
        json(&original),
        "destination holds the escrowed document"
    );
    assert!(dest.value(&id.commit_key()).is_some());
    let source = net.simulation(0).peer().state();
    assert_eq!(
        source.value("asset-1").unwrap(),
        XferChaincode::escrow_marker(id).as_slice(),
        "source keeps the escrow marker once the key moved"
    );
    assert!(source.value(&id.prepare_key()).is_some());
    assert!(source.value(&id.abort_key()).is_none());
    net.verify_converged();
}

#[test]
fn failed_transfer_aborts_back_to_the_source_channel() {
    let base = PipelineConfig::paper(25, 22).with_gossip();
    let config = MultiChannelConfig::uniform(base, 2);
    let mut net = fabriccrdt_multi_channel(config, iot_registry());
    let original = br#"{"asset":{"owner":"org2","qty":3}}"#.to_vec();
    net.seed_state(0, "asset-2", original.clone());

    let reports = net.execute_transfers(&[TransferSpec {
        key: "asset-2".into(),
        from: ChannelId(0),
        to: ChannelId(1),
        inject_failure: true,
        destination_down: false,
    }]);

    let report = &reports[0];
    assert_eq!(report.outcome, TransferOutcome::Aborted);
    let id = report.id;
    let dest = net.simulation(1).peer().state();
    assert!(
        dest.value(&id.commit_key()).is_none(),
        "the corrupted commit must fail validation"
    );
    assert!(dest.value("asset-2").is_none(), "key never lands on dest");
    let source = net.simulation(0).peer().state();
    assert_eq!(
        source.value("asset-2").unwrap(),
        original.as_slice(),
        "abort restores the escrowed bytes on the source"
    );
    assert!(source.value(&id.abort_key()).is_some());
    net.verify_converged();
}

#[test]
fn destination_crash_between_prepare_and_commit_releases_the_escrow() {
    let base = PipelineConfig::paper(25, 24).with_gossip();
    let config = MultiChannelConfig::uniform(base, 2);
    let mut net = fabriccrdt_multi_channel(config, iot_registry());
    let original = br#"{"asset":{"owner":"org3","qty":9}}"#.to_vec();
    net.seed_state(0, "asset-3", original.clone());

    let reports = net.execute_transfers(&[TransferSpec {
        key: "asset-3".into(),
        from: ChannelId(0),
        to: ChannelId(1),
        inject_failure: false,
        destination_down: true,
    }]);

    let report = &reports[0];
    assert_eq!(
        report.outcome,
        TransferOutcome::Aborted,
        "a commit that never reached the destination must reconcile to abort"
    );
    let id = report.id;
    let dest = net.simulation(1).peer().state();
    assert!(
        dest.value(&id.commit_key()).is_none(),
        "no commit record: the destination never saw the transaction"
    );
    assert!(
        dest.value("asset-3").is_none(),
        "no duplicate value on the destination"
    );
    let source = net.simulation(0).peer().state();
    assert_eq!(
        source.value("asset-3").unwrap(),
        original.as_slice(),
        "abort releases the escrow back on the source"
    );
    assert!(source.value(&id.prepare_key()).is_some());
    assert!(source.value(&id.abort_key()).is_some());
    net.verify_converged();
}

#[test]
fn transfer_of_a_missing_key_aborts_without_records() {
    let base = PipelineConfig::paper(25, 23).with_gossip();
    let config = MultiChannelConfig::uniform(base, 2);
    let mut net = fabriccrdt_multi_channel(config, iot_registry());
    let reports = net.execute_transfers(&[TransferSpec {
        key: "no-such-key".into(),
        from: ChannelId(1),
        to: ChannelId(0),
        inject_failure: false,
        destination_down: false,
    }]);
    let report = &reports[0];
    assert_eq!(report.outcome, TransferOutcome::Aborted);
    let id = report.id;
    for c in 0..2 {
        let state = net.simulation(c).peer().state();
        assert!(state.value("no-such-key").is_none());
        assert!(state.value(&id.prepare_key()).is_none());
        assert!(state.value(&id.commit_key()).is_none());
        assert!(state.value(&id.abort_key()).is_none());
    }
    net.verify_converged();
}

// ---------------------------------------- exactly-once fault sweep

/// The sweep's crash/partition schedules: every crash restarts and
/// every partition heals, all within the drained timeline.
fn sweep_faults(case: usize) -> FaultConfig {
    let crash = |peer: usize, at: u64, restart: u64| CrashSpec {
        peer,
        at: SimTime::from_millis(at),
        restart_at: SimTime::from_millis(restart),
    };
    match case {
        0 => FaultConfig {
            crashes: vec![crash(1, 300, 900), crash(4, 500, 1500)],
            ..FaultConfig::none()
        },
        1 => FaultConfig {
            partitions: vec![PartitionSpec {
                at: SimTime::from_millis(200),
                heal_at: SimTime::from_millis(1800),
                minority: vec![3, 5],
            }],
            ..FaultConfig::none()
        },
        _ => FaultConfig {
            crashes: vec![crash(5, 100, 2000)],
            partitions: vec![PartitionSpec {
                at: SimTime::from_millis(400),
                heal_at: SimTime::from_millis(2200),
                minority: vec![1, 2],
            }],
            ..FaultConfig::none()
        },
    }
}

/// Satellite regression: cross-channel handoff is exactly-once under
/// crash/partition schedules. For every transfer, the key's value must
/// end up on exactly one channel — the destination (commit record
/// present, source escrowed) or the source (restored, no commit
/// record) — with no duplicated or lost value, and every channel's
/// replicas must reconverge byte-identically.
#[test]
fn transfers_are_exactly_once_under_crash_and_partition_sweeps() {
    for case in 0..3 {
        let seed = 100 + case as u64;
        let base = PipelineConfig::paper(25, seed)
            .with_gossip()
            .with_faults(sweep_faults(case))
            .with_storage(StorageConfig::memory().with_snapshot_interval(4));
        let config = MultiChannelConfig::uniform(base, 2);
        let mut net = fabriccrdt_multi_channel(config, iot_registry());
        for c in 0..2 {
            seed_channel_keys(&mut net, c);
        }
        let originals: Vec<(usize, String, Vec<u8>)> = vec![
            (0, "sweep-a".into(), br#"{"doc":{"n":"1"}}"#.to_vec()),
            (1, "sweep-b".into(), br#"{"doc":{"n":"2"}}"#.to_vec()),
            (0, "sweep-c".into(), br#"{"doc":{"n":"3"}}"#.to_vec()),
        ];
        for (c, key, value) in &originals {
            net.seed_state(*c, key.clone(), value.clone());
        }
        // A workload runs concurrently with the fault windows, so the
        // transfer phases land on channels that just survived them.
        net.run((0..2).map(|c| channel_schedule(c, 40)).collect());

        let specs = vec![
            TransferSpec {
                key: "sweep-a".into(),
                from: ChannelId(0),
                to: ChannelId(1),
                inject_failure: false,
                destination_down: false,
            },
            TransferSpec {
                key: "sweep-b".into(),
                from: ChannelId(1),
                to: ChannelId(0),
                inject_failure: false,
                destination_down: false,
            },
            TransferSpec {
                key: "sweep-c".into(),
                from: ChannelId(0),
                to: ChannelId(1),
                inject_failure: true,
                destination_down: false,
            },
        ];
        let reports = net.execute_transfers(&specs);
        assert_eq!(reports.len(), 3);

        for (report, (_, key, original)) in reports.iter().zip(&originals) {
            let source = net.simulation(report.from.0 as usize).peer().state();
            let dest = net.simulation(report.to.0 as usize).peer().state();
            let on_dest = dest.value(key.as_str()).is_some();
            let committed = dest.value(&report.id.commit_key()).is_some();
            match report.outcome {
                TransferOutcome::Committed => {
                    assert!(committed, "case {case} {key}: commit record missing");
                    assert!(on_dest, "case {case} {key}: value lost in transit");
                    assert_eq!(
                        json(dest.value(key.as_str()).unwrap()),
                        json(original),
                        "case {case} {key}: destination value mutated"
                    );
                    assert_eq!(
                        source.value(key.as_str()).unwrap(),
                        XferChaincode::escrow_marker(report.id).as_slice(),
                        "case {case} {key}: source must stay escrowed (no duplicate)"
                    );
                    assert!(
                        source.value(&report.id.abort_key()).is_none(),
                        "case {case} {key}: committed transfer must not abort"
                    );
                }
                TransferOutcome::Aborted => {
                    assert!(!committed, "case {case} {key}: aborted but committed");
                    assert!(!on_dest, "case {case} {key}: duplicated onto dest");
                    assert_eq!(
                        source.value(key.as_str()).unwrap(),
                        original.as_slice(),
                        "case {case} {key}: abort must restore the source value"
                    );
                }
            }
        }
        // The injected failure must abort; the clean handoffs commit.
        assert_eq!(reports[0].outcome, TransferOutcome::Committed);
        assert_eq!(reports[1].outcome, TransferOutcome::Committed);
        assert_eq!(reports[2].outcome, TransferOutcome::Aborted);
        net.verify_converged();
    }
}
