//! Multi-channel sharded deployments for the FabricCRDT reproduction.
//!
//! Hyperledger Fabric scales horizontally by running many *channels* —
//! independent ledgers with their own ordering service and world
//! state — over one shared peer network (Androulaki et al. §3.3). The
//! FabricCRDT paper evaluates a single channel; this crate grows the
//! reproduction sideways: [`MultiChannelNetwork`] hosts N complete
//! pipelines (configured by
//! [`MultiChannelConfig`](fabriccrdt_fabric::channel::MultiChannelConfig))
//! whose block dissemination multiplexes over one shared
//! `fabriccrdt-gossip` network, so one fault schedule — crashes,
//! restarts, partitions — hits every channel a peer is a member of at
//! the same simulated times.
//!
//! Channels are not silos: [`XferChaincode`] plus the driver's
//! [`MultiChannelNetwork::execute_transfers`] implement a two-phase
//! cross-channel key handoff (prepare escrows on the source channel,
//! commit-or-abort records on the destination, reconciled at
//! finalize) with exactly-once semantics enforced by the records' MVCC
//! reads — see the [`xfer`] module docs for the protocol.
//!
//! Determinism carries over from the single-channel system: channel 0
//! runs under the base seed and reproduces the seed gossip pipeline
//! bit-for-bit (ledger bytes and metrics), and every channel's gossip
//! replicas reconverge to ledgers byte-identical to their channel's
//! pipeline peer ([`MultiChannelNetwork::verify_converged`]).
//!
//! The `multi_channel` bench binary (`crates/bench`) sweeps channel
//! count × clients-per-channel over this driver and reports aggregate
//! TPS; see EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod xfer;

pub use driver::{fabriccrdt_multi_channel, MultiChannelNetwork};
pub use xfer::{hex_decode, hex_encode, XferChaincode, XFER_CHAINCODE};
