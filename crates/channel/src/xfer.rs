//! The cross-channel transfer chaincode: the on-ledger half of the
//! two-phase key handoff.
//!
//! A transfer moves one key's committed value from a source channel to
//! a destination channel through three invocations, each an ordinary
//! endorsed transaction on its own channel:
//!
//! 1. **`prepare`** (source): reads the key, escrows its bytes into the
//!    transfer's prepare record (`__xfer/<id>/prepare`) and replaces
//!    the live value with an escrow marker — the key is now locked on
//!    the source.
//! 2. **`commit`** (destination): re-creates the escrowed value under
//!    the key on the destination channel — via `put_crdt` when the
//!    value is a JSON CRDT document (so it merges with any concurrent
//!    destination writes), plain `put_state` otherwise — and writes the
//!    commit record (`__xfer/<id>/commit`).
//! 3. **`abort`** (source, only when the commit failed validation):
//!    restores the escrowed bytes under the key and writes the abort
//!    record (`__xfer/<id>/abort`).
//!
//! The driver ([`crate::MultiChannelNetwork`]) acts as the
//! transferring client: it relays the escrowed bytes between channels
//! and reconciles outcomes at finalize by checking which records
//! committed. Exactly-once follows from the records' MVCC reads: each
//! phase reads its own record key before writing it, so a duplicate
//! submission of the same phase conflicts with the first and fails
//! validation instead of double-applying.
//!
//! Values are hex-encoded inside records so arbitrary bytes survive
//! the trip through the JSON-text argument layout.

use fabriccrdt_fabric::chaincode::{Chaincode, ChaincodeError, ChaincodeStub};
use fabriccrdt_fabric::channel::TransferId;
use fabriccrdt_jsoncrdt::json::Value;

/// Chaincode name the transfer protocol runs under.
pub const XFER_CHAINCODE: &str = "xfer";

/// The transfer chaincode. Deploy once per channel registry; the
/// driver deploys it automatically.
#[derive(Debug, Clone, Copy, Default)]
pub struct XferChaincode;

impl XferChaincode {
    /// Arguments for the prepare phase on the source channel.
    pub fn prepare_args(id: TransferId, key: &str) -> Vec<String> {
        vec!["prepare".into(), id.0.to_string(), key.to_owned()]
    }

    /// Arguments for the commit phase on the destination channel;
    /// `escrow_hex` is the prepare record's payload, relayed by the
    /// driver.
    pub fn commit_args(id: TransferId, key: &str, escrow_hex: &str) -> Vec<String> {
        vec![
            "commit".into(),
            id.0.to_string(),
            key.to_owned(),
            escrow_hex.to_owned(),
        ]
    }

    /// Arguments for the abort phase back on the source channel.
    pub fn abort_args(id: TransferId, key: &str, escrow_hex: &str) -> Vec<String> {
        vec![
            "abort".into(),
            id.0.to_string(),
            key.to_owned(),
            escrow_hex.to_owned(),
        ]
    }

    /// The marker a prepared (escrowed) key holds on the source channel
    /// while the transfer is in flight — and forever, once it commits.
    pub fn escrow_marker(id: TransferId) -> Vec<u8> {
        format!("__escrowed/{id}").into_bytes()
    }
}

/// Hex-encodes arbitrary bytes (lowercase).
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        out.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble"));
    }
    out
}

/// Decodes a lowercase/uppercase hex string; `None` on malformed
/// input.
pub fn hex_decode(hex: &str) -> Option<Vec<u8>> {
    if !hex.len().is_multiple_of(2) {
        return None;
    }
    let digits: Vec<u32> = hex.chars().map(|c| c.to_digit(16)).collect::<Option<_>>()?;
    Some(
        digits
            .chunks(2)
            .map(|pair| ((pair[0] << 4) | pair[1]) as u8)
            .collect(),
    )
}

fn parse_id(arg: &str) -> Result<TransferId, ChaincodeError> {
    arg.parse::<u64>()
        .map(TransferId)
        .map_err(|_| ChaincodeError::new("malformed transfer id"))
}

impl Chaincode for XferChaincode {
    fn name(&self) -> &str {
        XFER_CHAINCODE
    }

    fn invoke(&self, stub: &mut ChaincodeStub<'_>, args: &[String]) -> Result<(), ChaincodeError> {
        let phase = args.first().map(String::as_str).unwrap_or("");
        match phase {
            "prepare" => {
                let [_, id, key] = args else {
                    return Err(ChaincodeError::new("expected [prepare, id, key]"));
                };
                let id = parse_id(id)?;
                let Some(value) = stub.get_state(key) else {
                    return Err(ChaincodeError::new(format!(
                        "{id}: key {key:?} not present on the source channel"
                    )));
                };
                // Reading the record key makes a duplicate prepare an
                // MVCC conflict with the first instead of a second
                // escrow.
                stub.get_state(&id.prepare_key());
                stub.put_state(&id.prepare_key(), hex_encode(&value).into_bytes());
                stub.put_state(key, XferChaincode::escrow_marker(id));
                Ok(())
            }
            "commit" => {
                let [_, id, key, escrow_hex] = args else {
                    return Err(ChaincodeError::new("expected [commit, id, key, hex]"));
                };
                let id = parse_id(id)?;
                let value =
                    hex_decode(escrow_hex).ok_or_else(|| ChaincodeError::new("malformed hex"))?;
                stub.get_state(&id.commit_key());
                stub.get_state(key);
                if Value::from_bytes(&value).is_ok() {
                    // A JSON CRDT document merges with whatever the
                    // destination channel already holds under the key.
                    stub.put_crdt(key, value);
                } else {
                    stub.put_state(key, value);
                }
                stub.put_state(&id.commit_key(), escrow_hex.clone().into_bytes());
                Ok(())
            }
            "abort" => {
                let [_, id, key, escrow_hex] = args else {
                    return Err(ChaincodeError::new("expected [abort, id, key, hex]"));
                };
                let id = parse_id(id)?;
                let value =
                    hex_decode(escrow_hex).ok_or_else(|| ChaincodeError::new("malformed hex"))?;
                stub.get_state(&id.abort_key());
                stub.get_state(key);
                stub.put_state(key, value);
                stub.put_state(&id.abort_key(), escrow_hex.clone().into_bytes());
                Ok(())
            }
            other => Err(ChaincodeError::new(format!(
                "unknown transfer phase {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips() {
        let bytes: Vec<u8> = (0u8..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&bytes)).unwrap(), bytes);
        assert_eq!(hex_decode("zz"), None);
        assert_eq!(hex_decode("abc"), None);
        assert_eq!(hex_encode(b""), "");
        assert_eq!(hex_decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn phase_args_are_positional() {
        let id = TransferId(3);
        assert_eq!(
            XferChaincode::prepare_args(id, "k"),
            vec!["prepare", "3", "k"]
        );
        assert_eq!(
            XferChaincode::commit_args(id, "k", "ff"),
            vec!["commit", "3", "k", "ff"]
        );
        assert_eq!(XferChaincode::abort_args(id, "k", "ff")[0], "abort");
        assert_eq!(XferChaincode::escrow_marker(id), b"__escrowed/xfer-3");
    }
}
