//! The multi-channel driver: N pipelines over one shared gossip
//! network, with the cross-channel transfer protocol on top.
//!
//! Each channel is a full [`Simulation`] — its own ordering service
//! ([`SingleOrderer`] or the Raft cluster, per the channel's
//! [`ChannelSpec`] override), committing peer, world state and durable
//! ledger — whose block dissemination runs through a
//! [`ChannelDelivery`] lane of one shared [`GossipNetwork`]. The
//! shared network applies the base config's crash / restart /
//! partition schedule to every channel a faulted peer is a member of,
//! at the same simulated times, so cross-channel runs see correlated
//! failures the way one physical peer hosting many channels would.
//!
//! Channels execute sequentially in host time but concurrently in
//! simulated time: each lane keeps its own clock, and the rollup's
//! aggregate throughput uses the slowest channel's makespan
//! ([`MultiChannelMetrics::aggregate_tps`]).

use std::cell::{Ref, RefCell};
use std::rc::Rc;
use std::sync::Arc;

use fabriccrdt::CrdtValidator;
use fabriccrdt_fabric::chaincode::ChaincodeRegistry;
use fabriccrdt_fabric::channel::{
    ChannelRunMetrics, MultiChannelConfig, MultiChannelMetrics, TransferId, TransferOutcome,
    TransferReport, TransferSpec,
};
use fabriccrdt_fabric::simulation::{OrderingBackend, Simulation, SingleOrderer, TxRequest};
use fabriccrdt_fabric::validator::BlockValidator;
use fabriccrdt_gossip::network::GossipNetwork;
use fabriccrdt_gossip::ChannelDelivery;
use fabriccrdt_ordering::RaftOrderingBackend;
use fabriccrdt_sim::time::SimTime;

use crate::xfer::{XferChaincode, XFER_CHAINCODE};

/// Gap between consecutive transfer-phase submissions on a channel.
const PHASE_STEP: SimTime = SimTime::from_millis(10);

/// Margin between a finished run and the next phase's first
/// submission, generous enough to outlast any straggling internal
/// timer (Raft election timeouts are hundreds of milliseconds).
const PHASE_MARGIN: SimTime = SimTime::from_secs(10);

/// An N-channel deployment under one fault schedule. See the module
/// docs for the architecture.
pub struct MultiChannelNetwork<V: BlockValidator> {
    config: MultiChannelConfig,
    network: Rc<RefCell<GossipNetwork<V>>>,
    sims: Vec<Simulation<V>>,
    /// Next transfer id (monotone across the network's lifetime).
    next_transfer: u64,
    /// Latest simulated time any channel has reached; phase
    /// submissions are scheduled past it so per-lane clocks stay
    /// monotone.
    horizon: SimTime,
}

impl<V: BlockValidator> MultiChannelNetwork<V> {
    /// Builds the deployment: one shared gossip network over
    /// `config.base`'s topology and fault schedule, plus one pipeline
    /// per channel (channel seeds, block-cutting and ordering
    /// overrides per [`MultiChannelConfig::pipeline_for`]). The
    /// transfer chaincode is deployed into every channel's registry
    /// automatically.
    ///
    /// # Panics
    ///
    /// Panics on an invalid deployment
    /// ([`MultiChannelConfig::validate`]) or fault schedule.
    pub fn new(
        config: MultiChannelConfig,
        registry: ChaincodeRegistry,
        make_validator: impl Fn() -> V + Clone + 'static,
    ) -> Self {
        config.validate();
        let mut registry = registry;
        registry.deploy(Arc::new(XferChaincode));
        let network = Rc::new(RefCell::new(GossipNetwork::new_multi(
            &config,
            make_validator.clone(),
        )));
        let sims = (0..config.channel_count())
            .map(|c| {
                let pipeline = config.pipeline_for(c);
                let spec = &config.channels[c];
                let observed = spec
                    .observed_peer
                    .unwrap_or_else(|| network.borrow().observed_on(c));
                let delivery =
                    Box::new(ChannelDelivery::new(network.clone(), c).with_observed(observed));
                let ordering: Box<dyn OrderingBackend> = if pipeline.ordering.is_some() {
                    Box::new(RaftOrderingBackend::new(&pipeline))
                } else {
                    Box::new(SingleOrderer::from_config(&pipeline))
                };
                Simulation::with_layers(
                    pipeline,
                    make_validator(),
                    registry.clone(),
                    delivery,
                    ordering,
                )
            })
            .collect();
        MultiChannelNetwork {
            config,
            network,
            sims,
            next_transfer: 0,
            horizon: SimTime::ZERO,
        }
    }

    /// The deployment's configuration.
    pub fn config(&self) -> &MultiChannelConfig {
        &self.config
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.sims.len()
    }

    /// Channel `c`'s pipeline simulation (committing peer, chain,
    /// world state).
    pub fn simulation(&self, c: usize) -> &Simulation<V> {
        &self.sims[c]
    }

    /// Seeds a key into channel `c`'s world state — the pipeline peer
    /// and every gossip replica — before any run.
    pub fn seed_state(&mut self, c: usize, key: impl Into<String>, value: Vec<u8>) {
        self.sims[c].seed_state(key, value);
    }

    /// The shared gossip network (per-channel replicas, metrics,
    /// clocks).
    pub fn network(&self) -> Ref<'_, GossipNetwork<V>> {
        self.network.borrow()
    }

    /// Runs one workload schedule per channel (indexed by channel) and
    /// rolls the per-channel metrics up. Channels run sequentially in
    /// host time; their simulated timelines are independent.
    ///
    /// # Panics
    ///
    /// Panics when `schedules.len()` differs from the channel count.
    pub fn run(&mut self, schedules: Vec<Vec<(SimTime, TxRequest)>>) -> MultiChannelMetrics {
        assert_eq!(schedules.len(), self.sims.len(), "one schedule per channel");
        let channels = schedules
            .into_iter()
            .enumerate()
            .map(|(c, schedule)| {
                let metrics = self.sims[c].run(schedule);
                self.note_progress(c, metrics.end_time);
                ChannelRunMetrics {
                    channel: self.config.channels[c].id,
                    name: self.config.channels[c].name.clone(),
                    metrics,
                }
            })
            .collect();
        MultiChannelMetrics { channels }
    }

    /// Executes a batch of cross-channel transfers through the
    /// two-phase protocol and reconciles their outcomes:
    ///
    /// 1. *Prepare* transactions escrow each key on its source channel.
    /// 2. The driver relays each escrowed value to its destination
    ///    channel's *commit* transaction
    ///    ([`TransferSpec::inject_failure`] corrupts the commit's
    ///    endorsement so it fails validation).
    /// 3. *Finalize*: transfers whose commit record is absent from the
    ///    destination's committed state get an *abort* transaction on
    ///    the source channel restoring the escrowed value; every
    ///    transfer reconciles to exactly one of
    ///    [`TransferOutcome::Committed`] / [`TransferOutcome::Aborted`].
    ///
    /// Reports are returned in `specs` order.
    ///
    /// # Panics
    ///
    /// Panics when a spec names an out-of-range channel or transfers
    /// within one channel (`from == to`).
    pub fn execute_transfers(&mut self, specs: &[TransferSpec]) -> Vec<TransferReport> {
        let n = self.sims.len();
        for spec in specs {
            assert!((spec.from.0 as usize) < n, "source channel out of range");
            assert!((spec.to.0 as usize) < n, "destination channel out of range");
            assert_ne!(spec.from, spec.to, "transfer must cross channels");
        }
        let ids: Vec<TransferId> = specs
            .iter()
            .map(|_| {
                let id = TransferId(self.next_transfer);
                self.next_transfer += 1;
                id
            })
            .collect();

        // Phase 1: escrow on the source channels.
        let mut prepares: Vec<Vec<(SimTime, TxRequest)>> = vec![Vec::new(); n];
        let base = self.horizon + PHASE_MARGIN;
        for (i, (spec, id)) in specs.iter().zip(&ids).enumerate() {
            prepares[spec.from.0 as usize].push((
                base + PHASE_STEP.scale(i as u64 + 1),
                TxRequest::new(XFER_CHAINCODE, XferChaincode::prepare_args(*id, &spec.key)),
            ));
        }
        self.run_phase(prepares);

        // Relay: the escrowed bytes, read from each source channel's
        // committed prepare record (absent when the prepare failed —
        // e.g. the key does not exist on the source).
        let escrows: Vec<Option<String>> = specs
            .iter()
            .zip(&ids)
            .map(|(spec, id)| {
                self.sims[spec.from.0 as usize]
                    .peer()
                    .state()
                    .value(&id.prepare_key())
                    .map(|bytes| String::from_utf8_lossy(bytes).into_owned())
            })
            .collect();

        // Phase 2: commit on the destination channels.
        let mut commits: Vec<Vec<(SimTime, TxRequest)>> = vec![Vec::new(); n];
        let base = self.horizon + PHASE_MARGIN;
        for (i, (spec, id)) in specs.iter().zip(&ids).enumerate() {
            let Some(hex) = &escrows[i] else { continue };
            if spec.destination_down {
                // The destination's endorsers crashed between prepare
                // and commit: nothing to submit. Finalize will find no
                // commit record and release the escrow via abort.
                continue;
            }
            let mut request = TxRequest::new(
                XFER_CHAINCODE,
                XferChaincode::commit_args(*id, &spec.key, hex),
            );
            if spec.inject_failure {
                request = request.with_corrupt_endorsement();
            }
            commits[spec.to.0 as usize].push((base + PHASE_STEP.scale(i as u64 + 1), request));
        }
        self.run_phase(commits);

        // Finalize: reconcile by the committed records, aborting the
        // transfers whose commit never validated.
        let committed: Vec<bool> = specs
            .iter()
            .zip(&ids)
            .map(|(spec, id)| {
                self.sims[spec.to.0 as usize]
                    .peer()
                    .state()
                    .value(&id.commit_key())
                    .is_some()
            })
            .collect();
        let mut aborts: Vec<Vec<(SimTime, TxRequest)>> = vec![Vec::new(); n];
        let base = self.horizon + PHASE_MARGIN;
        for (i, (spec, id)) in specs.iter().zip(&ids).enumerate() {
            if committed[i] {
                continue;
            }
            let Some(hex) = &escrows[i] else { continue };
            aborts[spec.from.0 as usize].push((
                base + PHASE_STEP.scale(i as u64 + 1),
                TxRequest::new(
                    XFER_CHAINCODE,
                    XferChaincode::abort_args(*id, &spec.key, hex),
                ),
            ));
        }
        self.run_phase(aborts);

        specs
            .iter()
            .zip(&ids)
            .enumerate()
            .map(|(i, (spec, id))| TransferReport {
                id: *id,
                key: spec.key.clone(),
                from: spec.from,
                to: spec.to,
                outcome: if committed[i] {
                    TransferOutcome::Committed
                } else {
                    TransferOutcome::Aborted
                },
            })
            .collect()
    }

    /// Asserts every channel's gossip replicas hold ledgers
    /// byte-identical to the channel's pipeline peer — the
    /// multi-channel reconvergence check. Call after runs and
    /// transfers have drained (every [`MultiChannelNetwork::run`] /
    /// phase drains its channels' lanes).
    ///
    /// # Panics
    ///
    /// Panics naming the first diverged or crashed replica.
    pub fn verify_converged(&self) {
        let network = self.network.borrow();
        for (c, spec) in self.config.channels.iter().enumerate() {
            let reference = self.sims[c].peer().snapshot();
            for &member in &spec.members {
                let replica = network
                    .snapshot_on(c, member)
                    .unwrap_or_else(|| panic!("{}: replica {member} is down", spec.id));
                assert!(
                    replica == reference,
                    "{}: replica {member}'s ledger diverged from the pipeline peer",
                    spec.id
                );
            }
        }
    }

    /// Runs one transfer-phase schedule per channel, skipping channels
    /// with nothing to do, and advances the horizon.
    fn run_phase(&mut self, schedules: Vec<Vec<(SimTime, TxRequest)>>) {
        for (c, schedule) in schedules.into_iter().enumerate() {
            if schedule.is_empty() {
                continue;
            }
            let metrics = self.sims[c].run(schedule);
            self.note_progress(c, metrics.end_time);
        }
    }

    /// Folds a finished run's end time and the channel's lane clock
    /// into the horizon.
    fn note_progress(&mut self, c: usize, end_time: SimTime) {
        let lane_clock = self.network.borrow().clock_on(c);
        self.horizon = self.horizon.max(end_time).max(lane_clock);
    }
}

/// Builds a FabricCRDT multi-channel deployment — every channel
/// validates with the paper's merging [`CrdtValidator`].
pub fn fabriccrdt_multi_channel(
    config: MultiChannelConfig,
    registry: ChaincodeRegistry,
) -> MultiChannelNetwork<CrdtValidator> {
    MultiChannelNetwork::new(config, registry, CrdtValidator::new)
}
