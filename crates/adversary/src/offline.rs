//! Offline-first clients and merge-storm reconvergence.
//!
//! An offline-first client keeps editing its local CRDT replica while
//! disconnected, then rejoins and has to sync a giant delta — the
//! "merge storm". Two probes:
//!
//! - **Document level** ([`offline_rejoin`]): a server replica and a
//!   client replica share a base document; the client goes offline and
//!   accumulates edits; on rejoin we compare syncing via
//!   [`JsonCrdt::delta_since`] (ship only operations the server's
//!   frontier has not seen — the incremental-merge path PR 5
//!   introduced for block validation) against full history replay.
//!   Both must reconverge to the same bytes; the incremental path must
//!   ship no more operations than the full one.
//! - **Network level** ([`merge_storm_report`]): a gossip run with a
//!   scheduled crash window models a whole *peer* offline while the
//!   network keeps committing; the report extracts that peer's
//!   catch-up episode (duration, bytes shipped, snapshot vs replay)
//!   from the run's dissemination metrics.

use fabriccrdt_jsoncrdt::json::Value;
use fabriccrdt_jsoncrdt::{JsonCrdt, ReplicaId};

use crate::byzantine::AdversarialRun;

/// Outcome of a document-level offline/rejoin cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergeStormReport {
    /// Edits the client made while offline.
    pub offline_edits: usize,
    /// Operations shipped by the incremental path
    /// ([`JsonCrdt::delta_since`] against the server's frontier).
    pub incremental_ops: usize,
    /// Operations shipped by full history replay.
    pub full_replay_ops: usize,
    /// Whether both sync paths reconverged the server to the client's
    /// document, byte-identically.
    pub reconverged: bool,
}

/// Runs one offline/rejoin cycle at the document level.
///
/// The server replica holds `base` (a JSON map); the client merges the
/// server's state, goes offline, and read-modify-writes every payload
/// in `offline_payloads` (JSON maps, merged CRDT-style exactly like
/// the IoT chaincode). On rejoin, the server is brought up to date
/// twice — once by applying only `client.delta_since(server.frontier())`,
/// once by full-history merge — and the two results are compared.
///
/// # Panics
///
/// Panics when `base` or a payload is not valid JSON-map input — the
/// harness's inputs are honest here; hostility lives in [`crate::fuzz`].
pub fn offline_rejoin(base: &str, offline_payloads: &[String]) -> MergeStormReport {
    let base = Value::parse(base).expect("base document parses");
    let mut server = JsonCrdt::with_history(ReplicaId(1));
    server.merge_value(&base).expect("base is a map");

    let mut client = JsonCrdt::with_history(ReplicaId(2));
    client.merge(&server).expect("initial sync");
    let rejoin_frontier = server.frontier().clone();

    for payload in offline_payloads {
        let value = Value::parse(payload).expect("offline payload parses");
        client.merge_value(&value).expect("offline edit applies");
    }

    let delta = client
        .delta_since(&rejoin_frontier)
        .expect("client keeps history");
    let full = client.history().expect("client keeps history").len();

    // Sync path 1: ship only the unseen suffix.
    let mut incremental = server.clone();
    for op in &delta {
        incremental.apply(op.clone()).expect("delta op applies");
    }
    // Sync path 2: full history replay.
    let mut replayed = server.clone();
    replayed.merge(&client).expect("full replay");

    let reconverged = incremental.to_value() == replayed.to_value()
        && incremental.to_value() == client.to_value()
        && incremental.frontier() == replayed.frontier();
    MergeStormReport {
        offline_edits: offline_payloads.len(),
        incremental_ops: delta.len(),
        full_replay_ops: full,
        reconverged,
    }
}

/// A network-level merge storm: what it took gossip anti-entropy to
/// bring a crashed (offline) peer back to the committed height.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StormOutcome {
    /// Rejoin-to-caught-up duration in simulated seconds.
    pub catch_up_secs: f64,
    /// Bytes shipped to the peer during the episode.
    pub bytes_shipped: u64,
    /// Whether catch-up installed a donor snapshot (bounded storm)
    /// rather than replaying every missed block.
    pub used_snapshot: bool,
}

/// Extracts peer `peer`'s *completed* catch-up episode from a run (the
/// longest one, if it rejoined more than once). `None` when the run
/// recorded no completed episode for that peer — e.g. no crash was
/// scheduled, or it never caught up.
pub fn merge_storm_report(run: &AdversarialRun, peer: usize) -> Option<StormOutcome> {
    let dissemination = run.metrics.dissemination.as_ref()?;
    dissemination
        .catch_up
        .iter()
        .filter(|e| e.peer == peer && !e.is_abandoned())
        .max_by_key(|e| e.duration())
        .map(|episode| StormOutcome {
            catch_up_secs: episode.duration().as_secs_f64(),
            bytes_shipped: episode.bytes_shipped,
            used_snapshot: episode.used_snapshot(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payloads(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| format!(r#"{{"device":"d0","readings":["off-{i}"]}}"#))
            .collect()
    }

    #[test]
    fn incremental_rejoin_ships_less_and_reconverges() {
        let report = offline_rejoin(r#"{"device":"d0","readings":["r0","r1"]}"#, &payloads(24));
        assert!(report.reconverged, "both sync paths must agree");
        assert!(
            report.incremental_ops < report.full_replay_ops,
            "delta {} must undercut full replay {}",
            report.incremental_ops,
            report.full_replay_ops
        );
        assert_eq!(report.offline_edits, 24);
    }

    #[test]
    fn merge_storm_grows_sublinearly_with_shared_history() {
        // A bigger shared base grows full replay but not the delta:
        // the storm is bounded by what happened *offline*.
        let small = offline_rejoin(r#"{"readings":["a"]}"#, &payloads(10));
        let big = offline_rejoin(
            r#"{"readings":["a","b","c","d","e","f","g","h"]}"#,
            &payloads(10),
        );
        assert!(big.full_replay_ops > small.full_replay_ops);
        assert_eq!(
            big.incremental_ops, small.incremental_ops,
            "the delta is bounded by the offline edits, not the shared history"
        );
    }
}
