//! Hostile CRDT operation fuzzing.
//!
//! A byzantine client cannot forge blocks — the orderer seals those —
//! but it *can* submit arbitrary CRDT operation graphs and arbitrary
//! bytes where JSON is expected. The two invariants that matter:
//!
//! 1. **No panic**: every hostile input is either applied, buffered
//!    (missing dependencies), or rejected with a typed error.
//! 2. **Determinism**: two replicas fed the same hostile stream end up
//!    byte-identical — a malformed op must not make replicas diverge,
//!    or honest peers would fork on a poisoned block.
//!
//! [`hostile_ops`] draws operation streams loaded with the nasty
//! cases — cyclic and dangling dependency graphs, counter gaps and
//! duplicate ids, cursors into nonexistent structure, head-targeting
//! mutations (always invalid: the document head is a map), and
//! oversized payloads. [`apply_identically`] feeds one stream to two
//! replicas and asserts both invariants.

use fabriccrdt_jsoncrdt::json::Value;
use fabriccrdt_jsoncrdt::op::ItemKey;
use fabriccrdt_jsoncrdt::{Cursor, Deps, JsonCrdt, Mutation, OpId, Operation, ReplicaId};
use fabriccrdt_sim::gen::Gen;

/// What one hostile stream did to a replica pair (both replicas saw
/// exactly these counts — [`apply_identically`] asserts it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzReport {
    /// Operations that took effect.
    pub applied: usize,
    /// Operations buffered on missing dependencies (includes every op
    /// of a dependency cycle: none of its members can ever apply).
    pub buffered: usize,
    /// Operations rejected with a typed error (e.g. a mutation
    /// targeting the document head).
    pub rejected: usize,
}

/// Draws a hostile operation cursor: empty (targets the head — always
/// invalid for assign/delete), or a short random path mixing map keys
/// with list items derived from arbitrary indices and values.
fn hostile_cursor(g: &mut Gen) -> Cursor {
    let mut cursor = Cursor::new();
    for _ in 0..g.size(0, 3) {
        if g.flip() {
            cursor.push_key(g.ident(1, 8));
        } else {
            let value = Value::String(g.ident(1, 4));
            cursor.push_item(ItemKey::derive(g.range(0, 1000) as usize, &value));
        }
    }
    cursor
}

fn hostile_mutation(g: &mut Gen) -> Mutation {
    match g.range(0, 5) {
        0 => Mutation::MakeMap,
        1 => Mutation::MakeList,
        2 => Mutation::Delete,
        // Oversized payload: a multi-kilobyte register value.
        3 => Mutation::Assign("x".repeat(g.size(1024, 8192))),
        _ => Mutation::Assign(g.ident(1, 16)),
    }
}

/// Draws `count` hostile operations. Ids collide and skip counters,
/// dependency sets dangle, self-reference, and form cycles; cursors
/// point anywhere; see the module docs for the full menagerie.
pub fn hostile_ops(g: &mut Gen, count: usize) -> Vec<Operation> {
    let replicas = [ReplicaId(1), ReplicaId(2), ReplicaId(666)];
    let mut ops = Vec::with_capacity(count);
    for _ in 0..count {
        // Small id space forces duplicates; the occasional huge counter
        // is a frontier-violating gap.
        let counter = if g.prob(0.1) {
            g.range(1_000, u64::MAX / 2)
        } else {
            g.range(0, 12)
        };
        let id = OpId::new(counter, *g.pick(&replicas));
        let deps = match g.range(0, 4) {
            0 => Deps::None,
            // Dangling: depends on an id almost certainly never sent.
            1 => Deps::One(OpId::new(g.range(500, 1_000), ReplicaId(g.range(0, 4)))),
            // Self-dependency: one-op cycle, can never apply.
            2 => Deps::One(id),
            _ => Deps::Many(vec![
                OpId::new(g.range(0, 12), *g.pick(&replicas)),
                OpId::new(g.range(0, 12), *g.pick(&replicas)),
            ]),
        };
        ops.push(Operation::new(
            id,
            deps,
            hostile_cursor(g),
            hostile_mutation(g),
        ));
    }
    // Explicit two-op cycle: A depends on B, B depends on A. Neither
    // may ever apply, and neither may wedge the replica.
    let a = OpId::new(2_000, ReplicaId(7));
    let b = OpId::new(2_001, ReplicaId(7));
    ops.push(Operation::new(
        a,
        Deps::One(b),
        hostile_cursor(g),
        Mutation::MakeMap,
    ));
    ops.push(Operation::new(
        b,
        Deps::One(a),
        hostile_cursor(g),
        Mutation::MakeMap,
    ));
    ops
}

/// Feeds `ops` to two independent replicas and asserts the fuzzing
/// invariants: identical per-op outcomes, identical final documents,
/// identical applied counts, and pending buffers bounded by the stream
/// length (nothing leaks or multiplies).
///
/// # Panics
///
/// Panics when the replicas diverge — that is the property under test.
pub fn apply_identically(ops: &[Operation]) -> FuzzReport {
    let mut left = JsonCrdt::with_history(ReplicaId(100));
    let mut right = JsonCrdt::with_history(ReplicaId(100));
    let mut report = FuzzReport {
        applied: 0,
        buffered: 0,
        rejected: 0,
    };
    for op in ops {
        let a = left.apply(op.clone());
        let b = right.apply(op.clone());
        assert_eq!(a, b, "replicas disagreed on {op:?}");
        match a {
            Ok(fabriccrdt_jsoncrdt::doc::ApplyOutcome::Buffered) => report.buffered += 1,
            Ok(_) => report.applied += 1,
            Err(_) => report.rejected += 1,
        }
    }
    assert_eq!(left.to_value(), right.to_value(), "documents diverged");
    assert_eq!(left.applied_len(), right.applied_len());
    assert_eq!(left.frontier(), right.frontier());
    assert!(
        left.pending_len() <= ops.len(),
        "pending buffer grew past the stream length"
    );
    report
}

/// Feeds `bytes` to the JSON parser, returning whether they parsed.
/// The property is absence of panics; rejection is the expected
/// outcome for almost every draw.
pub fn parse_hostile_bytes(bytes: &[u8]) -> bool {
    Value::from_bytes(bytes).is_ok()
}

/// Merges a hostile *value* (not ops) into a fresh document the way
/// chaincode does ([`JsonCrdt::merge_value`]), asserting the merge
/// path rejects non-map heads with a typed error and never panics.
/// Returns whether the value merged.
pub fn merge_hostile_value(value: &Value) -> bool {
    let mut doc = JsonCrdt::with_history(ReplicaId(3));
    doc.merge_value(value).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabriccrdt_sim::gen;

    #[test]
    fn hostile_streams_never_split_replicas() {
        gen::cases(25, |g| {
            let count = g.size(5, 40);
            let ops = hostile_ops(g, count);
            let report = apply_identically(&ops);
            assert_eq!(
                report.applied + report.buffered + report.rejected,
                ops.len()
            );
            // The hand-built two-op cycle guarantees buffered ops.
            assert!(report.buffered >= 2, "cycles must buffer, not apply");
        });
    }

    #[test]
    fn random_bytes_never_panic_the_parser() {
        gen::cases(50, |g| {
            let bytes = g.bytes(0, 200);
            let _ = parse_hostile_bytes(&bytes);
        });
    }

    #[test]
    fn non_map_heads_are_rejected_not_panicked() {
        assert!(!merge_hostile_value(&Value::String("naked".into())));
        assert!(!merge_hostile_value(&Value::List(vec![Value::Null])));
        assert!(merge_hostile_value(&Value::parse(r#"{"k":"v"}"#).unwrap()));
    }
}
