//! Driving the pipeline under a byzantine attack schedule.
//!
//! [`run_adversarial_pipeline`] is the single entry point: it builds
//! the same FabricCRDT gossip pipeline as the honest benches — the
//! orderer cuts blocks, a gossip network disseminates them, every
//! replica validates and commits — but keeps a handle on the gossip
//! network so that, after the run drains, it can read back *every*
//! replica's ledger bytes. An attack schedule
//! ([`AdversaryConfig`](fabriccrdt_fabric::config::AdversaryConfig) on
//! the pipeline config) makes the network's adversary seam inject
//! forged block variants at chosen heights; the honest ingress screen
//! rejects them and the run's
//! [`AdversaryMetrics`](fabriccrdt_fabric::metrics::AdversaryMetrics)
//! count what was caught.
//!
//! The delivery layer is [`ChannelDelivery`] over a one-lane shared
//! network, which is draw-for-draw identical to the plain
//! [`GossipDelivery`](fabriccrdt_gossip::GossipDelivery) — so an empty
//! attack schedule reproduces the honest gossip run bit-for-bit, and
//! any divergence under attack is the adversary's doing alone.

use std::cell::RefCell;
use std::rc::Rc;

use fabriccrdt::fabriccrdt_simulation_with_delivery;
use fabriccrdt::CrdtValidator;
use fabriccrdt_fabric::chaincode::ChaincodeRegistry;
use fabriccrdt_fabric::config::{AdversaryConfig, AttackSpec, PipelineConfig, TamperMode};
use fabriccrdt_fabric::metrics::{AdversaryMetrics, RunMetrics};
use fabriccrdt_fabric::peer::PeerSnapshot;
use fabriccrdt_fabric::simulation::TxRequest;
use fabriccrdt_gossip::{ChannelDelivery, GossipNetwork};
use fabriccrdt_sim::gen::Gen;
use fabriccrdt_sim::time::SimTime;

/// Everything a byzantine run yields: the pipeline's metrics (with the
/// adversary counters) plus every gossip replica's post-drain ledger
/// snapshot, in global peer order. A `None` snapshot is a replica that
/// was still down when the run drained (only possible when the fault
/// schedule never restarts it).
#[derive(Debug)]
pub struct AdversarialRun {
    /// The pipeline's run metrics; `metrics.adversary` carries the
    /// injection/detection counters.
    pub metrics: RunMetrics,
    /// Post-drain ledger snapshot of every replica.
    pub snapshots: Vec<Option<PeerSnapshot>>,
}

impl AdversarialRun {
    /// The adversary counters (zeroed when the run had no adversary
    /// seam at all).
    pub fn adversary(&self) -> AdversaryMetrics {
        self.metrics.adversary.unwrap_or_default()
    }

    /// Whether every replica finished the run with byte-identical
    /// ledgers — the honest network's safety property under attack.
    /// False if any replica was down at drain time or diverged.
    pub fn honest_replicas_identical(&self) -> bool {
        let Some(Some(first)) = self.snapshots.first() else {
            return false;
        };
        self.snapshots.iter().all(|s| s.as_ref() == Some(first))
    }
}

/// Runs the FabricCRDT gossip pipeline — honoring `config.adversary`,
/// `config.faults`, `config.gossip` — over `schedule`, then drains the
/// network and snapshots every replica.
///
/// `seeds` are `(key, value)` pairs installed into every replica's
/// world state before the run (the usual CRDT base documents).
pub fn run_adversarial_pipeline(
    config: PipelineConfig,
    registry: ChaincodeRegistry,
    seeds: &[(String, Vec<u8>)],
    schedule: Vec<(SimTime, TxRequest)>,
) -> AdversarialRun {
    let network = Rc::new(RefCell::new(GossipNetwork::new(
        &config,
        CrdtValidator::new,
    )));
    let delivery = Box::new(ChannelDelivery::new(network.clone(), 0));
    let mut sim = fabriccrdt_simulation_with_delivery(config, registry, delivery);
    for (key, value) in seeds {
        sim.seed_state(key.clone(), value.clone());
    }
    let metrics = sim.run(schedule);
    let snapshots = {
        let mut network = network.borrow_mut();
        network.drain();
        (0..network.peer_count())
            .map(|peer| network.snapshot(peer))
            .collect()
    };
    AdversarialRun { metrics, snapshots }
}

/// Every tamper mode the adversary seam knows.
pub const ALL_MODES: [TamperMode; 5] = [
    TamperMode::FlipPayloadByte,
    TamperMode::DuplicateTx,
    TamperMode::ReorderTxs,
    TamperMode::ForgeTipHash,
    TamperMode::EquivocateValue,
];

/// Draws a random attack schedule: one to four attacks, each with a
/// random tamper mode, target height in `1..=max_height`, a random
/// non-empty victim set, an optional spoofed relay, and a small
/// injection delay. Used by the seeded property sweep; every schedule
/// is valid for any topology with `n_peers` peers.
pub fn gen_attack_schedule(g: &mut Gen, n_peers: usize, max_height: u64) -> AdversaryConfig {
    let attacks = g.vec(1, 4, |g| {
        let mode = *g.pick(&ALL_MODES);
        let height = g.range(1, max_height + 1);
        let mut victims: Vec<usize> = (0..n_peers).filter(|_| g.prob(0.4)).collect();
        if victims.is_empty() {
            victims.push(g.range(0, n_peers as u64) as usize);
        }
        let via = g.flip().then(|| g.range(0, n_peers as u64) as usize);
        AttackSpec {
            height,
            mode,
            victims,
            via,
            delay: SimTime::from_millis(g.range(0, 50)),
        }
    });
    AdversaryConfig {
        attacks,
        ..AdversaryConfig::none()
    }
}
