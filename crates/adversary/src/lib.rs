//! Adversarial harness for the FabricCRDT reproduction.
//!
//! The paper's evaluation (§7) runs honest networks; this crate asks
//! what the reproduction does when parts of the system misbehave, along
//! the three axes a permissioned deployment actually fears:
//!
//! - [`byzantine`] — a byzantine orderer/network: equivocating block
//!   payloads delivered to chosen victims, in-flight tampering (flipped
//!   payload bytes, duplicated/reordered transactions) and forged tip
//!   hashes, injected through the gossip layer's adversary seam
//!   ([`PipelineConfig::adversary`](fabriccrdt_fabric::config::PipelineConfig))
//!   and surfaced as
//!   [`AdversaryMetrics`](fabriccrdt_fabric::metrics::AdversaryMetrics).
//!   The harness runs the full transaction pipeline under an attack
//!   schedule and hands back every honest replica's ledger bytes so
//!   callers can assert byte-identity.
//! - [`fuzz`] — hostile CRDT operation streams: cyclic and missing
//!   dependency graphs, counter gaps, bogus cursors, head-targeting
//!   mutations and oversized payloads, generated from
//!   [`fabriccrdt_sim::gen`] seeds. Replicas fed the same hostile
//!   stream must reject-without-panic and stay identical.
//! - [`offline`] — offline-first clients: a replica accumulates edits
//!   while disconnected, then rejoins and syncs. The doc-level probe
//!   measures whether incremental deltas
//!   ([`JsonCrdt::delta_since`](fabriccrdt_jsoncrdt::JsonCrdt::delta_since))
//!   keep the merge storm bounded versus full history replay; the
//!   network-level probe reads gossip catch-up episodes out of a run
//!   with a scheduled crash window.
//!
//! None of this crate is wired into the honest pipeline: it only
//! *drives* the public seams (`DeliveryLayer`, `PipelineConfig`,
//! `JsonCrdt`), so the system under test is exactly what every other
//! bench and test exercises.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod byzantine;
pub mod fuzz;
pub mod offline;

pub use byzantine::{gen_attack_schedule, run_adversarial_pipeline, AdversarialRun};
pub use fuzz::{apply_identically, hostile_ops, FuzzReport};
pub use offline::{merge_storm_report, offline_rejoin, MergeStormReport, StormOutcome};
