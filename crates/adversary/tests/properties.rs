//! Seeded adversarial property sweep.
//!
//! 100 generated schedules drive the full FabricCRDT gossip pipeline
//! under random byzantine attack schedules; every case asserts the
//! three safety properties the threat model promises (DESIGN.md
//! §4.13): honest commits are unaffected, honest replicas stay
//! byte-identical, and every injected forgery is screened out (and
//! accounted for) at ingress. Two deterministic cases pin down the
//! detection semantics and the honest-run equivalence.

use std::sync::Arc;

use fabriccrdt_adversary::{gen_attack_schedule, run_adversarial_pipeline};
use fabriccrdt_fabric::chaincode::ChaincodeRegistry;
use fabriccrdt_fabric::config::{AdversaryConfig, AttackSpec, PipelineConfig, TamperMode};
use fabriccrdt_fabric::simulation::TxRequest;
use fabriccrdt_sim::gen;
use fabriccrdt_sim::time::SimTime;
use fabriccrdt_workload::IotChaincode;

const TXS: usize = 8;
const BLOCK_SIZE: usize = 4;
const PEERS: usize = 6; // Topology::paper(): 3 orgs × 2 peers

fn registry() -> ChaincodeRegistry {
    let mut registry = ChaincodeRegistry::new();
    registry.deploy(Arc::new(IotChaincode::crdt()));
    registry
}

fn seeds() -> Vec<(String, Vec<u8>)> {
    vec![("hot".to_owned(), br#"{"readings":[]}"#.to_vec())]
}

/// The paper's all-conflicting CRDT hot-key workload, small enough to
/// run 100 times in the sweep.
fn schedule() -> Vec<(SimTime, TxRequest)> {
    (0..TXS)
        .map(|i| {
            let key = "hot".to_owned();
            let payload = format!(r#"{{"readings":["r{i}"]}}"#);
            (
                SimTime::from_millis(20 * (i as u64 + 1)),
                TxRequest::new(
                    "iot-crdt",
                    IotChaincode::args(
                        std::slice::from_ref(&key),
                        std::slice::from_ref(&key),
                        &payload,
                    ),
                ),
            )
        })
        .collect()
}

#[test]
fn hundred_schedule_byzantine_sweep() {
    let mut injected_total = 0u64;
    let mut equivocation_cases = 0usize;
    gen::cases(100, |g| {
        let seed = g.u64();
        let adversary = gen_attack_schedule(g, PEERS, 3);
        let config = PipelineConfig::paper(BLOCK_SIZE, seed)
            .with_gossip()
            .with_adversary(adversary);
        let run = run_adversarial_pipeline(config, registry(), &seeds(), schedule());

        assert_eq!(
            run.metrics.successful(),
            TXS,
            "forgery injection must not cost honest commits"
        );
        assert!(
            run.honest_replicas_identical(),
            "honest replicas diverged under attack"
        );
        let adv = run.adversary();
        if adv.forged_blocks_injected > 0 {
            // The chronologically first forgery cannot hide behind an
            // earlier quarantine, so at least one rejection is counted;
            // the rest are either rejected or dropped with their
            // quarantined relay.
            assert!(adv.rejected_blocks() >= 1, "no forgery was screened");
            assert!(
                adv.rejected_blocks() + adv.quarantine_drops >= adv.forged_blocks_injected,
                "injected forgeries unaccounted for: {adv:?}"
            );
        } else {
            assert_eq!(adv.rejected_blocks(), 0, "phantom rejections: {adv:?}");
        }
        injected_total += adv.forged_blocks_injected;
        if adv.equivocations_detected > 0 {
            equivocation_cases += 1;
        }
    });
    assert!(injected_total > 0, "the sweep never landed an attack");
    assert!(
        equivocation_cases > 0,
        "the sweep never produced equivocation evidence"
    );
}

#[test]
fn fixed_schedule_detects_equivocation_and_tampering() {
    let adversary = AdversaryConfig {
        attacks: vec![
            AttackSpec {
                height: 1,
                mode: TamperMode::EquivocateValue,
                victims: vec![2, 4],
                via: Some(1),
                delay: SimTime::from_millis(3),
            },
            AttackSpec {
                height: 2,
                mode: TamperMode::FlipPayloadByte,
                victims: vec![3],
                via: None,
                delay: SimTime::from_millis(1),
            },
        ],
        ..AdversaryConfig::none()
    };
    let config = PipelineConfig::paper(BLOCK_SIZE, 42)
        .with_gossip()
        .with_adversary(adversary);
    let run = run_adversarial_pipeline(config, registry(), &seeds(), schedule());
    let adv = run.adversary();
    assert!(adv.forged_blocks_injected >= 3, "all three forgeries fire");
    assert!(
        adv.equivocations_detected >= 1,
        "divergent sealed payloads at one height are equivocation evidence: {adv:?}"
    );
    assert!(adv.forged_rejected >= 1, "resealed forgeries rejected");
    assert!(adv.tampered_rejected >= 1, "stale data hash rejected");
    assert_eq!(run.metrics.successful(), TXS);
    assert!(run.honest_replicas_identical());
}

#[test]
fn quiescent_adversary_reproduces_the_honest_run() {
    let honest = run_adversarial_pipeline(
        PipelineConfig::paper(BLOCK_SIZE, 7).with_gossip(),
        registry(),
        &seeds(),
        schedule(),
    );
    assert_eq!(honest.metrics.adversary, None, "no seam, no counters");

    let quiescent = run_adversarial_pipeline(
        PipelineConfig::paper(BLOCK_SIZE, 7)
            .with_gossip()
            .with_adversary(AdversaryConfig::none()),
        registry(),
        &seeds(),
        schedule(),
    );
    let adv = quiescent.adversary();
    assert_eq!(adv, Default::default(), "quiescent seam counts nothing");

    // Everything except the adversary field is bit-identical: the seam
    // itself costs no PRNG draws and no simulated time.
    let mut scrubbed = quiescent.metrics.clone();
    scrubbed.adversary = None;
    assert_eq!(scrubbed, honest.metrics);
    for (a, b) in honest.snapshots.iter().zip(&quiescent.snapshots) {
        assert_eq!(a, b, "ledger bytes must match the honest run");
    }
}
