//! Statistics for experiment metrics.

use crate::time::SimTime;

/// Online mean/min/max accumulator (no sample storage).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, sample: f64) {
        self.count += 1;
        self.sum += sample;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean, or `None` before the first sample.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// A full-sample summary with percentiles, built from stored samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    sorted: Vec<f64>,
    sum: f64,
    nan_dropped: usize,
}

impl Summary {
    /// Builds a summary from samples (any order).
    ///
    /// NaN samples are dropped (and counted in
    /// [`Summary::nan_dropped`]) rather than panicking: a single NaN
    /// from a metrics path is a missing datum, not a reason to abort a
    /// run mid-flight — the same convention [`Summary::percentile`]
    /// applies to out-of-range requests.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        let before = samples.len();
        samples.retain(|s| !s.is_nan());
        let nan_dropped = before - samples.len();
        samples.sort_by(f64::total_cmp);
        let sum = samples.iter().sum();
        Summary {
            sorted: samples,
            sum,
            nan_dropped,
        }
    }

    /// Builds a summary of latencies in seconds.
    pub fn from_times(times: &[SimTime]) -> Self {
        Self::from_samples(times.iter().map(|t| t.as_secs_f64()).collect())
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// NaN samples dropped while building the summary.
    pub fn nan_dropped(&self) -> usize {
        self.nan_dropped
    }

    /// Mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (!self.sorted.is_empty()).then(|| self.sum / self.sorted.len() as f64)
    }

    /// Minimum.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Maximum.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// The `p`-th percentile (0–100), nearest-rank method.
    ///
    /// Returns `None` when the summary is empty, or when `p` is NaN or
    /// outside `[0, 100]` — an out-of-range request is a caller bug,
    /// but report code feeding user-supplied percentiles should get a
    /// missing datum, not a panic mid-run.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        // `!(contains)` rather than a negated range test so NaN (for
        // which every comparison is false) also lands in the None arm.
        if !(0.0..=100.0).contains(&p) {
            return None;
        }
        if self.sorted.is_empty() {
            return None;
        }
        let rank = ((p / 100.0) * self.sorted.len() as f64).ceil() as usize;
        Some(self.sorted[rank.saturating_sub(1).min(self.sorted.len() - 1)])
    }

    /// Median (50th percentile).
    pub fn median(&self) -> Option<f64> {
        self.percentile(50.0)
    }
}

/// Fixed-width time-bucketed counter, e.g. committed transactions per
/// second over the run — the series behind throughput plots.
///
/// The dense bucket vector is capped at [`TimeBuckets::MAX_BUCKETS`]
/// entries: one stray event at a huge `SimTime` must not allocate a
/// bucket per intervening width (which could exhaust memory on long
/// runs). Events past the cap land in a single overflow counter
/// ([`TimeBuckets::overflow`]) instead.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeBuckets {
    width: SimTime,
    counts: Vec<u64>,
    overflow: u64,
}

impl TimeBuckets {
    /// Maximum number of dense buckets (64 Ki); later events count into
    /// the overflow bucket.
    pub const MAX_BUCKETS: usize = 1 << 16;

    /// Creates buckets of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: SimTime) -> Self {
        assert!(width > SimTime::ZERO, "bucket width must be positive");
        TimeBuckets {
            width,
            counts: Vec::new(),
            overflow: 0,
        }
    }

    /// Records one occurrence at time `at`. Events beyond
    /// [`TimeBuckets::MAX_BUCKETS`] widths go to the overflow bucket.
    pub fn record(&mut self, at: SimTime) {
        let idx = (at.as_micros() / self.width.as_micros()) as usize;
        if idx >= Self::MAX_BUCKETS {
            self.overflow += 1;
            return;
        }
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
    }

    /// The per-bucket counts (dense region only; see
    /// [`TimeBuckets::overflow`]).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Events recorded past the dense bucket cap.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Peak bucket count (dense region; the overflow bucket aggregates
    /// an unbounded time span, so it is not a comparable bucket).
    pub fn peak(&self) -> u64 {
        self.counts.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        assert_eq!(s.mean(), None);
        for x in [2.0, 4.0, 6.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), Some(4.0));
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(6.0));
    }

    #[test]
    fn summary_percentiles() {
        let s = Summary::from_samples((1..=100).map(f64::from).collect());
        assert_eq!(s.percentile(50.0), Some(50.0));
        assert_eq!(s.percentile(95.0), Some(95.0));
        assert_eq!(s.percentile(100.0), Some(100.0));
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.median(), Some(50.0));
        assert_eq!(s.mean(), Some(50.5));
    }

    #[test]
    fn summary_empty() {
        let s = Summary::from_samples(vec![]);
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), None);
        assert_eq!(s.percentile(50.0), None);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::from_samples(vec![7.5]);
        assert_eq!(s.median(), Some(7.5));
        assert_eq!(s.min(), s.max());
    }

    #[test]
    fn summary_from_times() {
        let s = Summary::from_times(&[SimTime::from_millis(100), SimTime::from_millis(300)]);
        assert_eq!(s.mean(), Some(0.2));
    }

    #[test]
    fn out_of_range_percentile_is_none() {
        let s = Summary::from_samples(vec![1.0, 2.0, 3.0]);
        assert_eq!(s.percentile(101.0), None);
        assert_eq!(s.percentile(-0.5), None);
        assert_eq!(s.percentile(f64::NAN), None);
        // Boundary values stay valid.
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.percentile(100.0), Some(3.0));
    }

    #[test]
    fn nan_samples_are_dropped_not_fatal() {
        // Regression: a single NaN from a metrics path used to panic
        // mid-run via `partial_cmp(..).expect(..)`.
        let s = Summary::from_samples(vec![3.0, f64::NAN, 1.0, f64::NAN, 2.0]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.nan_dropped(), 2);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(3.0));
        assert_eq!(s.median(), Some(2.0));
        assert_eq!(s.mean(), Some(2.0));
        // All-NaN input degenerates to the empty summary.
        let empty = Summary::from_samples(vec![f64::NAN]);
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.nan_dropped(), 1);
        assert_eq!(empty.percentile(50.0), None);
    }

    #[test]
    fn time_buckets() {
        let mut b = TimeBuckets::new(SimTime::from_secs(1));
        b.record(SimTime::from_millis(100));
        b.record(SimTime::from_millis(900));
        b.record(SimTime::from_millis(1500));
        assert_eq!(b.counts(), &[2, 1]);
        assert_eq!(b.peak(), 2);
    }

    #[test]
    fn sparse_late_event_does_not_exhaust_memory() {
        // Regression: one event ~10^9 bucket widths out used to resize
        // the dense vector to `idx + 1` entries (gigabytes of zeros).
        let mut b = TimeBuckets::new(SimTime::from_millis(1));
        b.record(SimTime::from_millis(5));
        b.record(SimTime::from_secs(1_000_000));
        assert!(b.counts().len() <= TimeBuckets::MAX_BUCKETS);
        assert_eq!(b.overflow(), 1);
        assert_eq!(b.peak(), 1);
        // The last dense bucket still records normally.
        b.record(SimTime::from_millis(TimeBuckets::MAX_BUCKETS as u64 - 1));
        assert_eq!(b.counts().len(), TimeBuckets::MAX_BUCKETS);
        assert_eq!(b.counts()[TimeBuckets::MAX_BUCKETS - 1], 1);
        assert_eq!(b.overflow(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bucket_width_panics() {
        TimeBuckets::new(SimTime::ZERO);
    }
}
