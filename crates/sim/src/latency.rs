//! Latency distributions.
//!
//! Network and processing delays in the pipeline are sampled from these
//! models. Calibration constants live in the `fabric` crate
//! (`latency.rs` there documents the values and their paper-shaped
//! rationale); this module only provides the distribution machinery.

use crate::rng::SimRng;
use crate::time::SimTime;

/// A latency distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Always the same delay.
    Constant(SimTime),
    /// Uniform in `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: SimTime,
        /// Upper bound (exclusive).
        hi: SimTime,
    },
    /// Normal with the given mean/σ (in seconds), clamped below at `min`.
    Normal {
        /// Mean in seconds.
        mean_secs: f64,
        /// Standard deviation in seconds.
        std_secs: f64,
        /// Hard lower clamp.
        min: SimTime,
    },
    /// Exponential with the given mean (in seconds).
    Exponential {
        /// Mean in seconds.
        mean_secs: f64,
    },
}

impl LatencyModel {
    /// Zero latency.
    pub fn zero() -> Self {
        LatencyModel::Constant(SimTime::ZERO)
    }

    /// Draws a delay.
    pub fn sample(&self, rng: &mut SimRng) -> SimTime {
        match *self {
            LatencyModel::Constant(t) => t,
            LatencyModel::Uniform { lo, hi } => {
                if hi <= lo {
                    lo
                } else {
                    SimTime::from_micros(rng.gen_range(lo.as_micros(), hi.as_micros()))
                }
            }
            LatencyModel::Normal {
                mean_secs,
                std_secs,
                min,
            } => {
                let drawn = SimTime::from_secs_f64(rng.normal(mean_secs, std_secs));
                drawn.max(min)
            }
            LatencyModel::Exponential { mean_secs } => {
                SimTime::from_secs_f64(rng.exponential(mean_secs))
            }
        }
    }

    /// The distribution's mean, for documentation and sanity checks.
    pub fn mean(&self) -> SimTime {
        match *self {
            LatencyModel::Constant(t) => t,
            LatencyModel::Uniform { lo, hi } => {
                SimTime::from_micros((lo.as_micros() + hi.as_micros()) / 2)
            }
            LatencyModel::Normal { mean_secs, .. } => SimTime::from_secs_f64(mean_secs),
            LatencyModel::Exponential { mean_secs } => SimTime::from_secs_f64(mean_secs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let m = LatencyModel::Constant(SimTime::from_millis(3));
        let mut rng = SimRng::seed_from(1);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), SimTime::from_millis(3));
        }
    }

    #[test]
    fn uniform_within_bounds() {
        let m = LatencyModel::Uniform {
            lo: SimTime::from_millis(1),
            hi: SimTime::from_millis(2),
        };
        let mut rng = SimRng::seed_from(2);
        for _ in 0..1000 {
            let t = m.sample(&mut rng);
            assert!(t >= SimTime::from_millis(1) && t < SimTime::from_millis(2));
        }
    }

    #[test]
    fn degenerate_uniform_returns_lo() {
        let m = LatencyModel::Uniform {
            lo: SimTime::from_millis(5),
            hi: SimTime::from_millis(5),
        };
        assert_eq!(m.sample(&mut SimRng::seed_from(0)), SimTime::from_millis(5));
    }

    #[test]
    fn normal_respects_min_clamp() {
        let m = LatencyModel::Normal {
            mean_secs: 0.001,
            std_secs: 0.010, // huge σ forces negative draws
            min: SimTime::from_micros(100),
        };
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            assert!(m.sample(&mut rng) >= SimTime::from_micros(100));
        }
    }

    #[test]
    fn exponential_mean_close() {
        let m = LatencyModel::Exponential { mean_secs: 0.004 };
        let mut rng = SimRng::seed_from(4);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| m.sample(&mut rng).as_secs_f64()).sum();
        let mean = total / n as f64;
        assert!((mean - 0.004).abs() < 0.0004, "mean {mean}");
    }

    #[test]
    fn mean_accessor() {
        assert_eq!(
            LatencyModel::Uniform {
                lo: SimTime::from_millis(2),
                hi: SimTime::from_millis(4),
            }
            .mean(),
            SimTime::from_millis(3)
        );
        assert_eq!(
            LatencyModel::Constant(SimTime::from_millis(7)).mean(),
            SimTime::from_millis(7)
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = LatencyModel::Exponential { mean_secs: 0.01 };
        let mut a = SimRng::seed_from(9);
        let mut b = SimRng::seed_from(9);
        for _ in 0..20 {
            assert_eq!(m.sample(&mut a), m.sample(&mut b));
        }
    }
}
