//! Open-loop arrival processes.
//!
//! Hyperledger Caliper's clients submit transactions at a configured rate
//! regardless of how fast the system drains them (open loop). §7.2 of the
//! paper: four clients together submit 10 000 transactions at the
//! experiment's rate. [`ArrivalProcess`] produces those submission
//! timestamps, deterministic or Poisson.

use crate::rng::SimRng;
use crate::time::SimTime;

/// How inter-arrival gaps are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalKind {
    /// Evenly spaced arrivals (Caliper's fixed-rate controller).
    Uniform,
    /// Poisson process (exponential gaps) with the same mean rate.
    Poisson,
}

/// An open-loop arrival process generating `count` arrivals at `rate_tps`.
///
/// # Examples
///
/// ```
/// use fabriccrdt_sim::arrivals::{ArrivalKind, ArrivalProcess};
/// use fabriccrdt_sim::{SimRng, SimTime};
///
/// let mut rng = SimRng::seed_from(1);
/// let times = ArrivalProcess::new(100.0, 10, ArrivalKind::Uniform)
///     .generate(&mut rng);
/// assert_eq!(times.len(), 10);
/// assert_eq!(times[1] - times[0], SimTime::from_millis(10));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalProcess {
    rate_tps: f64,
    count: usize,
    kind: ArrivalKind,
}

impl ArrivalProcess {
    /// Creates a process submitting `count` transactions at `rate_tps`
    /// transactions per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate_tps` is not strictly positive.
    pub fn new(rate_tps: f64, count: usize, kind: ArrivalKind) -> Self {
        assert!(rate_tps > 0.0, "arrival rate must be positive");
        ArrivalProcess {
            rate_tps,
            count,
            kind,
        }
    }

    /// The configured rate.
    pub fn rate_tps(&self) -> f64 {
        self.rate_tps
    }

    /// Number of arrivals generated.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Generates the arrival timestamps, starting at time zero.
    pub fn generate(&self, rng: &mut SimRng) -> Vec<SimTime> {
        let gap_secs = 1.0 / self.rate_tps;
        let mut times = Vec::with_capacity(self.count);
        match self.kind {
            ArrivalKind::Uniform => {
                for i in 0..self.count {
                    times.push(SimTime::from_secs_f64(i as f64 * gap_secs));
                }
            }
            ArrivalKind::Poisson => {
                let mut now = 0.0;
                for _ in 0..self.count {
                    times.push(SimTime::from_secs_f64(now));
                    now += rng.exponential(gap_secs);
                }
            }
        }
        times
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_spacing_matches_rate() {
        let mut rng = SimRng::seed_from(1);
        let times = ArrivalProcess::new(300.0, 900, ArrivalKind::Uniform).generate(&mut rng);
        assert_eq!(times.len(), 900);
        assert_eq!(times[0], SimTime::ZERO);
        // 900 arrivals at 300 tps span just under 3 seconds.
        let last = *times.last().unwrap();
        assert!((last.as_secs_f64() - 899.0 / 300.0).abs() < 1e-6);
    }

    #[test]
    fn poisson_mean_rate_close() {
        let mut rng = SimRng::seed_from(2);
        let n = 30_000;
        let times = ArrivalProcess::new(500.0, n, ArrivalKind::Poisson).generate(&mut rng);
        let span = times.last().unwrap().as_secs_f64();
        let rate = (n - 1) as f64 / span;
        assert!((rate - 500.0).abs() < 20.0, "rate {rate}");
    }

    #[test]
    fn arrivals_are_monotone() {
        let mut rng = SimRng::seed_from(3);
        let times = ArrivalProcess::new(50.0, 1000, ArrivalKind::Poisson).generate(&mut rng);
        for pair in times.windows(2) {
            assert!(pair[0] <= pair[1]);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        ArrivalProcess::new(0.0, 10, ArrivalKind::Uniform);
    }

    #[test]
    fn empty_count_is_fine() {
        let mut rng = SimRng::seed_from(4);
        assert!(ArrivalProcess::new(10.0, 0, ArrivalKind::Uniform)
            .generate(&mut rng)
            .is_empty());
    }
}
