//! The time-ordered event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A discrete-event queue: events pop in time order; ties pop in
/// scheduling (FIFO) order, which keeps simulations deterministic.
///
/// # Examples
///
/// ```
/// use fabriccrdt_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(5), "b");
/// q.schedule(SimTime::from_millis(5), "c");
/// q.schedule(SimTime::from_millis(1), "a");
/// let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    sequence: u64,
}

#[derive(Debug, Clone)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            sequence: 0,
        }
    }

    /// Schedules `event` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.sequence;
        self.sequence += 1;
        self.heap.push(Reverse(Scheduled { at, seq, event }));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(s)| (s.at, s.event))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 3);
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(5)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "late");
        q.schedule(SimTime::from_millis(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.schedule(SimTime::from_millis(5), "middle");
        assert_eq!(q.pop().unwrap().1, "middle");
        assert_eq!(q.pop().unwrap().1, "late");
    }
}
