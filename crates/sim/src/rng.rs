//! Deterministic pseudo-random number generation.
//!
//! A small, fast SplitMix64 generator. Every experiment seeds exactly one
//! `SimRng` (plus per-component forks via [`SimRng::fork`]) so that runs
//! are bit-for-bit reproducible across machines — a requirement for the
//! regenerated figures to be comparable.

/// SplitMix64 PRNG.
///
/// # Examples
///
/// ```
/// use fabriccrdt_sim::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Derives an independent generator, e.g. one per client, so that
    /// adding a consumer does not perturb another's stream.
    pub fn fork(&mut self, label: u64) -> SimRng {
        let mixed = self.next_u64() ^ label.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        SimRng::seed_from(mixed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits into the mantissa.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range requires lo < hi");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        // Inverse CDF; guard the log argument away from zero.
        let u = 1.0 - self.next_f64();
        -mean * u.ln()
    }

    /// Normally distributed value (Box–Muller).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(0, i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// A Zipf-distributed sampler over `{0, …, n-1}` with skew `s`
/// (`s = 0` is uniform; larger `s` concentrates probability on low
/// ranks). Used for realistic hot-key popularity in extension
/// workloads.
///
/// # Examples
///
/// ```
/// use fabriccrdt_sim::rng::{SimRng, ZipfSampler};
///
/// let zipf = ZipfSampler::new(100, 1.0);
/// let mut rng = SimRng::seed_from(1);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 100);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfSampler {
    /// Cumulative distribution over ranks.
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a nonempty support");
        assert!(s >= 0.0, "Zipf skew must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cdf.push(total);
        }
        for value in &mut cdf {
            *value /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn support(&self) -> usize {
        self.cdf.len()
    }

    /// Draws a rank in `0..n`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.next_f64();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("CDF has no NaN"))
        {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let mut root1 = SimRng::seed_from(9);
        let mut root2 = SimRng::seed_from(9);
        let mut f1 = root1.fork(1);
        let mut f2 = root2.fork(1);
        assert_eq!(f1.next_u64(), f2.next_u64());
        let mut g = root1.fork(2);
        assert_ne!(f1.next_u64(), g.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SimRng::seed_from(4);
        for _ in 0..1000 {
            let x = rng.gen_range(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn gen_range_empty_panics() {
        SimRng::seed_from(0).gen_range(5, 5);
    }

    #[test]
    fn exponential_mean_approximately_correct() {
        let mut rng = SimRng::seed_from(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn normal_moments_approximately_correct() {
        let mut rng = SimRng::seed_from(6);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = SimRng::seed_from(8);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn zipf_uniform_when_unskewed() {
        let zipf = ZipfSampler::new(10, 0.0);
        let mut rng = SimRng::seed_from(12);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((1600..2400).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn zipf_concentrates_with_skew() {
        let zipf = ZipfSampler::new(100, 1.2);
        let mut rng = SimRng::seed_from(13);
        let mut rank0 = 0usize;
        let n = 20_000;
        for _ in 0..n {
            if zipf.sample(&mut rng) == 0 {
                rank0 += 1;
            }
        }
        // Rank 0 carries far more than the uniform 1 %.
        assert!(rank0 as f64 / n as f64 > 0.15, "rank0 share {rank0}");
    }

    #[test]
    fn zipf_samples_in_support() {
        let zipf = ZipfSampler::new(7, 0.7);
        let mut rng = SimRng::seed_from(14);
        for _ in 0..1000 {
            assert!(zipf.sample(&mut rng) < 7);
        }
        assert_eq!(zipf.support(), 7);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn zipf_empty_support_panics() {
        ZipfSampler::new(0, 1.0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from(11);
        let mut items: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(items, (0..50).collect::<Vec<u32>>());
    }
}
