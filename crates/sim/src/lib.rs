//! Deterministic discrete-event simulation kernel.
//!
//! The FabricCRDT evaluation runs on a Kubernetes cluster; this crate is
//! the clock-and-queue substrate on which the reproduction re-creates the
//! paper's transaction pipeline (see DESIGN.md §1, "Time model"):
//!
//! - [`time`]: microsecond-resolution simulated time.
//! - [`rng`]: a seeded SplitMix64 PRNG — all randomness in an experiment
//!   flows from one seed, making every figure exactly reproducible.
//! - [`queue`]: the event queue (time-ordered, FIFO-stable for ties).
//! - [`latency`]: latency distributions for modelling network and
//!   processing delays.
//! - [`arrivals`]: open-loop transaction arrival processes (the Caliper
//!   clients submit at a configured rate regardless of system backpressure).
//! - [`stats`]: online statistics and percentile summaries for metrics.
//! - [`gen`]: deterministic test-data generation — the in-repo
//!   replacement for proptest that keeps the workspace offline-buildable.
//!
//! # Examples
//!
//! ```
//! use fabriccrdt_sim::{queue::EventQueue, time::SimTime};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.schedule(SimTime::from_millis(20), "second");
//! q.schedule(SimTime::from_millis(10), "first");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t, ev), (SimTime::from_millis(10), "first"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod gen;
pub mod latency;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use arrivals::ArrivalProcess;
pub use latency::LatencyModel;
pub use queue::EventQueue;
pub use rng::SimRng;
pub use stats::{OnlineStats, Summary};
pub use time::SimTime;
