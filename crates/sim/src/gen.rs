//! Deterministic test-data generation.
//!
//! A tiny, dependency-free stand-in for the parts of `proptest` the test
//! suites use: seeded random scalars, strings over an alphabet, and
//! collections, all driven by [`SimRng`] so failures reproduce exactly
//! from the printed case number. Keeping this in-repo lets the whole
//! workspace build and test on a machine with no access to a cargo
//! registry.
//!
//! # Examples
//!
//! ```
//! use fabriccrdt_sim::gen;
//!
//! gen::cases(16, |g| {
//!     let xs = g.vec(0, 8, |g| g.range(0, 100));
//!     let mut sorted = xs.clone();
//!     sorted.sort_unstable();
//!     assert_eq!(sorted.len(), xs.len());
//! });
//! ```

use crate::rng::SimRng;

/// A seeded generator of arbitrary test data.
#[derive(Debug, Clone)]
pub struct Gen {
    rng: SimRng,
}

impl Gen {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Gen {
            rng: SimRng::seed_from(seed),
        }
    }

    /// Direct access to the underlying PRNG.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// An arbitrary 64-bit value.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.gen_range(lo, hi)
    }

    /// Uniform collection size in `[lo, hi]` (inclusive, unlike
    /// [`Gen::range`], matching how proptest ranges read in the tests).
    pub fn size(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.gen_range(lo as u64, hi as u64 + 1) as usize
    }

    /// A fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn prob(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range_f64(lo, hi)
    }

    /// An arbitrary byte.
    pub fn byte(&mut self) -> u8 {
        (self.rng.next_u64() & 0xff) as u8
    }

    /// Arbitrary bytes with a length in `[lo, hi]`.
    pub fn bytes(&mut self, lo: usize, hi: usize) -> Vec<u8> {
        let len = self.size(lo, hi);
        (0..len).map(|_| self.byte()).collect()
    }

    /// A 32-byte array (hash/signature shaped).
    pub fn array32(&mut self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for chunk in out.chunks_mut(8) {
            chunk.copy_from_slice(&self.rng.next_u64().to_le_bytes());
        }
        out
    }

    /// A uniformly chosen element of a nonempty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.range(0, items.len() as u64) as usize]
    }

    /// A string over `alphabet` with a length in `[lo, hi]`.
    pub fn string_of(&mut self, alphabet: &str, lo: usize, hi: usize) -> String {
        let chars: Vec<char> = alphabet.chars().collect();
        let len = self.size(lo, hi);
        (0..len).map(|_| *self.pick(&chars)).collect()
    }

    /// A lowercase identifier with a length in `[lo, hi]`.
    pub fn ident(&mut self, lo: usize, hi: usize) -> String {
        self.string_of("abcdefghijklmnopqrstuvwxyz", lo, hi)
    }

    /// A vector with a length in `[lo, hi]` of generated elements.
    pub fn vec<T>(&mut self, lo: usize, hi: usize, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let len = self.size(lo, hi);
        (0..len).map(|_| f(self)).collect()
    }
}

/// Runs `f` over `n` independently seeded cases. When an assertion in
/// `f` panics, the failing case number is printed so the run can be
/// reproduced with [`case_gen`].
pub fn cases(n: usize, mut f: impl FnMut(&mut Gen)) {
    for case in 0..n {
        let guard = CaseGuard(case);
        let mut g = case_gen(case);
        f(&mut g);
        drop(guard);
    }
}

/// The generator used for case number `case` of [`cases`].
pub fn case_gen(case: usize) -> Gen {
    Gen::new(0x9e37_79b9_7f4a_7c15 ^ (case as u64).wrapping_mul(0xd134_2543_de82_ef95))
}

struct CaseGuard(usize);

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!("gen::cases: failing case #{}", self.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let collect = || {
            let mut out = Vec::new();
            cases(5, |g| out.push((g.u64(), g.ident(1, 4))));
            out
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn cases_differ_from_each_other() {
        let mut firsts = Vec::new();
        cases(8, |g| firsts.push(g.u64()));
        firsts.sort_unstable();
        firsts.dedup();
        assert_eq!(firsts.len(), 8, "per-case seeds collide");
    }

    #[test]
    fn size_is_inclusive() {
        let mut g = Gen::new(1);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let s = g.size(0, 3);
            assert!(s <= 3);
            seen.insert(s);
        }
        assert_eq!(seen.len(), 4, "all sizes in [0,3] reachable");
    }

    #[test]
    fn string_respects_alphabet_and_length() {
        let mut g = Gen::new(2);
        for _ in 0..100 {
            let s = g.string_of("ab", 1, 5);
            assert!((1..=5).contains(&s.len()));
            assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }
    }

    #[test]
    fn array32_varies() {
        let mut g = Gen::new(3);
        assert_ne!(g.array32(), g.array32());
    }
}
