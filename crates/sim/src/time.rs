//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or span of) simulated time, in microseconds.
///
/// One type serves as both instant and duration, like `u64` nanoseconds in
/// many simulators; the arithmetic below keeps uses readable.
///
/// # Examples
///
/// ```
/// use fabriccrdt_sim::SimTime;
///
/// let t = SimTime::from_millis(2) + SimTime::from_micros(500);
/// assert_eq!(t.as_micros(), 2_500);
/// assert_eq!(t.as_secs_f64(), 0.0025);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Constructs from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Constructs from fractional seconds (rounds to microseconds;
    /// negative values clamp to zero).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime((secs.max(0.0) * 1e6).round() as u64)
    }

    /// Value in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Value in milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Value in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Value in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Scales a duration by an integer factor.
    pub fn scale(self, factor: u64) -> SimTime {
        SimTime(self.0 * factor)
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    /// # Panics
    ///
    /// Panics in debug builds on underflow, like integer subtraction; use
    /// [`SimTime::saturating_sub`] when the ordering is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs_f64(0.5).as_millis(), 500);
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(3);
        assert_eq!((a + b).as_millis(), 8);
        assert_eq!((a - b).as_millis(), 2);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(b.scale(4).as_millis(), 12);
        let mut c = a;
        c += b;
        assert_eq!(c.as_millis(), 8);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(1) < SimTime::from_millis(1));
        assert!(SimTime::ZERO <= SimTime::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_micros(7).to_string(), "7us");
        assert_eq!(SimTime::from_micros(1500).to_string(), "1.500ms");
        assert_eq!(SimTime::from_millis(2500).to_string(), "2.500s");
    }
}
