//! Typed CRDT value envelopes.
//!
//! The paper's prototype merges JSON CRDTs; its conclusion plans "more
//! CRDTs, such as list, map, and graph CRDTs". This module adds that
//! extension: a CRDT-flagged write whose JSON carries a reserved
//! `"_crdt"` type tag is merged with the semantics of that datatype
//! instead of the generic JSON-document merge:
//!
//! | tag | state encoding | merge |
//! |---|---|---|
//! | `g-counter` | `{"_crdt":"g-counter","counts":{"<actor>":"<n>"}}` | per-actor max |
//! | `pn-counter` | `{"_crdt":"pn-counter","inc":{..},"dec":{..}}` | per-actor max, both halves |
//! | `g-set` | `{"_crdt":"g-set","elements":["…"]}` | set union |
//! | `lww` | `{"_crdt":"lww","value":"…","stamp":"<n>"}` | greatest stamp (value breaks ties) |
//!
//! Counts are carried as strings, per the paper's §5.2 convention that
//! chaincodes encode non-string scalars as strings. Committed state
//! keeps the same envelope, so the next block's read-modify-write
//! transactions merge against it seamlessly.

use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

use fabriccrdt_jsoncrdt::json::Value;

/// Reserved type-tag key in CRDT value envelopes.
pub const TYPE_TAG: &str = "_crdt";

/// Error produced when a tagged envelope is malformed or two envelopes
/// for the same key disagree on type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypedCrdtError {
    /// The `_crdt` tag names no known datatype.
    UnknownType(String),
    /// The envelope is missing fields or has wrong field types.
    MalformedEnvelope(&'static str),
    /// Two values for one key carry different types.
    TypeMismatch {
        /// Type established by the first value of the block.
        expected: &'static str,
        /// Type carried by the offending value.
        got: &'static str,
    },
}

impl fmt::Display for TypedCrdtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypedCrdtError::UnknownType(t) => write!(f, "unknown CRDT type tag {t:?}"),
            TypedCrdtError::MalformedEnvelope(what) => {
                write!(f, "malformed CRDT envelope: {what}")
            }
            TypedCrdtError::TypeMismatch { expected, got } => {
                write!(f, "CRDT type mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl Error for TypedCrdtError {}

/// A typed CRDT state parsed from an envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypedCrdt {
    /// Grow-only counter: per-actor monotone counts.
    GCounter(BTreeMap<String, u64>),
    /// Increment/decrement counter: two grow-only halves.
    PnCounter {
        /// Per-actor increments.
        inc: BTreeMap<String, u64>,
        /// Per-actor decrements.
        dec: BTreeMap<String, u64>,
    },
    /// Grow-only set of strings.
    GSet(BTreeSet<String>),
    /// Last-writer-wins register with an explicit stamp.
    Lww {
        /// The value.
        value: String,
        /// Write stamp; greatest wins, value breaks ties.
        stamp: u64,
    },
}

fn parse_counts(
    value: Option<&Value>,
    field: &'static str,
) -> Result<BTreeMap<String, u64>, TypedCrdtError> {
    let Some(map) = value.and_then(Value::as_map) else {
        return Err(TypedCrdtError::MalformedEnvelope(field));
    };
    map.iter()
        .map(|(actor, count)| {
            count
                .as_str()
                .and_then(|s| s.parse::<u64>().ok())
                .map(|n| (actor.clone(), n))
                .ok_or(TypedCrdtError::MalformedEnvelope(field))
        })
        .collect()
}

fn counts_to_value(counts: &BTreeMap<String, u64>) -> Value {
    Value::Map(
        counts
            .iter()
            .map(|(actor, n)| (actor.clone(), Value::string(n.to_string())))
            .collect(),
    )
}

fn merge_counts(into: &mut BTreeMap<String, u64>, from: &BTreeMap<String, u64>) {
    for (actor, &count) in from {
        let slot = into.entry(actor.clone()).or_insert(0);
        *slot = (*slot).max(count);
    }
}

impl TypedCrdt {
    /// Parses a typed envelope. Returns `None` when the value carries no
    /// `_crdt` tag (i.e. it is a generic JSON-document CRDT).
    ///
    /// # Errors
    ///
    /// Returns an error for a tagged but malformed or unknown envelope.
    pub fn parse(value: &Value) -> Option<Result<TypedCrdt, TypedCrdtError>> {
        let tag = value.get(TYPE_TAG)?.as_str().unwrap_or("");
        Some(Self::parse_tagged(tag, value))
    }

    fn parse_tagged(tag: &str, value: &Value) -> Result<TypedCrdt, TypedCrdtError> {
        match tag {
            "g-counter" => Ok(TypedCrdt::GCounter(parse_counts(
                value.get("counts"),
                "counts",
            )?)),
            "pn-counter" => Ok(TypedCrdt::PnCounter {
                inc: parse_counts(value.get("inc"), "inc")?,
                dec: parse_counts(value.get("dec"), "dec")?,
            }),
            "g-set" => {
                let Some(list) = value.get("elements").and_then(Value::as_list) else {
                    return Err(TypedCrdtError::MalformedEnvelope("elements"));
                };
                let elements = list
                    .iter()
                    .map(|e| {
                        e.as_str()
                            .map(str::to_owned)
                            .ok_or(TypedCrdtError::MalformedEnvelope("elements"))
                    })
                    .collect::<Result<BTreeSet<String>, _>>()?;
                Ok(TypedCrdt::GSet(elements))
            }
            "lww" => {
                let value_field = value
                    .get("value")
                    .and_then(Value::as_str)
                    .ok_or(TypedCrdtError::MalformedEnvelope("value"))?;
                let stamp = value
                    .get("stamp")
                    .and_then(Value::as_str)
                    .and_then(|s| s.parse().ok())
                    .ok_or(TypedCrdtError::MalformedEnvelope("stamp"))?;
                Ok(TypedCrdt::Lww {
                    value: value_field.to_owned(),
                    stamp,
                })
            }
            other => Err(TypedCrdtError::UnknownType(other.to_owned())),
        }
    }

    /// The type tag of this state.
    pub fn tag(&self) -> &'static str {
        match self {
            TypedCrdt::GCounter(_) => "g-counter",
            TypedCrdt::PnCounter { .. } => "pn-counter",
            TypedCrdt::GSet(_) => "g-set",
            TypedCrdt::Lww { .. } => "lww",
        }
    }

    /// Joins another state of the same type into this one.
    ///
    /// # Errors
    ///
    /// Returns [`TypedCrdtError::TypeMismatch`] for differing types.
    pub fn merge(&mut self, other: &TypedCrdt) -> Result<(), TypedCrdtError> {
        match (self, other) {
            (TypedCrdt::GCounter(a), TypedCrdt::GCounter(b)) => {
                merge_counts(a, b);
                Ok(())
            }
            (
                TypedCrdt::PnCounter { inc, dec },
                TypedCrdt::PnCounter {
                    inc: other_inc,
                    dec: other_dec,
                },
            ) => {
                merge_counts(inc, other_inc);
                merge_counts(dec, other_dec);
                Ok(())
            }
            (TypedCrdt::GSet(a), TypedCrdt::GSet(b)) => {
                a.extend(b.iter().cloned());
                Ok(())
            }
            (
                TypedCrdt::Lww { value, stamp },
                TypedCrdt::Lww {
                    value: other_value,
                    stamp: other_stamp,
                },
            ) => {
                if (*other_stamp, other_value) > (*stamp, value) {
                    *value = other_value.clone();
                    *stamp = *other_stamp;
                }
                Ok(())
            }
            (this, other) => Err(TypedCrdtError::TypeMismatch {
                expected: this.tag(),
                got: other.tag(),
            }),
        }
    }

    /// The numeric value of a counter state, if this is a counter.
    pub fn counter_value(&self) -> Option<i64> {
        match self {
            TypedCrdt::GCounter(counts) => Some(counts.values().sum::<u64>() as i64),
            TypedCrdt::PnCounter { inc, dec } => {
                Some(inc.values().sum::<u64>() as i64 - dec.values().sum::<u64>() as i64)
            }
            _ => None,
        }
    }

    /// Serializes back into the committed envelope. Counters include a
    /// redundant `"value"` field for human consumption; it is ignored on
    /// parse.
    pub fn to_value(&self) -> Value {
        let mut map = Value::empty_map();
        map.insert(TYPE_TAG, Value::string(self.tag()));
        match self {
            TypedCrdt::GCounter(counts) => {
                map.insert("counts", counts_to_value(counts));
                map.insert(
                    "value",
                    Value::string(self.counter_value().unwrap_or(0).to_string()),
                );
            }
            TypedCrdt::PnCounter { inc, dec } => {
                map.insert("inc", counts_to_value(inc));
                map.insert("dec", counts_to_value(dec));
                map.insert(
                    "value",
                    Value::string(self.counter_value().unwrap_or(0).to_string()),
                );
            }
            TypedCrdt::GSet(elements) => {
                map.insert(
                    "elements",
                    Value::list(elements.iter().map(|e| Value::string(e.clone()))),
                );
            }
            TypedCrdt::Lww { value, stamp } => {
                map.insert("value", Value::string(value.clone()));
                map.insert("stamp", Value::string(stamp.to_string()));
            }
        }
        map
    }

    /// Abstract merge work units for the cost model.
    pub fn work_units(&self) -> u64 {
        match self {
            TypedCrdt::GCounter(counts) => counts.len() as u64 + 1,
            TypedCrdt::PnCounter { inc, dec } => (inc.len() + dec.len()) as u64 + 1,
            TypedCrdt::GSet(elements) => elements.len() as u64 + 1,
            TypedCrdt::Lww { .. } => 1,
        }
    }
}

/// Chaincode-side envelope builders.
pub mod envelope {
    use super::*;

    /// A g-counter increment: this actor's count *after* the increment.
    /// Read-modify-write: read the committed envelope, bump your own
    /// count, submit.
    pub fn g_counter(counts: &BTreeMap<String, u64>) -> Value {
        TypedCrdt::GCounter(counts.clone()).to_value()
    }

    /// A pn-counter state.
    pub fn pn_counter(inc: &BTreeMap<String, u64>, dec: &BTreeMap<String, u64>) -> Value {
        TypedCrdt::PnCounter {
            inc: inc.clone(),
            dec: dec.clone(),
        }
        .to_value()
    }

    /// A g-set state.
    pub fn g_set<I: IntoIterator<Item = String>>(elements: I) -> Value {
        TypedCrdt::GSet(elements.into_iter().collect()).to_value()
    }

    /// An LWW register write.
    pub fn lww(value: impl Into<String>, stamp: u64) -> Value {
        TypedCrdt::Lww {
            value: value.into(),
            stamp,
        }
        .to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(text: &str) -> Value {
        text.parse().unwrap()
    }

    #[test]
    fn untagged_values_are_not_typed() {
        assert!(TypedCrdt::parse(&v(r#"{"deviceID":"d"}"#)).is_none());
        assert!(TypedCrdt::parse(&v(r#"["list"]"#)).is_none());
    }

    #[test]
    fn g_counter_roundtrip_and_merge() {
        let a = TypedCrdt::parse(&v(r#"{"_crdt":"g-counter","counts":{"alice":"3"}}"#))
            .unwrap()
            .unwrap();
        let b = TypedCrdt::parse(&v(
            r#"{"_crdt":"g-counter","counts":{"bob":"4","alice":"1"}}"#,
        ))
        .unwrap()
        .unwrap();
        let mut merged = a.clone();
        merged.merge(&b).unwrap();
        assert_eq!(merged.counter_value(), Some(7)); // max(3,1) + 4
                                                     // Roundtrip through the envelope.
        let reparsed = TypedCrdt::parse(&merged.to_value()).unwrap().unwrap();
        assert_eq!(reparsed, merged);
    }

    #[test]
    fn pn_counter_merge() {
        let a = TypedCrdt::parse(&v(
            r#"{"_crdt":"pn-counter","inc":{"a":"10"},"dec":{"a":"2"}}"#,
        ))
        .unwrap()
        .unwrap();
        let b = TypedCrdt::parse(&v(r#"{"_crdt":"pn-counter","inc":{"b":"1"},"dec":{}}"#))
            .unwrap()
            .unwrap();
        let mut merged = a;
        merged.merge(&b).unwrap();
        assert_eq!(merged.counter_value(), Some(9));
    }

    #[test]
    fn g_set_union() {
        let a = TypedCrdt::parse(&v(r#"{"_crdt":"g-set","elements":["x","y"]}"#))
            .unwrap()
            .unwrap();
        let b = TypedCrdt::parse(&v(r#"{"_crdt":"g-set","elements":["y","z"]}"#))
            .unwrap()
            .unwrap();
        let mut merged = a;
        merged.merge(&b).unwrap();
        assert_eq!(
            merged,
            TypedCrdt::GSet(["x", "y", "z"].iter().map(|s| s.to_string()).collect())
        );
    }

    #[test]
    fn lww_greatest_stamp_wins() {
        let old = TypedCrdt::parse(&v(r#"{"_crdt":"lww","value":"old","stamp":"1"}"#))
            .unwrap()
            .unwrap();
        let new = TypedCrdt::parse(&v(r#"{"_crdt":"lww","value":"new","stamp":"2"}"#))
            .unwrap()
            .unwrap();
        for (mut a, b) in [(old.clone(), &new), (new.clone(), &old)] {
            a.merge(b).unwrap();
            assert!(matches!(a, TypedCrdt::Lww { ref value, .. } if value == "new"));
        }
    }

    #[test]
    fn lww_tie_breaks_on_value() {
        let a = TypedCrdt::Lww {
            value: "a".into(),
            stamp: 5,
        };
        let b = TypedCrdt::Lww {
            value: "b".into(),
            stamp: 5,
        };
        let mut ab = a.clone();
        ab.merge(&b).unwrap();
        let mut ba = b.clone();
        ba.merge(&a).unwrap();
        assert_eq!(ab, ba); // deterministic regardless of order
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let mut counter = TypedCrdt::GCounter(BTreeMap::new());
        let set = TypedCrdt::GSet(BTreeSet::new());
        assert_eq!(
            counter.merge(&set).unwrap_err(),
            TypedCrdtError::TypeMismatch {
                expected: "g-counter",
                got: "g-set"
            }
        );
    }

    #[test]
    fn malformed_envelopes_error() {
        for text in [
            r#"{"_crdt":"g-counter"}"#,
            r#"{"_crdt":"g-counter","counts":{"a":"NaN"}}"#,
            r#"{"_crdt":"g-set","elements":"not-a-list"}"#,
            r#"{"_crdt":"lww","value":"x"}"#,
            r#"{"_crdt":"nope"}"#,
        ] {
            assert!(TypedCrdt::parse(&v(text)).unwrap().is_err(), "{text}");
        }
    }

    #[test]
    fn envelope_builders_parse_back() {
        let counts: BTreeMap<String, u64> = [("me".to_owned(), 7u64)].into_iter().collect();
        let built = envelope::g_counter(&counts);
        let parsed = TypedCrdt::parse(&built).unwrap().unwrap();
        assert_eq!(parsed.counter_value(), Some(7));

        let built = envelope::g_set(vec!["a".to_owned()]);
        assert!(TypedCrdt::parse(&built).unwrap().is_ok());

        let built = envelope::lww("v", 3);
        assert!(TypedCrdt::parse(&built).unwrap().is_ok());
    }

    #[test]
    fn merge_is_idempotent_and_commutative() {
        let a = TypedCrdt::parse(&v(r#"{"_crdt":"g-counter","counts":{"a":"2","b":"5"}}"#))
            .unwrap()
            .unwrap();
        let b = TypedCrdt::parse(&v(r#"{"_crdt":"g-counter","counts":{"b":"3","c":"1"}}"#))
            .unwrap()
            .unwrap();
        let mut ab = a.clone();
        ab.merge(&b).unwrap();
        ab.merge(&b).unwrap(); // idempotent
        let mut ba = b.clone();
        ba.merge(&a).unwrap();
        assert_eq!(ab, ba);
    }
}
