//! **FabricCRDT** — CRDT-merged transaction validation for a
//! Fabric-like permissioned blockchain.
//!
//! This crate is the primary contribution of *FabricCRDT: A Conflict-Free
//! Replicated Datatypes Approach to Permissioned Blockchains* (Middleware
//! 2019): instead of rejecting transactions whose read sets are outdated
//! (Fabric's MVCC conflicts, §3 of the paper), the committing peer
//! *merges* the values of conflicting CRDT-flagged transactions with JSON
//! CRDT techniques and commits every one of them — no failures, no lost
//! updates.
//!
//! - [`validator::CrdtValidator`] implements **Algorithm 1**
//!   (`ValidateMergeBlock`): collect and merge all CRDT write values per
//!   key across the block, run MVCC only on non-CRDT reads, rewrite every
//!   CRDT write with the converged value, commit.
//! - [`network`] offers convenience constructors for complete simulated
//!   FabricCRDT and Fabric networks sharing one configuration, which is
//!   how the paper's head-to-head experiments are run.
//!
//! The chaincode programming model is unchanged except for one shim call:
//! [`put_crdt`](fabriccrdt_fabric::ChaincodeStub::put_crdt) flags a value
//! as a CRDT (§5.2). Everything else — endorsement, ordering,
//! endorsement-policy validation — is exactly Fabric, which is what makes
//! FabricCRDT backward compatible with existing chaincodes.
//!
//! # Example: the paper's Listing 1 → Listing 2 merge
//!
//! ```
//! use fabriccrdt::validator::CrdtValidator;
//! use fabriccrdt_fabric::validator::BlockValidator;
//! use fabriccrdt_jsoncrdt::json::Value;
//! use fabriccrdt_ledger::{block::Block, rwset::ReadWriteSet,
//!     transaction::{Transaction, TxId}, worldstate::WorldState};
//! use fabriccrdt_crypto::Identity;
//!
//! fn crdt_tx(nonce: u64, json: &str) -> Transaction {
//!     let client = Identity::new("client", "org1");
//!     let mut rwset = ReadWriteSet::new();
//!     rwset.reads.record("Device1", None);
//!     rwset.writes.put_crdt("Device1", json.as_bytes().to_vec());
//!     Transaction {
//!         id: TxId::derive(&client, nonce, "iot"),
//!         client, chaincode: "iot".into(), rwset, endorsements: vec![],
//!     }
//! }
//!
//! let tx1 = crdt_tx(1, r#"{"deviceID":"Device1","readings":["51.0"]}"#);
//! let tx2 = crdt_tx(2, r#"{"deviceID":"Device1","readings":["49.5"]}"#);
//! let mut block = Block::assemble(0, [0; 32], vec![tx1, tx2]);
//! let mut state = WorldState::new();
//!
//! CrdtValidator::new().validate_and_commit(&mut block, &mut state, &[]);
//!
//! // Both conflicting transactions committed; the stored value holds
//! // both readings.
//! assert_eq!(block.successful_count(), 2);
//! let stored = Value::from_bytes(state.value("Device1").unwrap()).unwrap();
//! assert_eq!(stored.get("readings").unwrap().as_list().unwrap().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod network;
pub mod types;
pub mod validator;

pub use network::{
    fabric_adaptive_simulation, fabric_reordering_simulation, fabric_simulation,
    fabric_simulation_with_delivery, fabric_simulation_with_ordering, fabriccrdt_simulation,
    fabriccrdt_simulation_with_delivery, fabriccrdt_simulation_with_ordering,
};
pub use types::{TypedCrdt, TypedCrdtError};
pub use validator::CrdtValidator;
