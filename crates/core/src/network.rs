//! Convenience constructors for complete simulated networks.
//!
//! The paper's experiments run the *same* workload against a FabricCRDT
//! network and a vanilla Fabric network (§7.2: identical topology, only
//! the commit path differs). These helpers build both from one
//! configuration.

use fabriccrdt_fabric::chaincode::ChaincodeRegistry;
use fabriccrdt_fabric::config::PipelineConfig;
use fabriccrdt_fabric::simulation::{DeliveryLayer, OrderingBackend, Simulation};
use fabriccrdt_fabric::validator::FabricValidator;

use crate::validator::CrdtValidator;

/// Builds a FabricCRDT network: the full EOV pipeline with the merging
/// validator of Algorithm 1.
///
/// # Examples
///
/// ```
/// use fabriccrdt::fabriccrdt_simulation;
/// use fabriccrdt_fabric::chaincode::ChaincodeRegistry;
/// use fabriccrdt_fabric::config::PipelineConfig;
///
/// let mut sim = fabriccrdt_simulation(
///     PipelineConfig::paper(25, 42),
///     ChaincodeRegistry::new(),
/// );
/// let metrics = sim.run(vec![]);
/// assert_eq!(metrics.submitted(), 0);
/// ```
pub fn fabriccrdt_simulation(
    config: PipelineConfig,
    registry: ChaincodeRegistry,
) -> Simulation<CrdtValidator> {
    Simulation::new(config, CrdtValidator::new(), registry)
}

/// Builds a vanilla Fabric network: the same pipeline with plain MVCC
/// validation — the paper's baseline.
pub fn fabric_simulation(
    config: PipelineConfig,
    registry: ChaincodeRegistry,
) -> Simulation<FabricValidator> {
    Simulation::new(config, FabricValidator::new(), registry)
}

/// Builds a FabricCRDT network with an explicit block-dissemination
/// layer — e.g. the `fabriccrdt-gossip` crate's `GossipDelivery`, which
/// models Fabric's leader-pull/push-gossip/anti-entropy dissemination
/// (§4.4) with fault injection. [`fabriccrdt_simulation`] uses the
/// ideal FIFO layer.
pub fn fabriccrdt_simulation_with_delivery(
    config: PipelineConfig,
    registry: ChaincodeRegistry,
    delivery: Box<dyn DeliveryLayer>,
) -> Simulation<CrdtValidator> {
    Simulation::with_delivery(config, CrdtValidator::new(), registry, delivery)
}

/// Builds a vanilla Fabric network with an explicit block-dissemination
/// layer (see [`fabriccrdt_simulation_with_delivery`]).
pub fn fabric_simulation_with_delivery(
    config: PipelineConfig,
    registry: ChaincodeRegistry,
    delivery: Box<dyn DeliveryLayer>,
) -> Simulation<FabricValidator> {
    Simulation::with_delivery(config, FabricValidator::new(), registry, delivery)
}

/// Builds a FabricCRDT network with an explicit ordering backend —
/// e.g. the `fabriccrdt-ordering` crate's `RaftOrderingBackend`, which
/// replicates the block cutter across a crash-fault-tolerant Raft
/// cluster with fault injection. [`fabriccrdt_simulation`] uses the
/// single in-process orderer.
pub fn fabriccrdt_simulation_with_ordering(
    config: PipelineConfig,
    registry: ChaincodeRegistry,
    ordering: Box<dyn OrderingBackend>,
) -> Simulation<CrdtValidator> {
    Simulation::with_ordering(config, CrdtValidator::new(), registry, ordering)
}

/// Builds a vanilla Fabric network with an explicit ordering backend
/// (see [`fabriccrdt_simulation_with_ordering`]).
pub fn fabric_simulation_with_ordering(
    config: PipelineConfig,
    registry: ChaincodeRegistry,
    ordering: Box<dyn OrderingBackend>,
) -> Simulation<FabricValidator> {
    Simulation::with_ordering(config, FabricValidator::new(), registry, ordering)
}

/// Builds a Fabric network with Fabric++-style orderer reordering and
/// early abort — the transaction-reordering baseline the paper's
/// related work (§8) compares against: it *decreases* conflict failures
/// but, unlike FabricCRDT, cannot eliminate them.
pub fn fabric_reordering_simulation(
    config: PipelineConfig,
    registry: ChaincodeRegistry,
) -> Simulation<FabricValidator> {
    Simulation::new(config.with_reordering(), FabricValidator::new(), registry)
}

/// Builds a Fabric network with the conflict-aware *adaptive* ordering
/// policy: the orderer tracks per-key conflict heat from finalize
/// feedback and applies dependency-graph reordering only to batches
/// whose conflict density crosses the calibrated threshold — cold
/// traffic skips the Tarjan/Kahn cost entirely.
pub fn fabric_adaptive_simulation(
    config: PipelineConfig,
    registry: ChaincodeRegistry,
) -> Simulation<FabricValidator> {
    Simulation::new(
        config.with_adaptive_ordering(),
        FabricValidator::new(),
        registry,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabriccrdt_fabric::chaincode::{Chaincode, ChaincodeError, ChaincodeStub};
    use fabriccrdt_fabric::simulation::TxRequest;
    use fabriccrdt_sim::time::SimTime;
    use std::sync::Arc;

    /// CRDT read-modify-write chaincode used by both networks.
    struct CrdtRmw;

    impl Chaincode for CrdtRmw {
        fn name(&self) -> &str {
            "crdt-rmw"
        }

        fn invoke(
            &self,
            stub: &mut ChaincodeStub<'_>,
            args: &[String],
        ) -> Result<(), ChaincodeError> {
            stub.get_state(&args[0]);
            stub.put_crdt(&args[0], args[1].clone().into_bytes());
            Ok(())
        }
    }

    fn registry() -> ChaincodeRegistry {
        let mut reg = ChaincodeRegistry::new();
        reg.deploy(Arc::new(CrdtRmw));
        reg
    }

    fn schedule(n: usize) -> Vec<(SimTime, TxRequest)> {
        (0..n)
            .map(|i| {
                (
                    SimTime::from_secs_f64(i as f64 / 300.0),
                    TxRequest::new(
                        "crdt-rmw",
                        vec!["hot".into(), format!(r#"{{"readings":["r{i}"]}}"#)],
                    ),
                )
            })
            .collect()
    }

    /// The paper's headline comparison: under an all-conflicting CRDT
    /// workload, FabricCRDT commits everything, Fabric rejects most.
    #[test]
    fn fabriccrdt_commits_all_fabric_rejects_most() {
        let seed_doc = br#"{"readings":[]}"#.to_vec();

        let mut crdt_sim = fabriccrdt_simulation(PipelineConfig::paper(25, 42), registry());
        crdt_sim.seed_state("hot", seed_doc.clone());
        let crdt_metrics = crdt_sim.run(schedule(300));

        let mut fabric_sim = fabric_simulation(PipelineConfig::paper(400, 42), registry());
        fabric_sim.seed_state("hot", seed_doc);
        let fabric_metrics = fabric_sim.run(schedule(300));

        assert_eq!(crdt_metrics.successful(), 300, "FabricCRDT: no failures");
        assert!(
            fabric_metrics.successful() < 60,
            "Fabric commits only a few: {}",
            fabric_metrics.successful()
        );
        assert!(
            crdt_metrics.successful_throughput_tps()
                > fabric_metrics.successful_throughput_tps() * 3.0
        );
    }
}
