//! Algorithm 1: `ValidateMergeBlock`.
//!
//! The FabricCRDT committing path. For each block:
//!
//! 1. **First pass** (lines 3–14): walk every transaction's write set;
//!    CRDT-flagged pairs skip MVCC validation and are merged — per key —
//!    into a JSON CRDT instantiated empty for this block
//!    (`InitEmptyCRDT`). Because the chaincode model is
//!    read-modify-write, each transaction's value carries the committed
//!    document content, so content-addressed merging both deduplicates
//!    the common prefix and preserves every divergent update (the "no
//!    update loss" requirement, §4.2).
//! 2. **MVCC on non-CRDT transactions** (line 15): plain pairs validate
//!    exactly as on Fabric.
//! 3. **Second pass** (lines 16–22): every CRDT pair's value is replaced
//!    by the converged document, converted back to plain JSON with all
//!    CRDT metadata cleaned up — after this pass, conflicting
//!    transactions of the same key carry identical write values (paper
//!    Listing 2).
//!
//! Transactions that failed earlier stages (endorsement policy,
//! duplicate id) are excluded from merging — only *valid* transactions'
//! updates survive, per the paper's definition of valid (§4.2).

use std::collections::BTreeMap;

use fabriccrdt_fabric::cost::ValidationWork;
use fabriccrdt_fabric::metrics::DecodeCacheMetrics;
use fabriccrdt_fabric::state::ShardedState;
use fabriccrdt_fabric::validator::{BlockValidator, ChainOutcome};
use fabriccrdt_jsoncrdt::cache::{self, decode_cached};
use fabriccrdt_jsoncrdt::{JsonCrdt, ReplicaId};
use fabriccrdt_ledger::block::{Block, ValidationCode};
use fabriccrdt_ledger::mvcc;
use fabriccrdt_ledger::transaction::Transaction;
use fabriccrdt_ledger::worldstate::WorldState;

use crate::types::TypedCrdt;

/// Per-key merge state during a block's first pass: either the generic
/// JSON-document CRDT of the paper's prototype, or one of the typed
/// CRDTs of [`crate::types`] (the paper's future-work extension).
enum KeyMerger {
    Json(JsonCrdt),
    Typed(TypedCrdt),
}

impl KeyMerger {
    fn converged_bytes(&mut self, extra_units: &mut u64) -> Vec<u8> {
        match self {
            KeyMerger::Json(doc) => {
                // Conversion walks the whole document once.
                *extra_units += doc.applied_len() as u64;
                doc.to_value().to_bytes()
            }
            KeyMerger::Typed(state) => {
                *extra_units += state.work_units();
                state.to_value().to_bytes()
            }
        }
    }
}

/// The FabricCRDT block validator (Algorithm 1).
///
/// Plug into [`fabriccrdt_fabric::Simulation`] in place of
/// [`fabriccrdt_fabric::validator::FabricValidator`] to turn the network
/// into FabricCRDT.
#[derive(Debug, Clone, Copy)]
pub struct CrdtValidator {
    replica: ReplicaId,
}

impl CrdtValidator {
    /// Creates the validator. All peers deterministically merge blocks in
    /// the same order, so the replica id only namespaces operation ids.
    pub fn new() -> Self {
        CrdtValidator {
            replica: ReplicaId(1),
        }
    }

    /// Creates the validator with an explicit replica id.
    pub fn with_replica(replica: ReplicaId) -> Self {
        CrdtValidator { replica }
    }

    /// Algorithm 1's first pass (lines 3–14) over `txs` — `(block
    /// index, transaction)` pairs in ascending block order: folds CRDT
    /// write values into per-key mergers, recording the indices that
    /// participated (only those are rewritten in pass 2, so values that
    /// failed to parse or mismatched the key's established type commit
    /// opaquely, in block order, instead of being clobbered).
    ///
    /// Each key's merger starts from a fresh [`JsonCrdt`]
    /// (`InitEmptyCRDT`), so its operation-id sequence depends only on
    /// that key's payload sequence — which is why folding one conflict
    /// chain (all touchers of the chain's keys, in block order) yields
    /// byte-identical converged values to folding the whole block.
    fn merge_pass<'a>(
        &self,
        txs: impl Iterator<Item = (usize, &'a Transaction)>,
        merge_units: &mut u64,
        merge_quad: &mut u64,
    ) -> BTreeMap<String, (KeyMerger, Vec<usize>)> {
        let mut crdts: BTreeMap<String, (KeyMerger, Vec<usize>)> = BTreeMap::new();
        for (i, tx) in txs {
            for (key, entry) in tx.rwset.writes.iter() {
                if !entry.is_crdt || entry.is_delete {
                    continue; // line 14: handled as a non-CRDT pair
                }
                // The type of the CRDT object depends on the value's type
                // (line 9): a `_crdt`-tagged envelope selects a typed
                // CRDT; any other JSON map is the generic JSON-document
                // CRDT. Unparsable values stay opaque: they skip MVCC
                // (the flag is set) and commit in block order unmerged.
                // The shared decode cache means the N peers of a network
                // (and the parallel `prepare` pass) parse each distinct
                // payload once.
                let Ok(value) = decode_cached(&entry.value) else {
                    continue;
                };
                if value.as_map().is_none() {
                    continue;
                }
                match TypedCrdt::parse(&value) {
                    Some(Ok(typed)) => {
                        match crdts.entry(key.clone()) {
                            std::collections::btree_map::Entry::Vacant(slot) => {
                                *merge_units += typed.work_units();
                                slot.insert((KeyMerger::Typed(typed), vec![i]));
                            }
                            std::collections::btree_map::Entry::Occupied(mut slot) => {
                                let (merger, members) = slot.get_mut();
                                if let KeyMerger::Typed(state) = merger {
                                    if state.merge(&typed).is_ok() {
                                        *merge_units += typed.work_units();
                                        members.push(i);
                                    }
                                }
                                // Json/Typed mismatch: leave the value
                                // opaque (not a member).
                            }
                        }
                    }
                    Some(Err(_)) => {
                        // Tagged but malformed: opaque commit.
                    }
                    None => {
                        let (merger, members) = crdts.entry(key.clone()).or_insert_with(|| {
                            (KeyMerger::Json(JsonCrdt::new(self.replica)), Vec::new())
                        });
                        if let KeyMerger::Json(doc) = merger {
                            let ops_before = doc.applied_len() as u64;
                            if let Ok(work) = doc.merge_value(&value) {
                                *merge_units += work.units();
                                // Superlinear apply-cost term: merging into
                                // a document that already holds earlier
                                // transactions' operations is proportionally
                                // more expensive (see fabriccrdt-fabric::cost).
                                *merge_quad += work.units() * ops_before;
                                members.push(i);
                            }
                        }
                    }
                }
            }
        }
        crdts
    }
}

impl Default for CrdtValidator {
    fn default() -> Self {
        CrdtValidator::new()
    }
}

impl BlockValidator for CrdtValidator {
    fn validate_and_commit(
        &self,
        block: &mut Block,
        state: &mut WorldState,
        pre_decided: &[Option<ValidationCode>],
    ) -> ValidationWork {
        let decided = |i: usize| pre_decided.get(i).copied().flatten().is_some();

        // ----- First pass: collect and merge CRDT values (lines 3–14).
        let mut merge_units = 0u64;
        let mut merge_quad = 0u64;
        let mut crdts = self.merge_pass(
            block
                .transactions
                .iter()
                .enumerate()
                // Only endorsement-valid transactions merge.
                .filter(|&(i, _)| !decided(i)),
            &mut merge_units,
            &mut merge_quad,
        );

        // ----- Second pass: rewrite CRDT write values with the converged,
        // metadata-free state (lines 16–22).
        for (key, (merger, members)) in &mut crdts {
            let bytes = merger.converged_bytes(&mut merge_units);
            for &i in members.iter() {
                block.transactions[i]
                    .rwset
                    .writes
                    .update_value(key, bytes.clone());
            }
        }

        // ----- MVCC on non-CRDT pairs, then commit (line 15 + commit).
        let stats = mvcc::validate_and_commit(block, state, pre_decided, true);

        ValidationWork {
            sigs_verified: 0,
            reads_checked: stats.reads_checked,
            writes_applied: stats.writes_applied,
            merge_units,
            merge_quad,
            successes: stats.successes,
        }
    }

    /// Pre-parses CRDT write payloads into the shared decode cache.
    /// Called from the peer's (possibly parallel) pre-validation stage,
    /// this hoists JSON parsing off the sequential merge path; the
    /// first-pass `decode_cached` above then hits the warm cache.
    /// Value-neutral by the cache's determinism argument.
    fn prepare(&self, tx: &Transaction) {
        for (_, entry) in tx.rwset.writes.iter() {
            if entry.is_crdt && !entry.is_delete {
                let _ = decode_cached(&entry.value);
            }
        }
    }

    /// Algorithm 1 restricted to one conflict chain. The scheduler
    /// guarantees every transaction touching any of the chain's keys is
    /// *in* the chain (in block order), and `merge_pass` instantiates
    /// each key's CRDT empty per block, so the per-key folds — and hence
    /// operation ids, arbitration and converged bytes — are identical to
    /// the whole-block sequential pass.
    fn finalize_chain(
        &self,
        block_number: u64,
        transactions: &[Transaction],
        chain: &[usize],
        state: &ShardedState,
    ) -> ChainOutcome {
        let mut merge_units = 0u64;
        let mut merge_quad = 0u64;
        let crdts = self.merge_pass(
            chain.iter().map(|&i| (i, &transactions[i])),
            &mut merge_units,
            &mut merge_quad,
        );

        // ----- Second pass (lines 16–22), returned instead of applied:
        // the peer owns the block, so rewrites travel in the outcome.
        let mut converged: BTreeMap<String, (Vec<u8>, Vec<usize>)> = BTreeMap::new();
        for (key, (mut merger, members)) in crdts {
            let bytes = merger.converged_bytes(&mut merge_units);
            converged.insert(key, (bytes, members));
        }
        let mut rewrites: Vec<(usize, String, Vec<u8>)> = Vec::new();
        for (key, (bytes, members)) in &converged {
            for &i in members {
                rewrites.push((i, key.clone(), bytes.clone()));
            }
        }

        // ----- MVCC on non-CRDT pairs, then commit. The sequential
        // path validates against already-rewritten write sets; here the
        // override closure substitutes the converged bytes for member
        // pairs (members ascend, so binary search applies).
        let commit =
            mvcc::validate_chain(block_number, transactions, chain, state, true, |i, key| {
                converged.get(key).and_then(|(bytes, members)| {
                    members.binary_search(&i).is_ok().then(|| bytes.clone())
                })
            });

        ChainOutcome {
            codes: commit.codes,
            rewrites,
            work: ValidationWork {
                sigs_verified: 0,
                reads_checked: commit.stats.reads_checked,
                writes_applied: commit.stats.writes_applied,
                merge_units,
                merge_quad,
                successes: commit.stats.successes,
            },
        }
    }

    /// FabricCRDT's merge path exempts CRDT transactions from MVCC
    /// wholesale (§4.3): any transaction carrying a CRDT write commits
    /// regardless of read-set staleness, so the speculative verdict for
    /// those is always "valid". Non-CRDT transactions validate exactly
    /// as on Fabric.
    fn speculative_read_check(&self, tx: &Transaction, state: &WorldState) -> bool {
        if tx.rwset.writes.has_crdt_writes() {
            return true;
        }
        tx.rwset
            .reads
            .iter()
            .all(|(key, entry)| state.version(key) == entry.version)
    }

    fn decode_cache_stats(&self) -> Option<DecodeCacheMetrics> {
        let stats = cache::stats();
        Some(DecodeCacheMetrics {
            hits: stats.hits,
            misses: stats.misses,
            evictions: stats.evictions,
        })
    }

    fn name(&self) -> &str {
        "fabriccrdt"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabriccrdt_crypto::Identity;
    use fabriccrdt_jsoncrdt::json::Value;
    use fabriccrdt_ledger::rwset::ReadWriteSet;
    use fabriccrdt_ledger::transaction::{Transaction, TxId};
    use fabriccrdt_ledger::version::Height;

    fn tx(nonce: u64, build: impl FnOnce(&mut ReadWriteSet)) -> Transaction {
        let client = Identity::new("client", "org1");
        let mut rwset = ReadWriteSet::new();
        build(&mut rwset);
        Transaction {
            id: TxId::derive(&client, nonce, "iot"),
            client,
            chaincode: "iot".into(),
            rwset,
            endorsements: Vec::new(),
        }
    }

    fn stored_json(state: &WorldState, key: &str) -> Value {
        Value::from_bytes(state.value(key).expect("key present")).expect("valid JSON")
    }

    /// Paper Listing 1 → Listing 2.
    #[test]
    fn merge_listing_example() {
        let tx1 = tx(1, |rw| {
            rw.reads.record("Device1", None);
            rw.writes.put_crdt(
                "Device1",
                br#"{"deviceID":"Device1","readings":["51.0","49.5"]}"#.to_vec(),
            );
        });
        let tx2 = tx(2, |rw| {
            rw.reads.record("Device1", None);
            rw.writes.put_crdt(
                "Device1",
                br#"{"deviceID":"Device1","readings":["50.0"]}"#.to_vec(),
            );
        });
        let mut block = Block::assemble(0, [0; 32], vec![tx1, tx2]);
        let mut state = WorldState::new();
        let work = CrdtValidator::new().validate_and_commit(&mut block, &mut state, &[]);

        assert_eq!(work.successes, 2);
        assert!(block
            .validation_codes
            .iter()
            .all(|c| *c == ValidationCode::ValidMerged));

        // Listing 2: both write-sets now carry the identical merged value.
        let w1 = block.transactions[0].rwset.writes.get("Device1").unwrap();
        let w2 = block.transactions[1].rwset.writes.get("Device1").unwrap();
        assert_eq!(w1.value, w2.value);

        let merged = stored_json(&state, "Device1");
        assert_eq!(merged.get("deviceID").unwrap().as_str(), Some("Device1"));
        let readings = merged.get("readings").unwrap().as_list().unwrap();
        assert_eq!(readings.len(), 3);
    }

    #[test]
    fn all_conflicting_crdt_transactions_commit() {
        let mut state = WorldState::new();
        state.put(
            "doc".into(),
            br#"{"readings":[]}"#.to_vec(),
            Height::new(1, 0),
        );
        let stale = Height::new(0, 0); // everyone read a stale version
        let txs: Vec<Transaction> = (0..20)
            .map(|n| {
                tx(n, |rw| {
                    rw.reads.record("doc", Some(stale));
                    rw.writes
                        .put_crdt("doc", format!(r#"{{"readings":["r{n}"]}}"#).into_bytes());
                })
            })
            .collect();
        let mut block = Block::assemble(2, [0; 32], txs);
        let work = CrdtValidator::new().validate_and_commit(&mut block, &mut state, &[]);
        assert_eq!(work.successes, 20);
        let merged = stored_json(&state, "doc");
        assert_eq!(merged.get("readings").unwrap().as_list().unwrap().len(), 20);
    }

    #[test]
    fn read_modify_write_accumulates_across_blocks() {
        let mut state = WorldState::new();
        let mut committed = Value::parse(r#"{"readings":[]}"#).unwrap();
        // Three "blocks", two conflicting transactions each, every
        // transaction re-submitting the committed doc plus one reading —
        // the paper's IoT chaincode pattern.
        for block_no in 0..3u64 {
            let txs: Vec<Transaction> = (0..2)
                .map(|j| {
                    let mut doc = committed.clone();
                    let list = doc
                        .as_map_mut()
                        .unwrap()
                        .get_mut("readings")
                        .unwrap()
                        .as_list_mut()
                        .unwrap();
                    list.push(Value::string(format!("b{block_no}-t{j}")));
                    tx(block_no * 10 + j, |rw| {
                        rw.reads.record("doc", None);
                        rw.writes.put_crdt("doc", doc.to_bytes());
                    })
                })
                .collect();
            let mut block = Block::assemble(block_no, [0; 32], txs);
            let work = CrdtValidator::new().validate_and_commit(&mut block, &mut state, &[]);
            assert_eq!(work.successes, 2);
            committed = stored_json(&state, "doc");
        }
        // 3 blocks × 2 divergent readings, common prefixes deduplicated.
        let readings = committed.get("readings").unwrap().as_list().unwrap();
        assert_eq!(readings.len(), 6, "{committed}");
    }

    #[test]
    fn non_crdt_transactions_still_validate_mvcc() {
        let mut state = WorldState::new();
        state.put("plain".into(), b"0".to_vec(), Height::new(1, 0));
        let stale = Height::new(0, 0);
        let crdt = tx(1, |rw| {
            rw.reads.record("doc", None);
            rw.writes.put_crdt("doc", br#"{"a":"1"}"#.to_vec());
        });
        let plain_conflicting = tx(2, |rw| {
            rw.reads.record("plain", Some(stale));
            rw.writes.put("plain", b"1".to_vec());
        });
        let plain_fine = tx(3, |rw| {
            rw.reads.record("plain", Some(Height::new(1, 0)));
            rw.writes.put("plain", b"2".to_vec());
        });
        let mut block = Block::assemble(2, [0; 32], vec![crdt, plain_conflicting, plain_fine]);
        CrdtValidator::new().validate_and_commit(&mut block, &mut state, &[]);
        assert_eq!(
            block.validation_codes,
            vec![
                ValidationCode::ValidMerged,
                ValidationCode::MvccConflict,
                ValidationCode::Valid,
            ]
        );
        assert_eq!(state.value("plain"), Some(&b"2"[..]));
    }

    #[test]
    fn endorsement_failed_transactions_do_not_merge() {
        let tx_bad = tx(1, |rw| {
            rw.writes
                .put_crdt("doc", br#"{"readings":["evil"]}"#.to_vec());
        });
        let tx_good = tx(2, |rw| {
            rw.writes
                .put_crdt("doc", br#"{"readings":["good"]}"#.to_vec());
        });
        let mut block = Block::assemble(0, [0; 32], vec![tx_bad, tx_good]);
        let mut state = WorldState::new();
        let pre = vec![Some(ValidationCode::EndorsementPolicyFailure), None];
        let work = CrdtValidator::new().validate_and_commit(&mut block, &mut state, &pre);
        assert_eq!(work.successes, 1);
        let merged = stored_json(&state, "doc");
        let readings = merged.get("readings").unwrap().as_list().unwrap();
        assert_eq!(readings.len(), 1);
        assert_eq!(readings[0].as_str(), Some("good"));
    }

    #[test]
    fn unparsable_crdt_value_commits_opaquely() {
        let tx1 = tx(1, |rw| {
            rw.reads.record("k", Some(Height::new(0, 0))); // stale
            rw.writes.put_crdt("k", b"not json".to_vec());
        });
        let mut block = Block::assemble(0, [0; 32], vec![tx1]);
        let mut state = WorldState::new();
        state.put("k".into(), b"x".to_vec(), Height::new(1, 0));
        let work = CrdtValidator::new().validate_and_commit(&mut block, &mut state, &[]);
        // Still commits (CRDT flag skips MVCC), value stays opaque.
        assert_eq!(work.successes, 1);
        assert_eq!(state.value("k"), Some(&b"not json"[..]));
    }

    #[test]
    fn merge_work_scales_with_block_size() {
        let run = |n: u64| {
            let txs: Vec<Transaction> = (0..n)
                .map(|i| {
                    tx(i, |rw| {
                        rw.writes
                            .put_crdt("doc", format!(r#"{{"readings":["r{i}"]}}"#).into_bytes());
                    })
                })
                .collect();
            let mut block = Block::assemble(0, [0; 32], txs);
            let mut state = WorldState::new();
            CrdtValidator::new().validate_and_commit(&mut block, &mut state, &[])
        };
        let small = run(5);
        let large = run(50);
        assert!(large.merge_units > small.merge_units);
        // The quadratic term grows super-linearly in block size.
        assert!(large.merge_quad > small.merge_quad * 50);
    }

    #[test]
    fn deterministic_merge_across_validators() {
        let build = || {
            let txs: Vec<Transaction> = (0..8)
                .map(|i| {
                    tx(i, |rw| {
                        rw.writes.put_crdt(
                            "doc",
                            format!(r#"{{"k{i}":"v","l":["i{i}"]}}"#).into_bytes(),
                        );
                    })
                })
                .collect();
            let mut block = Block::assemble(0, [0; 32], txs);
            let mut state = WorldState::new();
            CrdtValidator::new().validate_and_commit(&mut block, &mut state, &[]);
            state.value("doc").unwrap().to_vec()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn validator_name() {
        assert_eq!(CrdtValidator::new().name(), "fabriccrdt");
    }

    #[test]
    fn finalize_chain_matches_sequential_merge_pass() {
        // Hot-key CRDT block (one chain holding every transaction) plus
        // a stale reader: the chain outcome must carry exactly the
        // codes, converged rewrites, work and state of the sequential
        // Algorithm 1 pass.
        let txs: Vec<Transaction> = (0..6)
            .map(|n| {
                tx(n, |rw| {
                    rw.reads.record("doc", Some(Height::new(0, 0))); // stale
                    rw.writes
                        .put_crdt("doc", format!(r#"{{"readings":["r{n}"]}}"#).into_bytes());
                })
            })
            .collect();
        let mut seed = WorldState::new();
        seed.put(
            "doc".into(),
            br#"{"readings":[]}"#.to_vec(),
            Height::new(1, 0),
        );

        let mut block = Block::assemble(2, [0; 32], txs.clone());
        let mut seq_state = seed.clone();
        let seq_work = CrdtValidator::new().validate_and_commit(&mut block, &mut seq_state, &[]);

        let sharded = ShardedState::from_world(&seed);
        let chain: Vec<usize> = (0..txs.len()).collect();
        let outcome = CrdtValidator::new().finalize_chain(2, &txs, &chain, &sharded);

        assert_eq!(outcome.work, seq_work);
        assert_eq!(
            outcome.codes.iter().map(|(_, c)| *c).collect::<Vec<_>>(),
            block.validation_codes
        );
        assert_eq!(outcome.rewrites.len(), 6);
        for (i, key, bytes) in &outcome.rewrites {
            assert_eq!(
                &block.transactions[*i].rwset.writes.get(key).unwrap().value,
                bytes,
                "rewrite bytes diverge at tx {i}"
            );
        }
        assert_eq!(sharded.into_world(), seq_state);
    }

    #[test]
    fn finalize_chain_handles_typed_and_mixed_writes() {
        // One chain with a typed g-counter fold, one with a plain
        // (non-CRDT) conflicting pair — summed outcomes must equal the
        // sequential pass.
        let mut txs: Vec<Transaction> = [("alice", 3u64), ("bob", 4)]
            .iter()
            .enumerate()
            .map(|(n, (actor, count))| {
                tx(n as u64, |rw| {
                    rw.writes.put_crdt(
                        "meter",
                        format!(r#"{{"_crdt":"g-counter","counts":{{"{actor}":"{count}"}}}}"#)
                            .into_bytes(),
                    );
                })
            })
            .collect();
        txs.push(tx(7, |rw| {
            rw.reads.record("plain", Some(Height::new(0, 0))); // stale
            rw.writes.put("plain", b"x".to_vec());
        }));
        let mut seed = WorldState::new();
        seed.put("plain".into(), b"0".to_vec(), Height::new(1, 0));

        let mut block = Block::assemble(3, [0; 32], txs.clone());
        let mut seq_state = seed.clone();
        let seq_work = CrdtValidator::new().validate_and_commit(&mut block, &mut seq_state, &[]);

        let sharded = ShardedState::from_world(&seed);
        let a = CrdtValidator::new().finalize_chain(3, &txs, &[0, 1], &sharded);
        let b = CrdtValidator::new().finalize_chain(3, &txs, &[2], &sharded);

        let mut work = a.work;
        work.absorb(b.work);
        assert_eq!(work, seq_work);
        let mut codes: Vec<(usize, ValidationCode)> = Vec::new();
        codes.extend(a.codes);
        codes.extend(b.codes);
        codes.sort_by_key(|&(i, _)| i);
        assert_eq!(
            codes.into_iter().map(|(_, c)| c).collect::<Vec<_>>(),
            block.validation_codes
        );
        assert_eq!(sharded.into_world(), seq_state);
    }

    #[test]
    fn crdt_validator_reports_decode_cache() {
        assert!(CrdtValidator::new().decode_cache_stats().is_some());
    }

    #[test]
    fn mixed_write_set_commits_all_kinds() {
        // A single CRDT transaction that merges one key, writes a plain
        // key and deletes another: all three effects commit (the CRDT
        // flag makes the whole transaction skip MVCC, §4.3).
        let mut state = WorldState::new();
        state.put("gone".into(), b"old".to_vec(), Height::new(1, 0));
        let t = tx(1, |rw| {
            rw.reads.record("doc", Some(Height::new(0, 0))); // stale
            rw.writes.put_crdt("doc", br#"{"readings":["r"]}"#.to_vec());
            rw.writes.put("plain", b"p".to_vec());
            rw.writes.delete("gone");
        });
        let mut block = Block::assemble(2, [0; 32], vec![t]);
        let work = CrdtValidator::new().validate_and_commit(&mut block, &mut state, &[]);
        assert_eq!(work.successes, 1);
        assert_eq!(block.validation_codes, vec![ValidationCode::ValidMerged]);
        assert!(stored_json(&state, "doc").get("readings").is_some());
        assert_eq!(state.value("plain"), Some(&b"p"[..]));
        assert!(state.value("gone").is_none());
    }

    #[test]
    fn crdt_delete_pair_is_not_merged() {
        // A delete on a CRDT-keyed entry is handled as a plain delete
        // (Algorithm 1 only merges CRDT *values*); a concurrent CRDT
        // write of the same key in the same block still merges and,
        // being applied per write-set in block order, the outcome is
        // deterministic.
        let t1 = tx(1, |rw| {
            rw.writes.put_crdt("doc", br#"{"a":"1"}"#.to_vec());
        });
        let t2 = tx(2, |rw| {
            rw.writes.put_crdt("other", br#"{"b":"2"}"#.to_vec());
            rw.writes.delete("doc");
        });
        let mut block = Block::assemble(1, [0; 32], vec![t1, t2]);
        let mut state = WorldState::new();
        let work = CrdtValidator::new().validate_and_commit(&mut block, &mut state, &[]);
        assert_eq!(work.successes, 2);
        // t2's delete lands after t1's write in block order.
        assert!(state.value("doc").is_none());
        assert!(state.value("other").is_some());
    }

    #[test]
    fn typed_g_counter_values_merge_by_counter_semantics() {
        // Three actors concurrently bump a shared usage counter (the
        // data-metering use case of §6): per-actor counts merge by max,
        // the committed value is the sum.
        let txs: Vec<Transaction> = [("alice", 3u64), ("bob", 4), ("carol", 5)]
            .iter()
            .enumerate()
            .map(|(n, (actor, count))| {
                tx(n as u64, |rw| {
                    rw.reads.record("meter", None);
                    rw.writes.put_crdt(
                        "meter",
                        format!(r#"{{"_crdt":"g-counter","counts":{{"{actor}":"{count}"}}}}"#)
                            .into_bytes(),
                    );
                })
            })
            .collect();
        let mut block = Block::assemble(1, [0; 32], txs);
        let mut state = WorldState::new();
        let work = CrdtValidator::new().validate_and_commit(&mut block, &mut state, &[]);
        assert_eq!(work.successes, 3);
        let committed = stored_json(&state, "meter");
        assert_eq!(committed.get("value").unwrap().as_str(), Some("12"));
        // All three write sets converged to the identical envelope.
        let values: Vec<_> = block
            .transactions
            .iter()
            .map(|t| &t.rwset.writes.get("meter").unwrap().value)
            .collect();
        assert_eq!(values[0], values[1]);
        assert_eq!(values[1], values[2]);
    }

    #[test]
    fn typed_counter_accumulates_across_blocks_rmw() {
        let mut state = WorldState::new();
        // Block 1: alice writes her count.
        let t1 = tx(1, |rw| {
            rw.writes.put_crdt(
                "meter",
                br#"{"_crdt":"g-counter","counts":{"alice":"2"}}"#.to_vec(),
            );
        });
        let mut b1 = Block::assemble(1, [0; 32], vec![t1]);
        CrdtValidator::new().validate_and_commit(&mut b1, &mut state, &[]);

        // Block 2: bob reads the committed envelope, adds his count, and
        // re-submits the whole state (read-modify-write).
        let committed = stored_json(&state, "meter");
        let mut counts = committed.get("counts").unwrap().clone();
        counts.insert("bob", Value::string("9"));
        let mut envelope = Value::empty_map();
        envelope.insert("_crdt", Value::string("g-counter"));
        envelope.insert("counts", counts);
        let t2 = tx(2, |rw| {
            rw.reads.record("meter", None);
            rw.writes.put_crdt("meter", envelope.to_bytes());
        });
        let mut b2 = Block::assemble(2, [0; 32], vec![t2]);
        CrdtValidator::new().validate_and_commit(&mut b2, &mut state, &[]);

        let final_state = stored_json(&state, "meter");
        assert_eq!(final_state.get("value").unwrap().as_str(), Some("11"));
    }

    #[test]
    fn typed_g_set_union_across_transactions() {
        let txs: Vec<Transaction> = (0..4)
            .map(|n| {
                tx(n, |rw| {
                    rw.writes.put_crdt(
                        "tags",
                        format!(r#"{{"_crdt":"g-set","elements":["tag{n}","common"]}}"#)
                            .into_bytes(),
                    );
                })
            })
            .collect();
        let mut block = Block::assemble(1, [0; 32], txs);
        let mut state = WorldState::new();
        CrdtValidator::new().validate_and_commit(&mut block, &mut state, &[]);
        let committed = stored_json(&state, "tags");
        let elements = committed.get("elements").unwrap().as_list().unwrap();
        assert_eq!(elements.len(), 5); // tag0..tag3 + common (deduplicated)
    }

    #[test]
    fn type_mismatch_within_block_keeps_first_type() {
        let t_counter = tx(1, |rw| {
            rw.writes
                .put_crdt("k", br#"{"_crdt":"g-counter","counts":{"a":"1"}}"#.to_vec());
        });
        let t_set = tx(2, |rw| {
            rw.writes
                .put_crdt("k", br#"{"_crdt":"g-set","elements":["x"]}"#.to_vec());
        });
        let mut block = Block::assemble(1, [0; 32], vec![t_counter, t_set]);
        let mut state = WorldState::new();
        let work = CrdtValidator::new().validate_and_commit(&mut block, &mut state, &[]);
        // Both still commit (CRDT flag skips MVCC); the mismatching set
        // value is opaque and, being later in block order, wins the
        // world state — deterministically on every peer.
        assert_eq!(work.successes, 2);
        let committed = stored_json(&state, "k");
        assert_eq!(committed.get("_crdt").unwrap().as_str(), Some("g-set"));
        // The counter transaction's write set was rewritten with counter
        // semantics, not clobbered by the set.
        let counter_value = &block.transactions[0].rwset.writes.get("k").unwrap().value;
        let parsed = Value::from_bytes(counter_value).unwrap();
        assert_eq!(parsed.get("_crdt").unwrap().as_str(), Some("g-counter"));
    }

    #[test]
    fn typed_lww_register_resolves_by_stamp() {
        let t1 = tx(1, |rw| {
            rw.writes.put_crdt(
                "cfg",
                br#"{"_crdt":"lww","value":"v2","stamp":"20"}"#.to_vec(),
            );
        });
        let t2 = tx(2, |rw| {
            rw.writes.put_crdt(
                "cfg",
                br#"{"_crdt":"lww","value":"v1","stamp":"10"}"#.to_vec(),
            );
        });
        let mut block = Block::assemble(1, [0; 32], vec![t1, t2]);
        let mut state = WorldState::new();
        CrdtValidator::new().validate_and_commit(&mut block, &mut state, &[]);
        let committed = stored_json(&state, "cfg");
        // The higher stamp wins even though it came first in block order.
        assert_eq!(committed.get("value").unwrap().as_str(), Some("v2"));
    }
}
