//! Property-based tests of the FabricCRDT requirements (§4.2): *no
//! failure* and *no update loss* over arbitrary CRDT workloads, plus
//! determinism of the merge-validate path.

use proptest::prelude::*;

use fabriccrdt::validator::CrdtValidator;
use fabriccrdt_crypto::Identity;
use fabriccrdt_fabric::validator::BlockValidator;
use fabriccrdt_jsoncrdt::json::Value;
use fabriccrdt_ledger::block::{Block, ValidationCode};
use fabriccrdt_ledger::rwset::ReadWriteSet;
use fabriccrdt_ledger::transaction::{Transaction, TxId};
use fabriccrdt_ledger::version::Height;
use fabriccrdt_ledger::worldstate::WorldState;

/// Arbitrary string-leaf JSON documents (the chaincode payload shape).
fn arb_doc() -> impl Strategy<Value = Value> {
    let leaf = "[a-z0-9.]{1,8}".prop_map(Value::string);
    let node = leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..3).prop_map(Value::list),
            prop::collection::btree_map("[a-z]{1,4}", inner, 0..3).prop_map(Value::Map),
        ]
    });
    prop::collection::btree_map("[a-z]{1,4}", node, 1..4).prop_map(Value::Map)
}

/// A block of CRDT transactions over a small hot-key space, every read
/// intentionally stale.
fn arb_crdt_block() -> impl Strategy<Value = Vec<(u64, String, Value)>> {
    prop::collection::vec((0u64..4, arb_doc()), 1..8).prop_map(|txs| {
        txs.into_iter()
            .enumerate()
            .map(|(i, (key, doc))| (i as u64, format!("hot-{key}"), doc))
            .collect()
    })
}

fn build_block(specs: &[(u64, String, Value)]) -> Block {
    let txs: Vec<Transaction> = specs
        .iter()
        .map(|(nonce, key, doc)| {
            let client = Identity::new("client", "org1");
            let mut rwset = ReadWriteSet::new();
            rwset.reads.record(key.clone(), Some(Height::new(0, 0))); // stale
            rwset.writes.put_crdt(key.clone(), doc.to_bytes());
            Transaction {
                id: TxId::derive(&client, *nonce, "cc"),
                client,
                chaincode: "cc".into(),
                rwset,
                endorsements: Vec::new(),
            }
        })
        .collect();
    Block::assemble(2, [0; 32], txs)
}

fn seeded_state() -> WorldState {
    let mut state = WorldState::new();
    for k in 0..4 {
        state.put(
            format!("hot-{k}"),
            Value::empty_map().to_bytes(),
            Height::new(1, 0),
        );
    }
    state
}

proptest! {
    /// No failure: every CRDT transaction commits, whatever it writes
    /// and however stale its reads are.
    #[test]
    fn crdt_transactions_never_fail(specs in arb_crdt_block()) {
        let mut block = build_block(&specs);
        let mut state = seeded_state();
        let work = CrdtValidator::new().validate_and_commit(&mut block, &mut state, &[]);
        prop_assert_eq!(work.successes as usize, specs.len());
        prop_assert!(block
            .validation_codes
            .iter()
            .all(|c| *c == ValidationCode::ValidMerged));
    }

    /// The committed value of every written key parses as JSON and the
    /// write sets of all transactions on one key are identical
    /// (Listing 2's property).
    #[test]
    fn converged_values_well_formed_and_uniform(specs in arb_crdt_block()) {
        let mut block = build_block(&specs);
        let mut state = seeded_state();
        CrdtValidator::new().validate_and_commit(&mut block, &mut state, &[]);
        for (_, key, _) in &specs {
            let stored = state.value(key).expect("committed");
            prop_assert!(Value::from_bytes(stored).is_ok());
        }
        for key in specs.iter().map(|(_, k, _)| k) {
            let values: Vec<&Vec<u8>> = block
                .transactions
                .iter()
                .filter_map(|tx| tx.rwset.writes.get(key).map(|e| &e.value))
                .collect();
            for pair in values.windows(2) {
                prop_assert_eq!(pair[0], pair[1]);
            }
        }
    }

    /// No update loss: every top-level key contributed by any
    /// transaction appears in the committed document for its ledger key.
    #[test]
    fn no_top_level_update_loss(specs in arb_crdt_block()) {
        let mut block = build_block(&specs);
        let mut state = seeded_state();
        CrdtValidator::new().validate_and_commit(&mut block, &mut state, &[]);
        for (_, key, doc) in &specs {
            let stored = Value::from_bytes(state.value(key).unwrap()).unwrap();
            for field in doc.as_map().unwrap().keys() {
                prop_assert!(
                    stored.get(field).is_some(),
                    "field {field:?} of {key} lost: {stored}"
                );
            }
        }
    }

    /// Determinism: two validators over the same block produce identical
    /// state and codes (what keeps replicas convergent).
    #[test]
    fn merge_validation_is_deterministic(specs in arb_crdt_block()) {
        let run = || {
            let mut block = build_block(&specs);
            let mut state = seeded_state();
            CrdtValidator::new().validate_and_commit(&mut block, &mut state, &[]);
            let snapshot: Vec<(String, Vec<u8>)> = state
                .iter()
                .map(|(k, v)| (k.clone(), v.value.clone()))
                .collect();
            (snapshot, block.validation_codes)
        };
        prop_assert_eq!(run(), run());
    }
}
