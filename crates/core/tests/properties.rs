//! Randomized property tests of the FabricCRDT requirements (§4.2): *no
//! failure* and *no update loss* over arbitrary CRDT workloads, plus
//! determinism of the merge-validate path. Driven by the deterministic
//! in-repo generator (`fabriccrdt_sim::gen`).

use std::collections::BTreeMap;

use fabriccrdt::validator::CrdtValidator;
use fabriccrdt_crypto::Identity;
use fabriccrdt_fabric::validator::BlockValidator;
use fabriccrdt_jsoncrdt::json::Value;
use fabriccrdt_ledger::block::{Block, ValidationCode};
use fabriccrdt_ledger::rwset::ReadWriteSet;
use fabriccrdt_ledger::transaction::{Transaction, TxId};
use fabriccrdt_ledger::version::Height;
use fabriccrdt_ledger::worldstate::WorldState;
use fabriccrdt_sim::gen::{self, Gen};

/// Arbitrary string-leaf JSON documents (the chaincode payload shape).
fn arb_doc(g: &mut Gen) -> Value {
    fn node(g: &mut Gen, depth: usize) -> Value {
        if depth == 0 || g.prob(0.5) {
            return Value::string(g.string_of("abcdefghij0123456789.", 1, 8));
        }
        if g.flip() {
            Value::list(g.vec(0, 3, |g| node(g, depth - 1)))
        } else {
            let entries: BTreeMap<String, Value> = g
                .vec(0, 3, |g| (g.ident(1, 4), node(g, depth - 1)))
                .into_iter()
                .collect();
            Value::Map(entries)
        }
    }
    let entries: BTreeMap<String, Value> = g
        .vec(1, 3, |g| (g.ident(1, 4), node(g, 3)))
        .into_iter()
        .collect();
    Value::Map(entries)
}

/// A block of CRDT transactions over a small hot-key space, every read
/// intentionally stale.
fn arb_crdt_block(g: &mut Gen) -> Vec<(u64, String, Value)> {
    g.vec(1, 7, |g| (g.range(0, 4), arb_doc(g)))
        .into_iter()
        .enumerate()
        .map(|(i, (key, doc))| (i as u64, format!("hot-{key}"), doc))
        .collect()
}

fn build_block(specs: &[(u64, String, Value)]) -> Block {
    let txs: Vec<Transaction> = specs
        .iter()
        .map(|(nonce, key, doc)| {
            let client = Identity::new("client", "org1");
            let mut rwset = ReadWriteSet::new();
            rwset.reads.record(key.clone(), Some(Height::new(0, 0))); // stale
            rwset.writes.put_crdt(key.clone(), doc.to_bytes());
            Transaction {
                id: TxId::derive(&client, *nonce, "cc"),
                client,
                chaincode: "cc".into(),
                rwset,
                endorsements: Vec::new(),
            }
        })
        .collect();
    Block::assemble(2, [0; 32], txs)
}

fn seeded_state() -> WorldState {
    let mut state = WorldState::new();
    for k in 0..4 {
        state.put(
            format!("hot-{k}"),
            Value::empty_map().to_bytes(),
            Height::new(1, 0),
        );
    }
    state
}

/// No failure: every CRDT transaction commits, whatever it writes and
/// however stale its reads are.
#[test]
fn crdt_transactions_never_fail() {
    gen::cases(96, |g| {
        let specs = arb_crdt_block(g);
        let mut block = build_block(&specs);
        let mut state = seeded_state();
        let work = CrdtValidator::new().validate_and_commit(&mut block, &mut state, &[]);
        assert_eq!(work.successes as usize, specs.len());
        assert!(block
            .validation_codes
            .iter()
            .all(|c| *c == ValidationCode::ValidMerged));
    });
}

/// The committed value of every written key parses as JSON and the
/// write sets of all transactions on one key are identical (Listing 2's
/// property).
#[test]
fn converged_values_well_formed_and_uniform() {
    gen::cases(96, |g| {
        let specs = arb_crdt_block(g);
        let mut block = build_block(&specs);
        let mut state = seeded_state();
        CrdtValidator::new().validate_and_commit(&mut block, &mut state, &[]);
        for (_, key, _) in &specs {
            let stored = state.value(key).expect("committed");
            assert!(Value::from_bytes(stored).is_ok());
        }
        for key in specs.iter().map(|(_, k, _)| k) {
            let values: Vec<&Vec<u8>> = block
                .transactions
                .iter()
                .filter_map(|tx| tx.rwset.writes.get(key).map(|e| &e.value))
                .collect();
            for pair in values.windows(2) {
                assert_eq!(pair[0], pair[1]);
            }
        }
    });
}

/// No update loss: every top-level key contributed by any transaction
/// appears in the committed document for its ledger key.
#[test]
fn no_top_level_update_loss() {
    gen::cases(96, |g| {
        let specs = arb_crdt_block(g);
        let mut block = build_block(&specs);
        let mut state = seeded_state();
        CrdtValidator::new().validate_and_commit(&mut block, &mut state, &[]);
        for (_, key, doc) in &specs {
            let stored = Value::from_bytes(state.value(key).unwrap()).unwrap();
            for field in doc.as_map().unwrap().keys() {
                assert!(
                    stored.get(field).is_some(),
                    "field {field:?} of {key} lost: {stored}"
                );
            }
        }
    });
}

/// Determinism: two validators over the same block produce identical
/// state and codes (what keeps replicas convergent).
#[test]
fn merge_validation_is_deterministic() {
    gen::cases(96, |g| {
        let specs = arb_crdt_block(g);
        let run = || {
            let mut block = build_block(&specs);
            let mut state = seeded_state();
            CrdtValidator::new().validate_and_commit(&mut block, &mut state, &[]);
            let snapshot: Vec<(String, Vec<u8>)> = state
                .iter()
                .map(|(k, v)| (k.clone(), v.value.clone()))
                .collect();
            (snapshot, block.validation_codes)
        };
        assert_eq!(run(), run());
    });
}
