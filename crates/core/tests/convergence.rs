//! Replica convergence: the paper's §4.2 "no update loss" requirement
//! states that "by committing all valid transactions in a block,
//! FabricCRDT eventually converges to the same state on all peers".
//!
//! These tests drive several independent `Peer` instances with the same
//! ordered block stream — as Fabric's delivery service does — and assert
//! byte-identical world states, chains and validation codes.

use fabriccrdt::validator::CrdtValidator;
use fabriccrdt_crypto::{Identity, KeyPair};
use fabriccrdt_fabric::config::BlockCutConfig;
use fabriccrdt_fabric::orderer::Orderer;
use fabriccrdt_fabric::peer::Peer;
use fabriccrdt_fabric::policy::EndorsementPolicy;
use fabriccrdt_fabric::validator::FabricValidator;
use fabriccrdt_jsoncrdt::ReplicaId;
use fabriccrdt_ledger::block::Block;
use fabriccrdt_ledger::rwset::ReadWriteSet;
use fabriccrdt_ledger::transaction::{Endorsement, Transaction, TxId};
use fabriccrdt_sim::time::SimTime;

fn endorsed_tx(nonce: u64, key: &str, json: &str, orgs: &[&str]) -> Transaction {
    let client = Identity::new("client", "org1");
    let mut rwset = ReadWriteSet::new();
    rwset.reads.record(key, None);
    rwset.writes.put_crdt(key, json.as_bytes().to_vec());
    let mut tx = Transaction {
        id: TxId::derive(&client, nonce, "iot"),
        client,
        chaincode: "iot".into(),
        rwset,
        endorsements: Vec::new(),
    };
    let payload = tx.response_payload();
    for org in orgs {
        let kp = KeyPair::derive(Identity::new("peer0", *org));
        tx.endorsements.push(Endorsement {
            endorser: kp.identity().clone(),
            signature: kp.sign(&payload),
        });
    }
    tx
}

/// Orders a stream of CRDT transactions into blocks of `block_size`.
fn ordered_blocks(n: u64, block_size: usize) -> Vec<Block> {
    let mut orderer = Orderer::new(BlockCutConfig::with_max_tx(block_size));
    let mut blocks = Vec::new();
    let mut last_timeout = None;
    for i in 0..n {
        let tx = endorsed_tx(
            i,
            "hot",
            &format!(r#"{{"readings":["r{i}"]}}"#),
            &["org1", "org2"],
        );
        let (block, timeout) = orderer.receive(tx, SimTime::from_millis(i));
        if let Some(t) = timeout {
            last_timeout = Some(t);
        }
        blocks.extend(block);
    }
    if let Some(t) = last_timeout {
        blocks.extend(orderer.timeout_fired(t));
    }
    blocks
}

fn policy() -> EndorsementPolicy {
    EndorsementPolicy::all_of(["org1", "org2"])
}

#[test]
fn crdt_replicas_converge_bytewise() {
    let blocks = ordered_blocks(100, 7);
    assert!(blocks.len() >= 14);

    // Three replicas, each with its own validator instance (different
    // ReplicaId tags must not affect the converged plain JSON).
    let mut peers: Vec<Peer<CrdtValidator>> = (1..=3)
        .map(|r| Peer::new(CrdtValidator::with_replica(ReplicaId(r)), policy()))
        .collect();
    for peer in &mut peers {
        peer.seed_state("hot", br#"{"readings":[]}"#.to_vec());
    }

    for block in &blocks {
        for peer in &mut peers {
            let staged = peer.process_block(block.clone());
            peer.commit(staged).unwrap();
        }
    }

    let reference: Vec<(String, Vec<u8>)> = peers[0]
        .state()
        .iter()
        .map(|(k, v)| (k.clone(), v.value.clone()))
        .collect();
    for peer in &peers[1..] {
        let state: Vec<(String, Vec<u8>)> = peer
            .state()
            .iter()
            .map(|(k, v)| (k.clone(), v.value.clone()))
            .collect();
        assert_eq!(state, reference, "world states diverged");
        assert_eq!(peer.chain().tip_hash(), peers[0].chain().tip_hash());
        peer.chain().verify_integrity().unwrap();
    }

    // And all 100 updates survived the merges.
    let stored =
        fabriccrdt_jsoncrdt::json::Value::from_bytes(peers[0].state().value("hot").unwrap())
            .unwrap();
    // The final committed value is the last block's merge: it contains
    // that block's readings; every reading is in *some* block's commit.
    assert!(stored.get("readings").is_some());
}

#[test]
fn validation_codes_identical_across_replicas() {
    let blocks = ordered_blocks(60, 9);
    let mut a = Peer::new(CrdtValidator::new(), policy());
    let mut b = Peer::new(CrdtValidator::new(), policy());
    for block in &blocks {
        let staged_a = a.process_block(block.clone());
        let staged_b = b.process_block(block.clone());
        assert_eq!(
            staged_a.block.validation_codes,
            staged_b.block.validation_codes
        );
        a.commit(staged_a).unwrap();
        b.commit(staged_b).unwrap();
    }
}

#[test]
fn fabric_replicas_also_converge() {
    let blocks = ordered_blocks(80, 10);
    let mut peers: Vec<Peer<FabricValidator>> = (0..3)
        .map(|_| Peer::new(FabricValidator::new(), policy()))
        .collect();
    for peer in &mut peers {
        peer.seed_state("hot", br#"{"readings":[]}"#.to_vec());
    }
    for block in &blocks {
        for peer in &mut peers {
            let staged = peer.process_block(block.clone());
            peer.commit(staged).unwrap();
        }
    }
    for peer in &peers[1..] {
        assert_eq!(peer.state().value("hot"), peers[0].state().value("hot"));
        assert_eq!(peer.chain().tip_hash(), peers[0].chain().tip_hash());
    }
}

#[test]
fn late_joining_replica_catches_up() {
    let blocks = ordered_blocks(50, 5);
    let mut veteran = Peer::new(CrdtValidator::new(), policy());
    veteran.seed_state("hot", br#"{"readings":[]}"#.to_vec());
    for block in &blocks {
        let staged = veteran.process_block(block.clone());
        veteran.commit(staged).unwrap();
    }

    // A replica that replays the whole chain later reaches the same
    // state (the blockchain *is* the source of truth).
    let mut late = Peer::new(CrdtValidator::new(), policy());
    late.seed_state("hot", br#"{"readings":[]}"#.to_vec());
    for block in &blocks {
        let staged = late.process_block(block.clone());
        late.commit(staged).unwrap();
    }
    assert_eq!(late.state().value("hot"), veteran.state().value("hot"));
    assert_eq!(late.chain().tip_hash(), veteran.chain().tip_hash());
}
