//! A Caliper-like multi-round benchmark runner.
//!
//! Hyperledger Caliper (§7.2, v0.1.0 in the paper) drives a benchmark as
//! a sequence of *rounds*, each with its own workload parameters, and
//! emits a per-round report of throughput, latency and success counts.
//! [`Benchmark`] is that runner over [`ExperimentConfig`] cells: label
//! the rounds, run them (optionally after a warm-up pass), and render
//! the final report.
//!
//! # Examples
//!
//! ```
//! use fabriccrdt_workload::caliper::Benchmark;
//! use fabriccrdt_workload::experiment::{ExperimentConfig, SystemKind};
//!
//! let base = ExperimentConfig {
//!     total_txs: 150,
//!     ..ExperimentConfig::paper_defaults()
//! };
//! let report = Benchmark::new("quick-comparison")
//!     .round("fabriccrdt", base)
//!     .round("fabric", base.for_system(SystemKind::Fabric))
//!     .run();
//! assert_eq!(report.rounds().len(), 2);
//! println!("{}", report.render());
//! ```

use crate::experiment::{ExperimentConfig, ExperimentResult};
use crate::report::{cache_cell, latency_cell, render_table};

/// One configured round.
#[derive(Debug, Clone)]
struct Round {
    label: String,
    config: ExperimentConfig,
}

/// A multi-round benchmark definition (builder).
#[derive(Debug, Clone)]
pub struct Benchmark {
    name: String,
    rounds: Vec<Round>,
    warmup_txs: usize,
}

impl Benchmark {
    /// Creates an empty benchmark.
    pub fn new(name: impl Into<String>) -> Self {
        Benchmark {
            name: name.into(),
            rounds: Vec::new(),
            warmup_txs: 0,
        }
    }

    /// Adds a round.
    pub fn round(mut self, label: impl Into<String>, config: ExperimentConfig) -> Self {
        self.rounds.push(Round {
            label: label.into(),
            config,
        });
        self
    }

    /// Runs a short warm-up pass of `txs` transactions before each
    /// measured round (discarded from the report). Caliper uses warm-up
    /// rounds to populate caches; in this deterministic simulator it
    /// only affects nothing but is supported for protocol parity.
    pub fn warmup(mut self, txs: usize) -> Self {
        self.warmup_txs = txs;
        self
    }

    /// Executes every round in order.
    pub fn run(self) -> BenchmarkReport {
        let mut results = Vec::with_capacity(self.rounds.len());
        for round in self.rounds {
            if self.warmup_txs > 0 {
                let warmup = ExperimentConfig {
                    total_txs: self.warmup_txs,
                    ..round.config
                };
                let _ = warmup.run();
            }
            let result = round.config.run();
            results.push((round.label, result));
        }
        BenchmarkReport {
            name: self.name,
            results,
        }
    }
}

/// The per-round results of a completed benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkReport {
    name: String,
    results: Vec<(String, ExperimentResult)>,
}

impl BenchmarkReport {
    /// Benchmark name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The `(label, result)` pairs in execution order.
    pub fn rounds(&self) -> &[(String, ExperimentResult)] {
        &self.results
    }

    /// Looks up a round by label.
    pub fn round(&self, label: &str) -> Option<&ExperimentResult> {
        self.results
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, r)| r)
    }

    /// Renders the Caliper-style report table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .results
            .iter()
            .map(|(label, r)| {
                vec![
                    label.clone(),
                    r.config.system.label().to_owned(),
                    format!("{}", r.config.rate_tps as u64),
                    format!("{:.1}", r.throughput_tps),
                    latency_cell(r.avg_latency_secs),
                    format!("{:.3}", r.p95_latency_secs),
                    r.successful.to_string(),
                    r.failed.to_string(),
                    cache_cell(r.decode_cache),
                ]
            })
            .collect();
        format!(
            "benchmark: {}\n{}",
            self.name,
            render_table(
                &[
                    "round",
                    "system",
                    "rate",
                    "tput(tps)",
                    "avg-lat(s)",
                    "p95-lat(s)",
                    "ok",
                    "failed",
                    "cache-hit%",
                ],
                &rows,
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::SystemKind;

    fn base(txs: usize) -> ExperimentConfig {
        ExperimentConfig {
            total_txs: txs,
            ..ExperimentConfig::paper_defaults()
        }
    }

    #[test]
    fn runs_rounds_in_order() {
        let report = Benchmark::new("test")
            .round("crdt", base(120))
            .round("fabric", base(120).for_system(SystemKind::Fabric))
            .run();
        assert_eq!(report.rounds().len(), 2);
        assert_eq!(report.rounds()[0].0, "crdt");
        assert_eq!(report.round("crdt").unwrap().successful, 120);
        assert!(report.round("fabric").unwrap().failed > 0);
        assert!(report.round("nope").is_none());
    }

    #[test]
    fn render_contains_labels_and_metrics() {
        let report = Benchmark::new("render-check").round("only", base(60)).run();
        let text = report.render();
        assert!(text.contains("render-check"));
        assert!(text.contains("only"));
        assert!(text.contains("FabricCRDT"));
        assert!(text.contains("60"));
    }

    #[test]
    fn warmup_does_not_change_results() {
        let without = Benchmark::new("a").round("r", base(100)).run();
        let with = Benchmark::new("b").round("r", base(100)).warmup(20).run();
        assert_eq!(
            without.round("r").unwrap().successful,
            with.round("r").unwrap().successful
        );
    }
}
