//! SmallBank — the asset-transfer workload the paper warns about.
//!
//! §6: *"financial applications like SmallBank or FabCoin, which are
//! developed for Fabric, are bad choices to be adapted as a CRDT-based
//! blockchain application"* — CRDT merging skips the repeatable-read
//! isolation transfers rely on.
//!
//! This module implements the classic SmallBank operations as a
//! chaincode with both a classic (`put_state`) and a naive CRDT-port
//! (`put_crdt`) variant, plus an invariant checker. On Fabric the MVCC
//! validator serializes conflicting transfers (failures, but money is
//! conserved); on the naive CRDT port every transfer commits and the
//! register-level last-writer-wins merge *loses updates* — total money
//! is no longer conserved. The `smallbank_*` tests quantify exactly the
//! §6 claim.

use fabriccrdt_fabric::chaincode::{Chaincode, ChaincodeError, ChaincodeStub};
use fabriccrdt_jsoncrdt::json::Value;
use fabriccrdt_ledger::worldstate::WorldState;

/// Account state: checking and savings balances (stringified integers,
/// per the paper's §5.2 convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Balances {
    /// Checking balance.
    pub checking: i64,
    /// Savings balance.
    pub savings: i64,
}

impl Balances {
    /// Serializes to the stored JSON document.
    pub fn to_value(self) -> Value {
        let mut v = Value::empty_map();
        v.insert("checking", Value::string(self.checking.to_string()));
        v.insert("savings", Value::string(self.savings.to_string()));
        v
    }

    /// Parses from the stored JSON document.
    pub fn parse(value: &Value) -> Option<Balances> {
        let field = |name: &str| {
            value
                .get(name)
                .and_then(Value::as_str)
                .and_then(|s| s.parse::<i64>().ok())
        };
        Some(Balances {
            checking: field("checking")?,
            savings: field("savings")?,
        })
    }
}

/// The SmallBank chaincode.
///
/// Operations (first argument selects one):
///
/// - `deposit_checking <account> <amount>`
/// - `transact_savings <account> <amount>` (may be negative; rejects
///   overdrafts)
/// - `send_payment <from> <to> <amount>` (rejects overdrafts)
/// - `write_check <account> <amount>` (checking may go negative, as in
///   the original benchmark)
/// - `amalgamate <account>` (moves all savings into checking)
#[derive(Debug, Clone, Copy)]
pub struct SmallBankChaincode {
    crdt: bool,
}

impl SmallBankChaincode {
    /// Classic variant: plain writes, protected by MVCC.
    pub fn classic() -> Self {
        SmallBankChaincode { crdt: false }
    }

    /// Naive CRDT port: the same logic submitted via `put_crdt` — the
    /// §6 anti-pattern, provided so its anomalies can be demonstrated.
    pub fn naive_crdt_port() -> Self {
        SmallBankChaincode { crdt: true }
    }

    fn load(
        &self,
        stub: &mut ChaincodeStub<'_>,
        account: &str,
    ) -> Result<Balances, ChaincodeError> {
        let bytes = stub
            .get_state(account)
            .ok_or_else(|| ChaincodeError::new(format!("unknown account {account}")))?;
        let value = Value::from_bytes(&bytes)
            .map_err(|e| ChaincodeError::new(format!("corrupt account: {e}")))?;
        Balances::parse(&value).ok_or_else(|| ChaincodeError::new("malformed balances"))
    }

    fn store(&self, stub: &mut ChaincodeStub<'_>, account: &str, balances: Balances) {
        let bytes = balances.to_value().to_bytes();
        if self.crdt {
            stub.put_crdt(account, bytes);
        } else {
            stub.put_state(account, bytes);
        }
    }
}

fn amount_arg(args: &[String], index: usize) -> Result<i64, ChaincodeError> {
    args.get(index)
        .and_then(|a| a.parse().ok())
        .ok_or_else(|| ChaincodeError::new("amount must be an integer"))
}

impl Chaincode for SmallBankChaincode {
    fn name(&self) -> &str {
        if self.crdt {
            "smallbank-crdt"
        } else {
            "smallbank"
        }
    }

    fn invoke(&self, stub: &mut ChaincodeStub<'_>, args: &[String]) -> Result<(), ChaincodeError> {
        let op = args.first().map(String::as_str).unwrap_or("");
        match op {
            "deposit_checking" => {
                let account = &args[1];
                let amount = amount_arg(args, 2)?;
                let mut b = self.load(stub, account)?;
                b.checking += amount;
                self.store(stub, account, b);
            }
            "transact_savings" => {
                let account = &args[1];
                let amount = amount_arg(args, 2)?;
                let mut b = self.load(stub, account)?;
                if b.savings + amount < 0 {
                    return Err(ChaincodeError::new("insufficient savings"));
                }
                b.savings += amount;
                self.store(stub, account, b);
            }
            "send_payment" => {
                let (from, to) = (&args[1], &args[2]);
                let amount = amount_arg(args, 3)?;
                let mut src = self.load(stub, from)?;
                let mut dst = self.load(stub, to)?;
                if src.checking < amount {
                    return Err(ChaincodeError::new("insufficient funds"));
                }
                src.checking -= amount;
                dst.checking += amount;
                self.store(stub, from, src);
                self.store(stub, to, dst);
            }
            "write_check" => {
                let account = &args[1];
                let amount = amount_arg(args, 2)?;
                let mut b = self.load(stub, account)?;
                b.checking -= amount;
                self.store(stub, account, b);
            }
            "amalgamate" => {
                let account = &args[1];
                let mut b = self.load(stub, account)?;
                b.checking += b.savings;
                b.savings = 0;
                self.store(stub, account, b);
            }
            other => return Err(ChaincodeError::new(format!("unknown operation {other:?}"))),
        }
        Ok(())
    }
}

/// Sums all money across accounts in a world state — the conservation
/// invariant (`send_payment`/`amalgamate` must not change it).
pub fn total_money(state: &WorldState, accounts: &[String]) -> i64 {
    accounts
        .iter()
        .filter_map(|a| state.value(a))
        .filter_map(|bytes| Value::from_bytes(bytes).ok())
        .filter_map(|v| Balances::parse(&v))
        .map(|b| b.checking + b.savings)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabriccrdt::{fabric_simulation, fabriccrdt_simulation};
    use fabriccrdt_fabric::chaincode::ChaincodeRegistry;
    use fabriccrdt_fabric::config::PipelineConfig;
    use fabriccrdt_fabric::simulation::TxRequest;
    use fabriccrdt_sim::rng::SimRng;
    use fabriccrdt_sim::time::SimTime;
    use std::sync::Arc;

    const ACCOUNTS: usize = 4;
    const INITIAL: Balances = Balances {
        checking: 1000,
        savings: 1000,
    };

    fn account_names() -> Vec<String> {
        (0..ACCOUNTS).map(|i| format!("acct-{i}")).collect()
    }

    /// Random conservation-preserving payments on few hot accounts.
    fn payment_schedule(chaincode: &str, n: usize, seed: u64) -> Vec<(SimTime, TxRequest)> {
        let mut rng = SimRng::seed_from(seed);
        (0..n)
            .map(|i| {
                let from = rng.gen_range(0, ACCOUNTS as u64);
                let to = (from + 1 + rng.gen_range(0, ACCOUNTS as u64 - 1)) % ACCOUNTS as u64;
                (
                    SimTime::from_secs_f64(i as f64 / 300.0),
                    TxRequest::new(
                        chaincode,
                        vec![
                            "send_payment".into(),
                            format!("acct-{from}"),
                            format!("acct-{to}"),
                            "10".into(),
                        ],
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn unit_operations() {
        let mut state = WorldState::new();
        state.put(
            "a".into(),
            INITIAL.to_value().to_bytes(),
            fabriccrdt_ledger::version::Height::new(1, 0),
        );
        let cc = SmallBankChaincode::classic();

        let mut stub = ChaincodeStub::new(&state);
        cc.invoke(&mut stub, &["amalgamate".into(), "a".into()])
            .unwrap();
        let (rwset, _) = stub.into_result();
        let stored = Value::from_bytes(&rwset.writes.get("a").unwrap().value).unwrap();
        assert_eq!(
            Balances::parse(&stored).unwrap(),
            Balances {
                checking: 2000,
                savings: 0
            }
        );

        let mut stub = ChaincodeStub::new(&state);
        assert!(cc
            .invoke(
                &mut stub,
                &["transact_savings".into(), "a".into(), "-2000".into()]
            )
            .is_err());
        let mut stub = ChaincodeStub::new(&state);
        assert!(cc
            .invoke(
                &mut stub,
                &[
                    "send_payment".into(),
                    "a".into(),
                    "a".into(),
                    "99999".into()
                ]
            )
            .is_err());
        let mut stub = ChaincodeStub::new(&state);
        assert!(cc.invoke(&mut stub, &["bogus".into()]).is_err());
        let mut stub = ChaincodeStub::new(&state);
        assert!(cc
            .invoke(
                &mut stub,
                &["deposit_checking".into(), "ghost".into(), "1".into()]
            )
            .is_err());
    }

    /// On Fabric, conflicting payments fail but money is conserved.
    #[test]
    fn smallbank_on_fabric_conserves_money() {
        let mut registry = ChaincodeRegistry::new();
        registry.deploy(Arc::new(SmallBankChaincode::classic()));
        let mut sim = fabric_simulation(PipelineConfig::paper(25, 17), registry);
        for account in account_names() {
            sim.seed_state(account, INITIAL.to_value().to_bytes());
        }
        let metrics = sim.run(payment_schedule("smallbank", 200, 17));
        assert!(metrics.failed() > 0, "hot accounts conflict");
        let total = total_money(sim.peer().state(), &account_names());
        assert_eq!(total, (ACCOUNTS as i64) * 2000, "money conserved");
    }

    /// On the naive CRDT port, everything commits — and balances are
    /// wrong: register-level LWW merges lose concurrent transfers. This
    /// is the paper's §6 argument, quantified. (Every payment commits,
    /// so the correct outcome is initial + net per-account deltas;
    /// addition commutes, so ordering cannot excuse a difference.)
    #[test]
    fn smallbank_naive_crdt_port_loses_updates() {
        let mut registry = ChaincodeRegistry::new();
        registry.deploy(Arc::new(SmallBankChaincode::naive_crdt_port()));
        let mut sim = fabriccrdt_simulation(PipelineConfig::paper(25, 17), registry);
        for account in account_names() {
            sim.seed_state(account, INITIAL.to_value().to_bytes());
        }
        let schedule = payment_schedule("smallbank-crdt", 200, 17);
        let mut expected: Vec<i64> = vec![INITIAL.checking; ACCOUNTS];
        for (_, request) in &schedule {
            let from: usize = request.args[1][5..].parse().unwrap();
            let to: usize = request.args[2][5..].parse().unwrap();
            let amount: i64 = request.args[3].parse().unwrap();
            expected[from] -= amount;
            expected[to] += amount;
        }
        let metrics = sim.run(schedule);
        assert_eq!(metrics.failed(), 0, "CRDT transactions never fail");
        let mut lost = 0i64;
        for (i, account) in account_names().iter().enumerate() {
            let stored = Value::from_bytes(sim.peer().state().value(account).unwrap()).unwrap();
            let actual = Balances::parse(&stored).unwrap().checking;
            lost += (actual - expected[i]).abs();
        }
        assert!(lost > 0, "LWW balance merges must lose concurrent updates");
    }
}
