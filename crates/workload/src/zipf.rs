//! Zipf-skewed contention workloads.
//!
//! The paper's Figure 7 controls contention with a fixed percentage of
//! transactions on one shared key; real workloads skew smoothly — key
//! popularity follows a Zipf law. This module generates the
//! read-modify-write IoT schedules the `bench --bin zipf` three-way
//! comparison (CRDT merge-commit vs abort-and-retry vs
//! reorder+early-abort) runs: every transaction reads its device
//! document and writes new readings back, so two transactions on the
//! same key in one block are an MVCC conflict under vanilla Fabric.

use fabriccrdt_fabric::simulation::TxRequest;
use fabriccrdt_sim::rng::{SimRng, ZipfSampler};
use fabriccrdt_sim::time::SimTime;

use crate::iot::IotChaincode;

/// Parameters of one Zipf-skewed IoT schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfWorkload {
    /// Target chaincode name (an [`IotChaincode`] deployment).
    pub chaincode: String,
    /// Transactions to generate.
    pub total_txs: usize,
    /// Key-space size (device documents `device-0 … device-{keys-1}`).
    pub keys: usize,
    /// Zipf skew `s`: 0.0 is uniform; 1.2 concentrates most traffic on
    /// a handful of keys.
    pub skew: f64,
    /// Open-loop arrival rate in transactions per second.
    pub rate_tps: f64,
    /// PRNG seed for the key-popularity draws.
    pub seed: u64,
}

impl ZipfWorkload {
    /// The seed document every device key starts from.
    pub fn seed_doc() -> Vec<u8> {
        br#"{"readings":[]}"#.to_vec()
    }

    /// The device key for index `k`.
    pub fn key(k: usize) -> String {
        format!("device-{k}")
    }

    /// Generates the `(submission time, request)` schedule: `total_txs`
    /// read-modify-writes at a fixed `rate_tps` arrival rate, each on a
    /// Zipf-sampled device key. Deterministic in `(seed, keys, skew)`.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is zero or `rate_tps` is not positive.
    pub fn schedule(&self) -> Vec<(SimTime, TxRequest)> {
        assert!(self.rate_tps > 0.0, "arrival rate must be positive");
        let zipf = ZipfSampler::new(self.keys, self.skew);
        let mut rng = SimRng::seed_from(self.seed ^ 0xabcd);
        (0..self.total_txs)
            .map(|i| {
                let key = Self::key(zipf.sample(&mut rng));
                let json = format!(r#"{{"deviceID":"{key}","readings":["r{i}"]}}"#);
                (
                    SimTime::from_secs_f64(i as f64 / self.rate_tps),
                    TxRequest::new(
                        &self.chaincode,
                        IotChaincode::args(
                            std::slice::from_ref(&key),
                            std::slice::from_ref(&key),
                            &json,
                        ),
                    ),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(skew: f64) -> ZipfWorkload {
        ZipfWorkload {
            chaincode: "iot".into(),
            total_txs: 200,
            keys: 50,
            skew,
            rate_tps: 300.0,
            seed: 7,
        }
    }

    #[test]
    fn schedule_is_deterministic_and_paced() {
        let a = workload(0.9).schedule();
        let b = workload(0.9).schedule();
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        assert_eq!(a[0].0, SimTime::ZERO);
        // Open loop at 300 tps: tx 150 arrives at 0.5 s.
        assert_eq!(a[150].0, SimTime::from_secs_f64(0.5));
    }

    #[test]
    fn skew_concentrates_keys() {
        let spread = |schedule: &[(SimTime, TxRequest)]| {
            let keys: std::collections::HashSet<_> =
                schedule.iter().map(|(_, r)| r.args[0].clone()).collect();
            keys.len()
        };
        let uniform = workload(0.0).schedule();
        let skewed = workload(1.2).schedule();
        assert!(spread(&uniform) > spread(&skewed));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let mut w = workload(0.0);
        w.rate_tps = 0.0;
        w.schedule();
    }
}
