//! Plain-text tables for the figure and bench binaries.

use crate::experiment::ExperimentResult;

/// Renders a table with the given header and rows, column widths fitted
/// to content.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let columns = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(columns) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let write_row = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate().take(columns) {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:>width$}", width = widths[i]));
        }
        out.push('\n');
    };
    write_row(
        &mut out,
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (columns - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        write_row(&mut out, row);
    }
    out
}

/// A standard figure row: system, x-axis value, and the three panel
/// metrics.
pub fn figure_row(x_label: &str, result: &ExperimentResult) -> Vec<String> {
    vec![
        result.config.system.label().to_owned(),
        x_label.to_owned(),
        format!("{:.1}", result.throughput_tps),
        latency_cell(result.avg_latency_secs),
        result.successful.to_string(),
        result.failed.to_string(),
    ]
}

/// Formats an optional latency (seconds) as a table cell: three
/// decimals, or `n/a` for runs that committed nothing.
pub fn latency_cell(latency: Option<f64>) -> String {
    match latency {
        Some(secs) => format!("{secs:.3}"),
        None => "n/a".to_owned(),
    }
}

/// Formats a decode-cache hit percentage as a table cell: one decimal,
/// or `n/a` when the validator never decodes (no cache metrics) or the
/// run performed no lookups — same convention as [`latency_cell`].
pub fn cache_cell(cache: Option<fabriccrdt_fabric::metrics::DecodeCacheMetrics>) -> String {
    match cache.and_then(|c| c.hit_ratio()) {
        Some(ratio) => format!("{:.1}", ratio * 100.0),
        None => "n/a".to_owned(),
    }
}

/// Header matching [`figure_row`].
pub fn figure_headers() -> [&'static str; 6] {
    [
        "system",
        "x",
        "throughput(tps)",
        "avg-latency(s)",
        "successful",
        "failed",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let out = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "100".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // All rows have equal rendered width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn empty_rows_ok() {
        let out = render_table(&["a"], &[]);
        assert!(out.contains('a'));
    }

    #[test]
    fn figure_headers_match_row_len() {
        assert_eq!(figure_headers().len(), 6);
    }

    #[test]
    fn cache_cell_follows_the_na_convention() {
        use fabriccrdt_fabric::metrics::DecodeCacheMetrics;
        assert_eq!(cache_cell(None), "n/a");
        assert_eq!(cache_cell(Some(DecodeCacheMetrics::default())), "n/a");
        assert_eq!(
            cache_cell(Some(DecodeCacheMetrics {
                hits: 3,
                misses: 1,
                evictions: 0,
            })),
            "75.0"
        );
    }
}
