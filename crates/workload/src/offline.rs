//! Offline-first client workloads.
//!
//! An offline-first client (a disconnected field device, a mobile
//! editor) keeps appending readings to its local CRDT replica, then
//! rejoins and submits the backlog in one burst — the merge-storm
//! shape the adversarial harness (`fabriccrdt-adversary`) measures.
//! This module generates those deterministic edit sequences, both as
//! raw JSON payloads for document-level probes and as a pipeline
//! schedule for the rejoin burst.

use fabriccrdt_fabric::simulation::TxRequest;
use fabriccrdt_sim::time::SimTime;

use crate::iot::IotChaincode;

/// The accumulated offline edits of one client on one device document:
/// `count` read-modify-write payloads, each appending one new reading.
/// Deterministic in `(device, count)`.
pub fn offline_payloads(device: &str, count: usize) -> Vec<String> {
    (0..count)
        .map(|i| format!(r#"{{"device":"{device}","readings":["off-{device}-{i}"]}}"#))
        .collect()
}

/// The rejoin burst as a pipeline schedule: every offline payload
/// submitted against `key` through the CRDT IoT chaincode, starting at
/// `start` with `gap` between submissions (a reconnected client drains
/// its queue as fast as its uplink allows — pass a small `gap`).
pub fn rejoin_schedule(
    key: &str,
    payloads: &[String],
    start: SimTime,
    gap: SimTime,
) -> Vec<(SimTime, TxRequest)> {
    let key = key.to_owned();
    payloads
        .iter()
        .enumerate()
        .map(|(i, payload)| {
            let at = start + gap.scale(i as u64);
            (
                at,
                TxRequest::new(
                    "iot-crdt",
                    IotChaincode::args(
                        std::slice::from_ref(&key),
                        std::slice::from_ref(&key),
                        payload,
                    ),
                ),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payloads_are_deterministic_and_distinct() {
        let a = offline_payloads("d7", 5);
        assert_eq!(a, offline_payloads("d7", 5));
        assert_eq!(a.len(), 5);
        for (i, p) in a.iter().enumerate() {
            assert!(p.contains(&format!("off-d7-{i}")));
        }
    }

    #[test]
    fn rejoin_schedule_spaces_submissions() {
        let payloads = offline_payloads("d1", 3);
        let schedule = rejoin_schedule(
            "dev-d1",
            &payloads,
            SimTime::from_millis(100),
            SimTime::from_millis(5),
        );
        assert_eq!(schedule.len(), 3);
        assert_eq!(schedule[0].0, SimTime::from_millis(100));
        assert_eq!(schedule[2].0, SimTime::from_millis(110));
        assert_eq!(schedule[1].1.chaincode, "iot-crdt");
    }
}
