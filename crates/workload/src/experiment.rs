//! The experiment runner — one call per (system, configuration) cell of
//! the paper's evaluation.
//!
//! Fixed setup (§7.2): 3 organizations × 2 peers, 1 orderer, 1 channel,
//! 4 clients submitting a total of 10 000 transactions, ledger
//! pre-populated with every key read during the run. Per-experiment
//! knobs: block size, submission rate, read/write key counts, JSON
//! shape, and the percentage of conflicting transactions.

use fabriccrdt::{fabric_reordering_simulation, fabric_simulation, fabriccrdt_simulation};
use fabriccrdt_fabric::chaincode::{Chaincode, ChaincodeRegistry};
use fabriccrdt_fabric::config::PipelineConfig;
use fabriccrdt_fabric::metrics::{DecodeCacheMetrics, RunMetrics};
use fabriccrdt_fabric::simulation::TxRequest;
use fabriccrdt_sim::arrivals::{ArrivalKind, ArrivalProcess};
use fabriccrdt_sim::rng::SimRng;
use fabriccrdt_sim::time::SimTime;
use std::sync::Arc;

use crate::generator::{shaped_payload, JsonShape};
use crate::iot::IotChaincode;

/// Which system a run exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// Vanilla Fabric: MVCC validation, conflicts fail.
    Fabric,
    /// FabricCRDT: Algorithm 1, conflicts merge.
    FabricCrdt,
    /// Fabric with Fabric++-style orderer reordering + early abort —
    /// the transaction-reordering baseline of the paper's §8.
    FabricReordering,
}

impl SystemKind {
    /// Display label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::Fabric => "Fabric",
            SystemKind::FabricCrdt => "FabricCRDT",
            SystemKind::FabricReordering => "Fabric++",
        }
    }

    /// The paper's best block size for this system (§7.3): 25 for
    /// FabricCRDT, 400 for Fabric (reordering inherits Fabric's).
    pub fn best_block_size(self) -> usize {
        match self {
            SystemKind::Fabric | SystemKind::FabricReordering => 400,
            SystemKind::FabricCrdt => 25,
        }
    }
}

/// Full configuration of one experiment run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// System under test.
    pub system: SystemKind,
    /// Maximum transactions per block.
    pub block_size: usize,
    /// Aggregate submission rate over all clients, tx/s.
    pub rate_tps: f64,
    /// Total transactions submitted (10 000 in the paper).
    pub total_txs: usize,
    /// Keys read per transaction.
    pub read_keys: usize,
    /// Keys written per transaction.
    pub write_keys: usize,
    /// Shape of the JSON object written.
    pub shape: JsonShape,
    /// Percentage (0–100) of transactions touching the shared (hot) key
    /// set; the rest use per-transaction private keys.
    pub conflict_pct: u8,
    /// PRNG seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// The base configuration shared by the paper's experiments
    /// (Tables 1–5): rate 300 tx/s, 1 read and 1 write key, 2-key JSON,
    /// 100 % conflicting, 10 000 transactions, FabricCRDT at its best
    /// block size.
    pub fn paper_defaults() -> Self {
        ExperimentConfig {
            system: SystemKind::FabricCrdt,
            block_size: SystemKind::FabricCrdt.best_block_size(),
            rate_tps: 300.0,
            total_txs: 10_000,
            read_keys: 1,
            write_keys: 1,
            shape: JsonShape::paper_default(),
            conflict_pct: 100,
            seed: 42,
        }
    }

    /// Same configuration switched to the other system at its own best
    /// block size — how the paper compares the two (§7.3).
    pub fn for_system(mut self, system: SystemKind) -> Self {
        self.system = system;
        self.block_size = system.best_block_size();
        self
    }

    /// Runs the experiment.
    ///
    /// # Panics
    ///
    /// Panics if `conflict_pct > 100` or a key count is zero.
    pub fn run(self) -> ExperimentResult {
        assert!(self.conflict_pct <= 100, "conflict_pct is a percentage");
        assert!(self.write_keys >= 1, "at least one write key");
        let shared_read_keys: Vec<String> = (0..self.read_keys.max(self.write_keys))
            .map(|j| format!("shared-{j}"))
            .collect();

        let chaincode = match self.system {
            SystemKind::Fabric | SystemKind::FabricReordering => IotChaincode::plain(),
            SystemKind::FabricCrdt => IotChaincode::crdt(),
        };
        let chaincode_name = chaincode.name().to_owned();
        let mut registry = ChaincodeRegistry::new();
        registry.deploy(Arc::new(chaincode));

        let pipeline = PipelineConfig::paper(self.block_size, self.seed);

        // Arrival schedule: Caliper's fixed-rate open loop.
        let mut rng = SimRng::seed_from(self.seed ^ 0x9e37_79b9);
        let arrivals = ArrivalProcess::new(self.rate_tps, self.total_txs, ArrivalKind::Uniform)
            .generate(&mut rng);

        let mut schedule: Vec<(SimTime, TxRequest)> = Vec::with_capacity(self.total_txs);
        let mut seed_keys: Vec<String> = shared_read_keys.clone();
        for (i, at) in arrivals.into_iter().enumerate() {
            // Deterministic, exactly-proportional conflict assignment.
            let conflicting = (i % 100) < self.conflict_pct as usize;
            let (reads, writes): (Vec<String>, Vec<String>) = if conflicting {
                (
                    shared_read_keys[..self.read_keys].to_vec(),
                    shared_read_keys[..self.write_keys].to_vec(),
                )
            } else {
                let private: Vec<String> = (0..self.read_keys.max(self.write_keys))
                    .map(|j| format!("priv-{i}-{j}"))
                    .collect();
                seed_keys.extend(private[..self.read_keys].iter().cloned());
                (
                    private[..self.read_keys].to_vec(),
                    private[..self.write_keys].to_vec(),
                )
            };
            let device = writes.first().cloned().unwrap_or_default();
            let payload = shaped_payload(self.shape, &device, i).to_compact_string();
            schedule.push((
                at,
                TxRequest::new(
                    chaincode_name.clone(),
                    IotChaincode::args(&reads, &writes, &payload),
                ),
            ));
        }

        // §7.2: populate the ledger with the keys read during the run.
        let seed_value = shaped_payload(self.shape, "seed", usize::MAX).to_compact_string();
        let metrics = match self.system {
            SystemKind::Fabric => {
                let mut sim = fabric_simulation(pipeline, registry);
                for key in &seed_keys {
                    sim.seed_state(key.clone(), seed_value.clone().into_bytes());
                }
                sim.run(schedule)
            }
            SystemKind::FabricReordering => {
                let mut sim = fabric_reordering_simulation(pipeline, registry);
                for key in &seed_keys {
                    sim.seed_state(key.clone(), seed_value.clone().into_bytes());
                }
                sim.run(schedule)
            }
            SystemKind::FabricCrdt => {
                let mut sim = fabriccrdt_simulation(pipeline, registry);
                for key in &seed_keys {
                    sim.seed_state(key.clone(), seed_value.clone().into_bytes());
                }
                sim.run(schedule)
            }
        };

        ExperimentResult::from_metrics(self, &metrics)
    }
}

/// The three quantities every figure plots, plus context.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentResult {
    /// The configuration that produced this result.
    pub config: ExperimentConfig,
    /// Successful transactions (panel c).
    pub successful: usize,
    /// Failed transactions.
    pub failed: usize,
    /// Successful-transaction throughput, tx/s (panel a).
    pub throughput_tps: f64,
    /// Average latency of successful transactions, seconds (panel b);
    /// `None` when the run committed nothing.
    pub avg_latency_secs: Option<f64>,
    /// 95th-percentile latency, seconds.
    pub p95_latency_secs: f64,
    /// Blocks committed.
    pub blocks: u64,
    /// Total simulated duration, seconds.
    pub duration_secs: f64,
    /// Decode-cache counter deltas over the run; `None` for validators
    /// that never decode payloads (rendered "n/a", like
    /// [`ExperimentResult::avg_latency_secs`]).
    pub decode_cache: Option<DecodeCacheMetrics>,
}

/// Equality ignores [`ExperimentResult::decode_cache`] for the same
/// reason [`RunMetrics`] does: the cache is process-wide, so its
/// counters depend on what else ran (earlier rounds, parallel tests)
/// while every validation outcome stays byte-identical.
impl PartialEq for ExperimentResult {
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config
            && self.successful == other.successful
            && self.failed == other.failed
            && self.throughput_tps == other.throughput_tps
            && self.avg_latency_secs == other.avg_latency_secs
            && self.p95_latency_secs == other.p95_latency_secs
            && self.blocks == other.blocks
            && self.duration_secs == other.duration_secs
    }
}

impl ExperimentResult {
    fn from_metrics(config: ExperimentConfig, metrics: &RunMetrics) -> Self {
        let latency = metrics.latency_summary();
        ExperimentResult {
            config,
            successful: metrics.successful(),
            failed: metrics.failed(),
            throughput_tps: metrics.successful_throughput_tps(),
            avg_latency_secs: metrics.avg_latency_secs(),
            p95_latency_secs: latency.percentile(95.0).unwrap_or(0.0),
            blocks: metrics.blocks_committed,
            duration_secs: metrics.end_time.as_secs_f64(),
            decode_cache: metrics.decode_cache,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(system: SystemKind) -> ExperimentConfig {
        ExperimentConfig {
            total_txs: 300,
            ..ExperimentConfig::paper_defaults().for_system(system)
        }
    }

    #[test]
    fn fabriccrdt_commits_everything_under_full_conflict() {
        let result = small(SystemKind::FabricCrdt).run();
        assert_eq!(result.successful, 300);
        assert_eq!(result.failed, 0);
        assert!(result.throughput_tps > 100.0);
    }

    #[test]
    fn fabric_fails_most_under_full_conflict() {
        let result = small(SystemKind::Fabric).run();
        assert!(result.successful < 60, "successes {}", result.successful);
        assert_eq!(result.successful + result.failed, 300);
    }

    #[test]
    fn zero_conflict_both_commit_everything() {
        for system in [SystemKind::Fabric, SystemKind::FabricCrdt] {
            let result = ExperimentConfig {
                conflict_pct: 0,
                ..small(system)
            }
            .run();
            assert_eq!(result.successful, 300, "{}", system.label());
        }
    }

    #[test]
    fn half_conflict_fabric_fails_only_conflicting_share() {
        let result = ExperimentConfig {
            conflict_pct: 50,
            ..small(SystemKind::Fabric)
        }
        .run();
        // Non-conflicting half always commits; some of the conflicting
        // half commits too (first per epoch).
        assert!(result.successful >= 150);
        assert!(result.failed > 50);
    }

    #[test]
    fn results_are_deterministic() {
        let a = small(SystemKind::FabricCrdt).run();
        let b = small(SystemKind::FabricCrdt).run();
        assert_eq!(a, b);
    }

    #[test]
    fn larger_blocks_slow_fabriccrdt() {
        let small_blocks = ExperimentConfig {
            block_size: 25,
            total_txs: 500,
            ..ExperimentConfig::paper_defaults()
        }
        .run();
        let large_blocks = ExperimentConfig {
            block_size: 500,
            total_txs: 500,
            ..ExperimentConfig::paper_defaults()
        }
        .run();
        assert!(
            small_blocks.throughput_tps > large_blocks.throughput_tps,
            "small {} vs large {}",
            small_blocks.throughput_tps,
            large_blocks.throughput_tps
        );
        assert_eq!(large_blocks.successful, 500); // still no failures
    }

    #[test]
    fn fabric_reordering_runs_and_early_aborts() {
        let result = small(SystemKind::FabricReordering).run();
        // Under the all-conflicting RMW workload, reordering can only
        // early-abort the conflict cliques; everything still resolves.
        assert_eq!(result.successful + result.failed, 300);
        assert!(result.failed > 0);
    }

    #[test]
    fn decode_cache_reported_only_for_crdt_validators() {
        let crdt = small(SystemKind::FabricCrdt).run();
        let cache = crdt.decode_cache.expect("CRDT validator decodes payloads");
        assert!(cache.hits + cache.misses > 0, "payloads were looked up");
        let fabric = small(SystemKind::Fabric).run();
        assert!(fabric.decode_cache.is_none(), "plain MVCC never decodes");
    }

    #[test]
    fn best_block_sizes_match_paper() {
        assert_eq!(SystemKind::FabricCrdt.best_block_size(), 25);
        assert_eq!(SystemKind::Fabric.best_block_size(), 400);
    }

    #[test]
    fn for_system_switches_block_size() {
        let cfg = ExperimentConfig::paper_defaults().for_system(SystemKind::Fabric);
        assert_eq!(cfg.system, SystemKind::Fabric);
        assert_eq!(cfg.block_size, 400);
    }
}
