//! JSON payload generation.
//!
//! Two shapes from the paper:
//!
//! - The default IoT object (§7.1 Listing 3): a device id plus a list of
//!   temperature readings — "the JSON object that is written to the
//!   ledger has two keys, containing a string constant and a list"
//!   (§7.3).
//! - The "k-d complexity" object (§7.5 Listing 4): `k` top-level keys,
//!   each value nested `d` levels deep.

use fabriccrdt_jsoncrdt::json::Value;

/// Shape parameters for generated JSON payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonShape {
    /// Top-level keys ("Number of keys per JSON object" in the paper's
    /// config tables).
    pub keys: usize,
    /// Nesting depth of each value; depth 1 is a flat object. The paper's
    /// "3-3 complexity" is `keys = 3, depth = 3`.
    pub depth: usize,
}

impl JsonShape {
    /// The default experiment shape: 2 keys (device id + readings list).
    pub fn paper_default() -> Self {
        JsonShape { keys: 2, depth: 1 }
    }

    /// A "k-d" complexity shape (§7.5).
    pub fn complexity(keys: usize, depth: usize) -> Self {
        JsonShape { keys, depth }
    }
}

/// Builds the IoT payload of Listing 3 for transaction `tx_index` on
/// device `device_id`: `{"deviceID": ..., "readings": [unique readings]}`.
///
/// `readings` controls the list length; every reading is unique to the
/// transaction so that merges must preserve it (no-update-loss is
/// observable).
pub fn iot_payload(device_id: &str, tx_index: usize, readings: usize) -> Value {
    let mut map = Value::empty_map();
    map.insert("deviceID", Value::string(device_id));
    map.insert(
        "readings",
        Value::list((0..readings).map(|r| {
            // Wrapping arithmetic: seeded payloads use usize::MAX as the
            // index sentinel, which would overflow checked multiplication.
            let raw = tx_index.wrapping_mul(7).wrapping_add(r.wrapping_mul(13)) % 200;
            Value::string(format!("{:.1}", 40.0 + raw as f64 / 10.0))
        })),
    );
    map
}

/// Builds a "k-d complexity" payload (§7.5, Listing 4): `keys` top-level
/// entries, each a chain of nested maps `depth` deep ending in a reading
/// string unique to `tx_index`.
///
/// For `shape.keys == 2 && shape.depth == 1` this is the default IoT
/// object instead (the paper's base configuration).
pub fn shaped_payload(shape: JsonShape, device_id: &str, tx_index: usize) -> Value {
    if shape == JsonShape::paper_default() {
        return iot_payload(device_id, tx_index, 1);
    }
    let mut map = Value::empty_map();
    for k in 0..shape.keys {
        let leaf = Value::string(format!("r-{tx_index}-{k}"));
        let mut node = leaf;
        for level in (1..shape.depth).rev() {
            let mut wrapper = Value::empty_map();
            wrapper.insert(format!("n{level}"), node);
            node = wrapper;
        }
        map.insert(format!("k{k}"), node);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iot_payload_matches_listing_3_shape() {
        let v = iot_payload("Device1", 0, 3);
        assert_eq!(v.get("deviceID").unwrap().as_str(), Some("Device1"));
        assert_eq!(v.get("readings").unwrap().as_list().unwrap().len(), 3);
        assert_eq!(v.as_map().unwrap().len(), 2);
    }

    #[test]
    fn iot_payload_unique_per_tx() {
        let a = iot_payload("d", 1, 1);
        let b = iot_payload("d", 2, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn shaped_payload_has_requested_keys_and_depth() {
        let v = shaped_payload(JsonShape::complexity(3, 3), "d", 5);
        assert_eq!(v.as_map().unwrap().len(), 3);
        // Root map + 2 nested maps + leaf = depth 4 in node terms; the
        // value chain below each key is 3 levels (maps + leaf).
        assert_eq!(v.depth(), 4);
    }

    #[test]
    fn depth_one_is_flat() {
        let v = shaped_payload(JsonShape::complexity(4, 1), "d", 0);
        assert_eq!(v.as_map().unwrap().len(), 4);
        assert_eq!(v.depth(), 2); // map + string leaves
    }

    #[test]
    fn default_shape_is_iot_listing() {
        let v = shaped_payload(JsonShape::paper_default(), "Device9", 3);
        assert_eq!(v.get("deviceID").unwrap().as_str(), Some("Device9"));
        assert!(v.get("readings").is_some());
    }

    #[test]
    fn complexity_increases_node_count() {
        let small = shaped_payload(JsonShape::complexity(1, 1), "d", 0).node_count();
        let large = shaped_payload(JsonShape::complexity(5, 5), "d", 0).node_count();
        assert!(large > small * 5);
    }
}
