//! Channel-sharded workload generation for multi-channel deployments.
//!
//! Fabric scales horizontally by splitting an application across
//! channels, each with its own ledger and client population. This
//! module produces the per-channel submission schedules such a
//! deployment sees: every channel gets its own Caliper-style open-loop
//! arrival process (aggregate rate = clients × per-client rate, like
//! the paper's 4 × 75 tx/s = 300 tx/s setup of §7.2) over a
//! channel-prefixed key space, so channels contend internally (the
//! paper's hot-key conflict workload) but never with each other.
//!
//! The generator is deliberately decoupled from the driver: it returns
//! plain `(SimTime, TxRequest)` schedules plus the keys to pre-seed,
//! which `fabriccrdt-channel`'s `MultiChannelNetwork::run` (or any
//! single `Simulation`) accepts directly.

use fabriccrdt_fabric::simulation::TxRequest;
use fabriccrdt_sim::arrivals::{ArrivalKind, ArrivalProcess};
use fabriccrdt_sim::rng::SimRng;
use fabriccrdt_sim::time::SimTime;

use crate::generator::{shaped_payload, JsonShape};
use crate::iot::IotChaincode;

/// Configuration of a channel-sharded IoT workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelWorkload {
    /// Number of channels (schedules produced).
    pub channels: usize,
    /// Clients submitting per channel; an open-loop rate multiplier,
    /// exactly like Caliper's fixed-rate worker pool.
    pub clients_per_channel: usize,
    /// Per-client submission rate, tx/s (the paper's 4-client 300 tx/s
    /// setup is 75 tx/s per client).
    pub rate_tps_per_client: f64,
    /// Transactions each client submits.
    pub txs_per_client: usize,
    /// Keys read per transaction.
    pub read_keys: usize,
    /// Keys written per transaction.
    pub write_keys: usize,
    /// Shape of the JSON document written.
    pub shape: JsonShape,
    /// Percentage (0–100) of transactions touching the channel's shared
    /// hot keys; the rest use per-transaction private keys.
    pub conflict_pct: u8,
    /// Base PRNG seed; each channel's arrival process forks its own
    /// stream from it.
    pub seed: u64,
}

impl ChannelWorkload {
    /// The paper's workload (§7.2) sharded: per-channel 4 clients at
    /// 75 tx/s each, 1 read + 1 write key, 2-key JSON, 100 %
    /// conflicting inside the channel.
    pub fn paper_defaults(channels: usize) -> Self {
        ChannelWorkload {
            channels,
            clients_per_channel: 4,
            rate_tps_per_client: 75.0,
            txs_per_client: 2_500,
            read_keys: 1,
            write_keys: 1,
            shape: JsonShape::paper_default(),
            conflict_pct: 100,
            seed: 42,
        }
    }

    /// Transactions submitted per channel.
    pub fn txs_per_channel(&self) -> usize {
        self.clients_per_channel * self.txs_per_client
    }

    /// Transactions submitted across all channels.
    pub fn total_txs(&self) -> usize {
        self.channels * self.txs_per_channel()
    }

    /// The hot (shared) keys of channel `channel` — the keys its
    /// conflicting transactions read-modify-write, and the minimum set
    /// to pre-seed.
    pub fn hot_keys(&self, channel: usize) -> Vec<String> {
        (0..self.read_keys.max(self.write_keys))
            .map(|j| format!("ch{channel}-shared-{j}"))
            .collect()
    }

    /// Generates every channel's schedule and seed-key set.
    ///
    /// # Panics
    ///
    /// Panics if `conflict_pct > 100`, a key count is zero, or
    /// `channels` is zero.
    pub fn generate(&self) -> Vec<ChannelSchedule> {
        assert!(self.channels >= 1, "at least one channel");
        assert!(self.conflict_pct <= 100, "conflict_pct is a percentage");
        assert!(self.write_keys >= 1, "at least one write key");
        (0..self.channels)
            .map(|c| self.generate_channel(c))
            .collect()
    }

    fn generate_channel(&self, channel: usize) -> ChannelSchedule {
        let hot = self.hot_keys(channel);
        // One arrival-process fork per channel, mixed so channel 0
        // reproduces the single-channel stream (`c = 0` leaves the
        // seed untouched, matching `ExperimentConfig`'s mix).
        let mut rng = SimRng::seed_from(
            (self.seed ^ 0x9e37_79b9).wrapping_add(0xc2b2_ae35_u64.wrapping_mul(channel as u64)),
        );
        let total = self.txs_per_channel();
        let rate = self.rate_tps_per_client * self.clients_per_channel as f64;
        let arrivals = ArrivalProcess::new(rate, total, ArrivalKind::Uniform).generate(&mut rng);

        let mut schedule: Vec<(SimTime, TxRequest)> = Vec::with_capacity(total);
        let mut seed_keys: Vec<String> = hot.clone();
        for (i, at) in arrivals.into_iter().enumerate() {
            let conflicting = (i % 100) < self.conflict_pct as usize;
            let (reads, writes): (Vec<String>, Vec<String>) = if conflicting {
                (
                    hot[..self.read_keys].to_vec(),
                    hot[..self.write_keys].to_vec(),
                )
            } else {
                let private: Vec<String> = (0..self.read_keys.max(self.write_keys))
                    .map(|j| format!("ch{channel}-priv-{i}-{j}"))
                    .collect();
                seed_keys.extend(private[..self.read_keys].iter().cloned());
                (
                    private[..self.read_keys].to_vec(),
                    private[..self.write_keys].to_vec(),
                )
            };
            let device = writes.first().cloned().unwrap_or_default();
            let payload = shaped_payload(self.shape, &device, i).to_compact_string();
            schedule.push((
                at,
                TxRequest::new("iot-crdt", IotChaincode::args(&reads, &writes, &payload)),
            ));
        }
        ChannelSchedule {
            channel,
            schedule,
            seed_keys,
        }
    }
}

/// One channel's generated workload.
#[derive(Debug, Clone)]
pub struct ChannelSchedule {
    /// The channel this schedule targets (its index in the deployment).
    pub channel: usize,
    /// The submission schedule, ready for `Simulation::run` or one slot
    /// of `MultiChannelNetwork::run`.
    pub schedule: Vec<(SimTime, TxRequest)>,
    /// Keys to pre-seed on the channel before the run (§7.2: the ledger
    /// is populated with every key read).
    pub seed_keys: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(channels: usize) -> ChannelWorkload {
        ChannelWorkload {
            clients_per_channel: 2,
            txs_per_client: 30,
            ..ChannelWorkload::paper_defaults(channels)
        }
    }

    #[test]
    fn generates_one_schedule_per_channel_with_the_right_size() {
        let workload = small(3);
        let schedules = workload.generate();
        assert_eq!(schedules.len(), 3);
        for (c, s) in schedules.iter().enumerate() {
            assert_eq!(s.channel, c);
            assert_eq!(s.schedule.len(), workload.txs_per_channel());
        }
        assert_eq!(workload.total_txs(), 180);
    }

    #[test]
    fn key_spaces_are_channel_disjoint() {
        let schedules = ChannelWorkload {
            conflict_pct: 50,
            ..small(2)
        }
        .generate();
        for s in &schedules {
            let prefix = format!("ch{}-", s.channel);
            assert!(s.seed_keys.iter().all(|k| k.starts_with(&prefix)));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        // Uniform arrivals are fixed-rate (Caliper's fixed-rate
        // controller), so every channel shares the same spacing; the
        // per-channel PRNG fork matters for stochastic arrival kinds.
        let a = small(2).generate();
        let b = small(2).generate();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.schedule.len(), y.schedule.len());
            for ((ta, _), (tb, _)) in x.schedule.iter().zip(&y.schedule) {
                assert_eq!(ta, tb);
            }
        }
    }

    #[test]
    fn channel_zero_matches_the_unsharded_stream() {
        // The c = 0 mix leaves the base seed untouched, so channel 0's
        // arrival times equal a single-channel generator's.
        let sharded = &small(2).generate()[0];
        let single = &small(1).generate()[0];
        for ((a, _), (b, _)) in sharded.schedule.iter().zip(&single.schedule) {
            assert_eq!(a, b);
        }
    }
}
