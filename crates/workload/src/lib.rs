//! Workload generation and the experiment runner — the reproduction's
//! Hyperledger Caliper (§7.1–7.2 of the FabricCRDT paper).
//!
//! - [`iot`]: the paper's IoT temperature chaincode — reads the device
//!   document, writes a JSON with the device id and new readings, either
//!   CRDT-flagged (`putCRDT`) or plain.
//! - [`generator`]: JSON payload shapes, including the "k-d complexity"
//!   objects of §7.5.
//! - [`channels`]: the same workload sharded across channels —
//!   per-channel open-loop arrival processes over channel-prefixed key
//!   spaces, for `fabriccrdt-channel` deployments.
//! - [`offline`]: offline-first client edit sequences and rejoin-burst
//!   schedules, for the merge-storm probes of `fabriccrdt-adversary`.
//! - [`zipf`]: Zipf-skewed read-modify-write schedules for the
//!   conflict-strategy comparison bench (`bench --bin zipf`).
//! - [`experiment`]: one-call experiment execution — topology, block
//!   size, rate, read/write key counts, JSON shape, conflict percentage —
//!   against either system, returning the three metrics every figure
//!   plots.
//! - [`report`]: plain-text tables for the figure/bench binaries.
//!
//! # Examples
//!
//! ```
//! use fabriccrdt_workload::experiment::{ExperimentConfig, SystemKind};
//!
//! let result = ExperimentConfig {
//!     system: SystemKind::FabricCrdt,
//!     total_txs: 200,
//!     ..ExperimentConfig::paper_defaults()
//! }
//! .run();
//! assert_eq!(result.successful, 200); // FabricCRDT commits everything
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod caliper;
pub mod channels;
pub mod experiment;
pub mod generator;
pub mod iot;
pub mod offline;
pub mod report;
pub mod smallbank;
pub mod zipf;

pub use caliper::{Benchmark, BenchmarkReport};
pub use channels::{ChannelSchedule, ChannelWorkload};
pub use experiment::{ExperimentConfig, ExperimentResult, SystemKind};
pub use generator::JsonShape;
pub use iot::IotChaincode;
pub use smallbank::SmallBankChaincode;
pub use zipf::ZipfWorkload;
