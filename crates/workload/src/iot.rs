//! The IoT temperature chaincode (§7.1).
//!
//! "We implemented a chaincode that receives and stores temperature
//! readings and device identification numbers of IoT devices. When
//! executing a transaction, the chaincode first reads a key-value pair
//! from the ledger ... Then, the chaincode adds the new temperature
//! reading to the JSON object and submits it to be written to the
//! ledger."
//!
//! Argument layout (the Caliper side builds these):
//!
//! - `args[0]`: comma-separated read keys,
//! - `args[1]`: comma-separated write keys,
//! - `args[2]`: the JSON object (text) to write to every write key.
//!
//! One implementation serves both systems: constructed with
//! [`IotChaincode::crdt`] it submits via the shim's `put_crdt`
//! (FabricCRDT), with [`IotChaincode::plain`] via plain `put_state`
//! (the Fabric baseline, where conflicting writes MVCC-fail).

use fabriccrdt_fabric::chaincode::{Chaincode, ChaincodeError, ChaincodeStub};

/// The IoT readings chaincode.
#[derive(Debug, Clone, Copy)]
pub struct IotChaincode {
    crdt: bool,
}

impl IotChaincode {
    /// CRDT-enabled variant: writes via `put_crdt` (§5.2).
    pub fn crdt() -> Self {
        IotChaincode { crdt: true }
    }

    /// Plain variant for the Fabric baseline: writes via `put_state`.
    pub fn plain() -> Self {
        IotChaincode { crdt: false }
    }

    /// Whether this instance writes CRDT-flagged values.
    pub fn is_crdt(&self) -> bool {
        self.crdt
    }

    /// Builds the argument vector for an invocation.
    pub fn args(read_keys: &[String], write_keys: &[String], json: &str) -> Vec<String> {
        vec![read_keys.join(","), write_keys.join(","), json.to_owned()]
    }
}

fn split_keys(spec: &str) -> impl Iterator<Item = &str> {
    spec.split(',').filter(|k| !k.is_empty())
}

impl Chaincode for IotChaincode {
    fn name(&self) -> &str {
        if self.crdt {
            "iot-crdt"
        } else {
            "iot"
        }
    }

    fn invoke(&self, stub: &mut ChaincodeStub<'_>, args: &[String]) -> Result<(), ChaincodeError> {
        if args.len() != 3 {
            return Err(ChaincodeError::new(
                "expected [read keys, write keys, json payload]",
            ));
        }
        // Read phase: every read key lands in the read set with the
        // version observed — the MVCC dependency (§3).
        for key in split_keys(&args[0]) {
            stub.get_state(key);
        }
        // Write phase: the JSON payload goes to every write key.
        let payload = args[2].clone().into_bytes();
        let mut wrote = false;
        for key in split_keys(&args[1]) {
            wrote = true;
            if self.crdt {
                stub.put_crdt(key, payload.clone());
            } else {
                stub.put_state(key, payload.clone());
            }
        }
        if !wrote {
            return Err(ChaincodeError::new("no write keys supplied"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabriccrdt_ledger::version::Height;
    use fabriccrdt_ledger::worldstate::WorldState;

    fn invoke(
        cc: IotChaincode,
        state: &WorldState,
        args: Vec<String>,
    ) -> Result<fabriccrdt_ledger::rwset::ReadWriteSet, ChaincodeError> {
        let mut stub = ChaincodeStub::new(state);
        cc.invoke(&mut stub, &args)?;
        Ok(stub.into_result().0)
    }

    #[test]
    fn reads_and_writes_requested_keys() {
        let mut state = WorldState::new();
        state.put("d1".into(), b"{}".to_vec(), Height::new(1, 0));
        let args = IotChaincode::args(
            &["d1".into(), "d2".into()],
            &["d1".into()],
            r#"{"deviceID":"d1","readings":["50.0"]}"#,
        );
        let rwset = invoke(IotChaincode::crdt(), &state, args).unwrap();
        assert_eq!(rwset.reads.len(), 2);
        assert_eq!(
            rwset.reads.get("d1").unwrap().version,
            Some(Height::new(1, 0))
        );
        assert_eq!(rwset.reads.get("d2").unwrap().version, None);
        assert!(rwset.writes.get("d1").unwrap().is_crdt);
    }

    #[test]
    fn plain_variant_writes_unflagged() {
        let state = WorldState::new();
        let args = IotChaincode::args(&["k".into()], &["k".into()], "{}");
        let rwset = invoke(IotChaincode::plain(), &state, args).unwrap();
        assert!(!rwset.writes.get("k").unwrap().is_crdt);
        assert!(!rwset.writes.has_crdt_writes());
    }

    #[test]
    fn names_differ_per_variant() {
        assert_eq!(IotChaincode::crdt().name(), "iot-crdt");
        assert_eq!(IotChaincode::plain().name(), "iot");
    }

    #[test]
    fn empty_read_spec_reads_nothing() {
        let state = WorldState::new();
        let args = vec!["".into(), "k".into(), "{}".into()];
        let rwset = invoke(IotChaincode::crdt(), &state, args).unwrap();
        assert!(rwset.reads.is_empty()); // a pure write transaction (§3)
    }

    #[test]
    fn missing_args_error() {
        let state = WorldState::new();
        assert!(invoke(IotChaincode::crdt(), &state, vec!["only-one".into()]).is_err());
    }

    #[test]
    fn no_write_keys_error() {
        let state = WorldState::new();
        let args = vec!["k".into(), "".into(), "{}".into()];
        assert!(invoke(IotChaincode::crdt(), &state, args).is_err());
    }

    #[test]
    fn multiple_write_keys_fan_out() {
        let state = WorldState::new();
        let args = IotChaincode::args(&[], &["a".into(), "b".into(), "c".into()], r#"{"x":"1"}"#);
        let rwset = invoke(IotChaincode::crdt(), &state, args).unwrap();
        assert_eq!(rwset.writes.len(), 3);
    }
}
