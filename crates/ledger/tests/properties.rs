//! Property-based tests for the ledger: codec totality and roundtrips,
//! MVCC invariants.

use proptest::prelude::*;

use fabriccrdt_crypto::{Identity, Signature};
use fabriccrdt_ledger::block::{Block, ValidationCode};
use fabriccrdt_ledger::codec;
use fabriccrdt_ledger::mvcc;
use fabriccrdt_ledger::rwset::ReadWriteSet;
use fabriccrdt_ledger::transaction::{Endorsement, Transaction, TxId};
use fabriccrdt_ledger::version::Height;
use fabriccrdt_ledger::worldstate::WorldState;

fn arb_rwset() -> impl Strategy<Value = ReadWriteSet> {
    // Read versions stay below block 2 so they can never collide with
    // the heights the MVCC property test commits at (block 2).
    let read = ("[a-z]{1,6}", prop::option::of((0u64..2, 0u64..8)));
    let write = ("[a-z]{1,6}", prop::collection::vec(any::<u8>(), 0..12), 0u8..3);
    (
        prop::collection::vec(read, 0..4),
        prop::collection::vec(write, 0..4),
    )
        .prop_map(|(reads, writes)| {
            let mut rwset = ReadWriteSet::new();
            for (key, version) in reads {
                rwset
                    .reads
                    .record(key, version.map(|(b, t)| Height::new(b, t)));
            }
            for (key, value, kind) in writes {
                match kind {
                    0 => rwset.writes.put(key, value),
                    1 => rwset.writes.put_crdt(key, value),
                    _ => rwset.writes.delete(key),
                }
            }
            rwset
        })
}

fn arb_transaction() -> impl Strategy<Value = Transaction> {
    (
        any::<u64>(),
        "[a-z]{1,8}",
        arb_rwset(),
        prop::collection::vec(("[a-z]{1,5}", "[a-z]{1,5}", any::<[u8; 32]>()), 0..3),
    )
        .prop_map(|(nonce, chaincode, rwset, endorsers)| {
            let client = Identity::new("client", "org1");
            Transaction {
                id: TxId::derive(&client, nonce, &chaincode),
                client,
                chaincode,
                rwset,
                endorsements: endorsers
                    .into_iter()
                    .map(|(name, org, sig)| Endorsement {
                        endorser: Identity::new(name, org),
                        signature: Signature(sig),
                    })
                    .collect(),
            }
        })
}

fn arb_block() -> impl Strategy<Value = Block> {
    (
        0u64..100,
        any::<[u8; 32]>(),
        prop::collection::vec(arb_transaction(), 0..5),
        any::<bool>(),
    )
        .prop_map(|(number, prev, txs, with_codes)| {
            let mut block = Block::assemble(number, prev, txs);
            if with_codes {
                block.validation_codes = block
                    .transactions
                    .iter()
                    .enumerate()
                    .map(|(i, _)| {
                        [
                            ValidationCode::Valid,
                            ValidationCode::MvccConflict,
                            ValidationCode::ValidMerged,
                            ValidationCode::EarlyAborted,
                            ValidationCode::TamperedBlock,
                        ][i % 5]
                    })
                    .collect();
            }
            block
        })
}

proptest! {
    /// Encode → decode is the identity.
    #[test]
    fn block_codec_roundtrip(block in arb_block()) {
        let decoded = codec::decode_block(&codec::encode_block(&block)).unwrap();
        prop_assert_eq!(decoded, block);
    }

    /// Decoding arbitrary bytes never panics (totality).
    #[test]
    fn decode_arbitrary_bytes_is_total(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        let _ = codec::decode_block(&bytes);
        let _ = codec::decode_chain(&bytes);
    }

    /// Decoding a corrupted valid encoding never panics.
    #[test]
    fn decode_corrupted_encoding_is_total(
        block in arb_block(),
        flip in prop::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..6),
    ) {
        let mut bytes = codec::encode_block(&block);
        for (idx, mask) in flip {
            if !bytes.is_empty() {
                let i = idx.index(bytes.len());
                bytes[i] ^= mask;
            }
        }
        let _ = codec::decode_block(&bytes);
    }

    /// Canonical rwset bytes are injective enough: equal bytes imply
    /// equal rwsets (over the generated universe).
    #[test]
    fn rwset_bytes_distinguish(a in arb_rwset(), b in arb_rwset()) {
        if a.to_bytes() == b.to_bytes() {
            prop_assert_eq!(a, b);
        }
    }

    /// MVCC safety invariant: in any committed block, no two successful
    /// transactions have a read-version that was invalidated by an
    /// earlier successful transaction of the same block.
    #[test]
    fn mvcc_never_commits_stale_reads(txs in prop::collection::vec(arb_transaction(), 1..8)) {
        let mut state = WorldState::new();
        // Seed every key read at version (1, 0) so some reads match.
        for tx in &txs {
            for (key, _) in tx.rwset.reads.iter() {
                state.put(key.clone(), b"seed".to_vec(), Height::new(1, 0));
            }
        }
        let snapshot = state.clone();
        let mut block = Block::assemble(2, [0; 32], txs);
        mvcc::validate_and_commit(&mut block, &mut state, &[], false);

        // Replay: walk transactions in order over the snapshot and check
        // the validator's verdicts against a reference implementation.
        let mut reference = snapshot;
        for (tx, code) in block.transactions.iter().zip(&block.validation_codes) {
            let reads_ok = tx
                .rwset
                .reads
                .iter()
                .all(|(key, entry)| reference.version(key) == entry.version);
            prop_assert_eq!(code.is_success(), reads_ok);
            if reads_ok {
                for (key, entry) in tx.rwset.writes.iter() {
                    if entry.is_delete {
                        reference.delete(key);
                    } else {
                        reference.put(key.clone(), entry.value.clone(), Height::new(9, 9));
                    }
                }
            }
        }
    }
}
