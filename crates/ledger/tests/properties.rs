//! Randomized property tests for the ledger: codec totality and
//! roundtrips, MVCC invariants. Driven by the deterministic in-repo
//! generator (`fabriccrdt_sim::gen`).

use fabriccrdt_crypto::{Identity, Signature};
use fabriccrdt_ledger::block::{Block, ValidationCode};
use fabriccrdt_ledger::codec;
use fabriccrdt_ledger::mvcc;
use fabriccrdt_ledger::rwset::ReadWriteSet;
use fabriccrdt_ledger::transaction::{Endorsement, Transaction, TxId};
use fabriccrdt_ledger::version::Height;
use fabriccrdt_ledger::worldstate::WorldState;
use fabriccrdt_sim::gen::{self, Gen};

fn arb_rwset(g: &mut Gen) -> ReadWriteSet {
    let mut rwset = ReadWriteSet::new();
    // Read versions stay below block 2 so they can never collide with
    // the heights the MVCC property test commits at (block 2).
    for _ in 0..g.size(0, 3) {
        let key = g.ident(1, 6);
        let version = if g.flip() {
            Some(Height::new(g.range(0, 2), g.range(0, 8)))
        } else {
            None
        };
        rwset.reads.record(key, version);
    }
    for _ in 0..g.size(0, 3) {
        let key = g.ident(1, 6);
        let value = g.bytes(0, 11);
        match g.range(0, 3) {
            0 => rwset.writes.put(key, value),
            1 => rwset.writes.put_crdt(key, value),
            _ => rwset.writes.delete(key),
        }
    }
    rwset
}

fn arb_transaction(g: &mut Gen) -> Transaction {
    let client = Identity::new("client", "org1");
    let nonce = g.u64();
    let chaincode = g.ident(1, 8);
    Transaction {
        id: TxId::derive(&client, nonce, &chaincode),
        client,
        chaincode,
        rwset: arb_rwset(g),
        endorsements: g.vec(0, 2, |g| Endorsement {
            endorser: Identity::new(g.ident(1, 5), g.ident(1, 5)),
            signature: Signature(g.array32()),
        }),
    }
}

fn arb_block(g: &mut Gen) -> Block {
    let number = g.range(0, 100);
    let prev = g.array32();
    let txs = g.vec(0, 4, arb_transaction);
    let with_codes = g.flip();
    let mut block = Block::assemble(number, prev, txs);
    if with_codes {
        block.validation_codes = block
            .transactions
            .iter()
            .enumerate()
            .map(|(i, _)| {
                [
                    ValidationCode::Valid,
                    ValidationCode::MvccConflict,
                    ValidationCode::ValidMerged,
                    ValidationCode::EarlyAborted,
                    ValidationCode::TamperedBlock,
                ][i % 5]
            })
            .collect();
    }
    block
}

/// Encode → decode is the identity.
#[test]
fn block_codec_roundtrip() {
    gen::cases(128, |g| {
        let block = arb_block(g);
        let decoded = codec::decode_block(&codec::encode_block(&block)).unwrap();
        assert_eq!(decoded, block);
    });
}

/// Decoding arbitrary bytes never panics (totality).
#[test]
fn decode_arbitrary_bytes_is_total() {
    gen::cases(256, |g| {
        let bytes = g.bytes(0, 600);
        let _ = codec::decode_block(&bytes);
        let _ = codec::decode_chain(&bytes);
    });
}

/// Decoding a corrupted valid encoding never panics.
#[test]
fn decode_corrupted_encoding_is_total() {
    gen::cases(128, |g| {
        let block = arb_block(g);
        let mut bytes = codec::encode_block(&block);
        for _ in 0..g.size(1, 5) {
            if !bytes.is_empty() {
                let i = g.range(0, bytes.len() as u64) as usize;
                bytes[i] ^= g.byte();
            }
        }
        let _ = codec::decode_block(&bytes);
    });
}

/// Canonical rwset bytes are injective enough: equal bytes imply equal
/// rwsets (over the generated universe).
#[test]
fn rwset_bytes_distinguish() {
    gen::cases(256, |g| {
        let a = arb_rwset(g);
        let b = arb_rwset(g);
        if a.to_bytes() == b.to_bytes() {
            assert_eq!(a, b);
        }
    });
}

/// MVCC safety invariant: in any committed block, no two successful
/// transactions have a read-version that was invalidated by an earlier
/// successful transaction of the same block.
#[test]
fn mvcc_never_commits_stale_reads() {
    gen::cases(128, |g| {
        let txs = g.vec(1, 7, arb_transaction);
        let mut state = WorldState::new();
        // Seed every key read at version (1, 0) so some reads match.
        for tx in &txs {
            for (key, _) in tx.rwset.reads.iter() {
                state.put(key.clone(), b"seed".to_vec(), Height::new(1, 0));
            }
        }
        let snapshot = state.clone();
        let mut block = Block::assemble(2, [0; 32], txs);
        mvcc::validate_and_commit(&mut block, &mut state, &[], false);

        // Replay: walk transactions in order over the snapshot and check
        // the validator's verdicts against a reference implementation.
        let mut reference = snapshot;
        for (tx, code) in block.transactions.iter().zip(&block.validation_codes) {
            let reads_ok = tx
                .rwset
                .reads
                .iter()
                .all(|(key, entry)| reference.version(key) == entry.version);
            assert_eq!(code.is_success(), reads_ok);
            if reads_ok {
                for (key, entry) in tx.rwset.writes.iter() {
                    if entry.is_delete {
                        reference.delete(key);
                    } else {
                        reference.put(key.clone(), entry.value.clone(), Height::new(9, 9));
                    }
                }
            }
        }
    });
}
