//! The append-only blockchain.

use std::error::Error;
use std::fmt;

use fabriccrdt_crypto::Digest;

use crate::block::Block;

/// Error returned when appending a block that does not extend the chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// The block number is not `last + 1`.
    WrongNumber {
        /// Expected block number.
        expected: u64,
        /// Number carried by the rejected block.
        got: u64,
    },
    /// The previous-hash field does not match the tip.
    BrokenHashChain,
    /// The data hash does not cover the block's transactions.
    BadDataHash,
    /// A replayed block is missing per-transaction validation codes.
    MissingValidationCodes,
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::WrongNumber { expected, got } => {
                write!(f, "expected block number {expected}, got {got}")
            }
            ChainError::BrokenHashChain => write!(f, "previous-hash does not match chain tip"),
            ChainError::BadDataHash => write!(f, "data hash does not cover transactions"),
            ChainError::MissingValidationCodes => {
                write!(f, "replayed block carries no validation codes")
            }
        }
    }
}

impl Error for ChainError {}

/// An append-only chain of blocks with hash-chain integrity.
///
/// # Examples
///
/// ```
/// use fabriccrdt_ledger::{Block, Blockchain};
///
/// let mut chain = Blockchain::new();
/// let block = Block::assemble(0, Blockchain::GENESIS_PREVIOUS_HASH, vec![]);
/// chain.append(block)?;
/// assert_eq!(chain.height(), 1);
/// # Ok::<(), fabriccrdt_ledger::chain::ChainError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Blockchain {
    blocks: Vec<Block>,
}

impl Blockchain {
    /// The previous-hash value of the genesis block.
    pub const GENESIS_PREVIOUS_HASH: Digest = [0; 32];

    /// An empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of blocks.
    pub fn height(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Whether the chain has no blocks yet.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The latest block.
    pub fn tip(&self) -> Option<&Block> {
        self.blocks.last()
    }

    /// Hash the next block must chain to.
    pub fn tip_hash(&self) -> Digest {
        self.tip()
            .map(Block::hash)
            .unwrap_or(Self::GENESIS_PREVIOUS_HASH)
    }

    /// The block at `number`.
    pub fn block(&self, number: u64) -> Option<&Block> {
        self.blocks.get(number as usize)
    }

    /// Iterates blocks from genesis.
    pub fn iter(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter()
    }

    /// Appends a block after verifying number, hash chain and data hash.
    ///
    /// # Errors
    ///
    /// Returns a [`ChainError`] when the block does not correctly extend
    /// the chain; the chain is left unchanged.
    pub fn append(&mut self, block: Block) -> Result<(), ChainError> {
        let expected = self.height();
        if block.header.number != expected {
            return Err(ChainError::WrongNumber {
                expected,
                got: block.header.number,
            });
        }
        if block.header.previous_hash != self.tip_hash() {
            return Err(ChainError::BrokenHashChain);
        }
        if !block.data_hash_is_valid() {
            return Err(ChainError::BadDataHash);
        }
        self.blocks.push(block);
        Ok(())
    }

    /// Verifies the whole chain's integrity from genesis.
    pub fn verify_integrity(&self) -> Result<(), ChainError> {
        let mut previous = Self::GENESIS_PREVIOUS_HASH;
        for (i, block) in self.blocks.iter().enumerate() {
            if block.header.number != i as u64 {
                return Err(ChainError::WrongNumber {
                    expected: i as u64,
                    got: block.header.number,
                });
            }
            if block.header.previous_hash != previous {
                return Err(ChainError::BrokenHashChain);
            }
            if !block.data_hash_is_valid() {
                return Err(ChainError::BadDataHash);
            }
            previous = block.hash();
        }
        Ok(())
    }

    /// Total transactions across all blocks.
    pub fn total_transactions(&self) -> usize {
        self.blocks.iter().map(Block::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rwset::ReadWriteSet;
    use crate::transaction::{Transaction, TxId};
    use fabriccrdt_crypto::Identity;

    fn tx(n: u64) -> Transaction {
        let client = Identity::new("client", "org1");
        let mut rwset = ReadWriteSet::new();
        rwset.writes.put(format!("k{n}"), vec![n as u8]);
        Transaction {
            id: TxId::derive(&client, n, "cc"),
            client,
            chaincode: "cc".into(),
            rwset,
            endorsements: Vec::new(),
        }
    }

    fn extend(chain: &mut Blockchain, txs: Vec<Transaction>) {
        let block = Block::assemble(chain.height(), chain.tip_hash(), txs);
        chain.append(block).unwrap();
    }

    #[test]
    fn append_and_verify() {
        let mut chain = Blockchain::new();
        extend(&mut chain, vec![]);
        extend(&mut chain, vec![tx(1), tx(2)]);
        extend(&mut chain, vec![tx(3)]);
        assert_eq!(chain.height(), 3);
        assert_eq!(chain.total_transactions(), 3);
        chain.verify_integrity().unwrap();
    }

    #[test]
    fn wrong_number_rejected() {
        let mut chain = Blockchain::new();
        let block = Block::assemble(5, Blockchain::GENESIS_PREVIOUS_HASH, vec![]);
        assert_eq!(
            chain.append(block).unwrap_err(),
            ChainError::WrongNumber {
                expected: 0,
                got: 5
            }
        );
    }

    #[test]
    fn broken_hash_chain_rejected() {
        let mut chain = Blockchain::new();
        extend(&mut chain, vec![]);
        let block = Block::assemble(1, [9; 32], vec![]);
        assert_eq!(
            chain.append(block).unwrap_err(),
            ChainError::BrokenHashChain
        );
        assert_eq!(chain.height(), 1);
    }

    #[test]
    fn tampered_transactions_rejected() {
        let mut chain = Blockchain::new();
        extend(&mut chain, vec![]);
        let mut block = Block::assemble(1, chain.tip_hash(), vec![tx(1)]);
        block.transactions[0]
            .rwset
            .writes
            .put("evil", b"x".to_vec());
        assert_eq!(chain.append(block).unwrap_err(), ChainError::BadDataHash);
    }

    #[test]
    fn verify_detects_mid_chain_tampering() {
        let mut chain = Blockchain::new();
        extend(&mut chain, vec![tx(1)]);
        extend(&mut chain, vec![tx(2)]);
        chain.verify_integrity().unwrap();
        // Tamper with a committed transaction.
        chain.blocks[0].transactions[0]
            .rwset
            .writes
            .put("evil", b"x".to_vec());
        assert_eq!(
            chain.verify_integrity().unwrap_err(),
            ChainError::BadDataHash
        );
    }

    #[test]
    fn block_lookup() {
        let mut chain = Blockchain::new();
        extend(&mut chain, vec![tx(1)]);
        assert_eq!(chain.block(0).unwrap().len(), 1);
        assert!(chain.block(1).is_none());
    }
}
