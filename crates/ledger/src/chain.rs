//! The append-only blockchain.

use std::error::Error;
use std::fmt;

use fabriccrdt_crypto::Digest;

use crate::block::Block;

/// Error returned when appending a block that does not extend the chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// The block number is not `last + 1`.
    WrongNumber {
        /// Expected block number.
        expected: u64,
        /// Number carried by the rejected block.
        got: u64,
    },
    /// The previous-hash field does not match the tip.
    BrokenHashChain,
    /// The data hash does not cover the block's transactions.
    BadDataHash,
    /// A replayed block is missing per-transaction validation codes.
    MissingValidationCodes,
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::WrongNumber { expected, got } => {
                write!(f, "expected block number {expected}, got {got}")
            }
            ChainError::BrokenHashChain => write!(f, "previous-hash does not match chain tip"),
            ChainError::BadDataHash => write!(f, "data hash does not cover transactions"),
            ChainError::MissingValidationCodes => {
                write!(f, "replayed block carries no validation codes")
            }
        }
    }
}

impl Error for ChainError {}

/// An append-only chain of blocks with hash-chain integrity.
///
/// A chain normally starts at genesis (block 0). A chain restored from
/// a snapshot instead *resumes* at a base point ([`Blockchain::resume`]):
/// blocks below `base_number` are not held in memory, but the hash they
/// chained to is, so appends and integrity checks stay anchored.
///
/// # Examples
///
/// ```
/// use fabriccrdt_ledger::{Block, Blockchain};
///
/// let mut chain = Blockchain::new();
/// let block = Block::assemble(0, Blockchain::GENESIS_PREVIOUS_HASH, vec![]);
/// chain.append(block)?;
/// assert_eq!(chain.height(), 1);
/// # Ok::<(), fabriccrdt_ledger::chain::ChainError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Blockchain {
    blocks: Vec<Block>,
    /// Number of the first block this chain will hold; blocks below it
    /// were compacted away (0 for a from-genesis chain).
    base_number: u64,
    /// Hash of block `base_number - 1`, i.e. the hash block
    /// `base_number` must chain to ([`Blockchain::GENESIS_PREVIOUS_HASH`]
    /// when `base_number` is 0).
    base_hash: Digest,
}

impl Blockchain {
    /// The previous-hash value of the genesis block.
    pub const GENESIS_PREVIOUS_HASH: Digest = [0; 32];

    /// An empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty chain resuming at `base_number`, whose first appended
    /// block must chain to `base_hash` — the tip hash at the snapshot
    /// point a restored peer continues from.
    pub fn resume(base_number: u64, base_hash: Digest) -> Self {
        Blockchain {
            blocks: Vec::new(),
            base_number,
            base_hash,
        }
    }

    /// Number of blocks committed to the chain, including compacted
    /// ones no longer held in memory.
    pub fn height(&self) -> u64 {
        self.base_number + self.blocks.len() as u64
    }

    /// Whether the chain holds no blocks in memory.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Number of the first block held in memory (0 unless resumed or
    /// front-truncated).
    pub fn base_number(&self) -> u64 {
        self.base_number
    }

    /// Hash the first in-memory block chains to — the hash of block
    /// `base_number - 1`, or [`Blockchain::GENESIS_PREVIOUS_HASH`] for
    /// a from-genesis chain.
    pub fn anchor_hash(&self) -> Digest {
        self.base_hash
    }

    /// The latest block.
    pub fn tip(&self) -> Option<&Block> {
        self.blocks.last()
    }

    /// Hash the next block must chain to.
    pub fn tip_hash(&self) -> Digest {
        self.tip().map(Block::hash).unwrap_or(self.base_hash)
    }

    /// The block at `number` (`None` when compacted away or not yet
    /// appended).
    pub fn block(&self, number: u64) -> Option<&Block> {
        let index = number.checked_sub(self.base_number)?;
        self.blocks.get(index as usize)
    }

    /// Iterates the blocks held in memory, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter()
    }

    /// Drops in-memory blocks numbered below `keep_from`, re-anchoring
    /// the chain at the last dropped block's hash. Returns how many
    /// blocks were dropped. Appends, `tip_hash` and `verify_integrity`
    /// are unaffected; `block(n)` for dropped numbers returns `None`.
    pub fn truncate_front(&mut self, keep_from: u64) -> usize {
        if keep_from <= self.base_number {
            return 0;
        }
        let drop = ((keep_from - self.base_number) as usize).min(self.blocks.len());
        if drop == 0 {
            return 0;
        }
        self.base_hash = self.blocks[drop - 1].hash();
        self.base_number = self.blocks[drop - 1].header.number + 1;
        self.blocks.drain(..drop);
        drop
    }

    /// Appends a block after verifying number, hash chain and data hash.
    ///
    /// # Errors
    ///
    /// Returns a [`ChainError`] when the block does not correctly extend
    /// the chain; the chain is left unchanged.
    pub fn append(&mut self, block: Block) -> Result<(), ChainError> {
        let expected = self.height();
        if block.header.number != expected {
            return Err(ChainError::WrongNumber {
                expected,
                got: block.header.number,
            });
        }
        if block.header.previous_hash != self.tip_hash() {
            return Err(ChainError::BrokenHashChain);
        }
        if !block.data_hash_is_valid() {
            return Err(ChainError::BadDataHash);
        }
        self.blocks.push(block);
        Ok(())
    }

    /// Verifies the integrity of all in-memory blocks, anchored at the
    /// base hash (the genesis anchor for a from-genesis chain).
    pub fn verify_integrity(&self) -> Result<(), ChainError> {
        let mut previous = self.base_hash;
        for (i, block) in self.blocks.iter().enumerate() {
            let expected = self.base_number + i as u64;
            if block.header.number != expected {
                return Err(ChainError::WrongNumber {
                    expected,
                    got: block.header.number,
                });
            }
            if block.header.previous_hash != previous {
                return Err(ChainError::BrokenHashChain);
            }
            if !block.data_hash_is_valid() {
                return Err(ChainError::BadDataHash);
            }
            previous = block.hash();
        }
        Ok(())
    }

    /// Total transactions across the in-memory blocks.
    pub fn total_transactions(&self) -> usize {
        self.blocks.iter().map(Block::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rwset::ReadWriteSet;
    use crate::transaction::{Transaction, TxId};
    use fabriccrdt_crypto::Identity;

    fn tx(n: u64) -> Transaction {
        let client = Identity::new("client", "org1");
        let mut rwset = ReadWriteSet::new();
        rwset.writes.put(format!("k{n}"), vec![n as u8]);
        Transaction {
            id: TxId::derive(&client, n, "cc"),
            client,
            chaincode: "cc".into(),
            rwset,
            endorsements: Vec::new(),
        }
    }

    fn extend(chain: &mut Blockchain, txs: Vec<Transaction>) {
        let block = Block::assemble(chain.height(), chain.tip_hash(), txs);
        chain.append(block).unwrap();
    }

    #[test]
    fn append_and_verify() {
        let mut chain = Blockchain::new();
        extend(&mut chain, vec![]);
        extend(&mut chain, vec![tx(1), tx(2)]);
        extend(&mut chain, vec![tx(3)]);
        assert_eq!(chain.height(), 3);
        assert_eq!(chain.total_transactions(), 3);
        chain.verify_integrity().unwrap();
    }

    #[test]
    fn wrong_number_rejected() {
        let mut chain = Blockchain::new();
        let block = Block::assemble(5, Blockchain::GENESIS_PREVIOUS_HASH, vec![]);
        assert_eq!(
            chain.append(block).unwrap_err(),
            ChainError::WrongNumber {
                expected: 0,
                got: 5
            }
        );
    }

    #[test]
    fn broken_hash_chain_rejected() {
        let mut chain = Blockchain::new();
        extend(&mut chain, vec![]);
        let block = Block::assemble(1, [9; 32], vec![]);
        assert_eq!(
            chain.append(block).unwrap_err(),
            ChainError::BrokenHashChain
        );
        assert_eq!(chain.height(), 1);
    }

    #[test]
    fn tampered_transactions_rejected() {
        let mut chain = Blockchain::new();
        extend(&mut chain, vec![]);
        let mut block = Block::assemble(1, chain.tip_hash(), vec![tx(1)]);
        block.transactions[0]
            .rwset
            .writes
            .put("evil", b"x".to_vec());
        assert_eq!(chain.append(block).unwrap_err(), ChainError::BadDataHash);
    }

    #[test]
    fn verify_detects_mid_chain_tampering() {
        let mut chain = Blockchain::new();
        extend(&mut chain, vec![tx(1)]);
        extend(&mut chain, vec![tx(2)]);
        chain.verify_integrity().unwrap();
        // Tamper with a committed transaction.
        chain.blocks[0].transactions[0]
            .rwset
            .writes
            .put("evil", b"x".to_vec());
        assert_eq!(
            chain.verify_integrity().unwrap_err(),
            ChainError::BadDataHash
        );
    }

    #[test]
    fn block_lookup() {
        let mut chain = Blockchain::new();
        extend(&mut chain, vec![tx(1)]);
        assert_eq!(chain.block(0).unwrap().len(), 1);
        assert!(chain.block(1).is_none());
    }

    #[test]
    fn resumed_chain_anchors_at_base() {
        let mut full = Blockchain::new();
        extend(&mut full, vec![tx(1)]);
        extend(&mut full, vec![tx(2)]);
        let base_hash = full.tip_hash();

        let mut resumed = Blockchain::resume(2, base_hash);
        assert_eq!(resumed.height(), 2);
        assert_eq!(resumed.base_number(), 2);
        assert_eq!(resumed.tip_hash(), base_hash);
        assert!(resumed.block(1).is_none(), "compacted blocks are gone");

        // The next block must chain to the snapshot-point hash.
        let block = Block::assemble(2, base_hash, vec![tx(3)]);
        resumed.append(block).unwrap();
        assert_eq!(resumed.height(), 3);
        assert_eq!(resumed.block(2).unwrap().len(), 1);
        resumed.verify_integrity().unwrap();

        // A wrong anchor is still rejected.
        let bad = Block::assemble(3, [9; 32], vec![]);
        assert_eq!(
            resumed.append(bad).unwrap_err(),
            ChainError::BrokenHashChain
        );
    }

    #[test]
    fn truncate_front_preserves_tip_and_appends() {
        let mut chain = Blockchain::new();
        for n in 1..=5 {
            extend(&mut chain, vec![tx(n)]);
        }
        let tip = chain.tip_hash();
        assert_eq!(chain.truncate_front(3), 3);
        assert_eq!(chain.base_number(), 3);
        assert_eq!(chain.height(), 5);
        assert_eq!(chain.tip_hash(), tip);
        assert!(chain.block(2).is_none());
        assert_eq!(chain.block(3).unwrap().header.number, 3);
        chain.verify_integrity().unwrap();
        // Idempotent at or below the base; capped at the tip.
        assert_eq!(chain.truncate_front(3), 0);
        assert_eq!(chain.truncate_front(100), 2);
        assert_eq!(chain.height(), 5);
        assert_eq!(chain.tip_hash(), tip);
        extend(&mut chain, vec![tx(6)]);
        chain.verify_integrity().unwrap();
        assert_eq!(chain.height(), 6);
    }
}
